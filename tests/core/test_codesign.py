"""Search-core tests for the serving co-design autotuner."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.codesign import (
    HostConstraints,
    IndexOption,
    SearchSpace,
    TenantSpec,
    TrafficClass,
    TrafficProfile,
    enumerate_joint_space,
    evaluate,
    modeled_serving,
    qos_guaranteed_shares,
    search,
    synthetic_index_options,
)
from repro.core.config import AlgorithmParams
from repro.core.design_space import best_design
from repro.core.perf_model import (
    IndexProfile,
    min_nprobe_for_mass,
    synthetic_profile,
)
from repro.harness import fig09
from repro.hw.device import SMALL_DEVICE, U55C


def small_traffic(**overrides) -> TrafficProfile:
    """A modest profile every quick search can satisfy."""
    defaults = dict(
        rate_qps=2_000.0,
        slo_p99_us=20_000.0,
        recall_floor=0.5,
        n_vectors=20_000,
        d=32,
        m=8,
        ksub=32,
    )
    defaults.update(overrides)
    return TrafficProfile(**defaults)


def quick_setup(**traffic_overrides):
    """(traffic, constraints, space, options) for a fast real search."""
    traffic = small_traffic(**traffic_overrides)
    constraints = HostConstraints(max_workers=4, pe_grid=(1, 2, 4, 8, 16))
    space = SearchSpace.quick()
    options = synthetic_index_options(
        (64, 128), traffic.n_vectors, traffic.recall_floor, seed=3
    )
    return traffic, constraints, space, options


# --------------------------------------------------------------------- #
# Input validation.


def test_traffic_profile_validates_shares_and_geometry():
    with pytest.raises(ValueError, match="sum to 1"):
        small_traffic(tenants=(TenantSpec("a", 0.5), TenantSpec("b", 0.2)))
    with pytest.raises(ValueError, match="duplicate tenant"):
        small_traffic(tenants=(TenantSpec("a", 0.5), TenantSpec("a", 0.5)))
    with pytest.raises(ValueError, match="divisible"):
        small_traffic(d=30, m=8)
    with pytest.raises(ValueError, match="recall_floor"):
        small_traffic(recall_floor=1.5)


def test_traffic_profile_round_trips_through_dict():
    traffic = small_traffic(
        tenants=(TenantSpec("gold", 0.25, priority=True), TenantSpec("bulk", 0.75)),
        classes=(TrafficClass(k=10, share=0.9), TrafficClass(k=50, share=0.1, nprobe=7)),
    )
    again = TrafficProfile.from_dict(traffic.to_dict())
    assert again == traffic
    assert again.max_k == 50
    assert again.pinned_nprobe == 7


def test_traffic_profile_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown traffic profile keys"):
        TrafficProfile.from_dict(
            {"rate_qps": 10.0, "slo_p99_us": 100.0, "rate": 5}
        )


def test_search_space_rejects_unknown_qos_scheme():
    with pytest.raises(ValueError, match="qos_schemes"):
        SearchSpace(qos_schemes=("uniform", "strict"))


def test_index_option_rejects_mismatched_profile():
    profile = synthetic_profile(64, 10_000)
    with pytest.raises(ValueError, match="nlist"):
        IndexOption(nlist=128, use_opq=False, nprobe=4, profile=profile)
    with pytest.raises(ValueError, match="nprobe"):
        IndexOption(nlist=64, use_opq=False, nprobe=65, profile=profile)


# --------------------------------------------------------------------- #
# Model helpers.


def test_synthetic_profile_is_deterministic_and_exact():
    a = synthetic_profile(64, 10_000, skew=1.5, seed=7)
    b = synthetic_profile(64, 10_000, skew=1.5, seed=7)
    assert np.array_equal(a.cell_sizes, b.cell_sizes)
    assert a.ntotal == 10_000
    assert int(np.min(a.cell_sizes)) >= 1
    uniform = synthetic_profile(64, 6_400, skew=0.0)
    assert np.all(uniform.cell_sizes == 100)


def test_min_nprobe_for_mass_is_monotone_and_reaches_one():
    profile = synthetic_profile(128, 50_000, skew=1.0, seed=1)
    floors = (0.1, 0.3, 0.6, 0.9, 1.0)
    nprobes = [min_nprobe_for_mass(profile, f) for f in floors]
    assert nprobes == sorted(nprobes)
    assert nprobes[-1] <= profile.nlist
    # The found nprobe covers the floor; one less does not.
    for floor, nprobe in zip(floors, nprobes):
        total = profile.ntotal
        assert profile.expected_codes(nprobe) >= floor * total
        if nprobe > 1:
            assert profile.expected_codes(nprobe - 1) < floor * total


def test_best_design_matches_fig09_optimal_design():
    params = AlgorithmParams(d=128, nlist=2**13, nprobe=16, k=10)
    sizes = np.full(params.nlist, fig09.NTOTAL // params.nlist, dtype=np.int64)
    profile = IndexProfile(nlist=params.nlist, use_opq=False, cell_sizes=sizes)
    found = best_design(params, U55C, profile, pe_grid=fig09.PE_GRID)
    assert found is not None
    assert found[0] == fig09.optimal_design(params)


def test_best_design_returns_none_when_nothing_fits():
    params = AlgorithmParams(d=128, nlist=2**15, nprobe=64, k=100)
    profile = synthetic_profile(params.nlist, 1_000_000, seed=0)
    assert best_design(params, SMALL_DEVICE, profile, pe_grid=(57,)) is None


def test_modeled_serving_capacity_scales_with_replicas():
    kwargs = dict(
        fill_us=100.0, per_query_us=10.0, shards=1, max_batch=16,
        window_us=1000.0, rate_qps=100.0, nprobe=8, d=32, k=10,
    )
    cap1, p99_1, util1 = modeled_serving(replicas=1, **kwargs)
    cap4, _, util4 = modeled_serving(replicas=4, **kwargs)
    assert cap4 == pytest.approx(4 * cap1)
    assert util4 == pytest.approx(util1 / 4)
    assert p99_1 > kwargs["window_us"]


def test_modeled_serving_saturates_to_infinite_p99():
    _, p99, _ = modeled_serving(
        fill_us=1_000.0, per_query_us=1_000.0, replicas=1, shards=1,
        max_batch=4, window_us=500.0, rate_qps=1e9, nprobe=8, d=32, k=10,
    )
    assert p99 == float("inf")


def test_qos_guaranteed_shares():
    tenants = (TenantSpec("a", 0.8), TenantSpec("b", 0.2))
    assert qos_guaranteed_shares("uniform", tenants) == {"a": 0.5, "b": 0.5}
    assert qos_guaranteed_shares("weighted", tenants) == {"a": 0.8, "b": 0.2}
    with pytest.raises(ValueError, match="unknown qos scheme"):
        qos_guaranteed_shares("lottery", tenants)


# --------------------------------------------------------------------- #
# The search: determinism, explicit empty frontier, brute-force parity.


def test_infeasible_space_yields_explicit_empty_frontier():
    # A workers cap of 0 devices' worth is impossible to satisfy — but
    # max_workers >= 1, so force infeasibility through the SLO instead:
    # every window in the space exceeds the p99 SLO.
    traffic, constraints, space, options = quick_setup(slo_p99_us=900.0)
    report = search(traffic, constraints, space, options)
    assert report.empty
    assert report.winner is None
    assert report.n_feasible == 0
    assert report.n_enumerated == space.size(len(options))
    assert "window" in report.prune_counts
    # Reasons cover every pruned point (each point fails >= 1 check).
    assert sum(report.prune_counts.values()) >= report.n_enumerated


def test_recall_unreachable_options_enumerate_and_prune_explicitly():
    traffic, constraints, space, options = quick_setup()
    dead = [
        dataclasses.replace(o, nprobe=None) for o in options
    ]
    report = search(traffic, constraints, space, dead)
    assert report.empty
    assert report.prune_counts.get("recall") == report.n_enumerated


def test_search_is_deterministic_under_fixed_seed():
    traffic, constraints, space, options = quick_setup()
    a = search(traffic, constraints, space, options)
    b = search(traffic, constraints, space, options)
    assert not a.empty
    assert [ev.design for ev in a.ranked] == [ev.design for ev in b.ranked]
    assert [ev.modeled_qps for ev in a.ranked] == [
        ev.modeled_qps for ev in b.ranked
    ]
    assert a.prune_counts == b.prune_counts


def test_search_matches_brute_force_over_enumerated_space():
    traffic, constraints, space, options = quick_setup()
    report = search(traffic, constraints, space, options)

    by_key = {(o.nlist, o.use_opq): o for o in options}
    brute = []
    n_points = 0
    for design, option in enumerate_joint_space(space, options):
        n_points += 1
        assert by_key[(design.nlist, design.use_opq)] is option
        ev = evaluate(design, traffic, constraints, option)
        if ev.feasible:
            brute.append(ev)
    brute.sort(key=lambda ev: ev.sort_key())

    assert report.n_enumerated == n_points == space.size(len(options))
    assert report.n_feasible == len(brute)
    assert [ev.design for ev in report.ranked] == [ev.design for ev in brute]
    assert [ev.modeled_qps for ev in report.ranked] == pytest.approx(
        [ev.modeled_qps for ev in brute]
    )
    # Ranking really is best-first.
    qps = [ev.modeled_qps for ev in report.ranked]
    assert qps == sorted(qps, reverse=True)


def test_evaluate_prunes_worker_budget_and_memory():
    traffic, constraints, space, options = quick_setup()
    option = options[0]
    import repro.core.codesign as cd

    fat = cd.ServingDesign(
        nlist=option.nlist, use_opq=option.use_opq, nprobe=option.nprobe,
        replicas=4, shards=4, max_batch=8, window_us=1000.0,
        qos_scheme="uniform",
    )
    ev = evaluate(fat, traffic, constraints, option)
    assert not ev.feasible
    assert any(r.startswith("workers:") for r in ev.reasons)

    huge = small_traffic(n_vectors=traffic.n_vectors)
    big_profile = synthetic_profile(option.nlist, 3 * 10**9, seed=0)
    big_option = IndexOption(
        nlist=option.nlist, use_opq=option.use_opq, nprobe=option.nprobe,
        profile=big_profile,
    )
    tight = dataclasses.replace(fat, replicas=1, shards=1)
    ev = evaluate(tight, huge, constraints, big_option)
    assert not ev.feasible
    assert any(r.startswith("memory:") for r in ev.reasons)


def test_evaluate_rejects_mismatched_option():
    traffic, constraints, _, options = quick_setup()
    import repro.core.codesign as cd

    design = cd.ServingDesign(
        nlist=999, use_opq=False, nprobe=4, replicas=1, shards=1,
        max_batch=8, window_us=1000.0, qos_scheme="uniform",
    )
    with pytest.raises(ValueError, match="does not match"):
        evaluate(design, traffic, constraints, options[0])


def test_report_to_dict_caps_ranked_and_counts_prunes():
    traffic, constraints, space, options = quick_setup()
    report = search(traffic, constraints, space, options)
    payload = report.to_dict(top_n=3)
    assert payload["n_enumerated"] == report.n_enumerated
    assert len(payload["ranked"]) == min(3, report.n_feasible)
    assert payload["n_ranked_reported"] == len(payload["ranked"])
    for entry in payload["ranked"]:
        assert entry["feasible"] is True
        assert entry["design"]["workers"] <= constraints.max_workers
