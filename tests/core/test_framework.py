"""Integration tests for the end-to-end Fanns framework."""

import numpy as np
import pytest

from repro.ann.recall import recall_at_k
from repro.core.framework import Fanns
from repro.core.index_explorer import RecallGoal
from repro.hw.device import U55C


@pytest.fixture(scope="module")
def fanns():
    return Fanns(
        U55C,
        m=4,
        ksub=32,
        nlist_grid=[8, 16],
        opq_options=(False,),
        pe_grid=(1, 2, 4, 8),
        max_train_vectors=2000,
    )


@pytest.fixture(scope="module")
def fitted(fanns, small_dataset):
    return fanns.fit(small_dataset, RecallGoal(10, 0.5), max_queries=50)


class TestFit:
    def test_result_meets_recall_goal(self, fitted, small_dataset):
        sim = fitted.simulator()
        res = sim.run_batch(small_dataset.queries)
        gt = small_dataset.ensure_ground_truth(10)
        assert recall_at_k(res.ids, gt) >= fitted.goal.target - 0.02

    def test_prediction_close_to_simulation(self, fitted, small_dataset):
        """The paper reports real accelerators reach 86.9-99.4 % of the
        prediction; our simulator should land in the same neighbourhood."""
        sim_qps = fitted.simulator().run_batch(small_dataset.queries).qps
        ratio = sim_qps / fitted.prediction.qps
        assert 0.7 < ratio < 1.1

    def test_combinations_counted(self, fitted):
        assert fitted.n_combinations > 0

    def test_per_index_shortlist(self, fitted):
        assert len(fitted.per_index_best) >= 1
        assert fitted.prediction.qps == pytest.approx(
            max(fitted.per_index_best.values())
        )

    def test_summary_text(self, fitted):
        s = fitted.summary()
        assert "predicted QPS" in s and "R@10=50%" in s

    def test_generate_project(self, fitted, tmp_path):
        paths = fitted.generate_project(tmp_path)
        assert len(paths) == 4

    def test_nprobe_recorded(self, fitted):
        assert 1 <= fitted.nprobe <= fitted.config.params.nlist


class TestFitEdgeCases:
    def test_unreachable_goal_raises(self, fanns, small_dataset):
        with pytest.raises(RuntimeError, match="quantization-limited"):
            fanns.fit(small_dataset, RecallGoal(10, 0.999), max_queries=30)

    def test_no_feasible_nlist_raises(self, fanns, small_dataset):
        with pytest.raises(ValueError, match="nlist"):
            fanns.fit(small_dataset, RecallGoal(10, 0.5), nlist_grid=[10**7])

    def test_network_variant_fits(self, fanns, small_dataset):
        res = fanns.fit(
            small_dataset, RecallGoal(10, 0.5), with_network=True, max_queries=30
        )
        assert res.config.with_network

    def test_recall_goals_pick_designs(self, fanns, small_dataset):
        """Different K values must produce different SelK sizing (Table 4)."""
        r1 = fanns.fit(small_dataset, RecallGoal(1, 0.3), max_queries=30)
        r10 = fanns.fit(small_dataset, RecallGoal(10, 0.5), max_queries=30)
        assert r1.config.params.k == 1
        assert r10.config.params.k == 10
