"""Tests for the FPGA code generator."""

import pytest

from repro.core.codegen import (
    generate_connectivity,
    generate_header,
    generate_kernel,
    write_project,
)
from repro.core.config import AcceleratorConfig, AlgorithmParams


@pytest.fixture
def config():
    return AcceleratorConfig(
        params=AlgorithmParams(
            d=128, nlist=8192, nprobe=17, k=10, use_opq=True, m=16, ksub=256
        ),
        n_ivf_pes=11,
        n_lut_pes=9,
        n_pq_pes=36,
        selk_arch="HSMPQG",
    )


class TestHeader:
    def test_constants_present(self, config):
        h = generate_header(config)
        assert "constexpr int NLIST = 8192;" in h
        assert "constexpr int NPROBE = 17;" in h
        assert "constexpr int N_PQ_PE = 36;" in h
        assert "constexpr bool USE_OPQ = true;" in h

    def test_caching_flags(self, config):
        h = generate_header(config)
        assert "IVF_CACHE_ON_CHIP = true" in h


class TestKernel:
    def test_pe_instantiation_counts(self, config):
        k = generate_kernel(config)
        assert k.count("ivf_dist_pe<") == 11
        assert k.count("build_lut_pe<") == 9
        assert k.count("pq_dist_pe<") == 36

    def test_dataflow_pragma(self, config):
        assert "#pragma HLS dataflow" in generate_kernel(config)

    def test_selk_arch_emitted(self, config):
        assert "hsmpqg_select<" in generate_kernel(config)
        hpq_cfg = AcceleratorConfig(
            params=config.params, n_ivf_pes=2, n_lut_pes=2, n_pq_pes=4, selk_arch="HPQ"
        )
        assert "hpq_select_multi<" in generate_kernel(hpq_cfg)

    def test_opq_pe_only_when_enabled(self, config):
        assert "opq_pe<" in generate_kernel(config)
        no_opq = AcceleratorConfig(
            params=AlgorithmParams(d=128, nlist=64, nprobe=4, k=10, m=16, ksub=256),
            n_ivf_pes=1,
            n_lut_pes=1,
            n_pq_pes=2,
        )
        assert "opq_pe<" not in generate_kernel(no_opq)

    def test_network_bridge(self, config):
        from dataclasses import replace

        net_cfg = replace(config, with_network=True)
        k = generate_kernel(net_cfg)
        assert "easynet_bridge" in k
        assert "tcp_rx" in k


class TestPETemplates:
    def test_templates_cover_all_stages(self, config):
        from repro.core.codegen import generate_pe_templates

        t = generate_pe_templates(config)
        for sym in ("opq_pe", "ivf_dist_pe", "hpq_select", "hsmpqg_select",
                    "build_lut_pe", "pq_dist_pe", "systolic_priority_queue"):
            assert sym in t

    def test_ii_matches_cost_model(self, config):
        from repro.core.codegen import generate_pe_templates

        t = generate_pe_templates(config)
        # IVFDist: one centroid per d/LANES cycles (128/16 = 8).
        assert "II=8" in t
        # BuildLUT on-chip: one table entry per cycle.
        assert "II=1" in t


class TestConnectivity:
    def test_one_channel_per_pq_pe(self, config):
        c = generate_connectivity(config)
        assert c.count("sp=fanns_kernel.hbm_codes_") == 36

    def test_channels_wrap_at_32(self, config):
        c = generate_connectivity(config)
        assert "HBM[3]" in c  # PE 35 -> channel 3


class TestWriteProject:
    def test_writes_project_files(self, config, tmp_path):
        paths = write_project(config, tmp_path)
        names = {p.name for p in paths}
        assert names == {
            "constants.hpp", "kernel.cpp", "pe_templates.hpp", "connectivity.cfg",
        }
        for p in paths:
            assert p.exists()
            assert p.read_text().strip()
