"""Tests for algorithm parameters and accelerator configurations."""

import pytest

from repro.core.config import AcceleratorConfig, AlgorithmParams


def make_params(**kw):
    defaults = dict(d=128, nlist=1024, nprobe=16, k=10, m=16, ksub=256)
    defaults.update(kw)
    return AlgorithmParams(**defaults)


def make_config(**kw):
    defaults = dict(params=make_params(), n_ivf_pes=8, n_lut_pes=4, n_pq_pes=16)
    defaults.update(kw)
    return AcceleratorConfig(**defaults)


class TestAlgorithmParams:
    def test_valid(self):
        p = make_params()
        assert p.nlist == 1024

    @pytest.mark.parametrize(
        "kw,msg",
        [
            (dict(d=100), "divisible"),
            (dict(nlist=0), "nlist"),
            (dict(nprobe=0), "nprobe"),
            (dict(nprobe=5000), "nprobe"),
            (dict(k=0), "k must be positive"),
        ],
    )
    def test_invalid(self, kw, msg):
        with pytest.raises(ValueError, match=msg):
            make_params(**kw)


class TestAcceleratorConfig:
    def test_valid(self):
        cfg = make_config()
        assert cfg.n_pq_pes == 16

    def test_pe_counts_positive(self):
        with pytest.raises(ValueError, match="n_pq_pes"):
            make_config(n_pq_pes=0)

    def test_hsmpqg_needs_k_below_pq_pes(self):
        with pytest.raises(ValueError, match="HSMPQG"):
            make_config(n_pq_pes=8, selk_arch="HSMPQG")
        cfg = make_config(n_pq_pes=16, selk_arch="HSMPQG")
        assert cfg.selk_selector().arch == "HSMPQG"

    def test_selcells_hpq_only(self):
        with pytest.raises(ValueError, match="SelCells"):
            make_config(selcells_arch="HSMPQG")

    def test_centroids_per_pe_ceil(self):
        cfg = make_config(n_ivf_pes=3)
        assert cfg.ivf_centroids_per_pe() == -(-1024 // 3)

    def test_pe_specs_homogeneous(self):
        cfg = make_config()
        assert len(cfg.ivf_pes()) == 8
        assert cfg.ivf_pes()[0] == cfg.ivf_pe_spec()

    def test_opq_pe_only_when_enabled(self):
        assert make_config().opq_pe() is None
        cfg = make_config(params=make_params(use_opq=True))
        assert cfg.opq_pe() is not None

    def test_describe_contains_choices(self):
        s = make_config(selk_arch="HSMPQG", params=make_params(use_opq=True)).describe()
        assert "OPQ+IVF1024" in s
        assert "HSMPQG" in s

    def test_with_params_rebinds(self):
        cfg = make_config()
        new = cfg.with_params(make_params(nprobe=32))
        assert new.params.nprobe == 32
        assert new.n_pq_pes == cfg.n_pq_pes

    def test_with_params_revalidates(self):
        cfg = make_config(n_pq_pes=16, selk_arch="HSMPQG")
        with pytest.raises(ValueError, match="HSMPQG"):
            cfg.with_params(make_params(k=100))
