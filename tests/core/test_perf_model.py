"""Tests for the Eq. 3/4 performance model."""

import numpy as np
import pytest

from repro.core.config import AcceleratorConfig, AlgorithmParams
from repro.core.perf_model import (
    IndexProfile,
    expected_codes_per_query,
    predict,
)


def make_profile(nlist=64, n=64_000, skew=False, use_opq=False):
    if skew:
        sizes = np.linspace(1, 2 * n / nlist, nlist)
        sizes = (sizes * n / sizes.sum()).astype(np.int64)
    else:
        sizes = np.full(nlist, n // nlist, dtype=np.int64)
    return IndexProfile(nlist=nlist, use_opq=use_opq, cell_sizes=sizes)


def make_config(profile, nprobe=8, k=10, **kw):
    params = AlgorithmParams(
        d=128, nlist=profile.nlist, nprobe=nprobe, k=k, use_opq=profile.use_opq,
        m=16, ksub=256,
    )
    defaults = dict(params=params, n_ivf_pes=4, n_lut_pes=4, n_pq_pes=16)
    defaults.update(kw)
    return AcceleratorConfig(**defaults)


class TestExpectedCodes:
    def test_uniform_cells_exact(self):
        sizes = np.full(10, 100)
        # Uniform and size-biased estimates coincide for equal cells.
        assert expected_codes_per_query(sizes, 3) == pytest.approx(300)

    def test_monotone_in_nprobe(self):
        sizes = np.linspace(10, 500, 32)
        vals = [expected_codes_per_query(sizes, p) for p in (1, 4, 16, 32)]
        assert vals == sorted(vals)

    def test_nprobe_all_cells_is_total(self):
        sizes = np.array([5, 10, 15])
        assert expected_codes_per_query(sizes, 3) == pytest.approx(30)

    def test_skew_raises_expectation(self):
        """Size-biased probing scans more than nprobe/nlist of the data."""
        uniform = np.full(16, 100)
        skewed = np.concatenate([np.full(8, 10), np.full(8, 190)])
        assert expected_codes_per_query(skewed, 4) > expected_codes_per_query(uniform, 4)

    def test_empty(self):
        assert expected_codes_per_query(np.array([]), 1) == 0.0
        assert expected_codes_per_query(np.zeros(4), 2) == 0.0

    def test_profile_caches(self):
        p = make_profile()
        a = p.expected_codes(4)
        assert p.expected_codes(4) == a
        assert p.ntotal == 64_000


class TestEstimatorAgainstMeasurement:
    def test_size_biased_estimate_matches_actual_scans(
        self, trained_ivf, small_dataset
    ):
        """The docstring's claim: the size-biased estimator tracks measured
        per-query scanned codes to within a few percent on clustered data."""
        sizes = trained_ivf.cell_sizes.astype(np.float64)
        for nprobe in (1, 2, 4, 8):
            qt = trained_ivf.stage_opq(small_dataset.queries)
            cd = trained_ivf.stage_ivf_dist(qt)
            probed = trained_ivf.stage_select_cells(cd, nprobe)
            actual = sizes[probed].sum(axis=1).mean()
            est = expected_codes_per_query(sizes, nprobe)
            assert est == pytest.approx(actual, rel=0.08), nprobe


class TestProfileScale:
    def test_explorer_scales_profiles_not_indexes(self, small_dataset):
        """profile_scale inflates the perf-model view only; the index and its
        recall behaviour stay untouched."""
        from repro.core.index_explorer import IndexExplorer

        plain = IndexExplorer(m=4, ksub=32, seed=0, max_train_vectors=1500)
        scaled = IndexExplorer(
            m=4, ksub=32, seed=0, max_train_vectors=1500, profile_scale=100.0
        )
        c1 = plain.build(small_dataset, [8], opq_options=(False,))[0]
        c2 = scaled.build(small_dataset, [8], opq_options=(False,))[0]
        assert c2.profile.ntotal == pytest.approx(100 * c1.profile.ntotal, rel=0.01)
        assert c1.index.ntotal == c2.index.ntotal == small_dataset.n


class TestPredict:
    def test_mismatched_profile_raises(self):
        prof = make_profile(nlist=64)
        cfg = make_config(make_profile(nlist=32))
        with pytest.raises(ValueError, match="nlist"):
            predict(cfg, prof)

    def test_opq_mismatch_raises(self):
        prof = make_profile(use_opq=True)
        cfg = make_config(make_profile(use_opq=False))
        with pytest.raises(ValueError, match="OPQ"):
            predict(cfg, prof)

    def test_qps_positive(self):
        prof = make_profile()
        pred = predict(make_config(prof), prof)
        assert pred.qps > 0
        assert pred.latency_us > 0
        assert pred.bottleneck in pred.stage_occupancy_cycles

    def test_qps_equals_freq_over_interval(self):
        prof = make_profile()
        cfg = make_config(prof)
        pred = predict(cfg, prof)
        interval = max(pred.stage_occupancy_cycles.values())
        assert pred.qps == pytest.approx(cfg.freq_mhz * 1e6 / interval)

    def test_more_nprobe_lower_qps(self):
        prof = make_profile()
        q_lo = predict(make_config(prof, nprobe=2), prof).qps
        q_hi = predict(make_config(prof, nprobe=32), prof).qps
        assert q_hi < q_lo

    def test_stage_qps_inverse_of_occupancy(self):
        prof = make_profile()
        cfg = make_config(prof)
        pred = predict(cfg, prof)
        per_stage = pred.stage_qps(cfg.freq_mhz)
        assert min(per_stage.values()) == pytest.approx(pred.qps, rel=1e-6)

    def test_pe_allocation_shifts_bottleneck(self):
        """Starving PQDist must make it the bottleneck; beefing it up while
        starving BuildLUT must move the bottleneck (the co-design effect,
        §3.3)."""
        prof = make_profile(n=2_000_000)
        starved = make_config(prof, nprobe=32, n_pq_pes=1, n_lut_pes=8, n_ivf_pes=8)
        assert predict(starved, prof).bottleneck == "PQDist"
        beefed = make_config(prof, nprobe=32, n_pq_pes=48, n_lut_pes=1, n_ivf_pes=1)
        assert predict(beefed, prof).bottleneck == "BuildLUT"

    def test_striped_layout_balances_even_at_low_nprobe(self):
        """Cells are striped over the PEs' HBM channels, so extra PQDist PEs
        keep helping even at nprobe=2 (the layout behind the paper's 31,876
        predicted QPS at nprobe=5 with 57 PEs)."""
        prof = make_profile(n=2_000_000)
        two = predict(make_config(prof, nprobe=2, n_pq_pes=2), prof)
        many = predict(make_config(prof, nprobe=2, n_pq_pes=48), prof)
        assert many.stage_occupancy_cycles["PQDist"] < 0.1 * two.stage_occupancy_cycles[
            "PQDist"
        ]

    def test_striping_pads_by_half_stripe_per_cell(self):
        prof = make_profile()
        cfg = make_config(prof, nprobe=8, n_pq_pes=16)
        pred = predict(cfg, prof)
        codes = prof.expected_codes(8)
        assert pred.stage_occupancy_cycles["PQDist"] == pytest.approx(
            codes / 16 + 0.5 * 8, rel=1e-6
        )
