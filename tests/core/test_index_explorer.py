"""Tests for the index explorer (recall ↔ nprobe, steps 2-3 of Figure 4)."""

import pytest

from repro.core.index_explorer import IndexExplorer, RecallGoal


@pytest.fixture(scope="module")
def explorer():
    return IndexExplorer(m=4, ksub=32, seed=0, max_train_vectors=2000)


class TestRecallGoal:
    def test_str(self):
        assert str(RecallGoal(10, 0.8)) == "R@10=80%"

    def test_validation(self):
        with pytest.raises(ValueError, match="k"):
            RecallGoal(0, 0.5)
        with pytest.raises(ValueError, match="target"):
            RecallGoal(10, 0.0)
        with pytest.raises(ValueError, match="target"):
            RecallGoal(10, 1.5)


class TestBuild:
    def test_builds_grid(self, explorer, small_dataset):
        cands = explorer.build(small_dataset, [8, 16], opq_options=(False,))
        assert [c.profile.nlist for c in cands] == [8, 16]
        assert all(c.index.ntotal == small_dataset.n for c in cands)

    def test_caching_avoids_retraining(self, explorer, small_dataset):
        a = explorer.build(small_dataset, [8], opq_options=(False,))[0]
        b = explorer.build(small_dataset, [8], opq_options=(False,))[0]
        assert a.index is b.index

    def test_opq_variants(self, explorer, small_dataset):
        cands = explorer.build(small_dataset, [8], opq_options=(False, True))
        assert [c.profile.use_opq for c in cands] == [False, True]
        assert cands[1].key.startswith("OPQ+")

    def test_nlist_too_large_raises(self, explorer, small_dataset):
        with pytest.raises(ValueError, match="nlist"):
            explorer.build(small_dataset, [10**6])


class TestMinNprobe:
    def test_monotone_goal_needs_more_nprobe(self, explorer, small_dataset):
        cand = explorer.build(small_dataset, [16], opq_options=(False,))[0]
        easy = explorer.min_nprobe(cand, small_dataset, RecallGoal(10, 0.30))
        hard = explorer.min_nprobe(cand, small_dataset, RecallGoal(10, 0.55))
        assert easy is not None and hard is not None
        assert easy <= hard

    def test_min_nprobe_is_minimal(self, explorer, small_dataset):
        from repro.ann.recall import recall_at_k

        cand = explorer.build(small_dataset, [16], opq_options=(False,))[0]
        goal = RecallGoal(10, 0.5)
        nprobe = explorer.min_nprobe(cand, small_dataset, goal)
        assert nprobe is not None
        gt = small_dataset.ensure_ground_truth(10)
        ids, _ = cand.index.search(small_dataset.queries, 10, nprobe)
        assert recall_at_k(ids, gt) >= goal.target
        if nprobe > 1:
            ids, _ = cand.index.search(small_dataset.queries, 10, nprobe - 1)
            assert recall_at_k(ids, gt) < goal.target

    def test_unreachable_goal_returns_none(self, explorer, small_dataset):
        cand = explorer.build(small_dataset, [16], opq_options=(False,))[0]
        assert explorer.min_nprobe(cand, small_dataset, RecallGoal(10, 0.999)) is None

    def test_pairs_skip_unreachable(self, explorer, small_dataset):
        pairs = explorer.recall_nprobe_pairs(
            small_dataset, [8, 16], RecallGoal(10, 0.5), opq_options=(False,)
        )
        assert len(pairs) >= 1
        for cand, nprobe in pairs:
            assert 1 <= nprobe <= cand.profile.nlist
