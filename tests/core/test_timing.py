"""Tests for the per-stage cycle models."""

import pytest

from repro.core.config import AcceleratorConfig, AlgorithmParams
from repro.core.timing import (
    PIPELINE_STAGES,
    bottleneck_stage,
    min_interval_cycles,
    query_latency_cycles,
    stage_cycles,
)


def cfg(**kw):
    p_kw = {k: kw.pop(k) for k in ("nprobe", "k", "nlist", "use_opq") if k in kw}
    params = dict(d=128, nlist=1024, nprobe=16, k=10, m=16, ksub=256)
    params.update(p_kw)
    defaults = dict(params=AlgorithmParams(**params), n_ivf_pes=8, n_lut_pes=4, n_pq_pes=16)
    defaults.update(kw)
    return AcceleratorConfig(**defaults)


class TestStageCycles:
    def test_all_stages_present(self):
        sc = stage_cycles(cfg(), codes_per_query=10_000)
        assert set(sc) == set(PIPELINE_STAGES)

    def test_opq_bypass_zero(self):
        sc = stage_cycles(cfg(), 1000)
        assert sc["OPQ"].occupancy == 0.0
        sc2 = stage_cycles(cfg(use_opq=True), 1000)
        assert sc2["OPQ"].occupancy > 0.0

    def test_ivfdist_scales_with_pes(self):
        lo = stage_cycles(cfg(n_ivf_pes=2), 1000)["IVFDist"].occupancy
        hi = stage_cycles(cfg(n_ivf_pes=16), 1000)["IVFDist"].occupancy
        assert lo == pytest.approx(8 * hi, rel=0.02)

    def test_hbm_cache_doubles_ivf_occupancy(self):
        on = stage_cycles(cfg(ivf_cache_on_chip=True), 1000)["IVFDist"].occupancy
        off = stage_cycles(cfg(ivf_cache_on_chip=False), 1000)["IVFDist"].occupancy
        assert off == pytest.approx(2 * on)

    def test_buildlut_scales_with_nprobe(self):
        lo = stage_cycles(cfg(nprobe=4), 1000)["BuildLUT"].occupancy
        hi = stage_cycles(cfg(nprobe=64), 1000)["BuildLUT"].occupancy
        assert hi > lo

    def test_pqdist_proportional_to_codes(self):
        a = stage_cycles(cfg(), 16_000)["PQDist"].occupancy
        b = stage_cycles(cfg(), 32_000)["PQDist"].occupancy
        assert b == pytest.approx(2 * a, rel=0.05)

    def test_exact_pe_load_override(self):
        sc = stage_cycles(cfg(), 16_000, pq_codes_per_pe=5_000)
        assert sc["PQDist"].occupancy == pytest.approx(5_000)

    def test_selection_latency_is_drain_only(self):
        sc = stage_cycles(cfg(), 16_000)
        assert sc["SelK"].latency < sc["SelK"].occupancy
        assert sc["SelCells"].latency < sc["SelCells"].occupancy


class TestAggregates:
    def test_bottleneck_is_max_occupancy(self):
        sc = stage_cycles(cfg(), 200_000)
        b = bottleneck_stage(sc)
        assert sc[b].occupancy == max(c.occupancy for c in sc.values())

    def test_min_interval(self):
        sc = stage_cycles(cfg(), 200_000)
        assert min_interval_cycles(sc) == max(c.occupancy for c in sc.values())

    def test_latency_is_sum(self):
        sc = stage_cycles(cfg(), 1000)
        assert query_latency_cycles(sc) == pytest.approx(
            sum(c.latency for c in sc.values())
        )

    def test_large_scan_bottleneck_is_pqdist_or_selk(self):
        """At paper-scale scans PQDist/SelK dominate (Fig. 3, high nprobe)."""
        sc = stage_cycles(cfg(), 2_000_000)
        assert bottleneck_stage(sc) in ("PQDist", "SelK")

    def test_small_scan_large_nlist_bottleneck_ivf(self):
        """Low nprobe + huge nlist pushes the bottleneck to IVFDist (Fig. 3)."""
        c = cfg(nlist=65536, nprobe=1, n_ivf_pes=1, n_lut_pes=8, n_pq_pes=32)
        sc = stage_cycles(c, 1000)
        assert bottleneck_stage(sc) in ("IVFDist", "SelCells")
