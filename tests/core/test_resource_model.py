"""Tests for the Eq. 2 resource model."""

import pytest

from repro.core.config import AcceleratorConfig, AlgorithmParams
from repro.core.resource_model import (
    NETWORK_STACK_COST,
    is_valid,
    stage_resources,
    total_resources,
    utilization_report,
)
from repro.hw.device import SMALL_DEVICE, U55C


def cfg(**kw):
    p_kw = {k: kw.pop(k) for k in ("nprobe", "k", "nlist", "use_opq") if k in kw}
    params = dict(d=128, nlist=1024, nprobe=16, k=10, m=16, ksub=256)
    params.update(p_kw)
    defaults = dict(params=AlgorithmParams(**params), n_ivf_pes=8, n_lut_pes=4, n_pq_pes=16)
    defaults.update(kw)
    return AcceleratorConfig(**defaults)


class TestStageResources:
    def test_covers_six_stages(self):
        assert set(stage_resources(cfg())) == {
            "OPQ", "IVFDist", "SelCells", "BuildLUT", "PQDist", "SelK",
        }

    def test_opq_zero_when_disabled(self):
        assert stage_resources(cfg())["OPQ"].lut == 0.0
        assert stage_resources(cfg(use_opq=True))["OPQ"].lut > 0.0

    def test_pe_count_scales_stage(self):
        r8 = stage_resources(cfg(n_pq_pes=8))["PQDist"].lut
        r16 = stage_resources(cfg(n_pq_pes=16))["PQDist"].lut
        assert r16 > 1.8 * r8

    def test_selk_scales_with_k(self):
        r10 = stage_resources(cfg(k=10))["SelK"].lut
        r100 = stage_resources(cfg(k=100))["SelK"].lut
        assert r100 > 5 * r10  # queue resources linear in K

    def test_caching_consumes_uram(self):
        on = stage_resources(cfg(ivf_cache_on_chip=True))["IVFDist"].uram
        off = stage_resources(cfg(ivf_cache_on_chip=False))["IVFDist"].uram
        assert on > off


class TestTotals:
    def test_total_is_sum_of_stages(self):
        c = cfg()
        total = total_resources(c)
        assert total.lut == pytest.approx(
            sum(r.lut for r in stage_resources(c).values())
        )

    def test_network_adds_stack(self):
        base = total_resources(cfg())
        net = total_resources(cfg(with_network=True))
        assert net.lut - base.lut == pytest.approx(NETWORK_STACK_COST.lut)

    def test_validity_monotone_in_pes(self):
        """If a big design fits, the same design with fewer PEs fits."""
        big = cfg(n_pq_pes=32)
        small = cfg(n_pq_pes=4)
        if is_valid(big, U55C):
            assert is_valid(small, U55C)

    def test_small_device_rejects_big_design(self):
        monster = cfg(n_ivf_pes=16, n_lut_pes=16, n_pq_pes=48, k=100)
        assert not is_valid(monster, SMALL_DEVICE)
        assert is_valid(monster, U55C) or True  # may or may not fit U55C

    def test_utilization_report_structure(self):
        rep = utilization_report(cfg(), U55C)
        assert "PQDist" in rep and "total" in rep
        assert 0 <= rep["PQDist"]["lut_pct"] <= 100
        assert "lut" in rep["total"]


class TestTable4Shapes:
    """End-to-end calibration: FANNS K=10 design from Table 4 should land
    near its reported LUT shares."""

    def test_k10_fanns_row(self):
        c = AcceleratorConfig(
            params=AlgorithmParams(
                d=128, nlist=8192, nprobe=17, k=10, use_opq=True, m=16, ksub=256
            ),
            n_ivf_pes=11,
            n_lut_pes=9,
            n_pq_pes=36,
            selk_arch="HSMPQG",
        )
        rep = utilization_report(c, U55C)
        assert 5 < rep["IVFDist"]["lut_pct"] < 11  # paper: 7.6
        assert 3 < rep["BuildLUT"]["lut_pct"] < 8  # paper: 5.2
        assert 11 < rep["PQDist"]["lut_pct"] < 20  # paper: 15.2
        assert 9 < rep["SelK"]["lut_pct"] < 17  # paper: 12.7

    def test_k10_fanns_design_fits_u55c(self):
        c = AcceleratorConfig(
            params=AlgorithmParams(
                d=128, nlist=8192, nprobe=17, k=10, use_opq=True, m=16, ksub=256
            ),
            n_ivf_pes=11,
            n_lut_pes=9,
            n_pq_pes=36,
            selk_arch="HSMPQG",
        )
        assert is_valid(c, U55C, max_utilization=0.6)
