"""Tests for design-space enumeration."""

import pytest

from repro.core.config import AlgorithmParams
from repro.core.design_space import count_design_points, default_pe_grid, enumerate_designs
from repro.core.resource_model import total_resources
from repro.hw.device import SMALL_DEVICE, U55C

PARAMS = AlgorithmParams(d=128, nlist=256, nprobe=8, k=10, m=16, ksub=256)
TINY_GRID = (1, 2, 4, 8)


class TestGrid:
    def test_default_grid_dense_small(self):
        g = default_pe_grid(64)
        assert set(range(1, 17)).issubset(g)
        assert max(g) <= 64

    def test_grid_caps(self):
        assert max(default_pe_grid(8)) == 8

    def test_invalid(self):
        with pytest.raises(ValueError, match="max_pes"):
            default_pe_grid(0)


class TestEnumeration:
    def test_all_designs_valid(self):
        budget = U55C.budget()
        for cfg in enumerate_designs(PARAMS, U55C, pe_grid=TINY_GRID):
            assert total_resources(cfg).fits_within(budget)

    def test_covers_both_selk_archs(self):
        archs = {
            cfg.selk_arch
            for cfg in enumerate_designs(PARAMS, U55C, pe_grid=(4, 16, 32))
        }
        assert archs == {"HPQ", "HSMPQG"}

    def test_covers_caching_choices(self):
        combos = {
            (cfg.ivf_cache_on_chip, cfg.lut_cache_on_chip)
            for cfg in enumerate_designs(PARAMS, U55C, pe_grid=TINY_GRID)
        }
        assert len(combos) == 4

    def test_hsmpqg_skipped_when_k_too_large(self):
        params = AlgorithmParams(d=128, nlist=256, nprobe=8, k=100, m=16, ksub=256)
        archs = {
            cfg.selk_arch for cfg in enumerate_designs(params, U55C, pe_grid=(2, 4))
        }
        assert archs == {"HPQ"}

    def test_pe_count_capped_by_nlist(self):
        params = AlgorithmParams(d=128, nlist=4, nprobe=2, k=5, m=16, ksub=256)
        for cfg in enumerate_designs(params, U55C, pe_grid=(1, 2, 8, 16)):
            assert cfg.n_ivf_pes <= 4
            assert cfg.n_lut_pes <= 4

    def test_smaller_device_fewer_designs(self):
        big = count_design_points(PARAMS, U55C, pe_grid=(4, 16, 32, 48))
        small = count_design_points(PARAMS, SMALL_DEVICE, pe_grid=(4, 16, 32, 48))
        assert small < big

    def test_network_stack_reduces_designs(self):
        """Instantiating TCP/IP costs resources → fewer valid designs (§7.3.2)."""
        plain = count_design_points(PARAMS, SMALL_DEVICE, pe_grid=(2, 4, 8, 16))
        net = count_design_points(
            PARAMS, SMALL_DEVICE, pe_grid=(2, 4, 8, 16), with_network=True
        )
        assert net < plain

    def test_utilization_cap_reduces_designs(self):
        loose = count_design_points(PARAMS, U55C, pe_grid=(8, 24, 48), max_utilization=0.9)
        tight = count_design_points(PARAMS, U55C, pe_grid=(8, 24, 48), max_utilization=0.3)
        assert tight < loose
