"""Tests for the loadable topology spec (the autotuner's deployable output)."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.ann.ivf import IVFPQIndex
from repro.core.codesign import (
    HostConstraints,
    SearchSpace,
    TenantSpec,
    TrafficProfile,
    search,
    synthetic_index_options,
)
from repro.data.synthetic import make_clustered
from repro.serve.qos import AdaptiveBatchWindow, WFQDiscipline
from repro.serve.scheduler import ServingEngine
from repro.serve.topology_spec import SPEC_VERSION, TenantLane, TopologySpec


def make_spec(**overrides) -> TopologySpec:
    defaults = dict(
        d=32, nlist=64, nprobe=4, k=10, use_opq=False, m=8, ksub=32,
        replicas=2, shards=2, max_batch=8, window_us=1000.0,
        slo_p99_us=20_000.0,
        tenants=(TenantLane("online", 2.0, priority=True), TenantLane("batch")),
        model={"modeled_qps": 1234.5},
    )
    defaults.update(overrides)
    return TopologySpec(**defaults)


def search_winner():
    """A real winner out of a quick co-design search."""
    traffic = TrafficProfile(
        rate_qps=2_000.0, slo_p99_us=20_000.0, recall_floor=0.5,
        n_vectors=20_000, d=32, m=8, ksub=32,
        tenants=(TenantSpec("online", 0.7, priority=True), TenantSpec("batch", 0.3)),
    )
    options = synthetic_index_options(
        (64,), traffic.n_vectors, traffic.recall_floor, seed=3
    )
    report = search(
        traffic,
        HostConstraints(max_workers=4, pe_grid=(1, 2, 4, 8, 16)),
        SearchSpace.quick(),
        options,
    )
    assert report.winner is not None
    return report.winner, traffic


def test_round_trips_through_dict_and_file(tmp_path):
    spec = make_spec()
    assert TopologySpec.from_dict(spec.to_dict()) == spec
    path = spec.save(tmp_path / "spec.json")
    assert TopologySpec.load(path) == spec
    assert spec.workers == 4


def test_rejects_other_versions_and_bad_fields():
    with pytest.raises(ValueError, match="version"):
        make_spec(version=SPEC_VERSION + 1)
    data = make_spec().to_dict()
    data["version"] = 99
    with pytest.raises(ValueError, match="version 99"):
        TopologySpec.from_dict(data)
    with pytest.raises(ValueError, match="missing 'engine'"):
        TopologySpec.from_dict({k: v for k, v in make_spec().to_dict().items() if k != "engine"})
    with pytest.raises(ValueError, match="nprobe"):
        make_spec(nprobe=65)
    with pytest.raises(ValueError, match="policy"):
        make_spec(policy="random")
    with pytest.raises(ValueError, match="duplicate"):
        make_spec(tenants=(TenantLane("a"), TenantLane("a")))


def test_winner_round_trips_and_resolves_qos_weights(tmp_path):
    winner, traffic = search_winner()
    spec = TopologySpec.from_design(winner, traffic)
    assert spec.nlist == winner.design.nlist
    assert spec.nprobe == winner.design.nprobe
    assert spec.replicas == winner.design.replicas
    assert spec.shards == winner.design.shards
    assert spec.max_batch == winner.design.max_batch
    assert spec.window_us == winner.design.window_us
    assert spec.k == traffic.max_k
    assert spec.model["modeled_qps"] == pytest.approx(winner.modeled_qps)
    # Scheme resolved to concrete lane weights at spec time.
    by_name = {t.name: t for t in spec.tenants}
    if winner.design.qos_scheme == "uniform":
        assert {t.weight for t in spec.tenants} == {1.0}
    else:
        assert by_name["online"].weight == pytest.approx(0.7)
    assert by_name["online"].priority
    assert TopologySpec.load(spec.save(tmp_path / "w.json")) == spec


def test_from_design_rejects_infeasible():
    winner, traffic = search_winner()
    dead = dataclasses.replace(
        winner, feasible=False, reasons=("capacity: too slow",)
    )
    with pytest.raises(ValueError, match="infeasible"):
        TopologySpec.from_design(dead, traffic)


def test_build_materializes_bit_identical_topology():
    vecs = make_clustered(4_200, 32, n_clusters=64, seed=9)
    base, queries = vecs[:4_000], vecs[4_000:4_064]
    index = IVFPQIndex(d=32, nlist=64, m=8, ksub=32, seed=0)
    index.train(base)
    index.add(base)
    spec = make_spec()
    topo = spec.build(index)
    ref_ids, ref_dists = index.search(queries, spec.k, spec.nprobe)
    with ServingEngine(
        topo, max_batch=spec.max_batch, max_wait_us=1000.0,
        dispatchers=spec.replicas,
    ) as eng:
        got = [eng.submit(q, spec.k, spec.nprobe).result() for q in queries]
    assert np.array_equal(np.stack([g.ids for g in got]), ref_ids)
    assert np.array_equal(np.stack([g.dists for g in got]), ref_dists)


def test_build_rejects_mismatched_index():
    index = IVFPQIndex(d=32, nlist=32, m=8, ksub=32, seed=0)
    base = make_clustered(2_000, 32, n_clusters=32, seed=1)
    index.train(base)
    index.add(base)
    with pytest.raises(ValueError, match="nlist"):
        make_spec(nlist=64).build(index)


def test_make_discipline_and_window_match_spec():
    spec = make_spec()
    discipline = spec.make_discipline(depth=128)
    assert isinstance(discipline, WFQDiscipline)
    assert discipline.policies["online"].weight == 2.0
    assert discipline.policies["online"].priority
    assert not discipline.policies["batch"].priority
    assert discipline.maxsize == 128

    window = spec.make_window()
    assert isinstance(window, AdaptiveBatchWindow)
    assert window.current_us() <= spec.window_us
