"""Tests for the binary wire protocol (repro/serve/protocol.py)."""

import asyncio

import numpy as np
import pytest

from repro.net.wire import (
    ERR_QUOTA,
    FRAME_BATCH_RESULT,
    FRAME_ERROR,
    FRAME_HEADER,
    FRAME_PRESELECT,
    FRAME_RESULT,
    FRAME_SEARCH,
    FRAME_STATS,
    FRAME_STATS_REQUEST,
    MAX_FRAME_BYTES,
    WIRE_MAGIC,
    WIRE_VERSION,
    batch_result_frame_bytes,
    error_frame_bytes,
    preselect_frame_bytes,
    result_frame_bytes,
    search_frame_bytes,
    stats_frame_bytes,
    stats_request_frame_bytes,
)
from repro.obs.trace import SpanContext
from repro.serve.protocol import (
    ProtocolError,
    decode_batch_result,
    decode_error,
    decode_preselect,
    decode_result,
    decode_search,
    decode_stats,
    decode_stats_request,
    encode_batch_result,
    encode_error,
    encode_preselect,
    encode_result,
    encode_search,
    encode_stats,
    encode_stats_request,
    read_frame,
)


def _payload(frame: bytes) -> bytes:
    return frame[FRAME_HEADER.size :]


class TestSearchRoundTrip:
    def test_all_fields_survive(self):
        q = np.arange(24, dtype=np.float32) * 0.125 - 1.0
        frame = encode_search(
            7, q, 10, 16, tenant="gold", priority=True
        )
        req = decode_search(_payload(frame))
        assert req.request_id == 7
        assert req.k == 10 and req.nprobe == 16
        assert req.tenant == "gold" and req.priority
        np.testing.assert_array_equal(req.query, q)

    def test_nprobe_none_and_defaults(self):
        frame = encode_search(0, np.zeros(4, dtype=np.float32), 1)
        req = decode_search(_payload(frame))
        assert req.nprobe is None
        assert req.tenant == "default" and not req.priority

    def test_query_bits_exact(self):
        """Denormals, infs, and negative zero cross the wire untouched."""
        q = np.array([1e-42, -0.0, np.inf, -np.inf, np.nan], dtype=np.float32)
        got = decode_search(_payload(encode_search(1, q, 5))).query
        assert got.tobytes() == q.tobytes()

    def test_wire_size_matches_model(self):
        """The byte count the net/ timing models charge is the real one."""
        q = np.zeros(32, dtype=np.float32)
        frame = encode_search(1, q, 10, 8, tenant="abc")
        assert len(frame) == search_frame_bytes(32, tenant_bytes=3)

    def test_validation(self):
        q = np.zeros(4, dtype=np.float32)
        with pytest.raises(ValueError, match="tenant"):
            encode_search(1, q, 5, tenant="x" * 256)
        with pytest.raises(ValueError, match="k must"):
            encode_search(1, q, 0)

    def test_truncated_and_length_mismatch(self):
        frame = encode_search(1, np.zeros(8, dtype=np.float32), 5)
        with pytest.raises(ProtocolError, match="truncated"):
            decode_search(_payload(frame)[:4])
        with pytest.raises(ProtocolError, match="implies"):
            decode_search(_payload(frame)[:-2])


class TestResultRoundTrip:
    def test_all_fields_survive(self):
        ids = np.array([5, -1, 123456789012], dtype=np.int64)
        dists = np.array([0.25, np.inf, -0.0], dtype=np.float32)
        frame = encode_result(
            42, ids, dists, queue_us=12.5, exec_us=100.0,
            batch_size=8, cache_hit=True, coverage=0.75,
        )
        res = decode_result(_payload(frame))
        assert res.request_id == 42
        assert res.ids.tobytes() == ids.tobytes()
        assert res.dists.tobytes() == dists.tobytes()
        assert res.queue_us == pytest.approx(12.5)
        assert res.exec_us == pytest.approx(100.0)
        assert res.batch_size == 8
        assert res.cache_hit and res.coverage == pytest.approx(0.75)

    def test_full_coverage_not_partial(self):
        frame = encode_result(
            1, np.zeros(2, dtype=np.int64), np.zeros(2, dtype=np.float32)
        )
        res = decode_result(_payload(frame))
        assert not res.cache_hit and res.coverage == 1.0

    def test_wire_size_matches_model(self):
        frame = encode_result(
            1, np.zeros(10, dtype=np.int64), np.zeros(10, dtype=np.float32)
        )
        assert len(frame) == result_frame_bytes(10)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shapes"):
            encode_result(
                1, np.zeros(3, dtype=np.int64), np.zeros(2, dtype=np.float32)
            )

    def test_length_mismatch(self):
        frame = encode_result(
            1, np.zeros(4, dtype=np.int64), np.zeros(4, dtype=np.float32)
        )
        with pytest.raises(ProtocolError, match="implies"):
            decode_result(_payload(frame)[:-1])


class TestErrorRoundTrip:
    def test_all_fields_survive(self):
        frame = encode_error(
            9, ERR_QUOTA, retry_after_s=1.5, message="quota exhausted"
        )
        err = decode_error(_payload(frame))
        assert err.request_id == 9 and err.code == ERR_QUOTA
        assert err.retry_after_s == pytest.approx(1.5)
        assert err.message == "quota exhausted"

    def test_wire_size_matches_model(self):
        frame = encode_error(1, ERR_QUOTA, message="abc")
        assert len(frame) == error_frame_bytes(3)

    def test_truncated(self):
        frame = encode_error(1, ERR_QUOTA, message="hello")
        with pytest.raises(ProtocolError, match="implies"):
            decode_error(_payload(frame)[:-1])


class TestPreselectRoundTrip:
    def test_all_fields_survive(self):
        qt = np.arange(2 * 8, dtype=np.float32).reshape(2, 8) * 0.5 - 3.0
        probed = np.array([[3, 0, -1], [7, -1, -1]], dtype=np.int64)
        frame = encode_preselect(11, qt, probed, 5)
        req = decode_preselect(_payload(frame))
        assert req.request_id == 11 and req.k == 5
        assert req.queries_t.tobytes() == qt.tobytes()
        np.testing.assert_array_equal(req.probed, probed)
        assert req.probed.dtype == np.int32

    def test_frame_type_and_wire_size_match_model(self):
        """The byte count the net/ timing models charge is the real one."""
        qt = np.zeros((16, 48), dtype=np.float32)
        probed = np.zeros((16, 8), dtype=np.int64)
        frame = encode_preselect(1, qt, probed, 10)
        header = FRAME_HEADER.unpack(frame[: FRAME_HEADER.size])
        assert header[2] == FRAME_PRESELECT
        assert len(frame) == preselect_frame_bytes(16, 8, 48)

    def test_validation(self):
        qt = np.zeros((2, 4), dtype=np.float32)
        probed = np.zeros((2, 3), dtype=np.int64)
        with pytest.raises(ValueError, match="k must"):
            encode_preselect(1, qt, probed, 0)
        with pytest.raises(ValueError, match="rows"):
            encode_preselect(1, qt, probed[:1], 5)

    def test_length_mismatch(self):
        frame = encode_preselect(
            1, np.zeros((2, 4), dtype=np.float32),
            np.zeros((2, 3), dtype=np.int64), 5,
        )
        with pytest.raises(ProtocolError, match="truncated|implies"):
            decode_preselect(_payload(frame)[:-2])


class TestBatchResultRoundTrip:
    def test_all_fields_survive(self):
        ids = np.array([[5, -1], [123456789012, 8]], dtype=np.int64)
        dists = np.array([[0.25, np.inf], [-0.0, 1.5]], dtype=np.float32)
        frame = encode_batch_result(
            21, ids, dists, exec_us=340.0, codes_scanned=9876
        )
        res = decode_batch_result(_payload(frame))
        assert res.request_id == 21
        assert res.ids.tobytes() == ids.tobytes()
        assert res.dists.tobytes() == dists.tobytes()
        assert res.exec_us == pytest.approx(340.0)
        assert res.codes_scanned == 9876

    def test_frame_type_and_wire_size_match_model(self):
        ids = np.zeros((16, 10), dtype=np.int64)
        dists = np.zeros((16, 10), dtype=np.float32)
        frame = encode_batch_result(1, ids, dists)
        header = FRAME_HEADER.unpack(frame[: FRAME_HEADER.size])
        assert header[2] == FRAME_BATCH_RESULT
        assert len(frame) == batch_result_frame_bytes(16, 10)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            encode_batch_result(
                1, np.zeros((2, 3), dtype=np.int64),
                np.zeros((2, 2), dtype=np.float32),
            )

    def test_length_mismatch(self):
        frame = encode_batch_result(
            1, np.zeros((2, 4), dtype=np.int64),
            np.zeros((2, 4), dtype=np.float32),
        )
        with pytest.raises(ProtocolError, match="truncated|implies"):
            decode_batch_result(_payload(frame)[:-1])


class TestTracedFrames:
    """The flag-gated trace-context tail on search/preselect frames."""

    CTX = SpanContext(trace_id=0x1234_5678_9ABC_DEF0, span_id=(1 << 63) | 7)

    def test_search_trace_context_survives(self):
        q = np.arange(8, dtype=np.float32)
        frame = encode_search(3, q, 5, 4, tenant="t", trace=self.CTX)
        req = decode_search(_payload(frame))
        assert req.trace == self.CTX and req.trace.sampled
        np.testing.assert_array_equal(req.query, q)
        assert req.tenant == "t"

    def test_preselect_trace_context_survives(self):
        qt = np.zeros((2, 4), dtype=np.float32)
        probed = np.zeros((2, 3), dtype=np.int64)
        frame = encode_preselect(4, qt, probed, 5, trace=self.CTX)
        req = decode_preselect(_payload(frame))
        assert req.trace == self.CTX

    def test_untraced_frames_byte_identical(self):
        """An unsampled or absent context adds zero bytes to the wire."""
        q = np.zeros(8, dtype=np.float32)
        plain = encode_search(1, q, 5)
        unsampled = SpanContext(trace_id=9, span_id=9, sampled=False)
        assert encode_search(1, q, 5, trace=unsampled) == plain
        assert decode_search(_payload(plain)).trace is None

    def test_traced_wire_size_matches_model(self):
        q = np.zeros(16, dtype=np.float32)
        frame = encode_search(1, q, 5, tenant="ab", trace=self.CTX)
        assert len(frame) == search_frame_bytes(16, tenant_bytes=2, traced=True)
        qt = np.zeros((4, 16), dtype=np.float32)
        probed = np.zeros((4, 6), dtype=np.int64)
        pframe = encode_preselect(1, qt, probed, 5, trace=self.CTX)
        assert len(pframe) == preselect_frame_bytes(4, 6, 16, traced=True)

    def test_traced_truncation_rejected(self):
        frame = encode_search(1, np.zeros(4, dtype=np.float32), 5, trace=self.CTX)
        with pytest.raises(ProtocolError, match="truncated|implies"):
            decode_search(_payload(frame)[:-3])


class TestBatchResultSpans:
    """The piggybacked worker-span blob on batch-result frames."""

    SPANS = (
        {"name": "worker_scan", "trace": 1, "span": 2, "parent": None,
         "pid": 99, "tid": 1, "ts": 1000, "dur": 50},
        {"name": "ivf_pq_scan", "trace": 1, "span": 3, "parent": 2,
         "pid": 99, "tid": 1, "ts": 1010, "dur": 20, "args": {"codes": 7}},
    )

    def test_spans_survive(self):
        ids = np.zeros((2, 4), dtype=np.int64)
        dists = np.zeros((2, 4), dtype=np.float32)
        frame = encode_batch_result(1, ids, dists, spans=self.SPANS)
        res = decode_batch_result(_payload(frame))
        assert list(res.spans) == list(self.SPANS)
        assert res.ids.tobytes() == ids.tobytes()

    def test_no_spans_is_byte_identical_to_pre_trace_wire(self):
        ids = np.zeros((2, 4), dtype=np.int64)
        dists = np.zeros((2, 4), dtype=np.float32)
        plain = encode_batch_result(1, ids, dists)
        assert encode_batch_result(1, ids, dists, spans=()) == plain
        assert decode_batch_result(_payload(plain)).spans == ()

    def test_wire_size_matches_model(self):
        import json as _json

        ids = np.zeros((3, 5), dtype=np.int64)
        dists = np.zeros((3, 5), dtype=np.float32)
        frame = encode_batch_result(1, ids, dists, spans=self.SPANS)
        blob = len(_json.dumps(list(self.SPANS), separators=(",", ":")).encode())
        assert len(frame) == batch_result_frame_bytes(3, 5, span_bytes=blob)

    def test_corrupt_span_blob_rejected(self):
        ids = np.zeros((1, 2), dtype=np.int64)
        dists = np.zeros((1, 2), dtype=np.float32)
        frame = bytearray(encode_batch_result(1, ids, dists, spans=self.SPANS))
        frame[-5] ^= 0xFF  # flip a byte inside the JSON blob
        with pytest.raises(ProtocolError):
            decode_batch_result(_payload(bytes(frame)))


class TestStatsFrames:
    """The stats request/response pair (metrics scrape + span drain)."""

    def test_request_round_trip(self):
        frame = encode_stats_request(17, drain_spans=True)
        header = FRAME_HEADER.unpack(frame[: FRAME_HEADER.size])
        assert header[2] == FRAME_STATS_REQUEST
        req = decode_stats_request(_payload(frame))
        assert req.request_id == 17 and req.drain_spans
        assert not decode_stats_request(
            _payload(encode_stats_request(17))
        ).drain_spans

    def test_drain_events_flag_round_trip(self):
        req = decode_stats_request(
            _payload(encode_stats_request(9, drain_events=True))
        )
        assert req.request_id == 9
        assert req.drain_events and not req.drain_spans
        both = decode_stats_request(
            _payload(
                encode_stats_request(9, drain_spans=True, drain_events=True)
            )
        )
        assert both.drain_spans and both.drain_events
        assert not decode_stats_request(
            _payload(encode_stats_request(9))
        ).drain_events

    def test_response_round_trip(self):
        data = {"pid": 123, "metrics": {"counters": {"completed": 4}},
                "spans": [{"name": "worker_scan", "span": 1}]}
        frame = encode_stats(17, data)
        header = FRAME_HEADER.unpack(frame[: FRAME_HEADER.size])
        assert header[2] == FRAME_STATS
        res = decode_stats(_payload(frame))
        assert res.request_id == 17 and res.data == data

    def test_wire_sizes_match_model(self):
        import json as _json

        assert len(encode_stats_request(1)) == stats_request_frame_bytes()
        data = {"pid": 1}
        blob = len(_json.dumps(data, separators=(",", ":")).encode())
        assert len(encode_stats(1, data)) == stats_frame_bytes(blob)

    def test_non_dict_payload_rejected(self):
        frame = encode_stats(1, {"ok": True})
        payload = bytearray(_payload(frame))
        bad = payload.replace(b'{"ok":true}', b'["ok",true]')
        with pytest.raises(ProtocolError):
            decode_stats(bytes(bad))

    def test_read_frame_dispatches_stats_types(self):
        frame = encode_stats_request(5, drain_spans=True)
        ftype, payload = _read_one(frame)
        assert ftype == FRAME_STATS_REQUEST
        assert decode_stats_request(payload).drain_spans


def _read_one(data: bytes):
    """Feed bytes + EOF into a StreamReader and read one frame."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(go())


class TestReadFrame:
    def test_reads_a_valid_frame(self):
        frame = encode_search(3, np.zeros(4, dtype=np.float32), 5, 2)
        ftype, payload = _read_one(frame)
        assert ftype == FRAME_SEARCH
        assert decode_search(payload).request_id == 3

    def test_clean_eof_returns_none(self):
        assert _read_one(b"") is None

    def test_eof_mid_header(self):
        with pytest.raises(ProtocolError, match="mid-header"):
            _read_one(b"\x01\x02\x03")

    def test_eof_mid_payload(self):
        frame = encode_search(1, np.zeros(8, dtype=np.float32), 5)
        with pytest.raises(ProtocolError, match="mid-payload"):
            _read_one(frame[:-4])

    def test_bad_magic(self):
        bad = FRAME_HEADER.pack(0xDEAD, WIRE_VERSION, FRAME_RESULT, 0)
        with pytest.raises(ProtocolError, match="magic"):
            _read_one(bad)

    def test_version_mismatch(self):
        bad = FRAME_HEADER.pack(WIRE_MAGIC, WIRE_VERSION + 1, FRAME_ERROR, 0)
        with pytest.raises(ProtocolError, match="protocol v"):
            _read_one(bad)

    def test_unknown_frame_type(self):
        bad = FRAME_HEADER.pack(WIRE_MAGIC, WIRE_VERSION, 0x7F, 0)
        with pytest.raises(ProtocolError, match="unknown frame type"):
            _read_one(bad)

    def test_oversized_length_rejected_before_buffering(self):
        bad = FRAME_HEADER.pack(
            WIRE_MAGIC, WIRE_VERSION, FRAME_SEARCH, MAX_FRAME_BYTES + 1
        )
        with pytest.raises(ProtocolError, match="exceeds"):
            _read_one(bad)

    def test_back_to_back_frames(self):
        f1 = encode_search(1, np.zeros(4, dtype=np.float32), 5)
        f2 = encode_error(2, ERR_QUOTA)

        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(f1 + f2)
            reader.feed_eof()
            first = await read_frame(reader)
            second = await read_frame(reader)
            third = await read_frame(reader)
            return first, second, third

        (t1, _), (t2, p2), t3 = asyncio.run(go())
        assert t1 == FRAME_SEARCH and t2 == FRAME_ERROR and t3 is None
        assert decode_error(p2).request_id == 2


class _EchoBackend:
    """Deterministic stand-in: ids derive from the query's first value."""

    def search_batch(self, queries, k, nprobe=None):
        queries = np.atleast_2d(queries)
        base = queries[:, 0].astype(np.int64)[:, None]
        ids = base * 100 + np.arange(k, dtype=np.int64)[None, :]
        dists = np.tile(np.arange(k, dtype=np.float32), (queries.shape[0], 1))
        return ids, dists


class TestServerFrameFuzz:
    def test_corrupt_frames_cost_at_most_their_own_connection(self):
        """Seeded truncation/bit-flip fuzz against a live server: every
        corrupt frame either still parses (the flip hit a don't-care
        byte — the request is served) or drops exactly that connection
        with one protocol error counted.  The server survives all of it
        and keeps serving well-formed clients."""
        import random

        from repro.serve.aio import (
            AsyncClient,
            AsyncServingEngine,
            VectorSearchServer,
        )
        from repro.serve.scheduler import ServingEngine

        rng = random.Random(0xC0FFEE)
        base = encode_search(7, np.ones(8, dtype=np.float32), 5, 2)
        variants = []
        for _ in range(16):
            b = bytearray(base)
            if rng.random() < 0.4:
                del b[rng.randrange(1, len(b)) :]  # truncate
            else:
                b[rng.randrange(len(b))] ^= 1 << rng.randrange(8)  # flip
            variants.append(bytes(b))

        outcomes = {"served": 0, "dropped": 0}

        async def go():
            engine = ServingEngine(_EchoBackend(), max_batch=4, policy="shed")
            async with AsyncServingEngine(engine) as aeng:
                async with VectorSearchServer(aeng) as server:
                    host, port = server.address
                    for corrupt in variants:
                        reader, writer = await asyncio.open_connection(
                            host, port
                        )
                        writer.write(corrupt)
                        if len(corrupt) < len(base):
                            # Truncated frame: the server is waiting for
                            # the rest; EOF it to force the judgement.
                            writer.write_eof()
                        await writer.drain()
                        reply = await read_frame(reader)
                        if reply is None:
                            outcomes["dropped"] += 1
                        else:
                            outcomes["served"] += 1
                            assert reply[0] in (FRAME_RESULT, FRAME_ERROR)
                        writer.close()
                        await writer.wait_closed()
                    # After all that abuse: still serving, bit-exact.
                    async with await AsyncClient.connect(host, port) as client:
                        res = await client.search(
                            np.ones(8, dtype=np.float32), 5
                        )
                        np.testing.assert_array_equal(
                            res.ids, 100 + np.arange(5, dtype=np.int64)
                        )
                    counters = dict(server.metrics.snapshot().counters)
            return counters

        counters = asyncio.run(go())
        assert outcomes["served"] + outcomes["dropped"] == len(variants)
        assert outcomes["dropped"] > 0  # the corpus really corrupted frames
        # One protocol error per dropped connection, none extra.
        assert counters.get("protocol_errors", 0) == outcomes["dropped"]
