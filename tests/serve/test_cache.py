"""Tests for the LRU query-result cache."""

import numpy as np
import pytest

from repro.serve.cache import QueryResultCache, query_key


class TestQueryKey:
    def test_layout_invariant(self):
        q = np.arange(8, dtype=np.float64)[::2]  # non-contiguous, wrong dtype
        qc = np.ascontiguousarray(q, dtype=np.float32)
        assert query_key(q, 10, 8) == query_key(qc, 10, 8)

    def test_params_distinguish(self):
        q = np.zeros(4, dtype=np.float32)
        assert query_key(q, 10, 8) != query_key(q, 11, 8)
        assert query_key(q, 10, 8) != query_key(q, 10, 16)
        assert query_key(q, 10, None) != query_key(q, 10, 8)

    def test_query_bits_distinguish(self):
        a = np.zeros(4, dtype=np.float32)
        b = a.copy()
        b[0] = np.float32(1e-30)
        assert query_key(a, 10, 8) != query_key(b, 10, 8)


class TestQueryResultCache:
    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            QueryResultCache(0)

    def test_miss_then_hit(self):
        c = QueryResultCache(4)
        k = b"key1"
        assert c.get(k) is None
        c.put(k, np.arange(3, dtype=np.int64), np.zeros(3, dtype=np.float32))
        hit = c.get(k)
        assert hit is not None
        np.testing.assert_array_equal(hit[0], [0, 1, 2])
        assert c.hits == 1 and c.misses == 1
        assert c.hit_rate == 0.5

    def test_lru_eviction_order(self):
        c = QueryResultCache(2)
        ids, d = np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.float32)
        c.put(b"a", ids, d)
        c.put(b"b", ids, d)
        assert c.get(b"a") is not None  # refresh a -> b is now LRU
        c.put(b"c", ids, d)
        assert c.get(b"b") is None  # evicted
        assert c.get(b"a") is not None
        assert c.get(b"c") is not None
        assert len(c) == 2

    def test_put_copies(self):
        c = QueryResultCache(2)
        ids = np.arange(3, dtype=np.int64)
        c.put(b"k", ids, np.zeros(3, dtype=np.float32))
        ids[0] = 999  # mutating the caller's array must not corrupt the cache
        np.testing.assert_array_equal(c.get(b"k")[0], [0, 1, 2])

    def test_get_returns_copies(self):
        c = QueryResultCache(2)
        c.put(b"k", np.arange(3, dtype=np.int64), np.zeros(3, dtype=np.float32))
        hit = c.get(b"k")
        hit[0][0] = 999  # a client mutating its result must not corrupt the cache
        np.testing.assert_array_equal(c.get(b"k")[0], [0, 1, 2])

    def test_clear(self):
        c = QueryResultCache(4)
        c.put(b"k", np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.float32))
        c.clear()
        assert len(c) == 0
        assert c.get(b"k") is None

    def test_stale_epoch_write_dropped(self):
        """A result computed before a clear() must not repopulate the cache."""
        c = QueryResultCache(4)
        ids, d = np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.float32)
        epoch = c.epoch
        c.clear()  # invalidation lands while the write is in flight
        c.put(b"k", ids, d, epoch=epoch)
        assert c.get(b"k") is None  # stale write was dropped
        c.put(b"k", ids, d, epoch=c.epoch)  # current epoch still writes
        assert c.get(b"k") is not None
