"""End-to-end observability tests.

Tracing must be a pure observer: results stay bit-identical to direct
search at every sampling rate, through every serving tier — the
in-process engine, the replicated/sharded router topology, and the
multi-process data plane.  The multi-process test additionally asserts
the acceptance property of the tracing PR: one merged trace whose span
tree crosses the process boundary (router ``shard_rpc`` spans parent
worker-side ``worker_scan`` spans carrying the worker's pid and the same
trace id), validated by ``tools/check_trace.py``.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.ann.io import load_index_dir, save_index_dir
from repro.ann.ivf import IVFPQIndex
from repro.data.synthetic import make_clustered
from repro.obs.export import write_chrome_trace
from repro.obs.trace import Tracer
from repro.serve.routing import build_topology
from repro.serve.scheduler import ServingEngine
from repro.serve.workers import WorkerPool

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_trace  # noqa: E402  (needs the tools/ path above)

K = 5
NPROBE = 6
D = 16


@pytest.fixture(scope="module")
def corpus():
    """A small trained index plus a query block."""
    vecs = make_clustered(2048, D, n_clusters=32, intrinsic_dim=6, seed=13)
    base, queries = vecs[:2000], vecs[2000:2048]
    index = IVFPQIndex(d=D, nlist=32, m=4, ksub=16, seed=3)
    index.train(base)
    index.add(base)
    return index, queries


def _serve_all(engine, queries, k=K, nprobe=NPROBE):
    futs = [engine.submit(q, k, nprobe) for q in queries]
    got = [f.result() for f in futs]
    return np.stack([g.ids for g in got]), np.stack([g.dists for g in got])


class TestBitIdenticalWithTracing:
    @pytest.mark.parametrize("sample", [0.0, 0.37, 1.0])
    def test_engine_path(self, corpus, sample):
        index, queries = corpus
        ref_ids, ref_dists = index.search(queries, K, NPROBE)
        tracer = Tracer(sample_rate=sample, seed=5)
        with ServingEngine(
            index, max_batch=8, max_wait_us=2000.0, tracer=tracer
        ) as eng:
            ids, dists = _serve_all(eng, queries)
        np.testing.assert_array_equal(ids, ref_ids)
        np.testing.assert_array_equal(dists, ref_dists)
        if sample == 1.0:
            assert len(tracer) > 0

    @pytest.mark.parametrize("sample", [0.37, 1.0])
    def test_router_topology_path(self, corpus, sample):
        index, queries = corpus
        ref_ids, ref_dists = index.search(queries, K, NPROBE)
        topo = build_topology(index, replicas=2, shards=2)
        tracer = Tracer(sample_rate=sample, seed=5)
        with ServingEngine(
            topo, max_batch=8, max_wait_us=2000.0, dispatchers=2, tracer=tracer
        ) as eng:
            ids, dists = _serve_all(eng, queries)
        np.testing.assert_array_equal(ids, ref_ids)
        np.testing.assert_array_equal(dists, ref_dists)
        if sample == 1.0:
            names = {s["name"] for s in tracer.spans()}
            assert {"request", "scatter", "shard_rpc", "merge",
                    "replica_dispatch"} <= names


class TestEngineSpanTaxonomy:
    def test_every_request_gets_queue_assembly_exec(self, corpus):
        index, queries = corpus
        tracer = Tracer(sample_rate=1.0, seed=0)
        with ServingEngine(
            index, max_batch=8, max_wait_us=2000.0, tracer=tracer
        ) as eng:
            _serve_all(eng, queries[:16])
        spans = tracer.spans()
        roots = [s for s in spans if s["parent"] is None]
        assert len(roots) == 16
        assert all(r["name"] == "request" for r in roots)
        by_parent: dict = {}
        for s in spans:
            if s["parent"] is not None:
                by_parent.setdefault(s["parent"], set()).add(s["name"])
        for r in roots:
            assert {"queue", "batch_assembly", "exec"} <= by_parent[r["span"]]
            assert "coverage" in (r.get("args") or {})

    def test_disabled_tracer_records_nothing(self, corpus):
        index, queries = corpus
        tracer = Tracer(sample_rate=0.0, seed=0)
        with ServingEngine(
            index, max_batch=8, max_wait_us=1000.0, tracer=tracer
        ) as eng:
            _serve_all(eng, queries[:8])
        assert len(tracer) == 0 and tracer.dropped == 0


class TestCrossProcessTrace:
    @pytest.fixture(scope="class")
    def saved_dir(self, corpus, tmp_path_factory):
        index, _ = corpus
        path = tmp_path_factory.mktemp("obs-workers") / "index"
        save_index_dir(index, path)
        return path

    def test_multiproc_bit_identical_and_tree_complete(
        self, corpus, saved_dir, tmp_path
    ):
        index, queries = corpus
        ref_ids, ref_dists = index.search(queries, K, NPROBE)
        tracer = Tracer(sample_rate=1.0, seed=0)
        with WorkerPool(saved_dir, 2, startup_timeout_s=120) as pool:
            planner = load_index_dir(saved_dir, mmap=True)
            router = pool.sharded_backend(preselect=planner)
            with ServingEngine(
                router, max_batch=8, max_wait_us=1000.0, tracer=tracer
            ) as eng:
                ids, dists = _serve_all(eng, queries)
            scrape = pool.stats(drain_spans=True)
        np.testing.assert_array_equal(ids, ref_ids)
        np.testing.assert_array_equal(dists, ref_dists)

        worker_dropped = 0
        for w in scrape["workers"]:
            tracer.ingest(w.get("spans") or ())
            worker_dropped += int(w.get("dropped_spans", 0))
        spans = tracer.spans()

        # Cross-process stitching: worker_scan spans carry a worker pid
        # and parent a router-side shard_rpc span of the same trace.
        router_pid = {s["pid"] for s in spans if s["parent"] is None}
        assert len(router_pid) == 1
        by_span = {s["span"]: s for s in spans}
        scans = [s for s in spans if s["name"] == "worker_scan"]
        assert scans, "no worker-side spans shipped back"
        worker_pids = {s["pid"] for s in scans}
        assert len(worker_pids) == 2 and not (worker_pids & router_pid)
        for scan in scans:
            parent = by_span[scan["parent"]]
            assert parent["name"] == "shard_rpc"
            assert parent["pid"] in router_pid
            assert parent["trace"] == scan["trace"]

        # The merged export passes the CI validator's multiproc gate.
        path = write_chrome_trace(
            tmp_path / "mp.trace.json", spans,
            dropped=tracer.dropped + worker_dropped,
        )
        assert check_trace.validate(path, expect_workers=2) == []

    def test_worker_metrics_scraped(self, corpus, saved_dir):
        """Satellite: WorkerPool.stats aggregates worker registries."""
        index, queries = corpus
        with WorkerPool(saved_dir, 2, startup_timeout_s=120) as pool:
            router = pool.sharded_backend()
            router.search_batch(queries[:8], K, NPROBE)
            scrape = pool.stats()
        assert len(scrape["workers"]) == 2
        pids = {w["pid"] for w in scrape["workers"]}
        assert len(pids) == 2
        assert scrape["counters"].get("completed", 0) >= 16  # 8 queries x 2 shards
        for w in scrape["workers"]:
            assert "counters" in w["metrics"]
