"""Chaos / fault-injection suite for the supervised R×S worker grid.

Real subprocesses SIGKILLed under live load.  The contract under test,
end to end:

- **zero failed requests** — degrade mode (R=1) answers an exact merge
  over the survivors; replica failover (R>=2) keeps full coverage;
- **supervised recovery** — the supervisor respawns the dead worker,
  re-runs the readiness handshake, atomically re-points the routing
  tier's backend, and the grid returns to bit-identical full-coverage
  answers within a bounded window;
- **no leaks** — every process ever spawned (including mid-run
  respawns) is reaped, every socket closed;
- **edge cases** — death during the handshake, crash loops against the
  retry budget, and ``stop()`` racing a half-finished restart.

Everything here is marked ``chaos`` (select with ``-m chaos``); the
suite stays seconds-scale so it can gate CI.
"""

import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.ann.io import load_index_dir, save_index_dir
from repro.ann.ivf import IVFPQIndex
from repro.ann.merge import merge_partial_topk
from repro.ann.partition import partition_index
from repro.data.synthetic import make_clustered
from repro.harness.serve_bench import run_chaos
from repro.obs.events import EventLog
from repro.serve.metrics import MetricsRegistry
from repro.serve.scheduler import ServingEngine
from repro.serve.workers import WorkerPool

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_timeline  # noqa: E402  (needs the tools/ path above)

pytestmark = pytest.mark.chaos

K = 5
NPROBE = 6
D = 16

#: Generous single-recovery deadline for slow CI hosts.
RECOVER_S = 60.0


@pytest.fixture(scope="module")
def corpus():
    vecs = make_clustered(2060, D, n_clusters=32, intrinsic_dim=6, seed=13)
    base, queries = vecs[:2000], vecs[2000:2048]
    index = IVFPQIndex(d=D, nlist=32, m=4, ksub=16, use_opq=True, seed=3)
    index.train(base)
    index.add(base)
    return index, queries


@pytest.fixture(scope="module")
def saved_dir(corpus, tmp_path_factory):
    index, _ = corpus
    path = tmp_path_factory.mktemp("chaos") / "index"
    save_index_dir(index, path)
    return path


def _wait_recovered(pool, n, deadline_s=RECOVER_S):
    """Block until ``n`` supervised restarts completed and all slots live."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if len(pool.restart_log) >= n and all(pool.alive):
            return
        time.sleep(0.01)
    raise AssertionError(
        f"no full recovery within {deadline_s}s: "
        f"restarts={len(pool.restart_log)}/{n} alive={pool.alive} "
        f"failures={pool.restart_failures}"
    )


class TestSupervisedRecovery:
    def test_outage_window_then_recovery_bit_identical(self, saved_dir, corpus):
        """The full cycle on an R=1 grid: kill → exact degraded merge
        over survivors → supervised recovery → bit-identical full
        coverage.  Zero failed requests throughout."""
        index, queries = corpus
        ref_ids, ref_dists = index.search(queries, K, NPROBE)
        planner = load_index_dir(saved_dir, mmap=True)
        metrics = MetricsRegistry()
        with WorkerPool(saved_dir, 3, startup_timeout_s=120) as pool:
            router = pool.sharded_backend(
                preselect=planner, on_shard_error="degrade"
            )
            with ServingEngine(router, max_batch=8, max_wait_us=0.0) as eng:
                pre = [f.result() for f in
                       [eng.submit(q, K, NPROBE) for q in queries[:16]]]
                assert all(r.coverage == 1.0 for r in pre)

                # Outage window: no supervisor yet, so the window is
                # deterministic — every answer is an exact merge over
                # the two survivors.
                pool.kill(1)
                during = [f.result() for f in
                          [eng.submit(q, K, NPROBE) for q in queries[16:32]]]
                assert all(0.0 < r.coverage < 1.0 for r in during)
                shards = partition_index(index, 3)
                parts = [
                    shards[p].search(queries[16:32], K, NPROBE) for p in (0, 2)
                ]
                exp_ids, exp_dists = merge_partial_topk(parts, K)
                np.testing.assert_array_equal(
                    np.stack([r.ids for r in during]), exp_ids
                )
                np.testing.assert_array_equal(
                    np.stack([r.dists for r in during]), exp_dists
                )

                # Recovery: supervisor respawns, re-handshakes, and
                # re-points the live router's backend.
                pool.start_supervisor(
                    poll_interval_s=0.01, metrics=metrics
                )
                _wait_recovered(pool, 1)
                post = [f.result() for f in
                        [eng.submit(q, K, NPROBE) for q in queries]]
                assert all(r.coverage == 1.0 for r in post)
                np.testing.assert_array_equal(
                    np.stack([r.ids for r in post]), ref_ids
                )
                np.testing.assert_array_equal(
                    np.stack([r.dists for r in post]), ref_dists
                )
        rec = pool.restart_log[0]
        assert (rec.shard, rec.replica) == (1, 0)
        assert rec.exit_code == -9
        assert rec.attempts == 1
        # Bounded time to full coverage, measured by the supervisor.
        assert 0 < rec.coverage_restored_us < RECOVER_S * 1e6
        snap = metrics.snapshot()
        assert snap.counters.get("worker_restarts") == 1
        assert snap.gauges.get("coverage_restored_us") == pytest.approx(
            rec.coverage_restored_us
        )

    def test_replica_failover_keeps_coverage_during_recovery(
        self, saved_dir, corpus
    ):
        """R=2: killing one replica never drops coverage — the group
        fails over while the supervisor rebuilds the column."""
        index, queries = corpus
        ref_ids, ref_dists = index.search(queries, K, NPROBE)
        with WorkerPool(saved_dir, 2, replicas=2, startup_timeout_s=120) as pool:
            router = pool.sharded_backend(on_shard_error="degrade")
            pool.start_supervisor(poll_interval_s=0.01)
            pool.kill(0, 1)
            # Every answer during *and* after the outage is full
            # coverage and bit-identical: the dead replica's twin
            # holds the same shard.
            for _ in range(4):
                ids, dists = router.search_batch(queries, K, NPROBE)
                np.testing.assert_array_equal(ids, ref_ids)
                np.testing.assert_array_equal(dists, ref_dists)
                assert router.last_coverage() == 1.0
            _wait_recovered(pool, 1)
            assert router.shards[0].live == [True, True]
            ids, dists = router.search_batch(queries, K, NPROBE)
            np.testing.assert_array_equal(ids, ref_ids)

    def test_repeated_kills_same_slot_recover_each_time(self, saved_dir, corpus):
        """The supervisor is not one-shot: the same slot can die and
        recover repeatedly, and the restart log records each cycle."""
        index, queries = corpus
        ref = index.search(queries, K, NPROBE)
        with WorkerPool(saved_dir, 2, startup_timeout_s=120) as pool:
            router = pool.sharded_backend(on_shard_error="degrade")
            pool.start_supervisor(poll_interval_s=0.01)
            for round_no in range(1, 3):
                pool.kill(1)
                _wait_recovered(pool, round_no)
                ids, dists = router.search_batch(queries, K, NPROBE)
                np.testing.assert_array_equal(ids, ref[0])
                np.testing.assert_array_equal(dists, ref[1])
            assert [(r.shard, r.replica) for r in pool.restart_log] == [
                (1, 0), (1, 0)
            ]

    def test_no_leaked_processes_or_sockets(self, saved_dir, corpus):
        """After stop(), every process ever spawned — original grid and
        mid-run respawns — is reaped, and every backend socket closed."""
        _, queries = corpus
        with WorkerPool(saved_dir, 2, replicas=2, startup_timeout_s=120) as pool:
            router = pool.sharded_backend(on_shard_error="degrade")
            pool.start_supervisor(poll_interval_s=0.01)
            pool.kill(1, 0)
            _wait_recovered(pool, 1)
            router.search_batch(queries[:4], K, NPROBE)
            backends = [b for g in router.shards for b in g.replicas]
        assert len(pool.spawned_procs) == 5  # 4 original + 1 respawn
        assert all(p.returncode is not None for p in pool.spawned_procs)
        assert all(b._sock is None for b in backends)
        assert not pool.supervised


class TestEventJournal:
    """The journal and the supervisor's restart log must agree."""

    def test_journal_matches_restart_log(self, saved_dir, corpus):
        """One ``worker_restart`` event per ``RestartRecord`` (same slot,
        exit code, attempts, recovery time), and each replica-scope
        ``coverage_lost -> coverage_restored`` pair brackets the same
        restart the record measured."""
        _, queries = corpus
        events = EventLog()
        with WorkerPool(
            saved_dir, 2, replicas=2, startup_timeout_s=120
        ) as pool:
            router = pool.sharded_backend(on_shard_error="degrade")
            pool.start_supervisor(poll_interval_s=0.01, events=events)
            pool.kill(0, 1)
            _wait_recovered(pool, 1)
            pool.kill(1, 0)
            _wait_recovered(pool, 2)
            router.search_batch(queries[:4], K, NPROBE)

        restarts = events.events("worker_restart")
        assert len(restarts) == len(pool.restart_log) == 2
        for ev, rec in zip(restarts, pool.restart_log):
            assert (ev["shard"], ev["replica"]) == (rec.shard, rec.replica)
            assert ev["exit_code"] == rec.exit_code == -9
            assert ev["attempts"] == rec.attempts
            assert ev["coverage_restored_us"] == rec.coverage_restored_us

        lost = events.events("coverage_lost")
        restored = events.events("coverage_restored")
        assert len(lost) == len(restored) == 2
        for lo, hi, rec in zip(lost, restored, pool.restart_log):
            assert lo["scope"] == hi["scope"] == "replica"
            assert (lo["shard"], lo["replica"]) == (rec.shard, rec.replica)
            # The pair brackets the supervisor's own measurement, so the
            # event-ts gap is an independent read of the recovery time.
            gap_us = hi["ts"] - lo["ts"]
            assert abs(gap_us - rec.coverage_restored_us) < 25_000


class _ExitingCmd:
    """Fake worker command: exits immediately with a fixed code."""

    def __call__(self, shard):
        return [sys.executable, "-c", "import sys; sys.exit(3)"]


class _ReadyThenExitCmd:
    """Fake worker: prints a valid readiness line, then dies at once.

    The readiness port points at nothing, so the supervisor's backend
    re-registration hits connection-refused — the respawns-then-
    immediately-dies path."""

    def __call__(self, shard):
        line = json.dumps(
            {"host": "127.0.0.1", "port": 1, "d": D, "ntotal": 0}
        )
        return [sys.executable, "-c", f"print('{line}')"]


class _HangingCmd:
    """Fake worker: never prints readiness, never exits on its own."""

    def __call__(self, shard):
        return [sys.executable, "-c", "import time; time.sleep(600)"]


class TestSupervisorEdgeCases:
    def test_crash_loop_exhausts_retry_budget(self, saved_dir):
        """A worker that dies during every readiness handshake burns the
        capped retry budget, is recorded in restart_failures, and leaves
        the supervisor alive for other slots.  No zombies."""
        with WorkerPool(saved_dir, 2, startup_timeout_s=120) as pool:
            pool.sharded_backend(on_shard_error="degrade")
            pool._spawn_cmd = _ExitingCmd()
            pool.start_supervisor(
                poll_interval_s=0.01, max_restarts=2, backoff_s=0.01
            )
            pool.kill(1)
            deadline = time.monotonic() + RECOVER_S
            while time.monotonic() < deadline and not pool.restart_failures:
                time.sleep(0.01)
            assert pool.restart_failures == [
                {"shard": 1, "replica": 0, "attempts": 2, "exit_code": -9}
            ]
            assert pool.restart_log == []
            assert pool.supervised  # gave up on the slot, not the job
            # Both crash-loop attempts were spawned and fully reaped.
            assert len(pool.spawned_procs) == 4
            assert all(
                p.returncode is not None for p in pool.spawned_procs[2:]
            )

    def test_respawn_then_immediate_death_retries_then_gives_up(self, saved_dir):
        """A respawn that handshakes fine but dies before the backend
        can reconnect goes around the crash loop, not into a wedge."""
        with WorkerPool(saved_dir, 2, startup_timeout_s=120) as pool:
            pool.sharded_backend(on_shard_error="degrade")
            pool._spawn_cmd = _ReadyThenExitCmd()
            pool.start_supervisor(
                poll_interval_s=0.01, max_restarts=2, backoff_s=0.01
            )
            pool.kill(0)
            deadline = time.monotonic() + RECOVER_S
            while time.monotonic() < deadline and not pool.restart_failures:
                time.sleep(0.01)
            assert pool.restart_failures[0]["attempts"] == 2
            assert pool.restart_log == []
            assert all(
                p.returncode is not None for p in pool.spawned_procs[2:]
            )

    def test_stop_mid_restart_reaps_everything(self, saved_dir):
        """stop() while the supervisor is blocked in a respawn handshake:
        the stop fence keeps any further spawn out, the shutdown sweep
        kills the half-started child (EOF-ing the handshake read), and
        stop returns promptly with nothing left running."""
        pool = WorkerPool(saved_dir, 2, startup_timeout_s=120).start()
        pool.sharded_backend(on_shard_error="degrade")
        pool._spawn_cmd = _HangingCmd()
        pool.start_supervisor(poll_interval_s=0.01, backoff_s=0.01)
        pool.kill(0)
        # Wait until the hanging respawn is actually in flight.
        deadline = time.monotonic() + RECOVER_S
        while time.monotonic() < deadline and len(pool.spawned_procs) < 3:
            time.sleep(0.01)
        assert len(pool.spawned_procs) >= 3
        t0 = time.monotonic()
        pool.stop()
        assert time.monotonic() - t0 < 30.0
        assert all(p.returncode is not None for p in pool.spawned_procs)
        assert not pool.supervised
        assert pool.restart_log == []

    def test_stop_is_idempotent_after_supervised_run(self, saved_dir):
        pool = WorkerPool(saved_dir, 2, startup_timeout_s=120).start()
        pool.start_supervisor(poll_interval_s=0.01)
        pool.stop()
        pool.stop()
        assert not pool.supervised


class TestChaosHarness:
    """The serve-bench chaos mode end to end (seconds-scale params)."""

    def test_seeded_kill_schedule_full_contract(self, tmp_path):
        timeline = tmp_path / "timeline.jsonl"
        res = run_chaos(
            replicas=2, shards=1, kills=2, n_clients=4, n_requests=160,
            n_base=3000, d=24, nlist=32, m=8, ksub=16, nprobe=6, seed=7,
            timeline=str(timeline),
        )
        # Zero failed requests, every kill recovered, answers exact.
        assert res.report.n_errors == 0
        assert res.report.n_completed == 160
        assert len(res.kills) == 2
        assert res.all_recovered
        assert res.worker_restarts == 2
        assert res.bit_identical_before and res.bit_identical_after
        assert res.leaked_pids == []
        # R=2 over one shard: failover keeps full coverage the whole
        # time, so availability is exactly 1.
        assert res.partial_results == 0
        assert res.availability == 1.0
        for kill in res.kills:
            assert 0 < kill.coverage_restored_us < RECOVER_S * 1e6
        assert "chaos serve" in res.format()
        # Telemetry-plane contract: the journal captured each kill as a
        # coverage_lost -> coverage_restored pair whose measured gap
        # matches the supervisor's own recovery clock; the SLO monitor
        # fired an availability alert inside an outage window; and the
        # dumped timeline passes the CI validator.
        assert len(res.recovery_pairs_us) == 2
        for gap_us, kill in zip(res.recovery_pairs_us, res.kills):
            assert abs(gap_us - kill.coverage_restored_us) < 25_000
        assert res.alert_latency_us is not None
        assert res.alert_latency_us >= 0
        assert "journal:" in res.format()
        assert check_timeline.validate(
            timeline, expect_restarts=2, expect_alert=True
        ) == []

    def test_seeded_schedule_is_deterministic(self):
        """Same seed → same kill schedule (worker identity per strike)."""
        kwargs = dict(
            replicas=2, shards=2, kills=2, n_clients=2, n_requests=60,
            n_base=3000, d=24, nlist=32, m=8, ksub=16, nprobe=6, seed=11,
        )
        a = run_chaos(**kwargs)
        b = run_chaos(**kwargs)
        assert [(k.shard, k.replica) for k in a.kills] == [
            (k.shard, k.replica) for k in b.kills
        ]

    def test_validation(self):
        with pytest.raises(ValueError, match="at least 2 workers"):
            run_chaos(replicas=1, shards=1)
        with pytest.raises(ValueError, match="replicas,shards"):
            run_chaos(replicas=0, shards=2)
        with pytest.raises(ValueError, match="kills"):
            run_chaos(replicas=2, shards=1, kills=0)
