"""Tests for the serving metrics registry."""

import numpy as np

from repro.serve.metrics import LatencyStats, MetricsRegistry


class TestLatencyStats:
    def test_empty(self):
        s = LatencyStats.from_samples(np.array([]))
        assert s.count == 0
        assert s.p99_us == 0.0

    def test_percentiles_ordered(self):
        s = LatencyStats.from_samples(np.arange(1000.0))
        assert s.count == 1000
        assert s.p50_us <= s.p95_us <= s.p99_us <= s.max_us
        assert s.p50_us == 499.5
        assert s.max_us == 999.0

    def test_row_shape(self):
        s = LatencyStats.from_samples(np.array([1.0, 2.0, 3.0]))
        assert len(s.row()) == 4


class TestMetricsRegistry:
    def test_counters(self):
        m = MetricsRegistry()
        m.inc("shed")
        m.inc("shed", 2)
        assert m.snapshot().counters["shed"] == 3

    def test_observe_request_feeds_reservoirs(self):
        m = MetricsRegistry()
        for i in range(10):
            m.observe_request(queue_us=10.0 * i, exec_us=5.0, total_us=10.0 * i + 5.0)
        snap = m.snapshot()
        assert snap.counters["completed"] == 10
        assert snap.total.count == 10
        assert snap.queue.mean_us == 45.0
        assert snap.exec.mean_us == 5.0

    def test_batch_histogram_and_mean(self):
        m = MetricsRegistry()
        for size in [1, 4, 4, 16]:
            m.observe_batch(size)
        snap = m.snapshot()
        assert snap.batch_histogram == {1: 1, 4: 2, 16: 1}
        assert snap.mean_batch_size == (1 + 4 + 4 + 16) / 4
        assert snap.counters["batches"] == 4

    def test_cache_hit_rate(self):
        m = MetricsRegistry()
        assert m.snapshot().cache_hit_rate == 0.0
        m.inc("cache_hits", 3)
        m.inc("cache_misses", 1)
        assert m.snapshot().cache_hit_rate == 0.75

    def test_snapshot_is_immutable_copy(self):
        m = MetricsRegistry()
        m.observe_request(1.0, 1.0, 2.0)
        snap = m.snapshot()
        m.observe_request(100.0, 1.0, 101.0)
        assert snap.total.count == 1  # later writes invisible to old snapshot


class TestTenantAndClassBreakdowns:
    def test_per_tenant_series_and_counters(self):
        m = MetricsRegistry()
        for i in range(4):
            m.observe_request(1.0, 2.0, 3.0 + i, tenant="a", cls="k5/np4")
        m.observe_request(1.0, 2.0, 100.0, tenant="b", cls="k5/np8")
        m.inc_tenant("a", "shed", 2)
        snap = m.snapshot()
        assert snap.tenants["a"].completed == 4
        assert snap.tenants["a"].shed == 2
        assert snap.tenants["a"].total.count == 4
        assert snap.tenants["b"].total.max_us == 100.0
        assert snap.classes["k5/np4"].count == 4
        assert snap.classes["k5/np8"].count == 1

    def test_untagged_requests_leave_breakdowns_empty(self):
        m = MetricsRegistry()
        m.observe_request(1.0, 1.0, 2.0)
        snap = m.snapshot()
        assert snap.tenants == {} and snap.classes == {}

    def test_shed_only_tenant_still_reported(self):
        """A tenant whose every request was shed must appear in the
        breakdown (its latency series is just empty)."""
        m = MetricsRegistry()
        m.inc_tenant("quiet", "shed")
        snap = m.snapshot()
        assert snap.tenants["quiet"].shed == 1
        assert snap.tenants["quiet"].total.count == 0

    def test_breakdown_key_cardinality_bounded(self):
        """Client-supplied tenant names past the cap fold into the
        overflow bucket instead of growing the registry forever."""
        m = MetricsRegistry(max_tracked_keys=8)
        for i in range(50):
            m.observe_request(1.0, 1.0, 2.0, tenant=f"t{i}", cls=f"c{i}")
            m.inc_tenant(f"t{i}", "shed")
        snap = m.snapshot()
        assert len(snap.tenants) <= 9  # 8 tracked + "(other)"
        assert len(snap.classes) <= 9
        other = snap.tenants[MetricsRegistry.OVERFLOW_KEY]
        assert other.completed == 50 - 8  # totals preserved, coarsened
        assert other.shed == 50 - 8
        # Existing keys keep attributing exactly.
        m.observe_request(1.0, 1.0, 2.0, tenant="t3", cls="c3")
        assert m.snapshot().tenants["t3"].completed == 2

    def test_breakdown_validation(self):
        import pytest
        with pytest.raises(ValueError, match="breakdown_reservoir_size"):
            MetricsRegistry(breakdown_reservoir_size=0)
        with pytest.raises(ValueError, match="max_tracked_keys"):
            MetricsRegistry(max_tracked_keys=0)

    def test_overflow_fold_consistent_across_stores(self):
        """One fold decision per tenant: counters and latencies can never
        land under different keys for the same tenant."""
        m = MetricsRegistry(max_tracked_keys=4)
        # Fill the tracked set through the counter path only.
        for i in range(4):
            m.inc_tenant(f"t{i}", "shed")
        # A new tenant completing a request folds BOTH series together.
        m.observe_request(1.0, 1.0, 2.0, tenant="late", cls="c0")
        snap = m.snapshot()
        assert "late" not in snap.tenants
        other = snap.tenants[MetricsRegistry.OVERFLOW_KEY]
        assert other.completed == 1
        assert other.total.count == 1  # latency followed the counter
