"""Tests for the serving metrics registry."""

import numpy as np

from repro.serve.metrics import LatencyStats, MetricsRegistry


class TestLatencyStats:
    def test_empty(self):
        s = LatencyStats.from_samples(np.array([]))
        assert s.count == 0
        assert s.p99_us == 0.0

    def test_percentiles_ordered(self):
        s = LatencyStats.from_samples(np.arange(1000.0))
        assert s.count == 1000
        assert s.p50_us <= s.p95_us <= s.p99_us <= s.max_us
        assert s.p50_us == 499.5
        assert s.max_us == 999.0

    def test_row_shape(self):
        s = LatencyStats.from_samples(np.array([1.0, 2.0, 3.0]))
        assert len(s.row()) == 4


class TestMetricsRegistry:
    def test_counters(self):
        m = MetricsRegistry()
        m.inc("shed")
        m.inc("shed", 2)
        assert m.snapshot().counters["shed"] == 3

    def test_observe_request_feeds_reservoirs(self):
        m = MetricsRegistry()
        for i in range(10):
            m.observe_request(queue_us=10.0 * i, exec_us=5.0, total_us=10.0 * i + 5.0)
        snap = m.snapshot()
        assert snap.counters["completed"] == 10
        assert snap.total.count == 10
        assert snap.queue.mean_us == 45.0
        assert snap.exec.mean_us == 5.0

    def test_batch_histogram_and_mean(self):
        m = MetricsRegistry()
        for size in [1, 4, 4, 16]:
            m.observe_batch(size)
        snap = m.snapshot()
        assert snap.batch_histogram == {1: 1, 4: 2, 16: 1}
        assert snap.mean_batch_size == (1 + 4 + 4 + 16) / 4
        assert snap.counters["batches"] == 4

    def test_cache_hit_rate(self):
        m = MetricsRegistry()
        assert m.snapshot().cache_hit_rate == 0.0
        m.inc("cache_hits", 3)
        m.inc("cache_misses", 1)
        assert m.snapshot().cache_hit_rate == 0.75

    def test_snapshot_is_immutable_copy(self):
        m = MetricsRegistry()
        m.observe_request(1.0, 1.0, 2.0)
        snap = m.snapshot()
        m.observe_request(100.0, 1.0, 101.0)
        assert snap.total.count == 1  # later writes invisible to old snapshot
