"""Tests for the serving metrics registry."""

import threading

import numpy as np

from repro.serve.metrics import LatencyStats, MetricsRegistry, ReservoirSample


class TestLatencyStats:
    def test_empty(self):
        s = LatencyStats.from_samples(np.array([]))
        assert s.count == 0
        assert s.p99_us == 0.0

    def test_percentiles_ordered(self):
        s = LatencyStats.from_samples(np.arange(1000.0))
        assert s.count == 1000
        assert s.p50_us <= s.p95_us <= s.p99_us <= s.max_us
        assert s.p50_us == 499.5
        assert s.max_us == 999.0

    def test_row_shape(self):
        s = LatencyStats.from_samples(np.array([1.0, 2.0, 3.0]))
        assert len(s.row()) == 4


class TestMetricsRegistry:
    def test_counters(self):
        m = MetricsRegistry()
        m.inc("shed")
        m.inc("shed", 2)
        assert m.snapshot().counters["shed"] == 3

    def test_observe_request_feeds_reservoirs(self):
        m = MetricsRegistry()
        for i in range(10):
            m.observe_request(queue_us=10.0 * i, exec_us=5.0, total_us=10.0 * i + 5.0)
        snap = m.snapshot()
        assert snap.counters["completed"] == 10
        assert snap.total.count == 10
        assert snap.queue.mean_us == 45.0
        assert snap.exec.mean_us == 5.0

    def test_batch_histogram_and_mean(self):
        m = MetricsRegistry()
        for size in [1, 4, 4, 16]:
            m.observe_batch(size)
        snap = m.snapshot()
        assert snap.batch_histogram == {1: 1, 4: 2, 16: 1}
        assert snap.mean_batch_size == (1 + 4 + 4 + 16) / 4
        assert snap.counters["batches"] == 4

    def test_cache_hit_rate(self):
        m = MetricsRegistry()
        assert m.snapshot().cache_hit_rate == 0.0
        m.inc("cache_hits", 3)
        m.inc("cache_misses", 1)
        assert m.snapshot().cache_hit_rate == 0.75

    def test_snapshot_is_immutable_copy(self):
        m = MetricsRegistry()
        m.observe_request(1.0, 1.0, 2.0)
        snap = m.snapshot()
        m.observe_request(100.0, 1.0, 101.0)
        assert snap.total.count == 1  # later writes invisible to old snapshot


class TestTenantAndClassBreakdowns:
    def test_per_tenant_series_and_counters(self):
        m = MetricsRegistry()
        for i in range(4):
            m.observe_request(1.0, 2.0, 3.0 + i, tenant="a", cls="k5/np4")
        m.observe_request(1.0, 2.0, 100.0, tenant="b", cls="k5/np8")
        m.inc_tenant("a", "shed", 2)
        snap = m.snapshot()
        assert snap.tenants["a"].completed == 4
        assert snap.tenants["a"].shed == 2
        assert snap.tenants["a"].total.count == 4
        assert snap.tenants["b"].total.max_us == 100.0
        assert snap.classes["k5/np4"].count == 4
        assert snap.classes["k5/np8"].count == 1

    def test_untagged_requests_leave_breakdowns_empty(self):
        m = MetricsRegistry()
        m.observe_request(1.0, 1.0, 2.0)
        snap = m.snapshot()
        assert snap.tenants == {} and snap.classes == {}

    def test_shed_only_tenant_still_reported(self):
        """A tenant whose every request was shed must appear in the
        breakdown (its latency series is just empty)."""
        m = MetricsRegistry()
        m.inc_tenant("quiet", "shed")
        snap = m.snapshot()
        assert snap.tenants["quiet"].shed == 1
        assert snap.tenants["quiet"].total.count == 0

    def test_breakdown_key_cardinality_bounded(self):
        """Client-supplied tenant names past the cap fold into the
        overflow bucket instead of growing the registry forever."""
        m = MetricsRegistry(max_tracked_keys=8)
        for i in range(50):
            m.observe_request(1.0, 1.0, 2.0, tenant=f"t{i}", cls=f"c{i}")
            m.inc_tenant(f"t{i}", "shed")
        snap = m.snapshot()
        assert len(snap.tenants) <= 9  # 8 tracked + "(other)"
        assert len(snap.classes) <= 9
        other = snap.tenants[MetricsRegistry.OVERFLOW_KEY]
        assert other.completed == 50 - 8  # totals preserved, coarsened
        assert other.shed == 50 - 8
        # Existing keys keep attributing exactly.
        m.observe_request(1.0, 1.0, 2.0, tenant="t3", cls="c3")
        assert m.snapshot().tenants["t3"].completed == 2

    def test_breakdown_validation(self):
        import pytest
        with pytest.raises(ValueError, match="breakdown_reservoir_size"):
            MetricsRegistry(breakdown_reservoir_size=0)
        with pytest.raises(ValueError, match="max_tracked_keys"):
            MetricsRegistry(max_tracked_keys=0)

    def test_to_dict_round_trips_through_json(self):
        import json

        m = MetricsRegistry()
        m.inc("completed", 3)
        m.set_gauge("open_connections", 7)
        m.observe_request(10.0, 5.0, 15.0, tenant="a", cls="k5/np4")
        m.observe_batch(4)
        d = json.loads(json.dumps(m.snapshot().to_dict()))
        assert d["counters"]["completed"] == 4  # 3 + the observed request
        assert d["gauges"]["open_connections"] == 7

    def test_overflow_fold_consistent_across_stores(self):
        """One fold decision per tenant: counters and latencies can never
        land under different keys for the same tenant."""
        m = MetricsRegistry(max_tracked_keys=4)
        # Fill the tracked set through the counter path only.
        for i in range(4):
            m.inc_tenant(f"t{i}", "shed")
        # A new tenant completing a request folds BOTH series together.
        m.observe_request(1.0, 1.0, 2.0, tenant="late", cls="c0")
        snap = m.snapshot()
        assert "late" not in snap.tenants
        other = snap.tenants[MetricsRegistry.OVERFLOW_KEY]
        assert other.completed == 1
        assert other.total.count == 1  # latency followed the counter


class TestReservoirSample:
    def test_below_capacity_keeps_everything(self):
        r = ReservoirSample(capacity=100)
        for v in range(50):
            r.add(float(v))
        assert r.seen == 50
        assert sorted(r.values().tolist()) == [float(v) for v in range(50)]

    def test_memory_bounded_and_exact_count_max(self):
        """The fix for the unbounded latency-sample growth: O(capacity)
        retained values over an arbitrarily long stream, with the stream's
        count and max still exact."""
        r = ReservoirSample(capacity=64, seed=7)
        for v in range(10_000):
            r.add(float(v))
        assert len(r.values()) == 64
        assert r.seen == 10_000
        assert r.max_value == 9999.0
        s = r.stats()
        assert s.count == 10_000 and s.max_us == 9999.0

    def test_sample_is_representative(self):
        """Percentiles estimated from the sample land near the truth for a
        uniform stream (Algorithm R keeps every element with equal
        probability — no recency bias)."""
        r = ReservoirSample(capacity=512, seed=3)
        for v in range(20_000):
            r.add(float(v))
        p50 = float(np.percentile(r.values(), 50))
        assert abs(p50 - 10_000) < 2_500

    def test_seeded_determinism(self):
        a, b = ReservoirSample(17, seed=5), ReservoirSample(17, seed=5)
        for v in range(1000):
            a.add(float(v))
            b.add(float(v))
        assert a.values().tolist() == b.values().tolist()

    def test_registry_reservoirs_deterministic_per_seed(self):
        def fill(seed):
            m = MetricsRegistry(seed=seed)
            for i in range(5000):
                m.observe_request(float(i), 1.0, float(i) + 1.0)
            return m.snapshot()

        s1, s2, s3 = fill(0), fill(0), fill(9)
        assert s1.total.p50_us == s2.total.p50_us
        assert s1.total.count == s3.total.count == 5000
        # Different per-series seeds: queue and total reservoirs must not
        # replace in lockstep (that would correlate their estimates).
        m = MetricsRegistry(seed=0)
        for i in range(5000):
            m.observe_request(float(i), float(i), 2.0 * i)
        snap = m.snapshot()
        assert snap.queue.p50_us != snap.total.p50_us


class TestThreadedConsistency:
    """Satellite check: the registry under concurrent writers."""

    def test_counters_and_gauges_from_many_threads(self):
        m = MetricsRegistry()
        n_threads, n_ops = 8, 500
        barrier = threading.Barrier(n_threads)

        def work(tid):
            barrier.wait()
            for i in range(n_ops):
                m.inc("completed")
                m.inc("shed", 2)
                m.set_gauge("open_connections", float(tid * n_ops + i))
                m.observe_batch(4)

        threads = [threading.Thread(target=work, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = m.snapshot()
        assert snap.counters["completed"] == n_threads * n_ops
        assert snap.counters["shed"] == 2 * n_threads * n_ops
        assert snap.counters["batches"] == n_threads * n_ops
        # The gauge holds one of the written values, uncorrupted.
        assert snap.gauges["open_connections"] in {
            float(v) for v in range(n_threads * n_ops)
        }

    def test_per_tenant_series_from_many_threads(self):
        m = MetricsRegistry()
        tenants = [f"t{i}" for i in range(4)]
        n_threads, n_ops = 8, 400
        barrier = threading.Barrier(n_threads)

        def work(tid):
            barrier.wait()
            for i in range(n_ops):
                tenant = tenants[(tid + i) % len(tenants)]
                m.observe_request(1.0, 2.0, 3.0, tenant=tenant, cls="k5")
                m.inc_tenant(tenant, "shed")

        threads = [threading.Thread(target=work, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = m.snapshot()
        total = n_threads * n_ops
        assert sum(t.completed for t in snap.tenants.values()) == total
        assert sum(t.shed for t in snap.tenants.values()) == total
        assert sum(t.total.count for t in snap.tenants.values()) == total
        assert snap.classes["k5"].count == total
        # Every thread touched every tenant equally.
        for t in tenants:
            assert snap.tenants[t].completed == total // len(tenants)
