"""Tests for the multi-process data plane (repro/serve/workers.py).

Real subprocesses, real sockets: a :class:`WorkerPool` over a saved
index directory must answer bit-identically to in-process search through
both scatter paths (per-query search frames and the preselect-once
frame), survive a SIGKILL'd worker in degraded mode with zero failed
requests, and shut down gracefully on the stdin-close handshake.
"""

import numpy as np
import pytest

from repro.ann.io import load_index_dir, save_index_dir
from repro.ann.ivf import IVFPQIndex
from repro.data.synthetic import make_clustered
from repro.serve.scheduler import ServingEngine
from repro.serve.workers import WorkerPool

K = 5
NPROBE = 6
D = 16


@pytest.fixture(scope="module")
def corpus():
    """A small trained index, its saved directory, and query block."""
    vecs = make_clustered(2060, D, n_clusters=32, intrinsic_dim=6, seed=13)
    base, queries = vecs[:2000], vecs[2000:2048]
    index = IVFPQIndex(d=D, nlist=32, m=4, ksub=16, use_opq=True, seed=3)
    index.train(base)
    index.add(base)
    return index, queries


@pytest.fixture(scope="module")
def saved_dir(corpus, tmp_path_factory):
    index, _ = corpus
    path = tmp_path_factory.mktemp("workers") / "index"
    save_index_dir(index, path)
    return path


@pytest.fixture(scope="module")
def pool(saved_dir):
    """One 3-worker pool shared by the non-destructive tests."""
    with WorkerPool(saved_dir, 3, startup_timeout_s=120) as p:
        yield p


class TestPoolLifecycle:
    def test_handshake_reports_shards(self, pool, corpus):
        index, _ = corpus
        assert [w.shard for w in pool.workers] == [0, 1, 2]
        assert all(w.d == D for w in pool.workers)
        assert sum(w.ntotal for w in pool.workers) == index.ntotal
        assert pool.alive == [True, True, True]
        assert pool.poll() == {}

    def test_missing_index_dir_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="meta.npz"):
            WorkerPool(tmp_path / "nope", 2)

    def test_bad_worker_count_rejected(self, saved_dir):
        with pytest.raises(ValueError, match="n_workers"):
            WorkerPool(saved_dir, 0)

    def test_graceful_stop_exits_zero(self, saved_dir):
        pool = WorkerPool(saved_dir, 2).start()
        procs = list(pool._procs)
        pool.stop()
        assert [p.returncode for p in procs] == [0, 0]


class TestRemoteScatter:
    def test_search_frames_bit_identical(self, pool, corpus):
        index, queries = corpus
        ref_ids, ref_dists = index.search(queries, K, NPROBE)
        router = pool.sharded_backend()
        ids, dists = router.search_batch(queries, K, NPROBE)
        np.testing.assert_array_equal(ids, ref_ids)
        np.testing.assert_array_equal(dists, ref_dists)

    def test_preselect_scatter_bit_identical(self, pool, saved_dir, corpus):
        index, queries = corpus
        ref_ids, ref_dists = index.search(queries, K, NPROBE)
        planner = load_index_dir(saved_dir, mmap=True)
        router = pool.sharded_backend(preselect=planner)
        ids, dists = router.search_batch(queries, K, NPROBE)
        np.testing.assert_array_equal(ids, ref_ids)
        np.testing.assert_array_equal(dists, ref_dists)

    def test_coarse_runs_once_per_batch_at_router(self, pool, saved_dir, corpus):
        """The preselect-once contract: one coarse run per scatter at the
        router, none at the workers (their codes-scanned totals account
        for exactly the scan work, which partitions across shards)."""
        index, queries = corpus
        planner = load_index_dir(saved_dir, mmap=True)
        router = pool.sharded_backend(preselect=planner)
        c0 = [b.codes_scanned for b in router.shards]
        for lo in range(0, 48, 16):
            router.search_batch(queries[lo : lo + 16], K, NPROBE)
        assert planner.stats.preselect_batches == 3
        assert planner.stats.preselect_queries == 48
        assert router.preselect_scatters == 3
        # The same workload, single-process, scans this many codes:
        fresh = load_index_dir(saved_dir, mmap=True)
        s0 = fresh.stats.codes_scanned
        fresh.search(queries, K, NPROBE)
        per_search = fresh.stats.codes_scanned - s0
        scanned = sum(
            b.codes_scanned - c for b, c in zip(router.shards, c0)
        )
        assert scanned == per_search

    def test_engine_over_remote_router_bit_identical(self, pool, saved_dir, corpus):
        """The full serving pipeline — engine micro-batching over the
        preselect scatter — still answers bit for bit."""
        index, queries = corpus
        ref_ids, ref_dists = index.search(queries, K, NPROBE)
        planner = load_index_dir(saved_dir, mmap=True)
        router = pool.sharded_backend(preselect=planner)
        with ServingEngine(router, max_batch=8, max_wait_us=2000.0) as eng:
            futs = [eng.submit(q, K, NPROBE) for q in queries]
            got = [f.result() for f in futs]
        np.testing.assert_array_equal(np.stack([g.ids for g in got]), ref_ids)
        np.testing.assert_array_equal(
            np.stack([g.dists for g in got]), ref_dists
        )
        assert all(g.coverage == 1.0 for g in got)


class TestWorkerCrash:
    def test_kill_mid_run_degrades_without_failures(self, saved_dir, corpus):
        """SIGKILL one worker mid-load: every request completes (zero
        errors), later answers carry partial coverage, and the pool
        reports the dead worker."""
        index, queries = corpus
        planner = load_index_dir(saved_dir, mmap=True)
        with WorkerPool(saved_dir, 3, startup_timeout_s=120) as pool:
            router = pool.sharded_backend(
                preselect=planner, on_shard_error="degrade"
            )
            with ServingEngine(router, max_batch=8, max_wait_us=0.0) as eng:
                before = [f.result() for f in
                          [eng.submit(q, K, NPROBE) for q in queries[:16]]]
                pool.kill(1)
                after = [f.result() for f in
                         [eng.submit(q, K, NPROBE) for q in queries[16:]]]
            assert all(r.coverage == 1.0 for r in before)
            # No request failed; everything after the crash is answered
            # from the surviving shards and stamped partial.
            assert len(after) == len(queries) - 16
            assert all(0.0 < r.coverage < 1.0 for r in after)
            dead_weight = pool.workers[1].ntotal / index.ntotal
            assert after[-1].coverage == pytest.approx(1.0 - dead_weight)
            assert router.shard_errors[1] > 0
            assert pool.poll() == {1: -9}
            assert pool.alive == [True, False, True]
            # Surviving shards still answer *exactly* over their data:
            # the degraded result equals an in-process merge over the
            # two live shards.
            from repro.ann.merge import merge_partial_topk
            from repro.ann.partition import partition_index

            shards = partition_index(index, 3)
            parts = [shards[p].search(queries[-1:], K, NPROBE) for p in (0, 2)]
            ref_ids, ref_dists = merge_partial_topk(parts, K)
            np.testing.assert_array_equal(after[-1].ids, ref_ids[0])
            np.testing.assert_array_equal(after[-1].dists, ref_dists[0])


class TestReplicatedGrid:
    """R×S topology: replica groups behind each shard."""

    def test_grid_spawns_and_reports_slots(self, saved_dir, corpus):
        index, _ = corpus
        with WorkerPool(saved_dir, 2, replicas=2, startup_timeout_s=120) as pool:
            assert pool.n_workers == 2
            assert pool.replicas == 2
            assert pool.n_procs == 4
            assert [(w.shard, w.replica) for w in pool.workers] == [
                (0, 0), (0, 1), (1, 0), (1, 1)
            ]
            # Replicas of a shard hold the same slice of the data.
            assert pool.workers[0].ntotal == pool.workers[1].ntotal
            assert (
                pool.workers[0].ntotal + pool.workers[2].ntotal
                == index.ntotal
            )
            assert pool.alive == [True] * 4
            assert pool.poll() == {}

    def test_poll_keys_by_slot_when_replicated(self, saved_dir):
        with WorkerPool(saved_dir, 1, replicas=2, startup_timeout_s=120) as pool:
            pool.kill(0, 1)
            assert pool.poll() == {(0, 1): -9}
            assert pool.alive == [True, False]

    def test_bad_replica_count_rejected(self, saved_dir):
        with pytest.raises(ValueError, match="replicas"):
            WorkerPool(saved_dir, 2, replicas=0)

    def test_grid_bit_identical_through_replica_columns(self, saved_dir, corpus):
        """Every replica column answers bit-identically: force traffic
        through each column via round-robin and compare all sweeps."""
        index, queries = corpus
        ref_ids, ref_dists = index.search(queries, K, NPROBE)
        with WorkerPool(saved_dir, 2, replicas=2, startup_timeout_s=120) as pool:
            router = pool.sharded_backend(policy="round-robin")
            for _ in range(2):  # lands on each replica column once
                ids, dists = router.search_batch(queries, K, NPROBE)
                np.testing.assert_array_equal(ids, ref_ids)
                np.testing.assert_array_equal(dists, ref_dists)
            groups = router.shards
            assert all(sum(g.dispatch_counts) == 2 for g in groups)

    def test_replica_kill_fails_over_with_full_coverage(self, saved_dir, corpus):
        """With R=2, losing one replica of a shard costs nothing: the
        group fails over mid-call and coverage never drops."""
        index, queries = corpus
        ref_ids, ref_dists = index.search(queries, K, NPROBE)
        planner = load_index_dir(saved_dir, mmap=True)
        with WorkerPool(saved_dir, 2, replicas=2, startup_timeout_s=120) as pool:
            router = pool.sharded_backend(
                preselect=planner, on_shard_error="degrade"
            )
            pool.kill(0, 0)
            for _ in range(3):
                ids, dists = router.search_batch(queries, K, NPROBE)
                np.testing.assert_array_equal(ids, ref_ids)
                np.testing.assert_array_equal(dists, ref_dists)
            assert router.last_coverage() == 1.0
            assert router.shard_errors == [0, 0]
            assert router.shards[0].live == [False, True]


class TestTypedShardErrors:
    def test_killed_worker_raises_backend_unavailable(self, saved_dir, corpus):
        """Every transport failure surfaces as the typed shard-error
        signal — never a raw socket exception — so degrade mode always
        engages."""
        from repro.serve.backends import BackendUnavailableError

        _, queries = corpus
        with WorkerPool(saved_dir, 2, startup_timeout_s=120) as pool:
            router = pool.sharded_backend()
            pool.kill(1)
            dead = router.shards[1]
            for _ in range(2):  # connected socket first, then reconnect
                with pytest.raises(BackendUnavailableError):
                    dead.search_batch(queries[:4], K, NPROBE)
            assert isinstance(
                BackendUnavailableError("x"), (ConnectionError, OSError)
            )

    def test_closed_backend_raises_typed_error(self, saved_dir, corpus):
        _, queries = corpus
        from repro.serve.backends import BackendUnavailableError

        with WorkerPool(saved_dir, 2, startup_timeout_s=120) as pool:
            backend = pool.sharded_backend().shards[0]
            backend.close()
            with pytest.raises(BackendUnavailableError, match="closed"):
                backend.search_batch(queries[:4], K, NPROBE)

    def test_reconnect_revives_closed_backend(self, saved_dir, corpus):
        """reconnect() is the supervisor's re-registration primitive:
        after it, the same object serves from the new address."""
        index, queries = corpus
        ref = index.search(queries, K, NPROBE)
        with WorkerPool(saved_dir, 1, startup_timeout_s=120) as pool:
            backend = pool.sharded_backend().shards[0]
            backend.close()
            backend.reconnect(pool.workers[0].host, pool.workers[0].port)
            ids, dists = backend.search_batch(queries, K, NPROBE)
            np.testing.assert_array_equal(ids, ref[0])
            np.testing.assert_array_equal(dists, ref[1])
            assert backend.reconnects == 1
