"""Tests for the open-loop / closed-loop load generators."""

import numpy as np
import pytest

from repro.serve import ServingEngine, poisson_arrivals
from repro.serve.loadgen import run_closed_loop, run_open_loop

D = 8
K = 4


class FastBackend:
    def search_batch(self, queries, k, nprobe=None):
        queries = np.atleast_2d(queries)
        n = queries.shape[0]
        ids = np.tile(np.arange(k, dtype=np.int64), (n, 1))
        dists = np.tile(np.arange(k, dtype=np.float32), (n, 1))
        return ids, dists


class TestPoissonArrivals:
    def test_validation(self):
        with pytest.raises(ValueError, match="rate_qps"):
            poisson_arrivals(0.0, 10)
        with pytest.raises(ValueError, match="n must be"):
            poisson_arrivals(100.0, 0)

    def test_monotone_and_rate(self):
        arr = poisson_arrivals(1000.0, 20_000, seed=3)
        assert (np.diff(arr) >= 0).all()
        # Mean inter-arrival ~ 1 ms (law of large numbers at n=20k).
        assert np.mean(np.diff(arr)) == pytest.approx(1e-3, rel=0.05)

    def test_seeded_determinism(self):
        np.testing.assert_array_equal(
            poisson_arrivals(500.0, 100, seed=9), poisson_arrivals(500.0, 100, seed=9)
        )
        assert not np.array_equal(
            poisson_arrivals(500.0, 100, seed=9), poisson_arrivals(500.0, 100, seed=10)
        )


class TestOpenLoop:
    def test_completes_all_requests(self):
        queries = np.random.default_rng(0).standard_normal((50, D)).astype(np.float32)
        with ServingEngine(FastBackend(), max_batch=8, max_wait_us=500.0) as eng:
            rep = run_open_loop(eng, queries, K, rate_qps=5000.0, seed=1)
        assert rep.mode == "open"
        assert rep.n_issued == 50
        assert rep.n_completed == 50
        assert rep.n_shed == 0
        assert rep.offered_qps == 5000.0
        assert rep.total.count == 50
        assert rep.achieved_qps > 0
        assert rep.mean_batch_size >= 1.0

    def test_sheds_under_overload(self):
        queries = np.zeros((80, D), dtype=np.float32)

        class Slow(FastBackend):
            def search_batch(self, queries, k, nprobe=None):
                import time

                time.sleep(0.02)
                return super().search_batch(queries, k, nprobe)

        with ServingEngine(
            Slow(), max_batch=1, queue_depth=2, policy="shed"
        ) as eng:
            rep = run_open_loop(eng, queries, K, rate_qps=4000.0, seed=0)
        assert rep.n_shed > 0
        assert rep.n_completed + rep.n_shed == 80


class TestClosedLoop:
    def test_validation(self):
        with ServingEngine(FastBackend()) as eng:
            with pytest.raises(ValueError, match="n_clients"):
                run_closed_loop(eng, np.zeros((4, D), dtype=np.float32), K, n_clients=0)

    def test_serves_requested_count(self):
        queries = np.random.default_rng(1).standard_normal((16, D)).astype(np.float32)
        with ServingEngine(FastBackend(), max_batch=8, max_wait_us=200.0) as eng:
            rep = run_closed_loop(eng, queries, K, n_clients=4, n_requests=64)
        assert rep.mode == "closed"
        assert rep.n_completed == 64
        assert rep.total.count == 64
        assert rep.achieved_qps == pytest.approx(rep.offered_qps)

    def test_request_errors_counted_not_fatal(self):
        """A backend failure mid-run must be counted, not abort the report
        (open loop) or kill a client thread (closed loop)."""

        class Flaky(FastBackend):
            def search_batch(self, queries, k, nprobe=None):
                queries = np.atleast_2d(queries)
                if np.any(queries[:, 0] < 0):  # poison marker
                    raise RuntimeError("bad shard")
                return super().search_batch(queries, k, nprobe)

        queries = np.zeros((20, D), dtype=np.float32)
        queries[7, 0] = -1.0
        # max_batch=1 so only the poisoned request's batch fails.
        with ServingEngine(Flaky(), max_batch=1) as eng:
            rep = run_open_loop(eng, queries, K, rate_qps=5000.0, seed=2)
        assert rep.n_errors == 1
        assert rep.n_completed == 19
        with ServingEngine(Flaky(), max_batch=1) as eng:
            rep = run_closed_loop(eng, queries, K, n_clients=3, n_requests=20)
        assert rep.n_errors == 1
        assert rep.n_completed == 19

    def test_percentile_rows_shape(self):
        queries = np.zeros((8, D), dtype=np.float32)
        with ServingEngine(FastBackend()) as eng:
            rep = run_closed_loop(eng, queries, K, n_clients=2)
        rows = rep.percentile_rows()
        assert [r[0] for r in rows] == ["total", "queue", "exec"]
        assert all(len(r) == 5 for r in rows)
