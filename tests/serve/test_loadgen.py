"""Tests for the open-loop / closed-loop load generators."""

import numpy as np
import pytest

from repro.serve import ServingEngine, poisson_arrivals
from repro.serve.loadgen import (
    TenantWorkload,
    run_closed_loop,
    run_multi_tenant,
    run_open_loop,
    tile_stream,
)

D = 8
K = 4


class FastBackend:
    def search_batch(self, queries, k, nprobe=None):
        queries = np.atleast_2d(queries)
        n = queries.shape[0]
        ids = np.tile(np.arange(k, dtype=np.int64), (n, 1))
        dists = np.tile(np.arange(k, dtype=np.float32), (n, 1))
        return ids, dists


class TestPoissonArrivals:
    def test_validation(self):
        with pytest.raises(ValueError, match="rate_qps"):
            poisson_arrivals(0.0, 10)
        with pytest.raises(ValueError, match="n must be"):
            poisson_arrivals(100.0, 0)

    def test_monotone_and_rate(self):
        arr = poisson_arrivals(1000.0, 20_000, seed=3)
        assert (np.diff(arr) >= 0).all()
        # Mean inter-arrival ~ 1 ms (law of large numbers at n=20k).
        assert np.mean(np.diff(arr)) == pytest.approx(1e-3, rel=0.05)

    def test_seeded_determinism(self):
        np.testing.assert_array_equal(
            poisson_arrivals(500.0, 100, seed=9), poisson_arrivals(500.0, 100, seed=9)
        )
        assert not np.array_equal(
            poisson_arrivals(500.0, 100, seed=9), poisson_arrivals(500.0, 100, seed=10)
        )


class TestOpenLoop:
    def test_completes_all_requests(self):
        queries = np.random.default_rng(0).standard_normal((50, D)).astype(np.float32)
        with ServingEngine(FastBackend(), max_batch=8, max_wait_us=500.0) as eng:
            rep = run_open_loop(eng, queries, K, rate_qps=5000.0, seed=1)
        assert rep.mode == "open"
        assert rep.n_issued == 50
        assert rep.n_completed == 50
        assert rep.n_shed == 0
        assert rep.offered_qps == 5000.0
        assert rep.total.count == 50
        assert rep.achieved_qps > 0
        assert rep.mean_batch_size >= 1.0

    def test_sheds_under_overload(self):
        queries = np.zeros((80, D), dtype=np.float32)

        class Slow(FastBackend):
            def search_batch(self, queries, k, nprobe=None):
                import time

                time.sleep(0.02)
                return super().search_batch(queries, k, nprobe)

        with ServingEngine(
            Slow(), max_batch=1, queue_depth=2, policy="shed"
        ) as eng:
            rep = run_open_loop(eng, queries, K, rate_qps=4000.0, seed=0)
        assert rep.n_shed > 0
        assert rep.n_completed + rep.n_shed == 80


class TestClosedLoop:
    def test_validation(self):
        with ServingEngine(FastBackend()) as eng:
            with pytest.raises(ValueError, match="n_clients"):
                run_closed_loop(eng, np.zeros((4, D), dtype=np.float32), K, n_clients=0)

    def test_serves_requested_count(self):
        queries = np.random.default_rng(1).standard_normal((16, D)).astype(np.float32)
        with ServingEngine(FastBackend(), max_batch=8, max_wait_us=200.0) as eng:
            rep = run_closed_loop(eng, queries, K, n_clients=4, n_requests=64)
        assert rep.mode == "closed"
        assert rep.n_completed == 64
        assert rep.total.count == 64
        assert rep.achieved_qps == pytest.approx(rep.offered_qps)

    def test_request_errors_counted_not_fatal(self):
        """A backend failure mid-run must be counted, not abort the report
        (open loop) or kill a client thread (closed loop)."""

        class Flaky(FastBackend):
            def search_batch(self, queries, k, nprobe=None):
                queries = np.atleast_2d(queries)
                if np.any(queries[:, 0] < 0):  # poison marker
                    raise RuntimeError("bad shard")
                return super().search_batch(queries, k, nprobe)

        queries = np.zeros((20, D), dtype=np.float32)
        queries[7, 0] = -1.0
        # max_batch=1 so only the poisoned request's batch fails.
        with ServingEngine(Flaky(), max_batch=1) as eng:
            rep = run_open_loop(eng, queries, K, rate_qps=5000.0, seed=2)
        assert rep.n_errors == 1
        assert rep.n_completed == 19
        with ServingEngine(Flaky(), max_batch=1) as eng:
            rep = run_closed_loop(eng, queries, K, n_clients=3, n_requests=20)
        assert rep.n_errors == 1
        assert rep.n_completed == 19

    def test_percentile_rows_shape(self):
        queries = np.zeros((8, D), dtype=np.float32)
        with ServingEngine(FastBackend()) as eng:
            rep = run_closed_loop(eng, queries, K, n_clients=2)
        rows = rep.percentile_rows()
        assert [r[0] for r in rows] == ["total", "queue", "exec"]
        assert all(len(r) == 5 for r in rows)


class TestMultiTenant:
    def test_workload_validation(self):
        with pytest.raises(ValueError, match="rate_qps"):
            TenantWorkload("t", rate_qps=0.0, n_requests=10, k=3)
        with pytest.raises(ValueError, match="n_requests"):
            TenantWorkload("t", rate_qps=10.0, n_requests=0, k=3)

    def test_reports_per_tenant(self):
        queries = np.random.default_rng(0).standard_normal((16, 8)).astype(np.float32)
        workloads = [
            TenantWorkload("u1", rate_qps=3000.0, n_requests=40, k=3, seed=1),
            TenantWorkload("u2", rate_qps=3000.0, n_requests=25, k=3, seed=2),
        ]
        with ServingEngine(FastBackend(), max_batch=8) as eng:
            reports = run_multi_tenant(eng, queries, workloads)
        assert set(reports) == {"u1", "u2"}
        assert reports["u1"].n_completed == 40
        assert reports["u2"].n_completed == 25
        assert all(r.mode == "open" for r in reports.values())
        # The engine saw tenant tags: per-tenant metrics populated.
        snap = eng.metrics.snapshot()
        assert snap.tenants["u1"].completed == 40
        assert snap.tenants["u2"].completed == 25

    def test_duplicate_or_empty_workloads_rejected(self):
        with ServingEngine(FastBackend(), max_batch=4) as eng:
            with pytest.raises(ValueError, match="at least one"):
                run_multi_tenant(eng, np.zeros((4, 8), dtype=np.float32), [])
            with pytest.raises(ValueError, match="duplicate"):
                run_multi_tenant(
                    eng,
                    np.zeros((4, 8), dtype=np.float32),
                    [
                        TenantWorkload("u", rate_qps=10.0, n_requests=1, k=3),
                        TenantWorkload("u", rate_qps=10.0, n_requests=1, k=3),
                    ],
                )


class TestTileStream:
    def test_exact_length_and_order(self):
        pool = np.arange(6, dtype=np.float32).reshape(3, 2)
        out = tile_stream(pool, 7)
        assert out.shape == (7, 2)
        np.testing.assert_array_equal(out[:3], pool)
        np.testing.assert_array_equal(out[3:6], pool)
        np.testing.assert_array_equal(out[6], pool[0])

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            tile_stream(np.empty((0, 4), dtype=np.float32), 3)
        with pytest.raises(ValueError, match="n must be"):
            tile_stream(np.zeros((2, 4), dtype=np.float32), 0)

    def test_default_seed_tenants_send_distinct_streams(self):
        """Two workloads left at seed=0 must not submit byte-identical
        query orders (the tenant name is mixed into the seed)."""
        queries = np.random.default_rng(0).standard_normal((32, 8)).astype(np.float32)
        first_rows = {}
        orig_submit = ServingEngine.submit

        with ServingEngine(FastBackend(), max_batch=1) as eng:
            def spy(query, k, nprobe=None, *, tenant="default", priority=False):
                first_rows.setdefault(tenant, []).append(float(query[0]))
                return orig_submit(
                    eng, query, k, nprobe, tenant=tenant, priority=priority
                )

            eng.submit = spy
            run_multi_tenant(eng, queries, [
                TenantWorkload("a", rate_qps=5000.0, n_requests=12, k=3),
                TenantWorkload("b", rate_qps=5000.0, n_requests=12, k=3),
            ])
        assert first_rows["a"] != first_rows["b"]
