"""Tests for the replicated / sharded serving tier."""

import threading
import time

import numpy as np
import pytest

from repro.ann.ivf import IVFPQIndex
from repro.ann.partition import partition_index, replicate_index
from repro.data.synthetic import make_clustered
from repro.serve import (
    InstrumentedBackend,
    QueryResultCache,
    ReplicaSet,
    ServingEngine,
    ShardedBackend,
    SimulatedDeviceBackend,
    build_topology,
    warm_topology,
)


@pytest.fixture(scope="module")
def tied_index():
    """Index with every vector stored three times: exact distance ties."""
    base_u = make_clustered(800, 16, n_clusters=16, seed=2)
    base = np.repeat(base_u, 3, axis=0)
    idx = IVFPQIndex(d=16, nlist=16, m=4, ksub=16, seed=0)
    idx.train(base)
    idx.add(base)
    idx.invlists
    return idx


@pytest.fixture(scope="module")
def tied_queries():
    rng = np.random.default_rng(9)
    base_u = make_clustered(800, 16, n_clusters=16, seed=2)
    return (base_u[:40] + rng.normal(0, 0.01, (40, 16))).astype(np.float32)


class TestShardedBackend:
    @pytest.mark.parametrize("n_shards", [2, 3, 5])
    def test_bit_identical_across_grid_with_ties(
        self, tied_index, tied_queries, n_shards
    ):
        """Scatter-gather == unpartitioned search for every (k, nprobe),
        including rows full of exact PQ-distance ties."""
        backend = ShardedBackend.from_index(tied_index, n_shards)
        for k in (1, 5, 17):
            for nprobe in (1, 4, 16):
                ref_i, ref_d = tied_index.search(tied_queries, k, nprobe)
                got_i, got_d = backend.search_batch(tied_queries, k, nprobe)
                np.testing.assert_array_equal(got_i, ref_i)
                np.testing.assert_array_equal(got_d, ref_d)

    def test_parallel_scatter_same_results(self, tied_index, tied_queries):
        seq = ShardedBackend.from_index(tied_index, 4, parallel=False)
        par = ShardedBackend.from_index(tied_index, 4, parallel=True)
        s_i, s_d = seq.search_batch(tied_queries, 5, 4)
        p_i, p_d = par.search_batch(tied_queries, 5, 4)
        np.testing.assert_array_equal(s_i, p_i)
        np.testing.assert_array_equal(s_d, p_d)

    def test_single_shard_passthrough(self, tied_index, tied_queries):
        backend = ShardedBackend.from_index(tied_index, 1)
        ref = tied_index.search(tied_queries, 5, 4)
        got = backend.search_batch(tied_queries, 5, 4)
        np.testing.assert_array_equal(got[0], ref[0])

    def test_d_property_and_validation(self, tied_index):
        assert ShardedBackend.from_index(tied_index, 2).d == tied_index.d
        with pytest.raises(ValueError, match="at least one shard"):
            ShardedBackend([])

    def test_through_engine_bit_identical(self, tied_index, tied_queries):
        backend = ShardedBackend.from_index(tied_index, 3)
        ref_i, ref_d = tied_index.search(tied_queries, 5, 4)
        with ServingEngine(backend, max_batch=8, max_wait_us=2000.0) as eng:
            futs = [eng.submit(q, 5, 4) for q in tied_queries]
            got = [f.result(timeout=60) for f in futs]
        np.testing.assert_array_equal(np.stack([g.ids for g in got]), ref_i)
        np.testing.assert_array_equal(np.stack([g.dists for g in got]), ref_d)


class _CountingBackend:
    """Minimal backend: constant answer, optional service delay."""

    def __init__(self, delay_s=0.0, d=4):
        self.delay_s = delay_s
        self.d = d
        self.calls = 0
        self._lock = threading.Lock()

    def search_batch(self, queries, k, nprobe=None):
        with self._lock:
            self.calls += 1
        if self.delay_s:
            time.sleep(self.delay_s)
        nq = np.atleast_2d(queries).shape[0]
        return (np.zeros((nq, k), dtype=np.int64),
                np.zeros((nq, k), dtype=np.float32))


class TestReplicaSet:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one replica"):
            ReplicaSet([])
        with pytest.raises(ValueError, match="policy"):
            ReplicaSet([_CountingBackend()], policy="random")

    def test_round_robin_cycles(self):
        reps = [_CountingBackend() for _ in range(3)]
        rs = ReplicaSet(reps, policy="round-robin")
        q = np.zeros((1, 4), dtype=np.float32)
        for _ in range(9):
            rs.search_batch(q, 1)
        assert rs.dispatch_counts == [3, 3, 3]

    def test_least_loaded_spreads_when_idle(self):
        reps = [_CountingBackend() for _ in range(3)]
        rs = ReplicaSet(reps, policy="least-loaded")
        q = np.zeros((1, 4), dtype=np.float32)
        for _ in range(9):
            rs.search_batch(q, 1)
        assert rs.dispatch_counts == [3, 3, 3]

    def test_p2c_roughly_balances(self):
        reps = [_CountingBackend() for _ in range(4)]
        rs = ReplicaSet(reps, policy="p2c", seed=3)
        q = np.zeros((1, 4), dtype=np.float32)
        for _ in range(200):
            rs.search_batch(q, 1)
        assert sum(rs.dispatch_counts) == 200
        # Sequential idle-tier p2c is uniform-random over pairs; every
        # replica must land well away from starvation or hoarding.
        assert min(rs.dispatch_counts) > 20
        assert max(rs.dispatch_counts) < 90

    def test_least_loaded_avoids_busy_replica_under_skew(self):
        """One slow device + concurrent dispatch: the in-flight count must
        steer load to the fast replicas."""
        slow = _CountingBackend(delay_s=0.05)
        fasts = [_CountingBackend(delay_s=0.002) for _ in range(2)]
        rs = ReplicaSet([slow, *fasts], policy="least-loaded")
        q = np.zeros(4, dtype=np.float32)
        with ServingEngine(rs, max_batch=1, max_wait_us=0.0, dispatchers=3) as eng:
            futs = [eng.submit(q, 1) for _ in range(60)]
            for f in futs:
                f.result(timeout=60)
        assert sum(rs.dispatch_counts) == 60
        # The slow replica's share collapses: each fast replica serves
        # strictly more, and the slow one stays well under fair share (20).
        assert rs.dispatch_counts[0] < 12, rs.dispatch_counts
        for fast_count in rs.dispatch_counts[1:]:
            assert fast_count > rs.dispatch_counts[0]

    def test_inflight_snapshot_settles_to_zero(self):
        rs = ReplicaSet([_CountingBackend(), _CountingBackend()])
        rs.search_batch(np.zeros((1, 4), dtype=np.float32), 1)
        assert rs.inflight == [0, 0]

    def test_replicas_return_identical_results(self, tied_index, tied_queries):
        rs = ReplicaSet(replicate_index(tied_index, 3), policy="round-robin")
        ref_i, ref_d = tied_index.search(tied_queries, 5, 4)
        for _ in range(3):  # one pass per replica
            got_i, got_d = rs.search_batch(tied_queries, 5, 4)
            np.testing.assert_array_equal(got_i, ref_i)
            np.testing.assert_array_equal(got_d, ref_d)


class TestSimulatedDeviceBackend:
    def test_exact_results_padded_time(self, tied_index, tied_queries):
        dev = SimulatedDeviceBackend(tied_index, 20_000.0, hop_us=1_000.0)
        assert dev.modeled_us(8) == 21_000.0
        t0 = time.perf_counter()
        got_i, got_d = dev.search_batch(tied_queries[:8], 5, 4)
        elapsed_us = (time.perf_counter() - t0) * 1e6
        ref_i, ref_d = tied_index.search(tied_queries[:8], 5, 4)
        np.testing.assert_array_equal(got_i, ref_i)
        np.testing.assert_array_equal(got_d, ref_d)
        assert elapsed_us >= 20_000.0
        assert dev.calls == 1 and dev.busy_us == 21_000.0

    def test_callable_service_model(self):
        inner = _CountingBackend()
        dev = SimulatedDeviceBackend(inner, lambda batch: 10.0 * batch)
        assert dev.modeled_us(4) == 40.0
        with pytest.raises(ValueError, match="hop_us"):
            SimulatedDeviceBackend(inner, 0.0, hop_us=-1.0)


class TestBuildTopology:
    def test_validation(self, tied_index):
        with pytest.raises(ValueError, match="replicas"):
            build_topology(tied_index, replicas=0)
        with pytest.raises(ValueError, match="shards"):
            build_topology(tied_index, shards=0)

    def test_degenerate_dimensions_collapse(self, tied_index):
        assert isinstance(build_topology(tied_index), IVFPQIndex)
        assert isinstance(build_topology(tied_index, replicas=3), ReplicaSet)
        assert isinstance(build_topology(tied_index, shards=2), ShardedBackend)

    def test_full_grid_bit_identical_through_engine(self, tied_index, tied_queries):
        """R=2 x S=3 with concurrent dispatchers: still exact."""
        topo = build_topology(tied_index, replicas=2, shards=3)
        ref_i, ref_d = tied_index.search(tied_queries, 5, 4)
        with ServingEngine(
            topo, max_batch=4, max_wait_us=500.0, dispatchers=2
        ) as eng:
            futs = [eng.submit(q, 5, 4) for q in tied_queries]
            got = [f.result(timeout=60) for f in futs]
        np.testing.assert_array_equal(np.stack([g.ids for g in got]), ref_i)
        np.testing.assert_array_equal(np.stack([g.dists for g in got]), ref_d)

    def test_wrap_applies_to_leaves(self, tied_index):
        topo = build_topology(
            tied_index, replicas=2, shards=2,
            wrap=lambda v: SimulatedDeviceBackend(v, 100.0),
        )
        assert topo.parallel  # wrapped leaves default to parallel scatter
        for column in topo.shards:
            assert all(
                isinstance(r, SimulatedDeviceBackend) for r in column.replicas
            )


class TestEngineDispatchers:
    def test_validation(self, tied_index):
        with pytest.raises(ValueError, match="dispatchers"):
            ServingEngine(tied_index, dispatchers=0)

    def test_multi_dispatcher_serves_all_and_stops_clean(self, tied_index, tied_queries):
        ref_i, _ = tied_index.search(tied_queries, 5, 4)
        rs = ReplicaSet(replicate_index(tied_index, 3))
        eng = ServingEngine(rs, max_batch=4, max_wait_us=200.0, dispatchers=3)
        with eng:
            futs = [eng.submit(q, 5, 4) for q in tied_queries]
            got_i = np.stack([f.result(timeout=60).ids for f in futs])
        np.testing.assert_array_equal(got_i, ref_i)
        # Idempotent stop, restartable after stop.
        eng.stop()
        with eng:
            assert eng.search(tied_queries[0], 5, 4).ids.shape == (5,)


class _FailingBackend:
    """Backend that raises while ``broken`` is set (a dead shard)."""

    def __init__(self, inner, broken=True):
        self.inner = inner
        self.broken = broken
        self.d = getattr(inner, "d", None)

    def search_batch(self, queries, k, nprobe=None):
        if self.broken:
            raise RuntimeError("shard down")
        return self.inner.search_batch(queries, k, nprobe)


def _survivor_coverage(parts, alive) -> float:
    """Data fraction held by the surviving shards (ntotal-weighted)."""
    total = sum(p.ntotal for p in parts)
    return sum(parts[i].ntotal for i in alive) / total


class TestDegradedShardMode:
    @pytest.fixture()
    def parts(self, tied_index):
        return partition_index(tied_index, 3)

    def test_raise_mode_propagates_by_default(self, parts, tied_queries):
        backend = ShardedBackend([parts[0], _FailingBackend(parts[1]), parts[2]])
        with pytest.raises(RuntimeError, match="shard down"):
            backend.search_batch(tied_queries, 5, 4)

    @pytest.mark.parametrize("parallel", [False, True])
    def test_degrade_serves_from_survivors(self, parts, tied_queries, parallel):
        """Merged result equals scatter-gather over the surviving shards
        alone, and the call is flagged as partial coverage — weighted by
        the data fraction each shard holds, not the shard count."""
        backend = ShardedBackend(
            [parts[0], _FailingBackend(parts[1]), parts[2]],
            on_shard_error="degrade", parallel=parallel,
        )
        got_i, got_d = backend.search_batch(tied_queries, 5, 4)
        assert backend.last_coverage() == pytest.approx(
            _survivor_coverage(parts, [0, 2])
        )
        assert backend.shard_errors == [0, 1, 0]
        ref_i, ref_d = ShardedBackend([parts[0], parts[2]]).search_batch(
            tied_queries, 5, 4
        )
        np.testing.assert_array_equal(got_i, ref_i)
        np.testing.assert_array_equal(got_d, ref_d)

    def test_recovery_restores_full_coverage(self, parts, tied_index, tied_queries):
        flaky = _FailingBackend(parts[1])
        backend = ShardedBackend(
            [parts[0], flaky, parts[2]], on_shard_error="degrade"
        )
        backend.search_batch(tied_queries, 5, 4)
        assert backend.last_coverage() < 1.0
        flaky.broken = False  # shard comes back
        got_i, got_d = backend.search_batch(tied_queries, 5, 4)
        assert backend.last_coverage() == 1.0
        ref_i, ref_d = tied_index.search(tied_queries, 5, 4)
        np.testing.assert_array_equal(got_i, ref_i)
        np.testing.assert_array_equal(got_d, ref_d)

    def test_all_shards_failed_raises(self, parts, tied_queries):
        backend = ShardedBackend(
            [_FailingBackend(p) for p in parts], on_shard_error="degrade"
        )
        with pytest.raises(RuntimeError, match="all 3 shards failed"):
            backend.search_batch(tied_queries, 5, 4)

    def test_validation(self, parts):
        with pytest.raises(ValueError, match="on_shard_error"):
            ShardedBackend(parts, on_shard_error="retry")
        with pytest.raises(ValueError, match="shard_weights"):
            ShardedBackend(parts, shard_weights=[0.5, 0.5])
        with pytest.raises(ValueError, match="shard_weights"):
            ShardedBackend(parts, shard_weights=[1.0, -1.0, 1.0])

    def test_coverage_weights_follow_data_not_shard_count(self, parts):
        """Inferred weights are each shard's ntotal fraction; explicit
        weights override them."""
        backend = ShardedBackend(parts)
        total = sum(p.ntotal for p in parts)
        assert backend.shard_weights == pytest.approx(
            [p.ntotal / total for p in parts]
        )
        explicit = ShardedBackend(parts, shard_weights=[6.0, 3.0, 1.0])
        assert explicit.shard_weights == pytest.approx([0.6, 0.3, 0.1])

    def test_opaque_shards_fall_back_to_uniform_weights(self):
        backends = [_CountingBackend() for _ in range(4)]  # no ntotal
        assert ShardedBackend(backends).shard_weights == [0.25] * 4

    @pytest.mark.parametrize("n_shards", [3, 6, 7])
    def test_healthy_coverage_is_exactly_one(self, n_shards):
        """Normalized float weights can sum below 1.0 (e.g. 6 x 1/6);
        a healthy topology must still report coverage exactly 1.0, or
        every result would be flagged partial and nothing ever cached."""
        backends = [_CountingBackend() for _ in range(n_shards)]
        sharded = ShardedBackend(backends, on_shard_error="degrade")
        sharded.search_batch(np.zeros((2, 4), dtype=np.float32), 1)
        assert sharded.last_coverage() == 1.0
        cache = QueryResultCache(16)
        with ServingEngine(sharded, max_batch=2, cache=cache) as eng:
            res = eng.search(np.zeros(4, dtype=np.float32), 1)
            hit = eng.search(np.zeros(4, dtype=np.float32), 1)
        assert res.coverage == 1.0 and not res.partial
        assert hit.cache_hit  # full-coverage results stay cacheable
        assert "partial" not in eng.metrics.snapshot().counters

    def test_single_shard_degrade_counts_failure_and_raises(self, parts):
        flaky = _FailingBackend(parts[0])
        backend = ShardedBackend([flaky], on_shard_error="degrade")
        with pytest.raises(RuntimeError, match="all 1 shards failed"):
            backend.search_batch(np.zeros((1, 16), dtype=np.float32), 5, 4)
        assert backend.shard_errors == [1]
        flaky.broken = False  # recovery at S=1 restores full coverage
        backend.search_batch(np.zeros((1, 16), dtype=np.float32), 5, 4)
        assert backend.last_coverage() == 1.0

    def test_engine_flags_partial_and_skips_cache(self, parts, tied_queries):
        backend = ShardedBackend(
            [parts[0], _FailingBackend(parts[1]), parts[2]],
            on_shard_error="degrade",
        )
        cache = QueryResultCache(64)
        with ServingEngine(backend, max_batch=4, cache=cache) as eng:
            res = eng.search(tied_queries[0], 5, 4)
        assert res.partial
        assert res.coverage == pytest.approx(_survivor_coverage(parts, [0, 2]))
        assert len(cache) == 0  # partial answers must never be cached
        assert eng.metrics.snapshot().counters["partial"] == 1

    def test_full_coverage_results_are_cached(self, parts, tied_queries):
        backend = ShardedBackend(parts, on_shard_error="degrade")
        cache = QueryResultCache(64)
        with ServingEngine(backend, max_batch=4, cache=cache) as eng:
            res = eng.search(tied_queries[0], 5, 4)
            hit = eng.search(tied_queries[0], 5, 4)
        assert not res.partial and res.coverage == 1.0
        assert hit.cache_hit
        assert len(cache) == 1

    def test_coverage_forwards_through_wrappers(self, parts, tied_queries):
        deg = ShardedBackend(
            [parts[0], _FailingBackend(parts[1]), parts[2]],
            on_shard_error="degrade",
        )
        wrapped = SimulatedDeviceBackend(InstrumentedBackend(deg), 0.0)
        wrapped.search_batch(tied_queries[:4], 5, 4)
        assert wrapped.last_coverage() == pytest.approx(
            _survivor_coverage(parts, [0, 2])
        )


class TestWarmup:
    def test_warm_matches_lazy_results_bit_identically(
        self, tied_index, tied_queries
    ):
        """An eagerly-warmed replica answers exactly like a cold one."""
        cold, warm = replicate_index(tied_index, 2)
        built = warm.warm_gather_cache()
        assert built > 0
        ref_i, ref_d = cold.search(tied_queries, 5, 16)
        got_i, got_d = warm.search(tied_queries, 5, 16)
        np.testing.assert_array_equal(got_i, ref_i)
        np.testing.assert_array_equal(got_d, ref_d)

    def test_warm_is_idempotent_and_complete(self, tied_index):
        view = replicate_index(tied_index, 1)[0]
        n_nonempty = int((view.invlists.sizes > 0).sum())
        assert view.warm_gather_cache() == n_nonempty
        assert view.warm_gather_cache() == 0  # everything already built

    def test_warm_subset_of_cells(self, tied_index):
        view = replicate_index(tied_index, 1)[0]
        nonempty = np.flatnonzero(view.invlists.sizes > 0)[:3]
        assert view.warm_gather_cache(cells=nonempty) == len(nonempty)
        assert view.warm_gather_cache(cells=nonempty) == 0

    def test_warm_topology_reaches_every_leaf(self, tied_index):
        """R x S grid with wrapped leaves: all R*S gather caches prime."""
        topo = build_topology(
            tied_index, replicas=2, shards=2,
            wrap=lambda v: SimulatedDeviceBackend(v, 0.0),
        )
        built = warm_topology(topo)
        per_shard = [
            int((col.replicas[0].inner.invlists.sizes > 0).sum())
            for col in topo.shards
        ]
        assert built == 2 * sum(per_shard)  # 2 replicas of every shard
        assert warm_topology(topo) == 0  # second pass: nothing left cold

    def test_build_topology_warm_flag(self, tied_index, tied_queries):
        topo = build_topology(tied_index, replicas=2, shards=2, warm=True)
        assert warm_topology(topo) == 0  # already primed at build time
        ref_i, _ = tied_index.search(tied_queries, 5, 4)
        got_i, _ = topo.search_batch(tied_queries, 5, 4)
        np.testing.assert_array_equal(got_i, ref_i)

    def test_warm_topology_noop_on_unwarmable_backend(self):
        assert warm_topology(_CountingBackend()) == 0


class _PlainShard:
    """Wrapper hiding ``search_batch_preselected``: a legacy shard that
    only understands per-query search frames."""

    def __init__(self, inner):
        self.inner = inner
        self.d = inner.d
        self.ntotal = inner.ntotal

    def search_batch(self, queries, k, nprobe=None):
        return self.inner.search_batch(queries, k, nprobe)


class TestPreselectRouting:
    @pytest.fixture()
    def planner(self, tied_index):
        """A coarse-plan view sharing the shards' trained quantizers."""
        return replicate_index(tied_index, 1)[0]

    def test_preselect_scatter_bit_identical(
        self, tied_index, tied_queries, planner
    ):
        ref_i, ref_d = tied_index.search(tied_queries, 5, 4)
        backend = ShardedBackend(
            partition_index(tied_index, 3), preselect=planner
        )
        got_i, got_d = backend.search_batch(tied_queries, 5, 4)
        np.testing.assert_array_equal(got_i, ref_i)
        np.testing.assert_array_equal(got_d, ref_d)

    def test_coarse_runs_once_per_scatter(
        self, tied_index, tied_queries, planner
    ):
        """S shards, one plan: the planner's batch counter moves once per
        scatter and the shards never run their own coarse stage."""
        shards = partition_index(tied_index, 3)
        backend = ShardedBackend(shards, preselect=planner)
        b0 = planner.stats.preselect_batches
        for _ in range(4):
            backend.search_batch(tied_queries, 5, 4)
        assert planner.stats.preselect_batches == b0 + 4
        assert backend.preselect_scatters == 4
        for s in shards:
            assert s.stats.preselect_batches == 0

    def test_parallel_preselect_scatter_same_results(
        self, tied_index, tied_queries, planner
    ):
        seq = ShardedBackend(
            partition_index(tied_index, 4), preselect=planner
        )
        par = ShardedBackend(
            partition_index(tied_index, 4),
            preselect=replicate_index(tied_index, 1)[0], parallel=True,
        )
        s_i, s_d = seq.search_batch(tied_queries, 5, 4)
        p_i, p_d = par.search_batch(tied_queries, 5, 4)
        np.testing.assert_array_equal(s_i, p_i)
        np.testing.assert_array_equal(s_d, p_d)

    def test_plain_shards_fall_back_bit_identically(
        self, tied_index, tied_queries, planner
    ):
        """A mixed fleet — some shards lack the preselected entry — still
        answers exactly; the plan is simply unused on the legacy ones."""
        parts = partition_index(tied_index, 3)
        backend = ShardedBackend(
            [parts[0], _PlainShard(parts[1]), parts[2]], preselect=planner
        )
        ref_i, ref_d = tied_index.search(tied_queries, 5, 4)
        got_i, got_d = backend.search_batch(tied_queries, 5, 4)
        np.testing.assert_array_equal(got_i, ref_i)
        np.testing.assert_array_equal(got_d, ref_d)

    def test_no_nprobe_skips_planner(self, planner):
        """Without an explicit nprobe there is no plan to compute — the
        scatter goes out as plain search frames."""
        backend = ShardedBackend(
            [_CountingBackend(d=16) for _ in range(2)], preselect=planner
        )
        b0 = planner.stats.preselect_batches
        backend.search_batch(np.zeros((3, 16), dtype=np.float32), 5)
        assert planner.stats.preselect_batches == b0
        assert backend.preselect_scatters == 0

    def test_degrade_mode_composes_with_preselect(
        self, tied_index, tied_queries, planner
    ):
        parts = partition_index(tied_index, 3)
        backend = ShardedBackend(
            [parts[0], _FailingBackend(parts[1]), parts[2]],
            preselect=planner, on_shard_error="degrade",
        )
        got_i, got_d = backend.search_batch(tied_queries, 5, 4)
        assert backend.last_coverage() == pytest.approx(
            _survivor_coverage(parts, [0, 2])
        )
        ref_i, ref_d = ShardedBackend(
            [parts[0], parts[2]]
        ).search_batch(tied_queries, 5, 4)
        np.testing.assert_array_equal(got_i, ref_i)
        np.testing.assert_array_equal(got_d, ref_d)

    def test_non_planner_rejected(self, tied_index):
        with pytest.raises(ValueError, match="preselect"):
            ShardedBackend(
                partition_index(tied_index, 2), preselect=object()
            )


class _FlakyBackend:
    """Backend whose transport "dies" on demand (raises ``OSError``)."""

    def __init__(self, inner, tag=0):
        self.inner = inner
        self.tag = tag
        self.broken = False
        self.calls = 0
        self.d = getattr(inner, "d", None)

    def search_batch(self, queries, k, nprobe=None):
        self.calls += 1
        if self.broken:
            raise ConnectionResetError(f"replica {self.tag} died")
        return self.inner.search_batch(queries, k, nprobe)


class TestReplicaLiveness:
    """mark_down/mark_up/set_replica/failover — the supervisor's view."""

    def test_mark_down_routes_around_dead_replica(self):
        backs = [_CountingBackend(), _CountingBackend()]
        rs = ReplicaSet(backs, policy="round-robin")
        rs.mark_down(0)
        assert rs.live == [False, True]
        for _ in range(4):
            rs.search_batch(np.zeros((1, 4), dtype=np.float32), 3)
        assert backs[0].calls == 0
        assert backs[1].calls == 4
        rs.mark_up(0)
        assert rs.live == [True, True]
        for _ in range(4):
            rs.search_batch(np.zeros((1, 4), dtype=np.float32), 3)
        assert backs[0].calls == 2
        assert backs[1].calls == 6

    def test_failover_completes_call_and_sticks(self, tied_index, tied_queries):
        """A replica dying mid-call is retried on a survivor — same
        answer, no exception — and stays down for later calls."""
        flaky = _FlakyBackend(tied_index, tag=0)
        rs = ReplicaSet([flaky, tied_index], policy="round-robin", seed=0)
        ref = tied_index.search(tied_queries, 5, 4)
        flaky.broken = True
        for _ in range(3):
            got = rs.search_batch(tied_queries, 5, 4)
            np.testing.assert_array_equal(got[0], ref[0])
            np.testing.assert_array_equal(got[1], ref[1])
        # First call hit the flaky replica, failed over, marked it down;
        # later calls never touched it again.
        assert flaky.calls == 1
        assert rs.failover_counts[0] == 1
        assert rs.live == [False, True]

    def test_all_replicas_dead_raises_typed_error(self):
        from repro.serve.backends import BackendUnavailableError

        b0, b1 = _FlakyBackend(None, 0), _FlakyBackend(None, 1)
        b0.broken = b1.broken = True
        rs = ReplicaSet([b0, b1], policy="round-robin")
        with pytest.raises(BackendUnavailableError, match="no live replica"):
            rs.search_batch(np.zeros((1, 4), dtype=np.float32), 3)
        # Both are marked down now; an immediate retry fails fast
        # without touching either backend.
        calls = (b0.calls, b1.calls)
        with pytest.raises(BackendUnavailableError):
            rs.search_batch(np.zeros((1, 4), dtype=np.float32), 3)
        assert (b0.calls, b1.calls) == calls

    def test_set_replica_swaps_membership_atomically(self, tied_index, tied_queries):
        """The recovery path: a dead slot is re-pointed at a fresh
        backend and immediately serves bit-identical answers."""
        flaky = _FlakyBackend(tied_index, tag=0)
        flaky.broken = True
        rs = ReplicaSet([flaky, tied_index], policy="round-robin", seed=0)
        ref = tied_index.search(tied_queries, 5, 4)
        rs.search_batch(tied_queries, 5, 4)  # fails over, marks 0 down
        assert rs.live == [False, True]
        replacement = _CountingBackend(d=tied_index.d)
        replacement.search_batch = tied_index.search_batch  # exact twin
        rs.set_replica(0, replacement)
        assert rs.live == [True, True]
        for _ in range(4):
            got = rs.search_batch(tied_queries, 5, 4)
            np.testing.assert_array_equal(got[0], ref[0])
        assert rs.replicas[0] is replacement

    def test_inflight_survives_swap_under_live_load(self, tied_index):
        """Swapping a replica while a call is executing on it must not
        corrupt the in-flight accounting (decrement targets the slot,
        not the object)."""
        slow = _CountingBackend(delay_s=0.2, d=4)
        rs = ReplicaSet([slow, _CountingBackend(d=4)], policy="least-loaded")
        t = threading.Thread(
            target=rs.search_batch,
            args=(np.zeros((1, 4), dtype=np.float32), 3),
        )
        t.start()
        # Wait until the slow call is actually in flight on slot 0.
        deadline = time.monotonic() + 5.0
        while rs.inflight[0] == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        assert rs.inflight[0] == 1
        rs.set_replica(0, _CountingBackend(d=4))
        t.join()
        assert rs.inflight == [0, 0]

    def test_supports_preselected_reflects_replicas(self, tied_index):
        assert ReplicaSet([tied_index]).supports_preselected
        assert not ReplicaSet([_CountingBackend()]).supports_preselected

    def test_preselected_scatter_through_replica_group(self, tied_index, tied_queries):
        """search_batch_preselected dispatches like any call: bit-equal
        to the direct path and following the routing policy."""
        rs = ReplicaSet([tied_index, tied_index], policy="round-robin")
        nprobe = 4
        queries_t, probed = tied_index.preselect(tied_queries, nprobe)
        ref = tied_index.search_batch_preselected(queries_t, probed, 5)
        got = rs.search_batch_preselected(queries_t, probed, 5)
        np.testing.assert_array_equal(got[0], ref[0])
        np.testing.assert_array_equal(got[1], ref[1])
        assert sum(rs.dispatch_counts) == 1
