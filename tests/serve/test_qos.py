"""Tests for the multi-tenant QoS layer: quotas, WFQ, adaptive window."""

import queue as queue_mod
import time

import numpy as np
import pytest

from repro.ann.ivf import IVFPQIndex
from repro.data.synthetic import make_clustered
from repro.serve import (
    AdaptiveBatchWindow,
    QuotaExceededError,
    ServingEngine,
    TenantPolicy,
    TokenBucket,
    WFQDiscipline,
)
from repro.serve.qos import class_label, default_cost

D = 16
K = 5
NPROBE = 4


class Req:
    """Minimal request stand-in carrying the QoS-relevant attributes."""

    def __init__(self, tenant, k=K, nprobe=NPROBE, priority=False, tag=None):
        self.tenant = tenant
        self.k = k
        self.nprobe = nprobe
        self.priority = priority
        self.tag = tag


class FakeClock:
    """Manually-advanced clock for deterministic bucket/window tests."""

    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture(scope="module")
def small_index():
    vecs = make_clustered(2200, D, n_clusters=32, seed=11)
    index = IVFPQIndex(d=D, nlist=32, m=4, ksub=32, seed=0)
    index.train(vecs[:2000])
    index.add(vecs[:2000])
    index.invlists
    return index, vecs[2000:]


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, burst=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [True] * 3 + [False]
        clock.advance(0.1)  # one token accrues at 10/s
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_burst_caps_accrual(self):
        clock = FakeClock()
        bucket = TokenBucket(100.0, burst=5, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == pytest.approx(5.0)

    def test_blocking_acquire_waits_for_tokens(self):
        bucket = TokenBucket(1000.0, burst=1)
        assert bucket.try_acquire()
        t0 = time.perf_counter()
        assert bucket.acquire()  # ~1ms until the next token
        assert time.perf_counter() - t0 < 1.0

    def test_acquire_timeout(self):
        bucket = TokenBucket(0.1, burst=1)
        assert bucket.try_acquire()
        assert not bucket.acquire(timeout=0.01)

    def test_refund_returns_tokens_capped_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(0.001, burst=3, clock=clock)
        assert all(bucket.try_acquire() for _ in range(3))
        bucket.refund()
        assert bucket.try_acquire()
        bucket.refund(10.0)  # cannot exceed burst
        assert bucket.tokens == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(0.0)

    def test_time_until_tracks_refill_schedule(self):
        clock = FakeClock()
        bucket = TokenBucket(2.0, burst=1, clock=clock)
        assert bucket.time_until() == 0.0  # starts full
        assert bucket.try_acquire()
        assert bucket.time_until() == pytest.approx(0.5)  # 1 token at 2/s
        clock.advance(0.25)
        assert bucket.time_until() == pytest.approx(0.25)
        clock.advance(0.25)
        assert bucket.time_until() == 0.0


class TestTenantPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="weight"):
            TenantPolicy(weight=0.0)
        with pytest.raises(ValueError, match="rate_qps"):
            TenantPolicy(rate_qps=-1.0)
        with pytest.raises(ValueError, match="burst"):
            TenantPolicy(rate_qps=1.0, burst=0.5)


class TestWFQDiscipline:
    def test_weighted_share_under_saturation(self):
        """Backlogged tenants drain proportionally to their weights."""
        d = WFQDiscipline(
            {"a": TenantPolicy(weight=2.0), "b": TenantPolicy(weight=1.0)},
            depth=10_000,
        )
        for _ in range(600):
            d.put(Req("a"))
            d.put(Req("b"))
        served = [d.get_nowait().tenant for _ in range(300)]
        share_a = served.count("a") / len(served)
        # Exact fair share is 2/3; allow a small discretization band.
        assert 0.6 <= share_a <= 0.73, share_a

    def test_work_conservation(self):
        """get_nowait always yields a request while any lane is backlogged."""
        d = WFQDiscipline(depth=1000)
        for i in range(100):
            d.put(Req(f"t{i % 7}", priority=(i % 11 == 0)))
        for _ in range(100):
            d.get_nowait()  # must never raise Empty
        with pytest.raises(queue_mod.Empty):
            d.get_nowait()

    def test_priority_lane_never_waits_behind_best_effort(self):
        d = WFQDiscipline({"gold": TenantPolicy(priority=True)}, depth=1000)
        for i in range(50):
            d.put(Req("bulk", tag=f"be{i}"))
        d.put(Req("gold", priority=True, tag="urgent"))
        assert d.get_nowait().tag == "urgent"

    def test_priority_demoted_without_entitlement(self):
        """priority=True from a non-entitled tenant joins its normal flow."""
        d = WFQDiscipline(depth=100)  # default policy: no priority
        d.put(Req("bulk", tag="first"))
        d.put(Req("bulk", priority=True, tag="pushy"))
        assert d.get_nowait().tag == "first"  # FIFO within the flow
        assert d.priority_demoted == 1

    def test_cost_classes_charge_the_tenant(self):
        """A tenant sending 8x-cost requests gets ~1/8th the requests
        through at equal weight — fairness is in service, not count."""
        d = WFQDiscipline(depth=10_000, cost_fn=lambda k, nprobe: float(nprobe))
        for _ in range(400):
            d.put(Req("cheap", nprobe=1))
            d.put(Req("heavy", nprobe=8))
        served = [d.get_nowait().tenant for _ in range(180)]
        cheap = served.count("cheap")
        assert cheap / len(served) == pytest.approx(8 / 9, abs=0.05)

    def test_classes_within_tenant_round_robin(self):
        """A cheap class is not stuck behind the same tenant's expensive
        backlog: lanes alternate."""
        d = WFQDiscipline(depth=1000)
        for i in range(10):
            d.put(Req("t", nprobe=32, tag=f"big{i}"))
        d.put(Req("t", nprobe=1, tag="small"))
        tags = [d.get_nowait().tag for _ in range(3)]
        assert "small" in tags, tags

    def test_sentinels_drain_after_all_requests(self):
        d = WFQDiscipline(depth=100)
        sentinel = object()
        d.put(Req("a"))
        d.put(sentinel)
        d.put(Req("b"))
        first, second, third = (d.get_nowait() for _ in range(3))
        assert isinstance(first, Req) and isinstance(second, Req)
        assert third is sentinel
        with pytest.raises(queue_mod.Empty):
            d.get_nowait()

    def test_depth_bound_sheds(self):
        d = WFQDiscipline(depth=2)
        d.put_nowait(Req("a"))
        d.put_nowait(Req("a"))
        with pytest.raises(queue_mod.Full):
            d.put_nowait(Req("b"))
        assert d.qsize() == 2 and d.maxsize == 2

    def test_get_timeout_raises_empty(self):
        d = WFQDiscipline(depth=10)
        t0 = time.perf_counter()
        with pytest.raises(queue_mod.Empty):
            d.get(timeout=0.02)
        assert time.perf_counter() - t0 >= 0.015

    def test_backlog_breakdown(self):
        d = WFQDiscipline({"gold": TenantPolicy(priority=True)}, depth=100)
        d.put(Req("a"))
        d.put(Req("a"))
        d.put(Req("gold", priority=True))
        assert d.backlog() == {"a": 2, "!": 1}

    def test_metered_default_policy_applies_to_unlisted_tenants(self):
        """A blanket default-policy quota meters every unlisted tenant —
        each with its OWN bucket, not a shared one."""
        clock = FakeClock()
        d = WFQDiscipline(
            {"vip": TenantPolicy()},  # listed, no rate: explicitly unmetered
            default_policy=TenantPolicy(rate_qps=10.0, burst=2),
            clock=clock,
        )
        assert d.admit("anon1", block=False)
        assert d.admit("anon1", block=False)
        assert not d.admit("anon1", block=False)  # anon1's burst spent
        assert d.admit("anon2", block=False)  # anon2 has its own bucket
        for _ in range(10):
            assert d.admit("vip", block=False)  # listed tenant stays unmetered
        d.refund("anon1")
        assert d.admit("anon1", block=False)  # refund reached anon1's bucket

    def test_admit_unmetered_and_metered(self):
        clock = FakeClock()
        d = WFQDiscipline(
            {"lim": TenantPolicy(rate_qps=10.0, burst=2)}, clock=clock
        )
        assert d.admit("anyone")  # unmetered: always admitted
        assert d.admit("lim", block=False)
        assert d.admit("lim", block=False)
        assert not d.admit("lim", block=False)  # burst spent
        clock.advance(0.1)
        assert d.admit("lim", block=False)

    def test_retry_after_follows_the_refill_rate(self):
        clock = FakeClock()
        d = WFQDiscipline(
            {"lim": TenantPolicy(rate_qps=10.0, burst=1)}, clock=clock
        )
        assert d.retry_after_s("anyone") is None  # unmetered: no schedule
        assert d.retry_after_s("lim") == 0.0  # bucket starts full
        assert d.admit("lim", block=False)
        assert d.retry_after_s("lim") == pytest.approx(0.1)  # 1 token at 10/s
        clock.advance(0.04)
        assert d.retry_after_s("lim") == pytest.approx(0.06)

    def test_drain_reset_regardless_of_final_lane(self):
        """Whenever the system drains, flow state and the virtual clock
        reset — whichever lane the final pop came through."""
        d = WFQDiscipline({"gold": TenantPolicy(priority=True)}, depth=100)
        d.put(Req("worker", nprobe=64))  # expensive: large finish tag
        d.put(Req("gold", priority=True))
        assert d.get_nowait().tenant == "gold"  # priority first
        assert d._flows  # worker still backlogged: state retained
        d.get_nowait()  # last item drains via the SFQ lane
        assert not d._flows and d._vtime == 0.0
        d.put(Req("gold", priority=True))  # sole occupant: priority lane
        d.get_nowait()
        assert not d._flows and d._vtime == 0.0

    def test_drained_tenant_state_swept(self):
        """Unbounded tenant-name cardinality must not leak flows or
        default-policy buckets: drained state is swept periodically."""
        clock = FakeClock()
        d = WFQDiscipline(
            default_policy=TenantPolicy(rate_qps=1000.0, burst=4),
            depth=100_000, clock=clock,
        )
        n = 40 * d._SWEEP_EVERY
        for i in range(n):
            assert d.admit(f"t{i}", block=False)  # lazy bucket per tenant
            d.put(Req(f"t{i}"))
            d.get_nowait()  # drain immediately: flow is dead weight
            clock.advance(0.01)  # buckets refill back to full burst
        assert len(d._flows) < n / 4, len(d._flows)
        assert len(d._buckets) < n / 4, len(d._buckets)

    def test_validation(self):
        with pytest.raises(ValueError, match="depth"):
            WFQDiscipline(depth=0)


class TestAdaptiveBatchWindow:
    def make(self, clock, **kw):
        defaults = dict(
            min_us=0.0, max_us=10_000.0, target_batch=16,
            idle_after_s=0.25, clock=clock,
        )
        defaults.update(kw)
        return AdaptiveBatchWindow(**defaults)

    def feed_arrivals(self, win, clock, gap_s, n):
        for _ in range(n):
            clock.advance(gap_s)
            win.observe_arrival()

    def test_grows_under_load(self):
        """Sustained 1 kqps arrivals pull the window up toward the time
        needed to coalesce a full batch."""
        clock = FakeClock()
        win = self.make(clock)
        assert win.current_us() == 0.0
        self.feed_arrivals(win, clock, 0.001, 50)  # 1000 qps
        for _ in range(30):
            win.update()
        # Fill target: (16 - 1) / 1000 qps = 15 ms, capped at max 10 ms.
        assert win.current_us() == pytest.approx(10_000.0, rel=0.05)

    def test_shrinks_when_idle(self):
        clock = FakeClock()
        win = self.make(clock)
        self.feed_arrivals(win, clock, 0.001, 50)
        for _ in range(30):
            win.update()
        assert win.current_us() > 5_000.0
        clock.advance(5.0)  # arrivals stop
        for _ in range(40):
            win.update()
        assert win.current_us() < 100.0  # decayed back toward min

    def test_low_rate_means_no_waiting(self):
        """When not even one straggler fits in the max window, waiting is
        pure latency: the target collapses to min."""
        clock = FakeClock()
        win = self.make(clock)
        # 20 qps: rate * max_window = 0.2 expected arrivals < 1.
        self.feed_arrivals(win, clock, 0.05, 30)
        for _ in range(10):
            win.update()
        assert win.current_us() < 100.0

    def test_first_arrival_after_idle_sees_collapsed_window(self):
        """The lone request ending an idle period must not pay the stale
        grown window — it collapses at arrival time, before the
        dispatcher reads it (update() only runs after a batch)."""
        clock = FakeClock()
        win = self.make(clock)
        self.feed_arrivals(win, clock, 0.001, 50)
        for _ in range(30):
            win.update()
        assert win.current_us() > 5_000.0
        clock.advance(120.0)  # minutes of silence, no update() calls
        win.observe_arrival()  # the straggler that ends the idle period
        assert win.current_us() == win.min_us
        # The stale busy-period rate estimate reset with it.
        assert win.rate_qps == 0.0

    def test_slo_guard_shrinks_multiplicatively(self):
        clock = FakeClock()
        win = self.make(clock, slo_p99_us=5_000.0)
        self.feed_arrivals(win, clock, 0.001, 50)
        for _ in range(30):
            win.update()
        grown = win.current_us()
        assert grown > 5_000.0
        for _ in range(20):
            win.observe_latency(50_000.0)  # way over SLO
        win.update()
        assert win.current_us() <= 0.55 * grown
        for _ in range(10):
            win.update()
        assert win.current_us() < 100.0

    def test_rate_estimate(self):
        clock = FakeClock()
        win = self.make(clock)
        self.feed_arrivals(win, clock, 0.002, 100)
        assert win.rate_qps == pytest.approx(500.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError, match="min_us"):
            AdaptiveBatchWindow(min_us=10.0, max_us=5.0)
        with pytest.raises(ValueError, match="target_batch"):
            AdaptiveBatchWindow(target_batch=1)
        with pytest.raises(ValueError, match="slo_p99_us"):
            AdaptiveBatchWindow(slo_p99_us=0.0)


class TestHelpers:
    def test_class_label(self):
        assert class_label(10, 8) == "k10/np8"
        assert class_label(3, None) == "k3/np-"

    def test_default_cost_monotone(self):
        assert default_cost(10, 16) > default_cost(10, 8)
        assert default_cost(100, 8) > default_cost(10, 8)
        assert default_cost(1, None) >= 1.0


class TestEngineIntegration:
    def test_bit_identical_through_wfq_and_window(self, small_index):
        """QoS reorders requests but never changes answers."""
        index, queries = small_index
        ref_ids, ref_dists = index.search(queries, K, NPROBE)
        discipline = WFQDiscipline(
            {
                "gold": TenantPolicy(weight=4.0, priority=True),
                "bulk": TenantPolicy(weight=1.0),
            },
            depth=4096,
        )
        window = AdaptiveBatchWindow(slo_p99_us=100_000.0, max_us=2_000.0)
        with ServingEngine(
            index, max_batch=8, discipline=discipline, adaptive_window=window
        ) as eng:
            futs = [
                eng.submit(
                    q, K, NPROBE,
                    tenant="gold" if i % 3 == 0 else "bulk",
                    priority=(i % 3 == 0),
                )
                for i, q in enumerate(queries)
            ]
            got = [f.result(timeout=30) for f in futs]
        np.testing.assert_array_equal(np.stack([g.ids for g in got]), ref_ids)
        np.testing.assert_array_equal(np.stack([g.dists for g in got]), ref_dists)

    def test_quota_sheds_one_tenant_not_others(self, small_index):
        index, queries = small_index
        discipline = WFQDiscipline(
            {"metered": TenantPolicy(rate_qps=1.0, burst=2)}, depth=1024
        )
        with ServingEngine(
            index, max_batch=8, policy="shed", discipline=discipline
        ) as eng:
            assert eng.search(queries[0], K, NPROBE, tenant="metered").ids.shape
            assert eng.search(queries[0], K, NPROBE, tenant="metered").ids.shape
            with pytest.raises(QuotaExceededError, match="metered") as exc_info:
                eng.submit(queries[0], K, NPROBE, tenant="metered")
            # The shed carries the bucket's refill time: 2 tokens burned
            # at 1 qps means ~1 s until the next (minus elapsed serving).
            assert exc_info.value.retry_after_s == pytest.approx(1.0, abs=0.5)
            # Other tenants are unaffected by the metered tenant's shed.
            assert eng.search(queries[1], K, NPROBE, tenant="free").ids.shape
        snap = eng.metrics.snapshot()
        assert snap.tenants["metered"].shed == 1
        assert snap.tenants["metered"].completed == 2
        assert snap.tenants["free"].shed == 0

    def test_quota_shed_journals_typed_event(self, small_index):
        """A quota refusal lands in the engine's event journal with the
        tenant and the retry hint — the record serve-top surfaces."""
        from repro.obs.events import EventLog

        index, queries = small_index
        events = EventLog()
        discipline = WFQDiscipline(
            {"metered": TenantPolicy(rate_qps=1.0, burst=1)}, depth=64
        )
        with ServingEngine(
            index, max_batch=8, policy="shed", discipline=discipline,
            events=events,
        ) as eng:
            eng.search(queries[0], K, NPROBE, tenant="metered")
            with pytest.raises(QuotaExceededError):
                eng.submit(queries[0], K, NPROBE, tenant="metered")
        (ev,) = events.events("quota_exceeded")
        assert ev["tenant"] == "metered"
        assert ev["retry_after_s"] > 0

    def test_queue_full_shed_refunds_quota_token(self, small_index):
        """A quota-admitted request refused by the full queue gives its
        token back — overload must not also drain the tenant's quota."""
        index, queries = small_index

        class Gated:
            d = D

            def __init__(self):
                import threading
                self.gate = threading.Event()

            def search_batch(self, q, k, nprobe=None):
                self.gate.wait(timeout=30)
                return index.search_batch(np.atleast_2d(q), k, nprobe)

        clock = FakeClock()
        discipline = WFQDiscipline(
            {"m": TenantPolicy(rate_qps=0.001, burst=10)},
            depth=1, clock=clock,
        )
        be = Gated()
        with ServingEngine(
            be, max_batch=1, policy="shed", discipline=discipline
        ) as eng:
            f1 = eng.submit(queries[0], K, NPROBE, tenant="m")  # in service
            time.sleep(0.05)  # let the worker dequeue it and park
            eng.submit(queries[1], K, NPROBE, tenant="m")  # fills depth=1
            from repro.serve.scheduler import AdmissionError
            with pytest.raises(AdmissionError, match="queue full"):
                eng.submit(queries[2], K, NPROBE, tenant="m")
            # 3 charges, 1 refund (the clock is frozen: no refills).
            assert discipline._buckets["m"].tokens == pytest.approx(8.0)
            be.gate.set()
            f1.result(timeout=30)

    def test_per_tenant_and_class_metrics(self, small_index):
        index, queries = small_index
        with ServingEngine(index, max_batch=8) as eng:
            for i in range(6):
                eng.search(queries[i], K, NPROBE, tenant="a")
            for i in range(3):
                eng.search(queries[i], K, NPROBE + 1, tenant="b")
        snap = eng.metrics.snapshot()
        assert snap.tenants["a"].completed == 6
        assert snap.tenants["b"].completed == 3
        assert snap.tenants["a"].total.count == 6
        assert set(snap.classes) == {
            class_label(K, NPROBE), class_label(K, NPROBE + 1)
        }
        assert snap.classes[class_label(K, NPROBE)].count == 6
