"""Tests for the dynamic micro-batching serving engine."""

import threading
import time

import numpy as np
import pytest

from repro.ann.ivf import IVFPQIndex
from repro.data.synthetic import make_clustered
from repro.obs.events import EventLog
from repro.serve import (
    AdmissionError,
    InstrumentedBackend,
    QueryResultCache,
    ServingEngine,
)

D = 16
K = 5
NPROBE = 4


class FakeBackend:
    """Deterministic stand-in: ids derive from the query's first element."""

    def __init__(self, delay_s: float = 0.0, fail: bool = False):
        self.delay_s = delay_s
        self.fail = fail

    def search_batch(self, queries, k, nprobe=None):
        if self.fail:
            raise RuntimeError("backend exploded")
        if self.delay_s:
            time.sleep(self.delay_s)
        queries = np.atleast_2d(queries)
        base = queries[:, 0].astype(np.int64)[:, None]
        ids = base * 100 + np.arange(k, dtype=np.int64)[None, :]
        dists = np.tile(np.arange(k, dtype=np.float32), (queries.shape[0], 1))
        return ids, dists


@pytest.fixture(scope="module")
def small_index():
    vecs = make_clustered(2200, D, n_clusters=32, seed=11)
    index = IVFPQIndex(d=D, nlist=32, m=4, ksub=32, seed=0)
    index.train(vecs[:2000])
    index.add(vecs[:2000])
    index.invlists
    return index, vecs[2000:]


class TestValidation:
    def test_bad_params(self):
        be = FakeBackend()
        with pytest.raises(ValueError, match="max_batch"):
            ServingEngine(be, max_batch=0)
        with pytest.raises(ValueError, match="max_wait_us"):
            ServingEngine(be, max_wait_us=-1)
        with pytest.raises(ValueError, match="queue_depth"):
            ServingEngine(be, queue_depth=0)
        with pytest.raises(ValueError, match="policy"):
            ServingEngine(be, policy="drop-oldest")

    def test_submit_requires_running(self):
        eng = ServingEngine(FakeBackend())
        with pytest.raises(RuntimeError, match="start"):
            eng.submit(np.zeros(D, dtype=np.float32), K)

    def test_double_start_rejected(self):
        eng = ServingEngine(FakeBackend()).start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                eng.start()
        finally:
            eng.stop()

    def test_stop_idempotent(self):
        eng = ServingEngine(FakeBackend()).start()
        eng.stop()
        eng.stop()


class TestBatching:
    def test_results_bit_identical_to_direct_search(self, small_index):
        index, queries = small_index
        ref_ids, ref_dists = index.search(queries, K, NPROBE)
        with ServingEngine(index, max_batch=8, max_wait_us=5000.0) as eng:
            futs = [eng.submit(q, K, NPROBE) for q in queries]
            got = [f.result(timeout=30) for f in futs]
        ids = np.stack([g.ids for g in got])
        dists = np.stack([g.dists for g in got])
        np.testing.assert_array_equal(ids, ref_ids)
        np.testing.assert_array_equal(dists, ref_dists)

    def test_coalesces_within_window(self):
        be = InstrumentedBackend(FakeBackend())
        with ServingEngine(be, max_batch=64, max_wait_us=200_000.0) as eng:
            futs = [
                eng.submit(np.full(D, i, dtype=np.float32), K) for i in range(20)
            ]
            for f in futs:
                f.result(timeout=30)
        # All 20 requests land well inside one 200 ms window.
        assert be.calls == 1
        assert be.batch_sizes == [20]

    def test_max_batch_respected(self):
        be = InstrumentedBackend(FakeBackend())
        with ServingEngine(be, max_batch=4, max_wait_us=100_000.0) as eng:
            futs = [
                eng.submit(np.full(D, i, dtype=np.float32), K) for i in range(10)
            ]
            for f in futs:
                f.result(timeout=30)
        assert max(be.batch_sizes) <= 4
        assert sum(be.batch_sizes) == 10

    def test_batch_size_one_baseline(self):
        be = InstrumentedBackend(FakeBackend())
        with ServingEngine(be, max_batch=1) as eng:
            for i in range(5):
                res = eng.search(np.full(D, i, dtype=np.float32), K)
                assert res.batch_size == 1
        assert be.batch_sizes == [1] * 5

    def test_mixed_k_nprobe_grouped_separately(self):
        be = InstrumentedBackend(FakeBackend())
        with ServingEngine(be, max_batch=16, max_wait_us=100_000.0) as eng:
            f1 = eng.submit(np.ones(D, dtype=np.float32), 3)
            f2 = eng.submit(np.ones(D, dtype=np.float32), 7)
            f3 = eng.submit(np.full(D, 2.0, dtype=np.float32), 3)
            r1, r2, r3 = (f.result(timeout=30) for f in (f1, f2, f3))
        assert r1.ids.shape == (3,)
        assert r2.ids.shape == (7,)  # its own group, its own k
        assert r3.ids.shape == (3,)
        assert r1.batch_size == 2 and r3.batch_size == 2  # same (k, nprobe) group
        assert r2.batch_size == 1
        assert sorted(be.batch_sizes) == [1, 2]

    def test_latency_breakdown_populated(self):
        with ServingEngine(FakeBackend(delay_s=0.01), max_batch=4) as eng:
            res = eng.search(np.zeros(D, dtype=np.float32), K)
        assert res.exec_us >= 10_000 * 0.5  # the 10 ms backend delay
        assert res.queue_us >= 0
        assert res.total_us == pytest.approx(res.queue_us + res.exec_us)
        assert not res.cache_hit


class TestAdmissionControl:
    def test_shed_raises_when_full(self):
        be = FakeBackend(delay_s=0.2)
        with ServingEngine(
            be, max_batch=1, queue_depth=2, policy="shed"
        ) as eng:
            first = eng.submit(np.zeros(D, dtype=np.float32), K)
            time.sleep(0.05)  # let the worker dequeue it and block in exec
            eng.submit(np.zeros(D, dtype=np.float32), K)
            eng.submit(np.zeros(D, dtype=np.float32), K)
            with pytest.raises(AdmissionError, match="shed"):
                eng.submit(np.zeros(D, dtype=np.float32), K)
            assert eng.metrics.snapshot().counters["shed"] == 1
            first.result(timeout=30)

    def test_block_policy_never_sheds(self):
        be = FakeBackend(delay_s=0.01)
        with ServingEngine(
            be, max_batch=4, queue_depth=2, policy="block"
        ) as eng:
            futs = [eng.submit(np.zeros(D, dtype=np.float32), K) for _ in range(12)]
            for f in futs:
                f.result(timeout=30)
        assert eng.metrics.snapshot().counters["completed"] == 12
        assert eng.metrics.snapshot().counters.get("shed", 0) == 0

    def test_stop_drains_queued_requests(self):
        be = FakeBackend(delay_s=0.02)
        eng = ServingEngine(be, max_batch=2).start()
        futs = [eng.submit(np.zeros(D, dtype=np.float32), K) for _ in range(6)]
        eng.stop()  # must serve everything already admitted
        for f in futs:
            assert f.result(timeout=1).ids.shape == (K,)
        with pytest.raises(RuntimeError, match="not running"):
            eng.submit(np.zeros(D, dtype=np.float32), K)


class GatedBackend(FakeBackend):
    """Backend whose calls block on an event — deterministic occupancy."""

    def __init__(self):
        super().__init__()
        self.gate = threading.Event()
        self.entered = threading.Semaphore(0)

    def search_batch(self, queries, k, nprobe=None):
        self.entered.release()
        assert self.gate.wait(timeout=30), "gate never opened"
        return super().search_batch(queries, k, nprobe)


class TestMultiDispatcherBackpressure:
    """Shed/backpressure and drain behaviour with ``dispatchers > 1``.

    With N dispatchers, N requests can be *in service* (dequeued) on top
    of the ``queue_depth`` waiting slots — the gated backend makes that
    occupancy deterministic so the shed point is exact.
    """

    def test_bounded_queue_sheds_deterministically(self):
        be = GatedBackend()
        with ServingEngine(
            be, max_batch=1, queue_depth=2, policy="shed", dispatchers=2
        ) as eng:
            q = np.zeros(D, dtype=np.float32)
            in_service = [eng.submit(q, K) for _ in range(2)]
            # Both dispatchers must have dequeued one request and parked
            # inside the backend before the queue slots are counted.
            assert be.entered.acquire(timeout=30)
            assert be.entered.acquire(timeout=30)
            queued = [eng.submit(q, K) for _ in range(2)]  # fills depth=2
            with pytest.raises(AdmissionError, match="shed"):
                eng.submit(q, K)
            with pytest.raises(AdmissionError, match="shed"):
                eng.submit(q, K)  # still full: deterministic, not racy
            assert eng.metrics.snapshot().counters["shed"] == 2
            be.gate.set()
            for f in in_service + queued:
                assert f.result(timeout=30).ids.shape == (K,)
        assert eng.metrics.snapshot().counters["completed"] == 4

    @pytest.mark.parametrize("dispatchers", [2, 3])
    def test_stop_drains_all_sentinels_and_requests(self, dispatchers):
        be = FakeBackend(delay_s=0.005)
        eng = ServingEngine(be, max_batch=2, dispatchers=dispatchers).start()
        futs = [eng.submit(np.zeros(D, dtype=np.float32), K) for _ in range(12)]
        eng.stop()  # joins every dispatcher: each consumed one sentinel
        assert eng._workers == []  # all threads exited
        for f in futs:
            assert f.result(timeout=1).ids.shape == (K,)
        assert eng.depth == 0  # no sentinel or request left behind
        with pytest.raises(RuntimeError, match="not running"):
            eng.submit(np.zeros(D, dtype=np.float32), K)
        eng.stop()  # idempotent after a multi-dispatcher drain

    def test_stop_while_dispatchers_blocked_in_backend(self):
        """Sentinels queue behind in-flight work; stop() still joins all
        workers once the backend unblocks, and nothing is lost."""
        be = GatedBackend()
        eng = ServingEngine(be, max_batch=1, dispatchers=2).start()
        q = np.zeros(D, dtype=np.float32)
        futs = [eng.submit(q, K) for _ in range(4)]
        assert be.entered.acquire(timeout=30)
        assert be.entered.acquire(timeout=30)
        stopper = threading.Thread(target=eng.stop)
        stopper.start()
        be.gate.set()
        stopper.join(timeout=30)
        assert not stopper.is_alive()
        for f in futs:
            assert f.result(timeout=1).ids.shape == (K,)


class TestErrorPropagation:
    def test_wrong_dim_rejected_at_submit_when_backend_advertises_d(
        self, small_index
    ):
        """Backends exposing .d let submit() reject the offender alone,
        before it can poison a co-batched group."""
        index, queries = small_index
        with ServingEngine(index, max_batch=8, max_wait_us=50_000.0) as eng:
            ok = eng.submit(queries[0], K, NPROBE)
            with pytest.raises(ValueError, match="dim"):
                eng.submit(np.zeros(D + 1, dtype=np.float32), K, NPROBE)
            assert ok.result(timeout=30).ids.shape == (K,)  # unaffected

    def test_malformed_query_fails_batch_but_not_worker(self):
        """Mismatched query dims break np.stack inside the batch: the
        affected futures get the exception and the worker keeps serving."""
        be = FakeBackend()
        with ServingEngine(be, max_batch=8, max_wait_us=100_000.0) as eng:
            f_ok = eng.submit(np.zeros(D, dtype=np.float32), K)
            f_bad = eng.submit(np.zeros(2 * D, dtype=np.float32), K)  # wrong d
            with pytest.raises(ValueError):
                f_bad.result(timeout=30)
            with pytest.raises(ValueError):
                f_ok.result(timeout=30)  # same batch, same failure
            res = eng.search(np.zeros(D, dtype=np.float32), K)  # worker alive
            assert res.ids.shape == (K,)

    def test_wrong_backend_row_count_rejected(self):
        class Short(FakeBackend):
            def search_batch(self, queries, k, nprobe=None):
                ids, dists = super().search_batch(queries, k, nprobe)
                return ids[:-1], dists[:-1]  # one row short

        with ServingEngine(Short(), max_batch=4) as eng:
            with pytest.raises(RuntimeError, match="rows for"):
                eng.search(np.zeros(D, dtype=np.float32), K)
            assert eng.metrics.snapshot().counters["errors"] == 1

    def test_backend_error_reaches_future_and_engine_survives(self):
        be = FakeBackend()
        with ServingEngine(be, max_batch=4) as eng:
            be.fail = True
            with pytest.raises(RuntimeError, match="exploded"):
                eng.search(np.zeros(D, dtype=np.float32), K)
            be.fail = False
            res = eng.search(np.zeros(D, dtype=np.float32), K)  # still serving
            assert res.ids.shape == (K,)
        assert eng.metrics.snapshot().counters["errors"] == 1


class TestCacheIntegration:
    def test_repeat_query_hits_cache_bit_identically(self, small_index):
        index, queries = small_index
        q = queries[0]
        with ServingEngine(
            index, max_batch=4, cache=QueryResultCache(16)
        ) as eng:
            miss = eng.search(q, K, NPROBE)
            hit = eng.search(q, K, NPROBE)
        assert not miss.cache_hit and hit.cache_hit
        assert hit.total_us == 0.0
        np.testing.assert_array_equal(miss.ids, hit.ids)
        np.testing.assert_array_equal(miss.dists, hit.dists)
        ref_ids, ref_dists = index.search(q[None, :], K, NPROBE)
        np.testing.assert_array_equal(hit.ids, ref_ids[0])
        np.testing.assert_array_equal(hit.dists, ref_dists[0])

    def test_different_params_do_not_collide(self, small_index):
        index, queries = small_index
        q = queries[0]
        with ServingEngine(index, cache=QueryResultCache(16)) as eng:
            a = eng.search(q, K, NPROBE)
            b = eng.search(q, K, NPROBE + 1)  # different nprobe -> miss
        assert not b.cache_hit
        assert a.ids.shape == b.ids.shape

    def test_invalidate_cache(self, small_index):
        index, queries = small_index
        cache = QueryResultCache(16)
        with ServingEngine(index, cache=cache) as eng:
            eng.search(queries[0], K, NPROBE)
            assert len(cache) == 1
            eng.invalidate_cache()
            assert len(cache) == 0
            assert not eng.search(queries[0], K, NPROBE).cache_hit

    def test_metrics_track_hits_and_misses(self, small_index):
        index, queries = small_index
        with ServingEngine(index, cache=QueryResultCache(16)) as eng:
            eng.search(queries[0], K, NPROBE)
            eng.search(queries[0], K, NPROBE)
            eng.search(queries[1], K, NPROBE)
        counters = eng.metrics.snapshot().counters
        assert counters["cache_hits"] == 1
        assert counters["cache_misses"] == 2


class TestEventEmission:
    """An engine given an :class:`EventLog` journals its operational
    transitions — the records the telemetry plane's collector merges."""

    def test_shed_emits_typed_event(self):
        events = EventLog()
        be = GatedBackend()
        with ServingEngine(
            be, max_batch=1, queue_depth=1, policy="shed", events=events
        ) as eng:
            q = np.zeros(D, dtype=np.float32)
            in_service = eng.submit(q, K)
            assert be.entered.acquire(timeout=30)
            queued = eng.submit(q, K)  # fills the single waiting slot
            with pytest.raises(AdmissionError, match="shed"):
                eng.submit(q, K, tenant="bulk")
            be.gate.set()
            in_service.result(timeout=30)
            queued.result(timeout=30)
        (ev,) = events.events("shed")
        assert ev["tenant"] == "bulk"
        assert ev["depth"] >= 1

    def test_invalidate_cache_emits_event(self, small_index):
        index, queries = small_index
        events = EventLog()
        with ServingEngine(
            index, cache=QueryResultCache(16), events=events
        ) as eng:
            eng.search(queries[0], K, NPROBE)
            eng.invalidate_cache()
        assert [e["type"] for e in events.events()] == ["cache_invalidated"]

    def test_no_journal_is_the_quiet_default(self):
        with ServingEngine(FakeBackend(), max_batch=2) as eng:
            assert eng.events is None
            eng.search(np.zeros(D, dtype=np.float32), K)
