"""Tests for the asyncio serving front end (repro/serve/aio.py).

No pytest-asyncio in the container: each test drives its own event loop
with ``asyncio.run`` — which also matches how the harness embeds the
async tier inside synchronous benchmarks.
"""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.ann.ivf import IVFPQIndex
from repro.data.synthetic import make_clustered
from repro.serve import (
    AdmissionError,
    AsyncClient,
    AsyncServingEngine,
    QuotaExceededError,
    RemoteServeError,
    ServingEngine,
    TenantPolicy,
    VectorSearchServer,
    WFQDiscipline,
)

D = 16
K = 5
NPROBE = 4


class FakeBackend:
    """Deterministic stand-in: ids derive from the query's first element."""

    def __init__(self, delay_s: float = 0.0, fail: bool = False):
        self.delay_s = delay_s
        self.fail = fail

    def search_batch(self, queries, k, nprobe=None):
        if self.fail:
            raise RuntimeError("backend exploded")
        if self.delay_s:
            time.sleep(self.delay_s)
        queries = np.atleast_2d(queries)
        base = queries[:, 0].astype(np.int64)[:, None]
        ids = base * 100 + np.arange(k, dtype=np.int64)[None, :]
        dists = np.tile(np.arange(k, dtype=np.float32), (queries.shape[0], 1))
        return ids, dists


class GatedBackend(FakeBackend):
    """Backend whose calls block on an event — deterministic occupancy."""

    def __init__(self):
        super().__init__()
        self.gate = threading.Event()
        self.entered = threading.Semaphore(0)
        self.calls = 0

    def search_batch(self, queries, k, nprobe=None):
        self.calls += 1
        self.entered.release()
        assert self.gate.wait(timeout=30), "gate never opened"
        return super().search_batch(queries, k, nprobe)


@pytest.fixture(scope="module")
def small_index():
    vecs = make_clustered(2200, D, n_clusters=32, seed=11)
    index = IVFPQIndex(d=D, nlist=32, m=4, ksub=32, seed=0)
    index.train(vecs[:2000])
    index.add(vecs[:2000])
    index.invlists
    return index, vecs[2000:]


async def _await_entered(backend: GatedBackend) -> None:
    """Await a dispatcher parking inside the gated backend (loop-safe)."""
    await asyncio.to_thread(backend.entered.acquire, True, 30)


class TestAsyncEngineFacade:
    def test_results_bit_identical_to_direct_search(self, small_index):
        index, queries = small_index
        ref_ids, ref_dists = index.search(queries, K, NPROBE)

        async def serve():
            engine = ServingEngine(
                index, max_batch=8, max_wait_us=5000.0,
                queue_depth=4 * len(queries), policy="shed",
            )
            async with AsyncServingEngine(engine) as aeng:
                futs = [aeng.submit(q, K, NPROBE) for q in queries]
                return await asyncio.gather(*futs)

        got = asyncio.run(serve())
        np.testing.assert_array_equal(np.stack([g.ids for g in got]), ref_ids)
        np.testing.assert_array_equal(np.stack([g.dists for g in got]), ref_dists)

    def test_shed_raises_from_submit(self):
        """Backpressure reaches the async caller as an exception, never a
        blocked event loop."""
        be = GatedBackend()

        async def go():
            engine = ServingEngine(
                be, max_batch=1, queue_depth=1, policy="shed"
            )
            async with AsyncServingEngine(engine) as aeng:
                q = np.zeros(D, dtype=np.float32)
                first = aeng.submit(q, K)  # dequeued into the backend
                await _await_entered(be)
                second = aeng.submit(q, K)  # fills the queue slot
                with pytest.raises(AdmissionError, match="shed"):
                    aeng.submit(q, K)
                be.gate.set()
                await asyncio.gather(first, second)

        asyncio.run(go())

    def test_quota_shed_carries_retry_after(self):
        async def go():
            discipline = WFQDiscipline(
                {"t": TenantPolicy(rate_qps=0.5, burst=1)}, depth=16
            )
            engine = ServingEngine(
                FakeBackend(), max_batch=4, policy="shed",
                discipline=discipline,
            )
            async with AsyncServingEngine(engine) as aeng:
                q = np.zeros(D, dtype=np.float32)
                await aeng.submit(q, K, tenant="t")
                with pytest.raises(QuotaExceededError) as exc_info:
                    aeng.submit(q, K, tenant="t")
                # One token burned, refill at 0.5/s: ~2 s until the next.
                assert exc_info.value.retry_after_s == pytest.approx(2.0, rel=0.1)

        asyncio.run(go())

    def test_cancel_while_queued_skips_backend_and_spares_batch_mates(self):
        """A cancelled waiter's request is dropped at dispatch: the
        backend never sees it and co-queued requests are unaffected."""
        be = GatedBackend()

        async def go():
            engine = ServingEngine(be, max_batch=1, queue_depth=8)
            async with AsyncServingEngine(engine) as aeng:
                q = lambda v: np.full(D, v, dtype=np.float32)  # noqa: E731
                blocker = aeng.submit(q(1), K)  # occupies the dispatcher
                await _await_entered(be)
                doomed = aeng.submit(q(2), K)
                survivor = aeng.submit(q(3), K)
                doomed.cancel()
                # Done-callbacks run on the next loop pass; yield so the
                # cancellation reaches the engine future before dispatch.
                await asyncio.sleep(0)
                be.gate.set()
                res = await survivor
                assert res.ids[0] == 300  # bit-identical to its own query
                await blocker
                with pytest.raises(asyncio.CancelledError):
                    await doomed
            # max_batch=1: one call per *served* request; the cancelled
            # one never reached the backend.
            assert be.calls == 2
            assert engine.metrics.snapshot().counters["cancelled"] == 1

        asyncio.run(go())

    def test_stop_with_pending_waiters_resolves_them_all(self):
        """stop() drains: every pending await gets its answer, not a
        cancellation."""
        be = FakeBackend(delay_s=0.005)

        async def go():
            engine = ServingEngine(be, max_batch=2)
            aeng = AsyncServingEngine(engine).start()
            q = np.zeros(D, dtype=np.float32)
            futs = [aeng.submit(q, K) for _ in range(8)]
            await aeng.stop()
            results = await asyncio.gather(*futs)
            assert all(r.ids.shape == (K,) for r in results)

        asyncio.run(go())


def _free_server(engine_or_aeng):
    """A server on an ephemeral localhost port."""
    return VectorSearchServer(engine_or_aeng)


class TestSocketServer:
    def test_pipelined_requests_bit_identical_over_wire(self, small_index):
        index, queries = small_index
        ref_ids, ref_dists = index.search(queries, K, NPROBE)

        async def serve():
            engine = ServingEngine(
                index, max_batch=8, max_wait_us=5000.0,
                queue_depth=4 * len(queries), policy="shed",
            )
            async with AsyncServingEngine(engine) as aeng:
                async with _free_server(aeng) as server:
                    host, port = server.address
                    async with await AsyncClient.connect(host, port) as client:
                        futs = [client.submit(q, K, NPROBE) for q in queries]
                        assert client.in_flight == len(queries)
                        return await asyncio.gather(*futs)

        got = asyncio.run(serve())
        np.testing.assert_array_equal(np.stack([g.ids for g in got]), ref_ids)
        np.testing.assert_array_equal(np.stack([g.dists for g in got]), ref_dists)

    def test_tenant_and_priority_cross_the_wire(self):
        seen = {}

        async def go():
            discipline = WFQDiscipline(
                {"gold": TenantPolicy(weight=2.0, priority=True)}, depth=64
            )
            engine = ServingEngine(
                FakeBackend(), max_batch=4, policy="shed", discipline=discipline
            )
            async with AsyncServingEngine(engine) as aeng:
                async with _free_server(aeng) as server:
                    host, port = server.address
                    async with await AsyncClient.connect(host, port) as client:
                        res = await client.search(
                            np.zeros(D, dtype=np.float32), K,
                            tenant="gold", priority=True,
                        )
                        seen["tenant"] = res.tenant
            snap = engine.metrics.snapshot()
            seen["tenants"] = set(snap.tenants)

        asyncio.run(go())
        assert seen["tenant"] == "gold"
        assert "gold" in seen["tenants"]

    def test_quota_error_frame_carries_retry_after(self):
        async def go():
            discipline = WFQDiscipline(
                {"t": TenantPolicy(rate_qps=0.5, burst=1)}, depth=16
            )
            engine = ServingEngine(
                FakeBackend(), max_batch=4, policy="shed",
                discipline=discipline,
            )
            async with AsyncServingEngine(engine) as aeng:
                async with _free_server(aeng) as server:
                    host, port = server.address
                    async with await AsyncClient.connect(host, port) as client:
                        q = np.zeros(D, dtype=np.float32)
                        await client.search(q, K, tenant="t")
                        with pytest.raises(QuotaExceededError) as exc_info:
                            await client.search(q, K, tenant="t")
                        assert exc_info.value.retry_after_s == pytest.approx(
                            2.0, rel=0.1
                        )

        asyncio.run(go())

    def test_backend_failure_surfaces_as_remote_error(self):
        be = FakeBackend(fail=True)

        async def go():
            engine = ServingEngine(be, max_batch=4, policy="shed")
            async with AsyncServingEngine(engine) as aeng:
                async with _free_server(aeng) as server:
                    host, port = server.address
                    async with await AsyncClient.connect(host, port) as client:
                        with pytest.raises(RemoteServeError, match="exploded"):
                            await client.search(np.zeros(D, dtype=np.float32), K)
                        # The connection survives a failed request.
                        be.fail = False
                        res = await client.search(
                            np.zeros(D, dtype=np.float32), K
                        )
                        assert res.ids.shape == (K,)

        asyncio.run(go())

    def test_client_disconnect_mid_request_cancels_without_poisoning(self):
        """A vanished client's queued request is dropped; the engine and
        other connections keep serving."""
        be = GatedBackend()

        async def go():
            engine = ServingEngine(be, max_batch=1, queue_depth=8)
            async with AsyncServingEngine(engine) as aeng:
                async with _free_server(aeng) as server:
                    host, port = server.address
                    keeper = await AsyncClient.connect(host, port)
                    leaver = await AsyncClient.connect(host, port)
                    q = lambda v: np.full(D, v, dtype=np.float32)  # noqa: E731
                    blocker = keeper.submit(q(1), K)
                    await keeper._writer.drain()
                    await _await_entered(be)  # dispatcher parked in backend
                    doomed = leaver.submit(q(2), K)
                    await leaver._writer.drain()
                    # Give the server a beat to enqueue the request, then
                    # vanish with it still queued behind the blocker.
                    await asyncio.sleep(0.05)
                    await leaver.close()
                    with pytest.raises(ConnectionResetError):
                        await doomed
                    await asyncio.sleep(0.05)  # let the server see the EOF
                    be.gate.set()
                    res = await blocker
                    assert res.ids[0] == 100
                    # New connections still served after the disconnect.
                    async with await AsyncClient.connect(host, port) as c3:
                        res3 = await c3.search(q(3), K)
                        assert res3.ids[0] == 300
                    await keeper.close()
            counters = engine.metrics.snapshot().counters
            assert counters.get("cancelled", 0) == 1

        asyncio.run(go())

    def test_garbage_bytes_drop_connection_not_server(self):
        async def go():
            engine = ServingEngine(FakeBackend(), max_batch=4, policy="shed")
            async with AsyncServingEngine(engine) as aeng:
                async with _free_server(aeng) as server:
                    host, port = server.address
                    reader, writer = await asyncio.open_connection(host, port)
                    writer.write(b"GET / HTTP/1.1\r\n\r\n")
                    await writer.drain()
                    # Server drops the connection at the bad magic.
                    assert await reader.read() == b""
                    writer.close()
                    await writer.wait_closed()
                    # And still serves well-formed clients.
                    async with await AsyncClient.connect(host, port) as client:
                        res = await client.search(np.zeros(D, dtype=np.float32), K)
                        assert res.ids.shape == (K,)

        asyncio.run(go())

    def test_server_stop_fails_pending_client_futures(self):
        be = GatedBackend()

        async def go():
            engine = ServingEngine(be, max_batch=1, queue_depth=8)
            async with AsyncServingEngine(engine) as aeng:
                server = await _free_server(aeng).start()
                host, port = server.address
                client = await AsyncClient.connect(host, port)
                fut = client.submit(np.zeros(D, dtype=np.float32), K)
                await client._writer.drain()
                await _await_entered(be)
                await server.stop()  # drops the connection mid-request
                with pytest.raises(ConnectionError):
                    await fut
                await client.close()
                be.gate.set()

        asyncio.run(go())

    def test_address_requires_started_server(self):
        server = VectorSearchServer(ServingEngine(FakeBackend()))
        with pytest.raises(RuntimeError, match="not running"):
            server.address


class TestConnectionMetrics:
    def test_connection_and_frame_counters(self):
        """The registry sees opens, peak concurrency, and frame flow."""
        snap_open = {}

        async def go():
            engine = ServingEngine(FakeBackend(), max_batch=4, policy="shed")
            async with AsyncServingEngine(engine) as aeng:
                async with _free_server(aeng) as server:
                    host, port = server.address
                    c1 = await AsyncClient.connect(host, port)
                    c2 = await AsyncClient.connect(host, port)
                    q = np.zeros(D, dtype=np.float32)
                    await c1.search(q, K)
                    await c2.search(q, K)
                    await asyncio.sleep(0.02)  # both handlers registered
                    snap_open["mid"] = server.metrics.snapshot()
                    await c1.close()
                    await c2.close()
                    await asyncio.sleep(0.05)  # handlers observed the EOFs
                    snap_open["end"] = server.metrics.snapshot()

        asyncio.run(go())
        mid, end = snap_open["mid"], snap_open["end"]
        assert mid.counters["connections_opened"] == 2
        assert mid.gauges["connections_open"] == 2
        assert mid.gauges["connections_peak"] == 2
        assert mid.counters["frames_in"] == 2
        assert mid.counters["frames_out"] == 2
        assert end.gauges["connections_open"] == 0
        assert end.gauges["connections_peak"] == 2
        assert "protocol_errors" not in end.counters

    def test_garbage_counts_as_protocol_error(self):
        counters = {}

        async def go():
            engine = ServingEngine(FakeBackend(), max_batch=4, policy="shed")
            async with AsyncServingEngine(engine) as aeng:
                async with _free_server(aeng) as server:
                    host, port = server.address
                    reader, writer = await asyncio.open_connection(host, port)
                    writer.write(b"\x00" * 32)
                    await writer.drain()
                    assert await reader.read() == b""
                    writer.close()
                    await writer.wait_closed()
                    counters.update(server.metrics.snapshot().counters)

        asyncio.run(go())
        assert counters["protocol_errors"] == 1

    def test_unexpected_frame_type_counts_and_drops(self):
        """A well-formed frame the server cannot serve (a RESULT sent *to*
        it) is a protocol error, not a crash."""
        from repro.serve.protocol import encode_result

        counters = {}

        async def go():
            engine = ServingEngine(FakeBackend(), max_batch=4, policy="shed")
            async with AsyncServingEngine(engine) as aeng:
                async with _free_server(aeng) as server:
                    host, port = server.address
                    reader, writer = await asyncio.open_connection(host, port)
                    writer.write(
                        encode_result(
                            1, np.zeros(K, dtype=np.int64),
                            np.zeros(K, dtype=np.float32),
                        )
                    )
                    await writer.drain()
                    assert await reader.read() == b""
                    writer.close()
                    await writer.wait_closed()
                    counters.update(server.metrics.snapshot().counters)

        asyncio.run(go())
        assert counters["protocol_errors"] == 1


class TestPreselectFrames:
    def test_preselect_frame_served_bit_identical(self, small_index):
        """A raw preselect frame answers exactly like the in-process
        preselected scan."""
        from repro.ann.partition import replicate_index
        from repro.serve.protocol import (
            decode_batch_result,
            encode_preselect,
            read_frame,
        )

        index, queries = small_index
        engine_view, scan_view, plan_view = replicate_index(index, 3)
        queries_t, probed = plan_view.preselect(queries[:12], NPROBE)
        ref_ids, ref_dists = scan_view.search_batch_preselected(
            queries_t, probed, K
        )

        async def go():
            engine = ServingEngine(engine_view, max_batch=4, policy="shed")
            async with AsyncServingEngine(engine) as aeng:
                server = VectorSearchServer(aeng, preselect_backend=scan_view)
                async with server:
                    host, port = server.address
                    reader, writer = await asyncio.open_connection(host, port)
                    writer.write(encode_preselect(9, queries_t, probed, K))
                    await writer.drain()
                    ftype, payload = await read_frame(reader)
                    writer.close()
                    await writer.wait_closed()
                    return ftype, decode_batch_result(payload)

        ftype, res = asyncio.run(go())
        from repro.net.wire import FRAME_BATCH_RESULT

        assert ftype == FRAME_BATCH_RESULT
        assert res.request_id == 9
        np.testing.assert_array_equal(res.ids, ref_ids)
        np.testing.assert_array_equal(res.dists, ref_dists)
        assert res.codes_scanned > 0

    def test_preselect_frame_rejected_without_backend(self):
        """Servers not configured for the preselect path treat the frame
        as a protocol error rather than guessing."""
        from repro.serve.protocol import encode_preselect

        counters = {}

        async def go():
            engine = ServingEngine(FakeBackend(), max_batch=4, policy="shed")
            async with AsyncServingEngine(engine) as aeng:
                async with _free_server(aeng) as server:
                    host, port = server.address
                    reader, writer = await asyncio.open_connection(host, port)
                    writer.write(
                        encode_preselect(
                            1, np.zeros((1, D), dtype=np.float32),
                            np.zeros((1, 2), dtype=np.int64), K,
                        )
                    )
                    await writer.drain()
                    assert await reader.read() == b""
                    writer.close()
                    await writer.wait_closed()
                    counters.update(server.metrics.snapshot().counters)

        asyncio.run(go())
        assert counters["protocol_errors"] == 1


class TestTelemetryEndpoints:
    """The Prometheus scrape port and the stats-frame event drain."""

    def test_metrics_port_serves_prometheus_text(self):
        async def go():
            engine = ServingEngine(FakeBackend(), max_batch=4, policy="shed")
            async with AsyncServingEngine(engine) as aeng:
                async with VectorSearchServer(aeng, metrics_port=0) as server:
                    host, port = server.address
                    async with await AsyncClient.connect(host, port) as client:
                        await client.search(np.zeros(D, dtype=np.float32), K)
                    mhost, mport = server.metrics_address
                    scrapes = []
                    # One-shot endpoint: every connect gets a fresh
                    # exposition and then EOF — no HTTP framing.
                    for _ in range(2):
                        reader, writer = await asyncio.open_connection(
                            mhost, mport
                        )
                        scrapes.append((await reader.read()).decode())
                        writer.close()
                        await writer.wait_closed()
                    return scrapes

        for text in asyncio.run(go()):
            assert "# TYPE repro_completed_total counter" in text
            assert "repro_completed_total 1.0" in text
            assert 'repro_request_latency_us{series="total",quantile="0.99"}' \
                in text

    def test_metrics_address_requires_metrics_port(self):
        async def go():
            engine = ServingEngine(FakeBackend(), max_batch=4, policy="shed")
            async with AsyncServingEngine(engine) as aeng:
                async with _free_server(aeng) as server:
                    with pytest.raises(RuntimeError, match="metrics"):
                        server.metrics_address

        asyncio.run(go())

    def test_stats_frame_drains_engine_event_journal(self):
        from repro.obs.events import EventLog
        from repro.serve.protocol import (
            FRAME_STATS,
            decode_stats,
            encode_stats_request,
            read_frame,
        )

        events = EventLog()

        async def scrape(host, port, rid):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(encode_stats_request(rid, drain_events=True))
            await writer.drain()
            ftype, payload = await read_frame(reader)
            writer.close()
            await writer.wait_closed()
            assert ftype == FRAME_STATS
            return decode_stats(payload)

        async def go():
            engine = ServingEngine(
                FakeBackend(), max_batch=4, policy="shed", events=events
            )
            async with AsyncServingEngine(engine) as aeng:
                async with _free_server(aeng) as server:
                    host, port = server.address
                    events.emit("shed", tenant="bulk", depth=3)
                    first = await scrape(host, port, 7)
                    second = await scrape(host, port, 8)
                    return first, second

        first, second = asyncio.run(go())
        assert first.request_id == 7
        (ev,) = first.data["events"]
        assert ev["type"] == "shed" and ev["tenant"] == "bulk"
        assert first.data["dropped_events"] == 0
        assert second.data["events"] == []  # the drain emptied the journal
        assert len(events) == 0
