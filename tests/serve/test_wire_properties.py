"""Property-based round-trips and decoder fuzz for every wire frame.

Two contracts, checked over randomized inputs (Hypothesis):

- **Round-trip**: for every frame type, ``decode(encode(x))`` preserves
  every field — arrays bit for bit (random bit patterns, so NaN/inf
  payloads are covered), floats to f32 precision (the wire width),
  strings exactly.
- **Fuzz**: a truncated, bit-flipped, or over-long payload fed to any
  decoder either decodes cleanly (the corruption hit a don't-care byte)
  or raises :class:`ProtocolError` — never any other exception.  This
  is what lets the servers guarantee a corrupt frame costs at most its
  own connection.

Hypothesis is optional tooling (not a package dependency); the module
skips when it is not installed.
"""

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.net.wire import (
    FRAME_BATCH_RESULT,
    FRAME_ERROR,
    FRAME_HEADER,
    FRAME_PRESELECT,
    FRAME_RESULT,
    FRAME_SEARCH,
    FRAME_STATS,
    FRAME_STATS_REQUEST,
    WIRE_MAGIC,
    WIRE_VERSION,
)
from repro.obs.trace import SpanContext
from repro.serve.protocol import (
    DECODERS,
    ProtocolError,
    decode_batch_result,
    decode_error,
    decode_preselect,
    decode_result,
    decode_search,
    decode_stats,
    decode_stats_request,
    encode_batch_result,
    encode_error,
    encode_preselect,
    encode_result,
    encode_search,
    encode_stats,
    encode_stats_request,
)
from repro.serve.qos import DEFAULT_TENANT

RELAXED = settings(
    deadline=None,  # 1-CPU CI hosts stall arbitrarily
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
)

u32 = st.integers(0, 2**32 - 1)
u64 = st.integers(0, 2**64 - 1)
k16 = st.integers(1, 0xFFFF)
f32 = st.floats(allow_nan=False, width=32)
#: None or a sampled span context (the only kind that crosses the wire).
traces = st.none() | st.builds(
    lambda t, s: SpanContext(t, s, True), u64, u64
)
#: Tenant names must fit one length byte of UTF-8.
tenants = st.text(max_size=40).filter(lambda t: len(t.encode()) <= 255)


def _blob(n_bytes: int):
    """Exactly-n random bytes — arbitrary bit patterns for arrays."""
    return st.binary(min_size=n_bytes, max_size=n_bytes)


def _split(frame: bytes, expect_type: int) -> bytes:
    """Validate the header, return the payload."""
    magic, version, ftype, length = FRAME_HEADER.unpack_from(frame)
    assert magic == WIRE_MAGIC
    assert version == WIRE_VERSION
    assert ftype == expect_type
    payload = frame[FRAME_HEADER.size :]
    assert len(payload) == length
    return payload


@st.composite
def search_frames(draw):
    d = draw(st.integers(0, 16))
    query = np.frombuffer(draw(_blob(4 * d)), dtype=np.float32)
    return (
        draw(u32),
        query,
        draw(k16),
        draw(st.none() | st.integers(0, 2**31 - 1)),
        draw(tenants),
        draw(st.booleans()),
        draw(traces),
    )


@st.composite
def result_frames(draw):
    k = draw(st.integers(0, 16))
    ids = np.frombuffer(draw(_blob(8 * k)), dtype=np.int64)
    dists = np.frombuffer(draw(_blob(4 * k)), dtype=np.float32)
    return (
        draw(u32), ids, dists, draw(f32), draw(f32),
        draw(u32), draw(st.booleans()), draw(f32),
    )


@st.composite
def preselect_frames(draw):
    nq = draw(st.integers(1, 3))
    d = draw(st.integers(1, 6))
    nprobe = draw(st.integers(1, 5))
    queries_t = np.frombuffer(
        draw(_blob(4 * nq * d)), dtype=np.float32
    ).reshape(nq, d)
    probed = np.frombuffer(
        draw(_blob(4 * nq * nprobe)), dtype=np.int32
    ).reshape(nq, nprobe)
    return draw(u32), queries_t, probed, draw(k16), draw(traces)


#: JSON-clean span dicts, the shape workers piggyback on batch results.
span_dicts = st.lists(
    st.dictionaries(
        st.text(max_size=6),
        st.integers(-1000, 1000) | st.text(max_size=6) | st.booleans(),
        max_size=3,
    ),
    max_size=3,
)


@st.composite
def batch_result_frames(draw):
    nq = draw(st.integers(1, 3))
    k = draw(st.integers(1, 6))
    ids = np.frombuffer(draw(_blob(8 * nq * k)), dtype=np.int64).reshape(nq, k)
    dists = np.frombuffer(
        draw(_blob(4 * nq * k)), dtype=np.float32
    ).reshape(nq, k)
    return (
        draw(u32), ids, dists, draw(f32),
        draw(st.integers(0, 2**63 - 1)), draw(st.none() | span_dicts),
    )


class TestRoundTripProperties:
    @RELAXED
    @given(args=search_frames())
    def test_search(self, args):
        rid, query, k, nprobe, tenant, priority, trace = args
        frame = encode_search(
            rid, query, k, nprobe, tenant=tenant, priority=priority,
            trace=trace,
        )
        f = decode_search(_split(frame, FRAME_SEARCH))
        assert f.request_id == rid
        assert f.k == k
        assert f.nprobe == nprobe
        assert f.tenant == (tenant or DEFAULT_TENANT)
        assert f.priority == priority
        assert f.query.dtype == np.float32
        assert f.query.tobytes() == query.tobytes()
        if trace is None:
            assert f.trace is None
        else:
            assert (f.trace.trace_id, f.trace.span_id) == (
                trace.trace_id, trace.span_id,
            )
            assert f.trace.sampled

    @RELAXED
    @given(args=result_frames())
    def test_result(self, args):
        rid, ids, dists, queue_us, exec_us, batch, hit, coverage = args
        frame = encode_result(
            rid, ids, dists, queue_us=queue_us, exec_us=exec_us,
            batch_size=batch, cache_hit=hit, coverage=coverage,
        )
        f = decode_result(_split(frame, FRAME_RESULT))
        assert f.request_id == rid
        assert f.ids.tobytes() == ids.tobytes()
        assert f.dists.tobytes() == dists.tobytes()
        assert f.queue_us == np.float32(queue_us)
        assert f.exec_us == np.float32(exec_us)
        assert f.batch_size == batch
        assert f.cache_hit == hit
        assert f.coverage == np.float32(coverage)

    @RELAXED
    @given(
        rid=u32, code=st.integers(0, 255), retry=f32,
        message=st.text(max_size=80),
    )
    def test_error(self, rid, code, retry, message):
        f = decode_error(
            _split(
                encode_error(rid, code, retry_after_s=retry, message=message),
                FRAME_ERROR,
            )
        )
        assert f.request_id == rid
        assert f.code == code
        assert f.retry_after_s == np.float32(retry)
        assert f.message == message

    @RELAXED
    @given(args=preselect_frames())
    def test_preselect(self, args):
        rid, queries_t, probed, k, trace = args
        frame = encode_preselect(rid, queries_t, probed, k, trace=trace)
        f = decode_preselect(_split(frame, FRAME_PRESELECT))
        assert f.request_id == rid
        assert f.k == k
        assert f.queries_t.shape == queries_t.shape
        assert f.queries_t.tobytes() == queries_t.tobytes()
        assert f.probed.dtype == np.int32
        assert f.probed.tobytes() == probed.tobytes()
        if trace is None:
            assert f.trace is None
        else:
            assert (f.trace.trace_id, f.trace.span_id) == (
                trace.trace_id, trace.span_id,
            )

    @RELAXED
    @given(args=batch_result_frames())
    def test_batch_result(self, args):
        rid, ids, dists, exec_us, scanned, spans = args
        frame = encode_batch_result(
            rid, ids, dists, exec_us=exec_us, codes_scanned=scanned,
            spans=spans,
        )
        f = decode_batch_result(_split(frame, FRAME_BATCH_RESULT))
        assert f.request_id == rid
        assert f.ids.shape == ids.shape
        assert f.ids.tobytes() == ids.tobytes()
        assert f.dists.tobytes() == dists.tobytes()
        assert f.exec_us == np.float32(exec_us)
        assert f.codes_scanned == scanned
        assert f.spans == (tuple(spans) if spans else ())

    @RELAXED
    @given(rid=u32, drain=st.booleans())
    def test_stats_request(self, rid, drain):
        frame = encode_stats_request(rid, drain_spans=drain)
        f = decode_stats_request(_split(frame, FRAME_STATS_REQUEST))
        assert (f.request_id, f.drain_spans) == (rid, drain)

    @RELAXED
    @given(
        rid=u32,
        data=st.dictionaries(
            st.text(max_size=8),
            st.integers(-10**6, 10**6) | st.text(max_size=8) | st.booleans(),
            max_size=4,
        ),
    )
    def test_stats(self, rid, data):
        f = decode_stats(_split(encode_stats(rid, data), FRAME_STATS))
        assert (f.request_id, f.data) == (rid, data)


#: One valid frame of any type — the fuzz corpus seed.
any_frame = st.one_of(
    search_frames().map(
        lambda a: encode_search(
            a[0], a[1], a[2], a[3], tenant=a[4], priority=a[5], trace=a[6]
        )
    ),
    result_frames().map(
        lambda a: encode_result(
            a[0], a[1], a[2], queue_us=a[3], exec_us=a[4],
            batch_size=a[5], cache_hit=a[6], coverage=a[7],
        )
    ),
    preselect_frames().map(
        lambda a: encode_preselect(a[0], a[1], a[2], a[3], trace=a[4])
    ),
    batch_result_frames().map(
        lambda a: encode_batch_result(
            a[0], a[1], a[2], exec_us=a[3], codes_scanned=a[4], spans=a[5]
        )
    ),
    st.builds(encode_error, u32, st.integers(0, 255)),
    st.builds(lambda rid: encode_stats_request(rid), u32),
    st.builds(lambda rid: encode_stats(rid, {"pid": 1}), u32),
)


class TestDecoderFuzz:
    @settings(
        deadline=None, max_examples=200,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(frame=any_frame, data=st.data())
    def test_mutations_decode_or_raise_protocol_error(self, frame, data):
        """Truncate, bit-flip, or extend a valid payload: the decoder
        must come back with a frame or a ProtocolError — nothing else
        (no UnicodeDecodeError, TypeError, ValueError leaking from
        numpy/json internals)."""
        _, _, ftype, _ = FRAME_HEADER.unpack_from(frame)
        payload = bytearray(frame[FRAME_HEADER.size :])
        mode = data.draw(
            st.sampled_from(["truncate", "flip", "extend"]), label="mode"
        )
        if mode == "truncate" and payload:
            payload = payload[: data.draw(
                st.integers(0, len(payload) - 1), label="cut"
            )]
        elif mode == "flip" and payload:
            i = data.draw(st.integers(0, len(payload) - 1), label="byte")
            payload[i] ^= 1 << data.draw(st.integers(0, 7), label="bit")
        else:
            payload += data.draw(
                st.binary(min_size=1, max_size=8), label="tail"
            )
        try:
            DECODERS[ftype](bytes(payload))
        except ProtocolError:
            pass
