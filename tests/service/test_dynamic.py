"""Tests for the dynamic vector service (snapshot + delta + deletions)."""

import numpy as np
import pytest

from repro.ann.flat import brute_force_topk
from repro.data.synthetic import make_clustered
from repro.service.dynamic import DynamicVectorService


@pytest.fixture()
def service_and_data():
    vecs = make_clustered(2100, 16, n_clusters=24, intrinsic_dim=5, seed=6)
    base, extra, queries = vecs[:1600], vecs[1600:2000], vecs[2000:]
    svc = DynamicVectorService(d=16, nlist=16, m=4, ksub=32, nprobe=8, seed=0)
    ids = svc.bootstrap(base)
    return svc, base, extra, queries, ids


class TestLifecycle:
    def test_requires_bootstrap(self):
        svc = DynamicVectorService(d=4, nlist=2, m=2, ksub=16)
        with pytest.raises(RuntimeError, match="bootstrap"):
            svc.insert(np.zeros((1, 4), dtype=np.float32))
        with pytest.raises(RuntimeError, match="bootstrap"):
            svc.search(np.zeros((1, 4), dtype=np.float32), 1)
        with pytest.raises(RuntimeError, match="bootstrap"):
            svc.merge()

    def test_bootstrap_ids_dense(self, service_and_data):
        svc, base, *_ = service_and_data
        assert svc.ntotal == len(base)

    def test_insert_goes_to_delta(self, service_and_data):
        svc, base, extra, *_ = service_and_data
        svc.insert(extra[:50])
        assert svc.delta.ntotal == 50
        assert svc.ntotal == len(base) + 50

    def test_ids_unique_across_structures(self, service_and_data):
        svc, base, extra, *_ = service_and_data
        new_ids = svc.insert(extra[:10])
        assert new_ids.min() >= len(base)


class TestSearchSemantics:
    def test_finds_freshly_inserted(self, service_and_data):
        svc, base, extra, queries, _ = service_and_data
        new_ids = svc.insert(extra[:100])
        # Query *with* the inserted vectors: their own id must come back.
        ids, dists = svc.search(extra[:10], 1)
        hit = np.isin(ids[:, 0], new_ids)
        assert hit.mean() >= 0.8

    def test_deleted_never_returned(self, service_and_data):
        svc, base, extra, queries, ids = service_and_data
        victims = ids[:200]
        svc.delete(victims)
        out_ids, _ = svc.search(queries, 10)
        assert not np.isin(out_ids, victims).any()

    def test_delete_counts_new_only(self, service_and_data):
        svc, *_ , ids = service_and_data
        assert svc.delete(ids[:5]) == 5
        assert svc.delete(ids[:5]) == 0
        assert svc.ntotal == len(ids) - 5


class TestMerge:
    def test_merge_folds_delta_and_deletions(self, service_and_data):
        svc, base, extra, queries, ids = service_and_data
        svc.insert(extra)
        svc.delete(ids[:100])
        stats = svc.merge()
        assert stats.generation == 1
        assert stats.inserted_since == len(extra)
        assert stats.deleted_since == 100
        assert stats.snapshot_size == len(base) + len(extra) - 100
        assert svc.delta.ntotal == 0
        assert not svc.deleted

    def test_search_quality_preserved_after_merge(self, service_and_data):
        svc, base, extra, queries, _ = service_and_data
        svc.insert(extra)
        svc.merge()
        all_vecs = np.vstack([base, extra])
        gt, _ = brute_force_topk(queries, all_vecs, 10)
        ids, _ = svc.search(queries, 10)
        # IVF-PQ recall on this small config is modest; the point is the
        # merged snapshot serves the union.
        from repro.ann.recall import recall_at_k

        assert recall_at_k(ids, gt) > 0.4

    def test_merged_ids_stable(self, service_and_data):
        """Ids assigned before the merge keep resolving afterwards."""
        svc, base, extra, queries, ids = service_and_data
        new_ids = svc.insert(extra[:20])
        svc.merge()
        out_ids, _ = svc.search(extra[:5], 1)
        assert np.isin(out_ids[:, 0], new_ids).mean() >= 0.6

    def test_second_generation(self, service_and_data):
        svc, base, extra, *_ = service_and_data
        svc.insert(extra[:50])
        svc.merge()
        svc.insert(extra[50:100])
        stats = svc.merge()
        assert stats.generation == 2
