"""Tests for automatic cache invalidation on dynamic-service mutations."""

import gc

import numpy as np
import pytest

from repro.data.synthetic import make_clustered
from repro.serve import InstrumentedBackend, QueryResultCache, ServingEngine
from repro.service.dynamic import DynamicVectorService


@pytest.fixture()
def service():
    svc = DynamicVectorService(d=16, nlist=8, m=4, ksub=16, nprobe=4, seed=0)
    svc.bootstrap(make_clustered(600, 16, n_clusters=8, seed=1))
    return svc


def _engine(service):
    return ServingEngine(
        service, max_batch=4, max_wait_us=0.0, cache=QueryResultCache(64)
    )


class TestAutoInvalidation:
    def test_insert_invalidates_attached_cache(self, service):
        q = make_clustered(600, 16, n_clusters=8, seed=1)[0]
        with _engine(service) as eng:
            eng.search(q, 3)
            assert len(eng.cache) == 1
            service.insert(np.tile(q, (4, 1)))
            assert len(eng.cache) == 0
            # The re-served result reflects the inserted duplicates.
            ids = eng.search(q, 3).ids
            assert len(eng.cache) == 1
            direct_ids, _ = service.search(q, 3)
            np.testing.assert_array_equal(ids, direct_ids[0])

    def test_delete_invalidates_only_when_new(self, service):
        q = make_clustered(600, 16, n_clusters=8, seed=1)[1]
        with _engine(service) as eng:
            top = eng.search(q, 3).ids
            assert len(eng.cache) == 1
            assert service.delete([int(top[0])]) == 1
            assert len(eng.cache) == 0
            eng.search(q, 3)
            assert len(eng.cache) == 1
            # Re-deleting the same id changes nothing: cache survives.
            assert service.delete([int(top[0])]) == 0
            assert len(eng.cache) == 1

    def test_merge_invalidates(self, service):
        q = make_clustered(600, 16, n_clusters=8, seed=1)[2]
        with _engine(service) as eng:
            eng.search(q, 3)
            service.insert(make_clustered(20, 16, n_clusters=8, seed=9))
            service.merge()
            assert len(eng.cache) == 0

    def test_served_results_never_stale_after_delete(self, service):
        """The end-to-end property the hooks exist for: a cached answer
        must never resurface a deleted id."""
        q = make_clustered(600, 16, n_clusters=8, seed=1)[3]
        with _engine(service) as eng:
            first = eng.search(q, 3)
            victim = int(first.ids[0])
            service.delete([victim])
            again = eng.search(q, 3)
            assert victim not in again.ids.tolist()

    def test_listener_forwarding_through_wrappers(self, service):
        """InstrumentedBackend forwards registration to the service."""
        wrapped = InstrumentedBackend(service)
        with ServingEngine(
            wrapped, max_batch=2, max_wait_us=0.0, cache=QueryResultCache(16)
        ) as eng:
            q = make_clustered(600, 16, n_clusters=8, seed=1)[4]
            eng.search(q, 3)
            assert len(eng.cache) == 1
            service.insert(q[None, :])
            assert len(eng.cache) == 0

    def test_dead_engines_unregister_via_weakref(self, service):
        for _ in range(3):
            eng = _engine(service)  # registers at construction
            del eng
        gc.collect()
        service.insert(make_clustered(4, 16, n_clusters=2, seed=3))
        # Dead listeners were pruned rather than fired.
        assert all(
            ref() is not None for ref in service._invalidation_listeners
        ) or not service._invalidation_listeners

    def test_manual_listener(self, service):
        fired = []
        service.add_invalidation_listener(lambda: fired.append(True))
        service.insert(make_clustered(2, 16, n_clusters=2, seed=5))
        assert fired
