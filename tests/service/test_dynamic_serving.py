"""DynamicVectorService behind the serving engine: mutations mid-stream.

The deployment loop of §4 mutates the collection (insert / delete / merge)
while it serves.  These tests drive the service through the micro-batching
scheduler and assert the serving-visible semantics: deletions are masked
immediately, inserts become findable immediately, and a merge() concurrent
with queued requests neither corrupts results nor drops requests.
"""

import threading

import numpy as np
import pytest

from repro.data.synthetic import make_clustered
from repro.serve import QueryResultCache, ServingEngine
from repro.service.dynamic import DynamicVectorService

D = 16
K = 5


@pytest.fixture()
def svc_and_data():
    vecs = make_clustered(2100, D, n_clusters=24, intrinsic_dim=5, seed=6)
    base, extra, queries = vecs[:1600], vecs[1600:2000], vecs[2000:]
    svc = DynamicVectorService(d=D, nlist=16, m=4, ksub=32, nprobe=8, seed=0)
    ids = svc.bootstrap(base)
    return svc, base, extra, queries, ids


class TestServingSemantics:
    def test_deletions_masked_mid_stream(self, svc_and_data):
        svc, base, extra, queries, ids = svc_and_data
        victims = ids[:200]
        with ServingEngine(svc, max_batch=8, max_wait_us=1000.0) as eng:
            before = [eng.search(q, K) for q in queries[:10]]
            assert any(np.isin(r.ids, victims).any() for r in before)
            svc.delete(victims)  # mutation between requests of one stream
            after = [eng.search(q, K) for q in queries]
            assert not any(np.isin(r.ids, victims).any() for r in after)

    def test_insert_then_query_visibility(self, svc_and_data):
        svc, base, extra, queries, ids = svc_and_data
        with ServingEngine(svc, max_batch=8, max_wait_us=1000.0) as eng:
            new_ids = svc.insert(extra[:100])
            results = [eng.search(q, 1) for q in extra[:10]]
            hit = np.array([np.isin(r.ids[0], new_ids) for r in results])
            assert hit.mean() >= 0.8  # freshly inserted vectors findable

    def test_stale_cache_must_be_invalidated_on_delete(self, svc_and_data):
        svc, base, extra, queries, ids = svc_and_data
        q = queries[0]
        with ServingEngine(svc, max_batch=4, cache=QueryResultCache(64)) as eng:
            first = eng.search(q, K)
            victims = first.ids[first.ids >= 0]
            svc.delete(victims)
            eng.invalidate_cache()  # the documented mutation contract
            fresh = eng.search(q, K)
            assert not fresh.cache_hit
            assert not np.isin(fresh.ids, victims).any()

    def test_merge_with_queued_requests(self, svc_and_data):
        """merge() while the scheduler holds queued requests: every request
        completes with valid results and deleted ids stay masked across the
        generation switch."""
        svc, base, extra, queries, ids = svc_and_data
        svc.insert(extra)
        victims = ids[:100]
        svc.delete(victims)
        # A wide batch window holds submitted requests in the queue long
        # enough for merge() to start while they wait.
        with ServingEngine(svc, max_batch=64, max_wait_us=100_000.0) as eng:
            futs = [eng.submit(q, K) for q in queries]
            # More submissions than one batch can hold: the overflow is
            # still queued while the first batch waits out its window.
            assert eng.depth > 0
            merged = {}

            def do_merge():
                merged["stats"] = svc.merge()

            t = threading.Thread(target=do_merge)
            t.start()
            results = [f.result(timeout=60) for f in futs]
            t.join(timeout=60)
        assert not t.is_alive()
        assert merged["stats"].generation == 1
        assert merged["stats"].deleted_since == 100
        for r in results:
            assert r.ids.shape == (K,)
            valid = r.ids[r.ids >= 0]
            assert valid.size > 0
            # Whether a request ran pre- or post-merge, tombstoned ids
            # never surface (masked before, physically removed after).
            assert not np.isin(valid, victims).any()

    def test_merge_rebuild_does_not_block_serving(self, svc_and_data, monkeypatch):
        """Phase 2 of merge() (the retrain) holds no lock: searches keep
        completing mid-rebuild, pre-merge inserts stay visible via the
        frozen delta, and mid-rebuild inserts survive into the next cycle."""
        svc, base, extra, queries, ids = svc_and_data
        pre_merge_ids = svc.insert(extra[:50])

        in_rebuild = threading.Event()
        release = threading.Event()
        orig_train = type(svc.primary).train

        def slow_train(index, x):
            in_rebuild.set()
            assert release.wait(timeout=60)  # hold the rebuild open
            return orig_train(index, x)

        monkeypatch.setattr(type(svc.primary), "train", slow_train)
        merger = threading.Thread(target=svc.merge)
        merger.start()
        try:
            assert in_rebuild.wait(timeout=60)
            with pytest.raises(RuntimeError, match="already in progress"):
                svc.merge()
            # Mid-rebuild: serving proceeds and pre-merge inserts are
            # findable (they live in the frozen delta, not the primary).
            out_ids, _ = svc.search(extra[:10], 1)
            assert np.isin(out_ids[:, 0], pre_merge_ids).mean() >= 0.8
            mid_ids = svc.insert(extra[50:80])
            assert svc.ntotal == len(base) + 50 + 30
        finally:
            release.set()
            merger.join(timeout=120)
        assert not merger.is_alive()
        assert svc.generation == 1
        # The mid-rebuild inserts carried over into the live delta.
        assert svc.delta.ntotal == 30
        out_ids, _ = svc.search(extra[50:60], 1)
        assert np.isin(out_ids[:, 0], mid_ids).mean() >= 0.8
        # And the next merge folds them.
        monkeypatch.setattr(type(svc.primary), "train", orig_train)
        stats = svc.merge()
        assert stats.generation == 2
        assert stats.inserted_since == 30

    def test_failed_merge_rolls_back_and_can_retry(self, svc_and_data, monkeypatch):
        """A rebuild failure leaves the old generation serving everything
        (pre-merge and mid-rebuild inserts) and a later merge() succeeds."""
        svc, base, extra, queries, ids = svc_and_data
        pre_ids = svc.insert(extra[:40])
        orig_train = type(svc.primary).train

        def boom(index, x):
            raise MemoryError("rebuild died")

        monkeypatch.setattr(type(svc.primary), "train", boom)
        with pytest.raises(MemoryError):
            svc.merge()
        monkeypatch.setattr(type(svc.primary), "train", orig_train)
        assert svc.generation == 0
        assert svc._frozen_delta is None
        assert svc.ntotal == len(base) + 40
        out_ids, _ = svc.search(extra[:10], 1)
        assert np.isin(out_ids[:, 0], pre_ids).mean() >= 0.8  # still served
        stats = svc.merge()  # retry folds everything
        assert stats.generation == 1
        assert stats.inserted_since == 40

    def test_search_accepts_nprobe_override(self, svc_and_data):
        svc, base, extra, queries, ids = svc_and_data
        ids_a, _ = svc.search(queries[:4], K)
        ids_b, _ = svc.search(queries[:4], K, nprobe=16)
        assert ids_a.shape == ids_b.shape == (4, K)
        ids_c, _ = svc.search_batch(queries[:4], K, nprobe=svc.nprobe)
        np.testing.assert_array_equal(ids_a, ids_c)
