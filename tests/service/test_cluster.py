"""Tests for the multi-accelerator cluster service."""

import numpy as np
import pytest

from repro.core.config import AcceleratorConfig, AlgorithmParams
from repro.service.cluster import FPGAClusterService


@pytest.fixture(scope="module")
def cluster(trained_ivf):
    params = AlgorithmParams(
        d=trained_ivf.d, nlist=trained_ivf.nlist, nprobe=trained_ivf.nlist,
        k=5, m=trained_ivf.m, ksub=trained_ivf.ksub,
    )
    cfg = AcceleratorConfig(params=params, n_ivf_pes=2, n_lut_pes=2, n_pq_pes=4)
    return FPGAClusterService(trained_ivf, cfg, n_accelerators=4)


class TestClusterService:
    def test_validation(self, trained_ivf):
        params = AlgorithmParams(
            d=32, nlist=trained_ivf.nlist, nprobe=2, k=5, m=4, ksub=64
        )
        cfg = AcceleratorConfig(params=params, n_ivf_pes=1, n_lut_pes=1, n_pq_pes=2)
        with pytest.raises(ValueError, match="n_accelerators"):
            FPGAClusterService(trained_ivf, cfg, 0)

    def test_merged_results_match_single_node(self, cluster, trained_ivf, small_dataset):
        """Merging shard top-k is bit-identical to the global top-k (the
        exact (distance, id) merge kernel guarantees it, ties included)."""
        q = small_dataset.queries[:6]
        out = cluster.search(q)
        ref_ids, ref_dists = trained_ivf.search(q, 5, trained_ivf.nlist)
        np.testing.assert_array_equal(out.ids, ref_ids)
        np.testing.assert_array_equal(out.dists, ref_dists)

    def test_latency_exceeds_any_single_node(self, cluster, small_dataset):
        """Distributed latency = slowest shard + collectives > 0 network."""
        q = small_dataset.queries[:6]
        out = cluster.search(q)
        assert (out.latencies_us > 0).all()
        assert len(out.per_node_qps) == 4

    def test_percentiles(self, cluster, small_dataset):
        out = cluster.search(small_dataset.queries[:10])
        assert out.latency_percentile(95) >= out.latency_percentile(50)


class TestClusterServing:
    def test_search_batch_enforces_deployed_design(self, cluster, small_dataset):
        q = small_dataset.queries[:4]
        with pytest.raises(ValueError, match="k=5"):
            cluster.search_batch(q, 7)
        with pytest.raises(ValueError, match="nprobe"):
            cluster.search_batch(q, 5, nprobe=1)

    def test_search_batch_matches_search(self, cluster, small_dataset):
        q = small_dataset.queries[:6]
        ids, dists = cluster.search_batch(q, 5)
        out = cluster.search(q)
        np.testing.assert_array_equal(ids, out.ids)
        np.testing.assert_array_equal(dists, out.dists)

    def test_serves_through_engine(self, cluster, small_dataset):
        from repro.serve import ServingEngine

        q = small_dataset.queries[:8]
        ref = cluster.search(q)
        with ServingEngine(cluster, max_batch=8, max_wait_us=50_000.0) as eng:
            futs = [eng.submit(row, 5) for row in q]
            got = [f.result(timeout=60) for f in futs]
        np.testing.assert_array_equal(np.stack([g.ids for g in got]), ref.ids)
        np.testing.assert_array_equal(np.stack([g.dists for g in got]), ref.dists)
