"""Shared fixtures: small datasets and pre-trained indexes.

Expensive artifacts (trained PQ / IVF) are session-scoped; tests must not
mutate them.  Sizes are deliberately tiny (n≈2-5k, d≤64) so the whole suite
runs in well under a minute while still exercising every code path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ann.ivf import IVFPQIndex
from repro.ann.pq import ProductQuantizer
from repro.data.datasets import Dataset
from repro.data.synthetic import make_clustered, make_sift_like


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_vectors() -> np.ndarray:
    """(3000, 32) clustered float32 vectors with low intrinsic dimension."""
    return make_clustered(3000, 32, n_clusters=32, intrinsic_dim=6, seed=7)


@pytest.fixture(scope="session")
def small_dataset() -> Dataset:
    """2k base + 50 queries, 32-d, with exact ground truth at K=10."""
    vecs = make_clustered(2050, 32, n_clusters=32, intrinsic_dim=6, seed=3)
    ds = Dataset(name="unit", base=vecs[:2000], queries=vecs[2000:])
    ds.ensure_ground_truth(10)
    return ds


@pytest.fixture(scope="session")
def sift_dataset() -> Dataset:
    """Small SIFT-like dataset (5k base, 64 queries, 128-d) for integration."""
    ds = Dataset.synthetic("sift-unit", make_sift_like, 5000, 64, gt_k=10, seed=11)
    return ds


@pytest.fixture(scope="session")
def trained_pq(small_vectors: np.ndarray) -> ProductQuantizer:
    """PQ codec (d=32, m=4, ksub=64) trained on the small vector set."""
    pq = ProductQuantizer(d=32, m=4, ksub=64, seed=5)
    pq.train(small_vectors)
    return pq


@pytest.fixture(scope="session")
def trained_ivf(small_dataset: Dataset) -> IVFPQIndex:
    """IVF-PQ index (nlist=16, m=4, ksub=64) over the small dataset."""
    idx = IVFPQIndex(d=32, nlist=16, m=4, ksub=64, seed=5)
    idx.train(small_dataset.base)
    idx.add(small_dataset.base)
    return idx
