"""Unit tests for brute-force exact search."""

import numpy as np

from repro.ann.flat import FlatIndex, brute_force_topk


class TestBruteForce:
    def test_exact_against_naive(self, rng):
        base = rng.standard_normal((200, 8)).astype(np.float32)
        q = rng.standard_normal((5, 8)).astype(np.float32)
        ids, dists = brute_force_topk(q, base, 4)
        naive = ((q[:, None] - base[None]) ** 2).sum(-1)
        expect = np.argsort(naive, axis=1)[:, :4]
        np.testing.assert_array_equal(ids, expect)

    def test_distances_sorted(self, rng):
        base = rng.standard_normal((100, 4)).astype(np.float32)
        q = rng.standard_normal((3, 4)).astype(np.float32)
        _, dists = brute_force_topk(q, base, 10)
        assert (np.diff(dists, axis=1) >= 0).all()

    def test_self_query_returns_self_first(self, rng):
        base = rng.standard_normal((50, 6)).astype(np.float32)
        ids, dists = brute_force_topk(base[:3], base, 1)
        np.testing.assert_array_equal(ids.ravel(), [0, 1, 2])
        np.testing.assert_allclose(dists.ravel(), 0.0, atol=1e-4)


class TestFlatIndex:
    def test_search_matches_function(self, rng):
        base = rng.standard_normal((80, 5)).astype(np.float32)
        q = rng.standard_normal((2, 5)).astype(np.float32)
        idx = FlatIndex(base)
        ids1, d1 = idx.search(q, 3)
        ids2, d2 = brute_force_topk(q, base, 3)
        np.testing.assert_array_equal(ids1, ids2)
        assert idx.ntotal == 80
