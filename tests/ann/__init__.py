"""Test package (unique import paths for same-basename test modules)."""
