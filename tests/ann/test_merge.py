"""Tests for the exact (distance, id) top-K merge kernel."""

import numpy as np
import pytest

from repro.ann.merge import merge_partial_topk, merge_topk


def _reference(ids, dists, k):
    """Per-row lexsort reference: k smallest (dist, id) pairs."""
    out_i = np.empty((ids.shape[0], k), dtype=np.int64)
    out_d = np.empty((ids.shape[0], k), dtype=np.float32)
    for qi in range(ids.shape[0]):
        order = np.lexsort((ids[qi], dists[qi]))[:k]
        row_i, row_d = ids[qi][order], dists[qi][order]
        pad = k - len(row_i)
        if pad > 0:
            row_i = np.concatenate([row_i, np.full(pad, -1, dtype=np.int64)])
            row_d = np.concatenate([row_d, np.full(pad, np.inf, dtype=np.float32)])
        row_i[~np.isfinite(row_d)] = -1
        out_i[qi], out_d[qi] = row_i, row_d
    return out_i, out_d


class TestMergeTopK:
    def test_matches_lexsort_reference_random(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            nq, c, k = rng.integers(1, 8), int(rng.integers(1, 40)), int(rng.integers(1, 12))
            dists = rng.random((nq, c)).astype(np.float32)
            ids = rng.permutation(nq * c)[: nq * c].reshape(nq, c).astype(np.int64)
            got_i, got_d = merge_topk(ids, dists, k)
            ref_i, ref_d = _reference(ids, dists, k)
            np.testing.assert_array_equal(got_i, ref_i)
            np.testing.assert_array_equal(got_d, ref_d)

    def test_heavy_ties_resolved_by_id(self):
        """Quantized distances collide constantly; ids must arbitrate."""
        rng = np.random.default_rng(1)
        for _ in range(20):
            nq, c, k = 4, 30, 7
            # Draw from only 3 distinct distance values: ties everywhere,
            # including across the argpartition boundary.
            dists = rng.choice(
                np.array([0.25, 0.5, 1.0], dtype=np.float32), size=(nq, c)
            )
            ids = np.stack([rng.permutation(c) for _ in range(nq)]).astype(np.int64)
            got_i, got_d = merge_topk(ids, dists, k)
            ref_i, ref_d = _reference(ids, dists, k)
            np.testing.assert_array_equal(got_i, ref_i)
            np.testing.assert_array_equal(got_d, ref_d)

    def test_all_equal_distances(self):
        dists = np.full((2, 9), 2.0, dtype=np.float32)
        ids = np.array([[4, 8, 0, 2, 6, 1, 7, 5, 3],
                        [10, 30, 20, 50, 40, 70, 60, 90, 80]], dtype=np.int64)
        got_i, got_d = merge_topk(ids, dists, 4)
        np.testing.assert_array_equal(got_i, [[0, 1, 2, 3], [10, 20, 30, 40]])
        assert (got_d == 2.0).all()

    def test_fewer_candidates_than_k_pads(self):
        ids = np.array([[3, 1]], dtype=np.int64)
        dists = np.array([[0.5, 0.5]], dtype=np.float32)
        got_i, got_d = merge_topk(ids, dists, 4)
        np.testing.assert_array_equal(got_i, [[1, 3, -1, -1]])
        np.testing.assert_array_equal(got_d, [[0.5, 0.5, np.inf, np.inf]])

    def test_padding_inputs_stay_padding(self):
        """(-1, inf) pads from shards with short cells sort last and
        normalize to -1 ids."""
        ids = np.array([[7, -1, -1, 2]], dtype=np.int64)
        dists = np.array([[1.0, np.inf, np.inf, 0.5]], dtype=np.float32)
        got_i, got_d = merge_topk(ids, dists, 3)
        np.testing.assert_array_equal(got_i, [[2, 7, -1]])
        np.testing.assert_array_equal(got_d, [[0.5, 1.0, np.inf]])

    def test_k_equals_candidate_count(self):
        ids = np.array([[2, 0, 1]], dtype=np.int64)
        dists = np.array([[0.3, 0.2, 0.1]], dtype=np.float32)
        got_i, _ = merge_topk(ids, dists, 3)
        np.testing.assert_array_equal(got_i, [[1, 0, 2]])

    def test_validation(self):
        with pytest.raises(ValueError, match="k must be positive"):
            merge_topk(np.zeros((1, 2), dtype=np.int64),
                       np.zeros((1, 2), dtype=np.float32), 0)
        with pytest.raises(ValueError, match="shape"):
            merge_topk(np.zeros((1, 3), dtype=np.int64),
                       np.zeros((1, 2), dtype=np.float32), 1)


class TestMergePartialTopK:
    def test_merges_aligned_rows(self):
        a = (np.array([[1, 5]], dtype=np.int64),
             np.array([[0.1, 0.9]], dtype=np.float32))
        b = (np.array([[2, 7]], dtype=np.int64),
             np.array([[0.2, 0.3]], dtype=np.float32))
        ids, dists = merge_partial_topk([a, b], 3)
        np.testing.assert_array_equal(ids, [[1, 2, 7]])
        np.testing.assert_array_equal(dists, np.array([[0.1, 0.2, 0.3]], dtype=np.float32))

    def test_empty_parts_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            merge_partial_topk([], 3)
