"""Hypothesis property-based tests on core ANN invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ann.distances import l2_sq, topk_smallest
from repro.ann.ivf import IVFPQIndex
from repro.ann.pq import ProductQuantizer

finite_f32 = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False, width=32
)


@st.composite
def matrix_pair(draw, max_rows=12, dim_choices=(2, 4, 8)):
    d = draw(st.sampled_from(dim_choices))
    nx = draw(st.integers(1, max_rows))
    ny = draw(st.integers(1, max_rows))
    x = draw(arrays(np.float32, (nx, d), elements=finite_f32))
    y = draw(arrays(np.float32, (ny, d), elements=finite_f32))
    return x, y


class TestDistanceProperties:
    @given(matrix_pair())
    @settings(max_examples=60, deadline=None)
    def test_l2_nonnegative(self, pair):
        x, y = pair
        assert (l2_sq(x, y) >= 0).all()

    @given(matrix_pair())
    @settings(max_examples=60, deadline=None)
    def test_l2_symmetric(self, pair):
        x, y = pair
        np.testing.assert_allclose(l2_sq(x, y), l2_sq(y, x).T, rtol=1e-3, atol=1e-2)

    @given(arrays(np.float32, (6, 4), elements=finite_f32))
    @settings(max_examples=60, deadline=None)
    def test_l2_identity_of_indiscernibles(self, x):
        d = l2_sq(x, x)
        assert np.diag(d).max() <= 1e-2 + 1e-5 * np.abs(x).max() ** 2


class TestTopKProperties:
    @given(
        arrays(np.float32, st.integers(1, 60).map(lambda n: (n,)), elements=finite_f32),
        st.integers(1, 10),
    )
    @settings(max_examples=80, deadline=None)
    def test_topk_is_true_minimum_set(self, v, k):
        k = min(k, len(v))
        idx, vals = topk_smallest(v, k)
        assert len(idx) == k
        # Values are the k smallest (multiset comparison tolerant to ties).
        np.testing.assert_allclose(np.sort(vals), np.sort(v)[:k], rtol=1e-6, atol=1e-6)
        # And sorted ascending.
        assert (np.diff(vals) >= 0).all()

    @given(
        arrays(np.float32, (5, 20), elements=finite_f32),
        st.integers(1, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_topk_indices_point_at_values(self, v, k):
        idx, vals = topk_smallest(v, k, axis=1)
        np.testing.assert_array_equal(np.take_along_axis(v, idx, axis=1), vals)


class TestPQProperties:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_encode_decode_reduces_error_vs_random_codes(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((300, 8)).astype(np.float32)
        pq = ProductQuantizer(d=8, m=2, ksub=16, seed=0, n_iter=5)
        pq.train(x)
        codes = pq.encode(x)
        err = np.mean(((x - pq.decode(codes)) ** 2).sum(axis=1))
        rand_codes = rng.integers(0, 16, size=codes.shape).astype(np.uint8)
        err_rand = np.mean(((x - pq.decode(rand_codes)) ** 2).sum(axis=1))
        assert err <= err_rand

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_adc_equals_decoded_distance(self, seed):
        """Eq. 1 invariant: ADC == exact distance to the decoded vector."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((200, 8)).astype(np.float32)
        pq = ProductQuantizer(d=8, m=2, ksub=16, seed=1, n_iter=5)
        pq.train(x)
        q = rng.standard_normal(8).astype(np.float32)
        codes = pq.encode(x[:20])
        adc = pq.adc(pq.build_lut(q), codes)
        exact = l2_sq(q[None], pq.decode(codes)).ravel()
        np.testing.assert_allclose(adc, exact, rtol=1e-3, atol=1e-3)


class TestIVFProperties:
    @given(st.integers(1, 8), st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_search_returns_only_real_or_padding_ids(self, nprobe, k):
        rng = np.random.default_rng(42)
        base = rng.standard_normal((400, 8)).astype(np.float32)
        idx = IVFPQIndex(d=8, nlist=8, m=2, ksub=16, seed=0)
        idx.train(base)
        idx.add(base)
        ids, dists = idx.search(base[:5], k, nprobe)
        valid = (ids >= 0) & (ids < 400)
        padding = ids == -1
        assert (valid | padding).all()
        # Padding rows must carry +inf distances.
        assert np.isinf(dists[padding]).all()
