"""Unit tests for the blocked distance kernels."""

import numpy as np
import pytest

from repro.ann.distances import l2_sq, l2_sq_blocked, pairwise_argmin, topk_smallest


def _reference_l2(x, y):
    return ((x[:, None, :] - y[None, :, :]) ** 2).sum(axis=2)


class TestL2Sq:
    def test_matches_reference(self, rng):
        x = rng.standard_normal((7, 5)).astype(np.float64)
        y = rng.standard_normal((11, 5)).astype(np.float64)
        np.testing.assert_allclose(l2_sq(x, y), _reference_l2(x, y), rtol=1e-9, atol=1e-9)

    def test_single_vector_promoted(self, rng):
        x = rng.standard_normal(5)
        y = rng.standard_normal((4, 5))
        out = l2_sq(x, y)
        assert out.shape == (1, 4)

    def test_zero_distance_on_identical_rows(self, rng):
        x = rng.standard_normal((3, 8)).astype(np.float32)
        d = l2_sq(x, x)
        assert np.all(np.diag(d) >= 0.0)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-3)

    def test_never_negative(self, rng):
        x = (1000.0 + rng.standard_normal((20, 16)) * 1e-3).astype(np.float32)
        assert (l2_sq(x, x) >= 0.0).all()

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            l2_sq(np.zeros((2, 3)), np.zeros((2, 4)))


class TestL2SqBlocked:
    def test_matches_unblocked(self, rng):
        x = rng.standard_normal((300, 6))
        y = rng.standard_normal((50, 6))
        np.testing.assert_allclose(
            l2_sq_blocked(x, y, block=64), l2_sq(x, y), rtol=1e-9, atol=1e-9
        )

    def test_block_larger_than_input(self, rng):
        x = rng.standard_normal((10, 4))
        y = rng.standard_normal((5, 4))
        np.testing.assert_allclose(l2_sq_blocked(x, y, block=1000), l2_sq(x, y))

    def test_block_of_one(self, rng):
        x = rng.standard_normal((5, 3))
        y = rng.standard_normal((4, 3))
        np.testing.assert_allclose(
            l2_sq_blocked(x, y, block=1), l2_sq(x, y), rtol=1e-9, atol=1e-9
        )


class TestPairwiseArgmin:
    def test_matches_full_argmin(self, rng):
        x = rng.standard_normal((40, 8))
        y = rng.standard_normal((17, 8))
        expect = np.argmin(_reference_l2(x, y), axis=1)
        np.testing.assert_array_equal(pairwise_argmin(x, y), expect)

    def test_self_nearest(self, rng):
        y = rng.standard_normal((25, 6))
        np.testing.assert_array_equal(pairwise_argmin(y, y), np.arange(25))


class TestTopkSmallest:
    def test_sorted_ascending(self, rng):
        v = rng.standard_normal((5, 30))
        idx, vals = topk_smallest(v, 7, axis=1)
        assert idx.shape == (5, 7)
        assert (np.diff(vals, axis=1) >= 0).all()

    def test_matches_argsort(self, rng):
        v = rng.standard_normal((3, 20))
        idx, _ = topk_smallest(v, 5, axis=1)
        expect = np.argsort(v, axis=1)[:, :5]
        np.testing.assert_array_equal(np.sort(idx, axis=1), np.sort(expect, axis=1))

    def test_k_equals_n_full_sort(self, rng):
        v = rng.standard_normal(9)
        idx, vals = topk_smallest(v, 9)
        np.testing.assert_array_equal(idx, np.argsort(v))

    def test_k_clamped_to_n(self, rng):
        v = rng.standard_normal(4)
        idx, vals = topk_smallest(v, 10)
        assert idx.shape == (4,)

    def test_k_nonpositive_raises(self):
        with pytest.raises(ValueError, match="k must be positive"):
            topk_smallest(np.zeros(5), 0)

    def test_1d_input(self, rng):
        v = rng.standard_normal(50)
        idx, vals = topk_smallest(v, 3)
        np.testing.assert_allclose(vals, np.sort(v)[:3])
