"""Tests for the instrumented six-stage searcher."""

import numpy as np
import pytest

from repro.ann.ivf import IVFPQIndex
from repro.ann.stages import STAGE_NAMES, SearchStageTrace, StagedSearcher


class TestStagedSearcher:
    def test_results_match_plain_search(self, trained_ivf, small_dataset):
        s = StagedSearcher(trained_ivf)
        ids_ref, dists_ref = trained_ivf.search(small_dataset.queries, 5, 4)
        ids, dists, trace = s.search(small_dataset.queries, 5, 4)
        np.testing.assert_array_equal(ids, ids_ref)
        np.testing.assert_allclose(dists, dists_ref, rtol=1e-5)

    def test_untrained_index_raises(self):
        with pytest.raises(ValueError, match="trained"):
            StagedSearcher(IVFPQIndex(d=8, nlist=2, m=2))

    def test_trace_covers_all_stages(self, trained_ivf, small_dataset):
        s = StagedSearcher(trained_ivf)
        _, _, trace = s.search(small_dataset.queries, 5, 4)
        assert set(trace.seconds) == set(STAGE_NAMES)
        assert trace.total_seconds > 0
        assert trace.n_queries == small_dataset.nq

    def test_workloads_scale_with_nprobe(self, trained_ivf, small_dataset):
        s = StagedSearcher(trained_ivf)
        _, _, t2 = s.search(small_dataset.queries, 5, 2)
        _, _, t8 = s.search(small_dataset.queries, 5, 8)
        assert t8.workload["BuildLUT"] > t2.workload["BuildLUT"]
        assert t8.workload["PQDist"] > t2.workload["PQDist"]
        # IVFDist workload depends only on nlist, not nprobe.
        assert t8.workload["IVFDist"] == t2.workload["IVFDist"]

    def test_opq_workload_zero_without_opq(self, trained_ivf, small_dataset):
        s = StagedSearcher(trained_ivf)
        _, _, trace = s.search(small_dataset.queries, 5, 2)
        assert trace.workload["OPQ"] == 0.0


class TestTrace:
    def test_fractions_sum_to_one(self, trained_ivf, small_dataset):
        s = StagedSearcher(trained_ivf)
        _, _, trace = s.search(small_dataset.queries, 5, 4)
        assert sum(trace.fractions().values()) == pytest.approx(1.0)

    def test_empty_trace_fractions_zero(self):
        trace = SearchStageTrace()
        assert all(v == 0.0 for v in trace.fractions().values())

    def test_bottleneck_named_stage(self, trained_ivf, small_dataset):
        s = StagedSearcher(trained_ivf)
        _, _, trace = s.search(small_dataset.queries, 5, 4)
        assert trace.bottleneck() in STAGE_NAMES

    def test_merged_adds(self):
        a = SearchStageTrace()
        b = SearchStageTrace()
        a.seconds["PQDist"] = 1.0
        b.seconds["PQDist"] = 2.0
        a.n_queries = 3
        b.n_queries = 4
        m = a.merged(b)
        assert m.seconds["PQDist"] == 3.0
        assert m.n_queries == 7
