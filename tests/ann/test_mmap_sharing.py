"""Tests that mmap-loaded index directories truly share one physical copy.

The multi-process data plane's memory story rests on two properties of
``load_index_dir(mmap=True)``: (a) independent reader processes get
bit-identical answers from the same directory, and (b) the packed arrays
are *mapped*, not copied — a worker never dirties private pages for the
code/id slabs, so N workers cost one corpus in RAM, not N.
"""

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.ann.io import save_index_dir
from repro.ann.ivf import IVFPQIndex
from repro.data.synthetic import make_clustered

#: Script run in each reader subprocess: load mmap'd, search, report a
#: results digest plus how many private-dirty KB the codes mapping holds.
READER = r"""
import hashlib, json, sys
import numpy as np
from repro.ann.io import load_index_dir

index_dir, = sys.argv[1:]
index = load_index_dir(index_dir, mmap=True)
lists = index.invlists
assert isinstance(lists.codes, np.memmap), type(lists.codes)
assert isinstance(lists.ids, np.memmap), type(lists.ids)
assert not lists.codes.flags.writeable

queries = np.load(index_dir + "/queries.npy")
ids, dists = index.search(queries, 10, 8)

# Inspect the codes.npy mapping: it must be a read-only *shared* file
# mapping (r--s) with zero anonymous pages — anonymous KB would mean the
# scan copied slab pages into process-private memory.  (Private_Dirty is
# useless here: on tmpfs, file pages are permanently "dirty".)
perms = []
anonymous_kb = None
in_codes_mapping = False
try:
    lines = open("/proc/self/smaps").read().splitlines()
except OSError:
    lines = []
for line in lines:
    if line.endswith("codes.npy"):
        in_codes_mapping = True
        perms.append(line.split()[1])
        anonymous_kb = anonymous_kb or 0
    elif in_codes_mapping and line.startswith("Anonymous:"):
        anonymous_kb += int(line.split()[1])
        in_codes_mapping = False

print(json.dumps({
    "digest": hashlib.sha256(ids.tobytes() + dists.tobytes()).hexdigest(),
    "codes_map_perms": perms,
    "codes_anonymous_kb": anonymous_kb,
}))
"""


def _reader_env() -> dict:
    env = os.environ.copy()
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    return env


def _run_reader(path: Path) -> dict:
    proc = subprocess.run(
        [sys.executable, "-c", READER, str(path)],
        capture_output=True, text=True, timeout=120, env=_reader_env(),
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


@pytest.fixture(scope="module")
def saved_dir(tmp_path_factory):
    """A saved index directory plus its query file and reference digest."""
    vecs = make_clustered(2050, 32, n_clusters=32, intrinsic_dim=6, seed=3)
    base, queries = vecs[:2000], vecs[2000:2032]
    index = IVFPQIndex(d=32, nlist=16, m=4, ksub=64, seed=5)
    index.train(base)
    index.add(base)
    path = tmp_path_factory.mktemp("mmap-share") / "index"
    save_index_dir(index, path)
    np.save(path / "queries.npy", queries)
    ids, dists = index.search(queries, 10, 8)
    digest = hashlib.sha256(ids.tobytes() + dists.tobytes()).hexdigest()
    return path, digest


class TestConcurrentMmapReaders:
    def test_two_processes_bit_identical(self, saved_dir):
        """Two concurrent reader processes over one directory agree with
        the in-process builder bit for bit."""
        path, ref_digest = saved_dir
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", READER, str(path)],
                stdout=subprocess.PIPE, text=True, env=_reader_env(),
            )
            for _ in range(2)
        ]
        outs = [p.communicate(timeout=120)[0] for p in procs]
        assert all(p.returncode == 0 for p in procs)
        digests = [json.loads(o)["digest"] for o in outs]
        assert digests == [ref_digest, ref_digest]

    @pytest.mark.skipif(
        sys.platform != "linux", reason="/proc/self/smaps is Linux-only"
    )
    def test_mapping_shared_not_copied(self, saved_dir):
        """The codes slab must be a read-only shared file mapping with no
        anonymous (copied-on-write) pages — the scan reads through the
        page cache, it does not copy the slab onto the reader's heap."""
        path, _ = saved_dir
        report = _run_reader(path)
        assert report["codes_map_perms"], "codes.npy not found in smaps"
        for perms in report["codes_map_perms"]:
            assert perms[0] == "r" and perms[1] == "-", perms  # read-only
            assert perms[3] == "s", perms  # MAP_SHARED, not a private copy
        assert report["codes_anonymous_kb"] == 0
