"""Unit tests for k-means clustering."""

import numpy as np
import pytest

from repro.ann.kmeans import KMeans, kmeans_fit, kmeans_pp_init


@pytest.fixture(scope="module")
def blobs():
    """Three well-separated 2-D blobs."""
    rng = np.random.default_rng(0)
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    pts = np.concatenate(
        [c + 0.3 * rng.standard_normal((100, 2)) for c in centers]
    ).astype(np.float32)
    return pts, centers


class TestKMeansPP:
    def test_seeds_are_dataset_points(self, blobs):
        pts, _ = blobs
        rng = np.random.default_rng(1)
        seeds = kmeans_pp_init(pts, 3, rng)
        for s in seeds:
            assert np.min(((pts - s) ** 2).sum(axis=1)) < 1e-10

    def test_k_greater_than_n_raises(self):
        with pytest.raises(ValueError, match="exceeds"):
            kmeans_pp_init(np.zeros((3, 2), dtype=np.float32), 5, np.random.default_rng(0))

    def test_seeds_spread_across_blobs(self, blobs):
        pts, centers = blobs
        rng = np.random.default_rng(2)
        seeds = kmeans_pp_init(pts, 3, rng)
        # Each seed should be near a distinct true center.
        owner = np.argmin(((seeds[:, None, :] - centers[None]) ** 2).sum(-1), axis=1)
        assert len(set(owner.tolist())) == 3


class TestKMeansFit:
    def test_recovers_blob_centers(self, blobs):
        pts, centers = blobs
        fitted, assign, inertia = kmeans_fit(pts, 3, seed=0)
        # Match each fitted center to its nearest true center.
        d = ((fitted[:, None, :] - centers[None]) ** 2).sum(-1)
        assert np.sort(np.argmin(d, axis=1)).tolist() == [0, 1, 2]
        assert d.min(axis=1).max() < 0.5

    def test_inertia_decreases_with_k(self, blobs):
        pts, _ = blobs
        _, _, i2 = kmeans_fit(pts, 2, seed=0)
        _, _, i6 = kmeans_fit(pts, 6, seed=0)
        assert i6 < i2

    def test_assignment_shape_and_range(self, blobs):
        pts, _ = blobs
        centers, assign, _ = kmeans_fit(pts, 4, seed=1)
        assert assign.shape == (pts.shape[0],)
        assert assign.min() >= 0 and assign.max() < 4

    def test_no_empty_clusters_on_degenerate_data(self):
        # All points identical: the empty-cluster reseeding path must run.
        pts = np.ones((50, 4), dtype=np.float32)
        centers, assign, _ = kmeans_fit(pts, 4, seed=0, n_iter=3)
        assert centers.shape == (4, 4)
        assert np.isfinite(centers).all()

    def test_deterministic_given_seed(self, blobs):
        pts, _ = blobs
        c1, a1, _ = kmeans_fit(pts, 3, seed=42)
        c2, a2, _ = kmeans_fit(pts, 3, seed=42)
        np.testing.assert_array_equal(c1, c2)
        np.testing.assert_array_equal(a1, a2)


class TestKMeansWrapper:
    def test_fit_predict_roundtrip(self, blobs):
        pts, _ = blobs
        km = KMeans(k=3, seed=0).fit(pts)
        labels = km.predict(pts)
        np.testing.assert_array_equal(labels, km.labels_)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="before fit"):
            KMeans(k=2).predict(np.zeros((3, 2)))
