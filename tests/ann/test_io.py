"""Tests for index persistence and reconstruction."""

import numpy as np
import pytest

from repro.ann.io import load_index, save_index
from repro.ann.ivf import IVFPQIndex


class TestSaveLoad:
    def test_roundtrip_search_identical(self, trained_ivf, small_dataset, tmp_path):
        path = save_index(trained_ivf, tmp_path / "idx.npz")
        loaded = load_index(path)
        ids_a, d_a = trained_ivf.search(small_dataset.queries, 5, 4)
        ids_b, d_b = loaded.search(small_dataset.queries, 5, 4)
        np.testing.assert_array_equal(ids_a, ids_b)
        np.testing.assert_allclose(d_a, d_b, rtol=1e-6)

    def test_roundtrip_preserves_metadata(self, trained_ivf, tmp_path):
        loaded = load_index(save_index(trained_ivf, tmp_path / "idx.npz"))
        assert loaded.nlist == trained_ivf.nlist
        assert loaded.m == trained_ivf.m
        assert loaded.ntotal == trained_ivf.ntotal
        assert loaded.by_residual == trained_ivf.by_residual

    def test_opq_index_roundtrip(self, small_dataset, tmp_path):
        idx = IVFPQIndex(d=32, nlist=8, m=4, ksub=32, use_opq=True, seed=1)
        idx.train(small_dataset.base)
        idx.add(small_dataset.base[:500])
        loaded = load_index(save_index(idx, tmp_path / "opq.npz"))
        assert loaded.opq is not None
        ids_a, _ = idx.search(small_dataset.queries[:5], 3, 4)
        ids_b, _ = loaded.search(small_dataset.queries[:5], 3, 4)
        np.testing.assert_array_equal(ids_a, ids_b)

    def test_untrained_raises(self, tmp_path):
        with pytest.raises(ValueError, match="untrained"):
            save_index(IVFPQIndex(d=8, nlist=2, m=2), tmp_path / "x.npz")

    def test_legacy_v1_archive_loads(self, trained_ivf, small_dataset, tmp_path):
        """Version-1 archives (one codes_<cell>/ids_<cell> pair per list)
        pack into the CSR layout on load — old snapshots keep working."""
        payload = {
            "format_version": np.array(1),
            "d": np.array(trained_ivf.d),
            "nlist": np.array(trained_ivf.nlist),
            "m": np.array(trained_ivf.m),
            "ksub": np.array(trained_ivf.ksub),
            "use_opq": np.array(trained_ivf.use_opq),
            "by_residual": np.array(trained_ivf.by_residual),
            "seed": np.array(trained_ivf.seed),
            "centroids": trained_ivf.centroids,
            "codebooks": trained_ivf.pq.codebooks,
        }
        for cell in range(trained_ivf.nlist):
            payload[f"codes_{cell}"] = trained_ivf.cell_codes[cell]
            payload[f"ids_{cell}"] = trained_ivf.cell_ids[cell]
        np.savez_compressed(tmp_path / "v1.npz", **payload)
        loaded = load_index(tmp_path / "v1.npz")
        assert loaded.ntotal == trained_ivf.ntotal
        ids_a, d_a = trained_ivf.search(small_dataset.queries, 5, 4)
        ids_b, d_b = loaded.search(small_dataset.queries, 5, 4)
        np.testing.assert_array_equal(ids_a, ids_b)
        np.testing.assert_array_equal(d_a, d_b)

    def test_future_version_rejected(self, trained_ivf, tmp_path):
        path = save_index(trained_ivf, tmp_path / "idx.npz")
        data = dict(np.load(path))
        data["format_version"] = np.array(99)
        np.savez(tmp_path / "v99.npz", **data)
        with pytest.raises(ValueError, match="unsupported index format"):
            load_index(tmp_path / "v99.npz")

    def test_suffix_added(self, trained_ivf, tmp_path):
        path = save_index(trained_ivf, tmp_path / "noext")
        assert path.suffix == ".npz"
        assert path.exists()


class TestReconstruct:
    def test_error_bounded_by_quantization(self, trained_ivf, small_dataset):
        ids = np.arange(20)
        recon = trained_ivf.reconstruct(ids)
        assert recon.shape == (20, 32)
        # Reconstruction lands closer to the original than the dataset mean.
        orig = small_dataset.base[:20]
        err = np.linalg.norm(recon - orig, axis=1).mean()
        base = np.linalg.norm(orig - small_dataset.base.mean(axis=0), axis=1).mean()
        assert err < base

    def test_unknown_id_raises(self, trained_ivf):
        with pytest.raises(KeyError, match="not in index"):
            trained_ivf.reconstruct([10**9])

    def test_opq_inverse_applied(self, small_dataset):
        idx = IVFPQIndex(d=32, nlist=8, m=4, ksub=64, use_opq=True, seed=0)
        idx.train(small_dataset.base)
        idx.add(small_dataset.base[:300])
        recon = idx.reconstruct(np.arange(10))
        orig = small_dataset.base[:10]
        err = np.linalg.norm(recon - orig, axis=1).mean()
        scale = np.linalg.norm(orig, axis=1).mean()
        assert err < scale  # same space as the originals, not the rotated one
