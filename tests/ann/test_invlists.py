"""Tests for the packed CSR invlist storage and the batched query engine.

The key contract: the packed layout plus the batched (grouped-by-cell)
search must return **identical** ids and distances to the seed
list-of-arrays, per-query×cell reference algorithm on fixed-seed data.
"""

import numpy as np
import pytest

from repro.ann.invlists import InvListBuilder, PackedInvLists
from repro.ann.io import load_index_dir, save_index_dir
from repro.ann.ivf import IVFPQIndex


def _reference_search(index, queries, k, nprobe):
    """The seed implementation: list-of-arrays cells, Python loop per query."""
    cell_codes = index.cell_codes  # per-cell views (legacy layout)
    cell_ids = index.cell_ids
    qt = index.stage_opq(queries)
    probed = index.stage_select_cells(index.stage_ivf_dist(qt), nprobe)
    nq = qt.shape[0]
    out_ids = np.empty((nq, k), dtype=np.int64)
    out_dists = np.empty((nq, k), dtype=np.float32)
    for qi in range(nq):
        cells = probed[qi]
        luts = index.stage_build_luts(qt[qi], cells)
        dists, ids = [], []
        for lut, cell in zip(luts, cells):
            codes = cell_codes[cell]
            if codes.shape[0] == 0:
                continue
            dists.append(index.pq.adc(lut, codes))
            ids.append(cell_ids[cell])
        if dists:
            d, i = np.concatenate(dists), np.concatenate(ids)
        else:
            d = np.empty(0, dtype=np.float32)
            i = np.empty(0, dtype=np.int64)
        out_ids[qi], out_dists[qi] = index.stage_select_k(d, i, k)
    return out_ids, out_dists


class TestPackedLayout:
    def test_csr_invariants(self, trained_ivf):
        lists = trained_ivf.invlists
        assert lists.is_contiguous
        offsets = lists.offsets
        assert offsets[0] == 0 and offsets[-1] == lists.ntotal
        assert (np.diff(offsets) == lists.sizes).all()
        assert lists.codes.shape == (lists.ntotal, trained_ivf.m)
        assert lists.codes.dtype == np.uint8
        assert lists.ids.dtype == np.int64

    def test_cell_views_are_zero_copy(self, trained_ivf):
        lists = trained_ivf.invlists
        cell = int(np.argmax(lists.sizes))
        assert np.shares_memory(lists.cell_codes(cell), lists.codes)
        assert np.shares_memory(lists.cell_ids(cell), lists.ids)

    def test_memory_bytes(self, trained_ivf):
        lists = trained_ivf.invlists
        assert lists.memory_bytes() == lists.ntotal * (trained_ivf.m + 8)


class TestBatchedSearchEquality:
    @pytest.mark.parametrize("nprobe", [1, 4, 16])
    def test_matches_seed_reference(self, trained_ivf, small_dataset, nprobe):
        ids_ref, d_ref = _reference_search(trained_ivf, small_dataset.queries, 5, nprobe)
        ids, dists = trained_ivf.search(small_dataset.queries, 5, nprobe)
        np.testing.assert_array_equal(ids, ids_ref)
        np.testing.assert_array_equal(dists, d_ref)

    def test_matches_reference_with_opq(self, small_dataset):
        idx = IVFPQIndex(d=32, nlist=8, m=4, ksub=32, use_opq=True, seed=1)
        idx.train(small_dataset.base)
        idx.add(small_dataset.base)
        ids_ref, d_ref = _reference_search(idx, small_dataset.queries, 8, 4)
        ids, dists = idx.search(small_dataset.queries, 8, 4)
        np.testing.assert_array_equal(ids, ids_ref)
        np.testing.assert_array_equal(dists, d_ref)

    def test_matches_reference_non_residual(self, small_dataset):
        idx = IVFPQIndex(d=32, nlist=8, m=4, ksub=32, by_residual=False, seed=2)
        idx.train(small_dataset.base)
        idx.add(small_dataset.base)
        ids_ref, d_ref = _reference_search(idx, small_dataset.queries, 5, 3)
        ids, dists = idx.search(small_dataset.queries, 5, 3)
        np.testing.assert_array_equal(ids, ids_ref)
        np.testing.assert_array_equal(dists, d_ref)

    def test_single_query_batch(self, trained_ivf, small_dataset):
        q = small_dataset.queries[:1]
        ids_ref, d_ref = _reference_search(trained_ivf, q, 5, 4)
        ids, dists = trained_ivf.search(q, 5, 4)
        np.testing.assert_array_equal(ids, ids_ref)
        np.testing.assert_array_equal(dists, d_ref)


class TestBuilder:
    def test_incremental_equals_bulk(self, small_dataset):
        bulk = IVFPQIndex(d=32, nlist=8, m=4, ksub=32, seed=4)
        bulk.train(small_dataset.base)
        bulk.add(small_dataset.base)
        inc = IVFPQIndex(d=32, nlist=8, m=4, ksub=32, seed=4)
        inc.train(small_dataset.base)
        for lo in range(0, small_dataset.n, 300):
            inc.add(small_dataset.base[lo : lo + 300])
        np.testing.assert_array_equal(bulk.invlists.codes, inc.invlists.codes)
        np.testing.assert_array_equal(bulk.invlists.ids, inc.invlists.ids)
        np.testing.assert_array_equal(bulk.invlists.offsets, inc.invlists.offsets)

    def test_append_is_buffered(self, small_dataset):
        idx = IVFPQIndex(d=32, nlist=8, m=4, ksub=32, seed=4)
        idx.train(small_dataset.base)
        idx.add(small_dataset.base[:100])
        assert idx._pending is not None and idx._pending.n_pending == 100
        assert idx.ntotal == 100  # visible before the flush
        _ = idx.invlists
        assert idx._pending is None  # flushed on access
        assert idx.ntotal == 100

    def test_builder_validates(self):
        b = InvListBuilder(nlist=4, m=2)
        with pytest.raises(ValueError, match="length mismatch"):
            b.append(np.zeros(3, dtype=np.int64), np.zeros((2, 2), np.uint8),
                     np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError, match="outside"):
            b.append(np.array([7]), np.zeros((1, 2), np.uint8), np.array([0]))

    def test_empty_build(self):
        lists = InvListBuilder(nlist=4, m=2).build()
        assert lists.ntotal == 0 and lists.nlist == 4


class TestZeroCopySharding:
    def test_shards_are_views(self, trained_ivf):
        lists = trained_ivf.invlists
        for part in range(3):
            shard = lists.shard(part, 3)
            assert shard.codes is lists.codes  # no data movement at all
            assert shard.ids is lists.ids

    def test_shards_cover_disjointly(self, trained_ivf):
        lists = trained_ivf.invlists
        shard_ids = [lists.shard(p, 4).all_ids() for p in range(4)]
        cat = np.concatenate(shard_ids)
        np.testing.assert_array_equal(np.sort(cat), np.sort(np.asarray(lists.all_ids())))

    def test_shard_balance(self, trained_ivf):
        lists = trained_ivf.invlists
        totals = [lists.shard(p, 4).ntotal for p in range(4)]
        assert max(totals) - min(totals) <= lists.nlist

    def test_shard_packed_copy(self, trained_ivf):
        shard = trained_ivf.invlists.shard(1, 3)
        assert not shard.is_contiguous
        packed = shard.packed()
        assert packed.is_contiguous
        np.testing.assert_array_equal(packed.all_ids(), shard.all_ids())

    def test_invalid_part(self, trained_ivf):
        with pytest.raises(ValueError, match="part"):
            trained_ivf.invlists.shard(3, 3)


class TestMmapPersistence:
    def test_dir_roundtrip_mmap_search_identical(self, trained_ivf, small_dataset, tmp_path):
        save_index_dir(trained_ivf, tmp_path / "idx")
        loaded = load_index_dir(tmp_path / "idx", mmap=True)
        assert isinstance(loaded.invlists.codes, np.memmap)
        ids_a, d_a = trained_ivf.search(small_dataset.queries, 5, 4)
        ids_b, d_b = loaded.search(small_dataset.queries, 5, 4)
        np.testing.assert_array_equal(ids_a, ids_b)
        np.testing.assert_array_equal(d_a, d_b)

    def test_dir_roundtrip_in_memory(self, trained_ivf, small_dataset, tmp_path):
        save_index_dir(trained_ivf, tmp_path / "idx")
        loaded = load_index_dir(tmp_path / "idx", mmap=False)
        assert not isinstance(loaded.invlists.codes, np.memmap)
        ids_a, _ = trained_ivf.search(small_dataset.queries, 5, 4)
        ids_b, _ = loaded.search(small_dataset.queries, 5, 4)
        np.testing.assert_array_equal(ids_a, ids_b)

    def test_mmap_reconstruct(self, trained_ivf, tmp_path):
        save_index_dir(trained_ivf, tmp_path / "idx")
        loaded = load_index_dir(tmp_path / "idx", mmap=True)
        np.testing.assert_allclose(
            loaded.reconstruct(np.arange(10)), trained_ivf.reconstruct(np.arange(10))
        )

    def test_untrained_raises(self, tmp_path):
        with pytest.raises(ValueError, match="untrained"):
            save_index_dir(IVFPQIndex(d=8, nlist=2, m=2), tmp_path / "x")

    def test_inplace_resave_over_live_mmap(self, trained_ivf, small_dataset, tmp_path):
        """Regression: re-saving into the directory an index was mmap-loaded
        from must not truncate the .npy files backing the live memmaps."""
        save_index_dir(trained_ivf, tmp_path / "ix")
        mm = load_index_dir(tmp_path / "ix", mmap=True)
        mm.add(small_dataset.base[:50], ids=np.arange(10_000, 10_050, dtype=np.int64))
        save_index_dir(mm, tmp_path / "ix")
        back = load_index_dir(tmp_path / "ix", mmap=True)
        assert back.ntotal == trained_ivf.ntotal + 50
        ids_a, _ = mm.search(small_dataset.queries, 5, 4)
        ids_b, _ = back.search(small_dataset.queries, 5, 4)
        np.testing.assert_array_equal(ids_a, ids_b)


class TestReconstructNonContiguousIds:
    def test_noncontiguous_ids_roundtrip(self, small_dataset):
        """Regression: the seed's dict cache keyed stale entries by ntotal and
        could serve wrong positions; the vectorized searchsorted lookup must
        handle arbitrary sparse ids and cache invalidation across add()."""
        idx = IVFPQIndex(d=32, nlist=8, m=4, ksub=64, seed=0)
        idx.train(small_dataset.base)
        rng = np.random.default_rng(0)
        ids_a = rng.choice(10**6, size=500, replace=False).astype(np.int64) + 10**7
        idx.add(small_dataset.base[:500], ids=ids_a)
        recon_a = idx.reconstruct(ids_a[:50])
        # Each reconstruction must match decoding that vector's own code.
        direct = np.vstack([idx.reconstruct(int(i)) for i in ids_a[:50]])
        np.testing.assert_allclose(recon_a, direct)
        # Grow the index: cache must invalidate, old AND new ids resolve.
        ids_b = np.arange(17, 17 + 300, dtype=np.int64) * 3 + 1  # overlaps nothing
        idx.add(small_dataset.base[500:800], ids=ids_b)
        recon_b = idx.reconstruct(np.concatenate([ids_a[:5], ids_b[:5]]))
        assert recon_b.shape == (10, 32)
        np.testing.assert_allclose(recon_b[:5], recon_a[:5])

    def test_reconstruct_matches_quantizer(self, small_dataset):
        idx = IVFPQIndex(d=32, nlist=8, m=4, ksub=64, seed=0)
        idx.train(small_dataset.base)
        ids = np.array([10**9, 5, 123456789], dtype=np.int64)
        idx.add(small_dataset.base[:3], ids=ids)
        lists = idx.invlists
        recon = idx.reconstruct(ids)
        for row, vid in enumerate(ids):
            pos = int(np.flatnonzero(np.asarray(lists.all_ids()) == vid)[0])
            cell = int(lists.element_cells()[pos])
            vec = idx.pq.decode(np.asarray(lists.all_codes())[pos : pos + 1])[0]
            vec = vec + idx.centroids[cell]
            np.testing.assert_allclose(recon[row], vec, rtol=1e-6)

    def test_unknown_id_raises_after_adds(self, small_dataset):
        idx = IVFPQIndex(d=32, nlist=8, m=4, ksub=64, seed=0)
        idx.train(small_dataset.base)
        idx.add(small_dataset.base[:100], ids=np.arange(100, dtype=np.int64) * 2)
        with pytest.raises(KeyError, match="not in index"):
            idx.reconstruct([1])  # odd id never inserted


class TestFromCells:
    def test_pack_legacy_layout(self, trained_pq, small_vectors):
        codes = trained_pq.encode(small_vectors[:60])
        cell_codes = [codes[:10], codes[10:10], codes[10:60]]
        cell_ids = [np.arange(10), np.arange(0), np.arange(10, 60)]
        lists = PackedInvLists.from_cells(cell_codes, cell_ids, m=trained_pq.m)
        assert lists.nlist == 3
        np.testing.assert_array_equal(lists.sizes, [10, 0, 50])
        np.testing.assert_array_equal(lists.cell_codes(2), codes[10:60])
