"""Tests for the NSW incremental graph index."""

import numpy as np
import pytest

from repro.ann.flat import brute_force_topk
from repro.ann.graph import NSWGraphIndex
from repro.ann.recall import recall_at_k
from repro.data.synthetic import make_clustered


@pytest.fixture(scope="module")
def graph_data():
    vecs = make_clustered(1050, 16, n_clusters=16, intrinsic_dim=5, seed=8)
    return vecs[:1000], vecs[1000:]


@pytest.fixture(scope="module")
def built_graph(graph_data):
    base, _ = graph_data
    return NSWGraphIndex(d=16, max_degree=12, ef_search=48, seed=0).add(base)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError, match="d must be positive"):
            NSWGraphIndex(d=0)
        with pytest.raises(ValueError, match="max_degree"):
            NSWGraphIndex(d=4, max_degree=0)

    def test_dim_mismatch(self):
        g = NSWGraphIndex(d=8)
        with pytest.raises(ValueError, match="expected dim"):
            g.add(np.zeros((2, 4), dtype=np.float32))

    def test_ids_auto_and_custom(self):
        g = NSWGraphIndex(d=4, seed=0)
        g.add(np.zeros((3, 4), dtype=np.float32))
        _, ids = g.vectors_and_ids()
        np.testing.assert_array_equal(ids, [0, 1, 2])
        g.add(np.ones((2, 4), dtype=np.float32), ids=np.array([50, 51]))
        _, ids = g.vectors_and_ids()
        np.testing.assert_array_equal(ids, [0, 1, 2, 50, 51])

    def test_bad_ids_shape(self):
        g = NSWGraphIndex(d=4)
        with pytest.raises(ValueError, match="ids shape"):
            g.add(np.zeros((2, 4), dtype=np.float32), ids=np.arange(3))

    def test_degree_bounded(self, built_graph):
        assert all(len(nbs) <= built_graph.max_degree for nbs in built_graph._neighbors)


class TestSearch:
    def test_empty_graph(self):
        g = NSWGraphIndex(d=4)
        ids, dists = g.search(np.zeros((1, 4), dtype=np.float32), 3)
        assert (ids == -1).all()
        assert np.isinf(dists).all()

    def test_invalid_k(self, built_graph):
        with pytest.raises(ValueError, match="k must be positive"):
            built_graph.search(np.zeros((1, 16), dtype=np.float32), 0)

    def test_self_query_finds_self(self, built_graph, graph_data):
        base, _ = graph_data
        ids, dists = built_graph.search(base[:5], 1)
        # Greedy graph search is approximate; distance-0 self hits should
        # dominate on clustered data.
        assert (dists[:, 0] < 1e-3).mean() >= 0.8

    def test_recall_reasonable(self, built_graph, graph_data):
        """NSW on a 1k-point buffer should hit high recall@10."""
        base, queries = graph_data
        gt, _ = brute_force_topk(queries, base, 10)
        ids, _ = built_graph.search(queries, 10)
        assert recall_at_k(ids, gt) > 0.7

    def test_distances_sorted(self, built_graph, graph_data):
        _, queries = graph_data
        _, dists = built_graph.search(queries, 8)
        finite = np.where(np.isinf(dists), np.finfo(np.float32).max, dists)
        assert (np.diff(finite, axis=1) >= 0).all()


class TestIncrementality:
    def test_add_after_search(self, graph_data):
        base, queries = graph_data
        g = NSWGraphIndex(d=16, seed=1).add(base[:500])
        ids_before, _ = g.search(queries, 5)
        g.add(base[500:])
        assert g.ntotal == 1000
        ids_after, _ = g.search(queries, 5)
        assert ids_after.shape == ids_before.shape
