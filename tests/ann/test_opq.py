"""Unit tests for optimized product quantization."""

import numpy as np
import pytest

from repro.ann.opq import OPQTransform
from repro.ann.pq import ProductQuantizer


@pytest.fixture(scope="module")
def anisotropic_data():
    """Data whose variance is concentrated in correlated directions.

    OPQ should beat plain PQ here: the random embedding correlates
    coordinates across PQ sub-space boundaries.
    """
    rng = np.random.default_rng(9)
    latent = rng.standard_normal((2000, 4))
    mix = rng.standard_normal((4, 16)) * np.array([4.0, 2.0, 1.0, 0.5])[:, None]
    return (latent @ mix + 0.05 * rng.standard_normal((2000, 16))).astype(np.float32)


@pytest.fixture(scope="module")
def trained_opq(anisotropic_data):
    opq = OPQTransform(d=16, m=4, ksub=32, n_outer=3, seed=0)
    opq.train(anisotropic_data)
    return opq


class TestRotation:
    def test_rotation_is_orthonormal(self, trained_opq):
        r = trained_opq.rotation
        np.testing.assert_allclose(r @ r.T, np.eye(16), atol=1e-4)

    def test_apply_preserves_norms(self, trained_opq, anisotropic_data):
        x = anisotropic_data[:50]
        xr = trained_opq.apply(x)
        np.testing.assert_allclose(
            np.linalg.norm(x, axis=1), np.linalg.norm(xr, axis=1), rtol=1e-4
        )

    def test_apply_preserves_distances(self, trained_opq, anisotropic_data):
        """Rotation is an isometry: pairwise distances are unchanged."""
        x = anisotropic_data[:20]
        xr = trained_opq.apply(x)
        d_orig = ((x[:, None] - x[None]) ** 2).sum(-1)
        d_rot = ((xr[:, None] - xr[None]) ** 2).sum(-1)
        np.testing.assert_allclose(d_orig, d_rot, rtol=1e-3, atol=1e-2)

    def test_untrained_raises(self):
        with pytest.raises(RuntimeError, match="before train"):
            OPQTransform(d=16, m=4).apply(np.zeros((1, 16), dtype=np.float32))


class TestQuality:
    def test_opq_beats_plain_pq(self, trained_opq, anisotropic_data):
        pq = ProductQuantizer(d=16, m=4, ksub=32, seed=0)
        pq.train(anisotropic_data)
        err_pq = pq.quantization_error(anisotropic_data[:500])
        err_opq = trained_opq.quantization_error(anisotropic_data[:500])
        assert err_opq < err_pq

    def test_wrong_dim_raises(self):
        opq = OPQTransform(d=16, m=4)
        with pytest.raises(ValueError, match="expected dim"):
            opq.train(np.zeros((100, 8), dtype=np.float32))
