"""Unit tests for the product quantizer."""

import numpy as np
import pytest

from repro.ann.distances import l2_sq
from repro.ann.pq import ProductQuantizer


class TestConstruction:
    def test_d_not_divisible_raises(self):
        with pytest.raises(ValueError, match="not divisible"):
            ProductQuantizer(d=30, m=4)

    def test_ksub_over_256_raises(self):
        with pytest.raises(ValueError, match="ksub"):
            ProductQuantizer(d=32, m=4, ksub=300)

    def test_dsub(self):
        assert ProductQuantizer(d=32, m=4).dsub == 8

    def test_untrained_raises(self):
        pq = ProductQuantizer(d=32, m=4)
        with pytest.raises(RuntimeError, match="before train"):
            pq.encode(np.zeros((1, 32), dtype=np.float32))


class TestTrainEncodeDecode:
    def test_codes_shape_and_dtype(self, trained_pq, small_vectors):
        codes = trained_pq.encode(small_vectors[:100])
        assert codes.shape == (100, 4)
        assert codes.dtype == np.uint8

    def test_codes_within_ksub(self, trained_pq, small_vectors):
        codes = trained_pq.encode(small_vectors[:200])
        assert codes.max() < trained_pq.ksub

    def test_decode_shape(self, trained_pq, small_vectors):
        codes = trained_pq.encode(small_vectors[:50])
        recon = trained_pq.decode(codes)
        assert recon.shape == (50, 32)

    def test_reconstruction_better_than_mean(self, trained_pq, small_vectors):
        x = small_vectors[:500]
        recon = trained_pq.decode(trained_pq.encode(x))
        err_pq = np.mean(((x - recon) ** 2).sum(axis=1))
        err_mean = np.mean(((x - x.mean(axis=0)) ** 2).sum(axis=1))
        assert err_pq < 0.5 * err_mean

    def test_encode_decode_idempotent_on_codebook_points(self, trained_pq):
        # A vector assembled from codebook centroids must encode to itself.
        books = trained_pq.codebooks
        vec = np.concatenate([books[j, 3] for j in range(trained_pq.m)])
        codes = trained_pq.encode(vec[None, :])
        recon = trained_pq.decode(codes)
        np.testing.assert_allclose(recon[0], vec, rtol=1e-5, atol=1e-5)

    def test_train_too_few_vectors_raises(self):
        pq = ProductQuantizer(d=8, m=2, ksub=64)
        with pytest.raises(ValueError, match="training vectors"):
            pq.train(np.zeros((10, 8), dtype=np.float32))


class TestLUTAndADC:
    def test_lut_shape(self, trained_pq, small_vectors):
        lut = trained_pq.build_lut(small_vectors[0])
        assert lut.shape == (4, 64)
        assert (lut >= 0).all()

    def test_adc_matches_decoded_distance(self, trained_pq, small_vectors):
        """ADC(q, code) must equal the exact distance |q - decode(code)|^2."""
        q = small_vectors[0]
        codes = trained_pq.encode(small_vectors[1:40])
        lut = trained_pq.build_lut(q)
        adc = trained_pq.adc(lut, codes)
        exact = l2_sq(q[None, :], trained_pq.decode(codes)).ravel()
        np.testing.assert_allclose(adc, exact, rtol=1e-3, atol=1e-3)

    def test_batched_luts_match_single(self, trained_pq, small_vectors):
        qs = small_vectors[:5]
        batched = trained_pq.build_luts(qs)
        for i in range(5):
            np.testing.assert_allclose(
                batched[i], trained_pq.build_lut(qs[i]), rtol=1e-4, atol=1e-4
            )

    def test_adc_orders_neighbors_reasonably(self, trained_pq, small_vectors):
        """The ADC nearest neighbor should be among the true top-10."""
        q = small_vectors[0]
        cands = small_vectors[1:1001]
        codes = trained_pq.encode(cands)
        adc = trained_pq.adc(trained_pq.build_lut(q), codes)
        true = l2_sq(q[None, :], cands).ravel()
        assert np.argmin(adc) in np.argsort(true)[:10]


class TestQuantizationError:
    def test_error_nonnegative(self, trained_pq, small_vectors):
        assert trained_pq.quantization_error(small_vectors[:100]) >= 0.0

    def test_more_subspaces_reduce_error(self, small_vectors):
        errs = []
        for m in (2, 4, 8):
            pq = ProductQuantizer(d=32, m=m, ksub=32, seed=0)
            pq.train(small_vectors)
            errs.append(pq.quantization_error(small_vectors[:300]))
        assert errs[0] > errs[1] > errs[2]
