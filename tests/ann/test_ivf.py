"""Unit and integration tests for the IVF-PQ index."""

import numpy as np
import pytest

from repro.ann.ivf import IVFPQIndex
from repro.ann.recall import recall_at_k


class TestTraining:
    def test_untrained_search_raises(self):
        idx = IVFPQIndex(d=32, nlist=4, m=4)
        with pytest.raises(RuntimeError, match="before train"):
            idx.search(np.zeros((1, 32), dtype=np.float32), 1, 1)

    def test_too_few_training_vectors_raises(self):
        idx = IVFPQIndex(d=8, nlist=64, m=2, ksub=16)
        with pytest.raises(ValueError, match="training"):
            idx.train(np.zeros((10, 8), dtype=np.float32))

    def test_trained_flags(self, trained_ivf):
        assert trained_ivf.is_trained
        assert trained_ivf.centroids.shape == (16, 32)
        assert trained_ivf.pq.is_trained

    def test_opq_variant_trains(self, small_dataset):
        idx = IVFPQIndex(d=32, nlist=8, m=4, ksub=32, use_opq=True, seed=1)
        idx.train(small_dataset.base)
        assert idx.opq is not None and idx.opq.is_trained


class TestAdd:
    def test_ntotal(self, trained_ivf, small_dataset):
        assert trained_ivf.ntotal == small_dataset.n

    def test_cell_sizes_sum_to_ntotal(self, trained_ivf):
        assert trained_ivf.cell_sizes.sum() == trained_ivf.ntotal

    def test_custom_ids(self, small_dataset):
        idx = IVFPQIndex(d=32, nlist=4, m=4, ksub=32, seed=0)
        idx.train(small_dataset.base)
        ids = np.arange(100, 200, dtype=np.int64)
        idx.add(small_dataset.base[:100], ids=ids)
        got = np.concatenate(idx.cell_ids)
        np.testing.assert_array_equal(np.sort(got), ids)

    def test_bad_ids_shape_raises(self, small_dataset):
        idx = IVFPQIndex(d=32, nlist=4, m=4, ksub=32, seed=0)
        idx.train(small_dataset.base)
        with pytest.raises(ValueError, match="ids shape"):
            idx.add(small_dataset.base[:10], ids=np.arange(5))

    def test_incremental_add(self, small_dataset):
        idx = IVFPQIndex(d=32, nlist=4, m=4, ksub=32, seed=0)
        idx.train(small_dataset.base)
        idx.add(small_dataset.base[:500])
        idx.add(small_dataset.base[500:1000])
        assert idx.ntotal == 1000
        # Auto-assigned ids must be unique and dense.
        all_ids = np.sort(np.concatenate(idx.cell_ids))
        np.testing.assert_array_equal(all_ids, np.arange(1000))


class TestSearch:
    def test_output_shapes(self, trained_ivf, small_dataset):
        ids, dists = trained_ivf.search(small_dataset.queries, 5, 4)
        assert ids.shape == (small_dataset.nq, 5)
        assert dists.shape == (small_dataset.nq, 5)

    def test_distances_sorted(self, trained_ivf, small_dataset):
        _, dists = trained_ivf.search(small_dataset.queries, 8, 4)
        assert (np.diff(dists, axis=1) >= 0).all()

    def test_recall_improves_with_nprobe(self, trained_ivf, small_dataset):
        gt = small_dataset.ensure_ground_truth(10)
        r1 = recall_at_k(trained_ivf.search(small_dataset.queries, 10, 1)[0], gt)
        r_all = recall_at_k(trained_ivf.search(small_dataset.queries, 10, 16)[0], gt)
        assert r_all >= r1
        assert r_all > 0.5  # quantization-limited but must be useful

    def test_full_probe_recall_reasonable(self, trained_ivf, small_dataset):
        """Probing all cells leaves only PQ error; recall@10 must be high."""
        gt = small_dataset.ensure_ground_truth(10)
        ids, _ = trained_ivf.search(small_dataset.queries, 10, trained_ivf.nlist)
        assert recall_at_k(ids, gt) > 0.55

    def test_invalid_nprobe_raises(self, trained_ivf, small_dataset):
        with pytest.raises(ValueError, match="nprobe"):
            trained_ivf.search(small_dataset.queries, 1, 0)
        with pytest.raises(ValueError, match="nprobe"):
            trained_ivf.search(small_dataset.queries, 1, 99)

    def test_invalid_k_raises(self, trained_ivf, small_dataset):
        with pytest.raises(ValueError, match="k must be positive"):
            trained_ivf.search(small_dataset.queries, 0, 1)

    def test_k_larger_than_candidates_pads(self, small_dataset):
        """With nprobe=1 on a tiny cell, results pad with id=-1, dist=inf."""
        idx = IVFPQIndex(d=32, nlist=8, m=4, ksub=32, seed=2)
        idx.train(small_dataset.base)
        idx.add(small_dataset.base[:16])  # few vectors spread over 8 cells
        ids, dists = idx.search(small_dataset.queries[:2], 10, 1)
        assert ids.shape == (2, 10)
        # Some padding should exist when the probed cell has < 10 entries.
        smallest_cell = idx.cell_sizes[idx.cell_sizes > 0].min()
        if smallest_cell < 10:
            assert (ids == -1).any() or (dists == np.inf).any() or True

    def test_stats_accumulate(self, small_dataset):
        idx = IVFPQIndex(d=32, nlist=8, m=4, ksub=32, seed=3)
        idx.train(small_dataset.base)
        idx.add(small_dataset.base)
        idx.search(small_dataset.queries[:5], 3, 2)
        assert idx.stats.n_queries == 5
        assert idx.stats.cells_scanned == 10
        assert idx.stats.codes_scanned > 0


class TestStagesConsistency:
    def test_staged_equals_search(self, trained_ivf, small_dataset):
        """Running stages by hand must equal the fused search()."""
        q = small_dataset.queries[:4]
        ids_ref, dists_ref = trained_ivf.search(q, 6, 3)
        qt = trained_ivf.stage_opq(q)
        cd = trained_ivf.stage_ivf_dist(qt)
        probed = trained_ivf.stage_select_cells(cd, 3)
        for qi in range(4):
            luts = trained_ivf.stage_build_luts(qt[qi], probed[qi])
            d, i = trained_ivf.stage_pq_dist(luts, probed[qi])
            ids, dists = trained_ivf.stage_select_k(d, i, 6)
            np.testing.assert_array_equal(ids, ids_ref[qi])

    def test_select_k_empty_input(self):
        ids, dists = IVFPQIndex.stage_select_k(
            np.empty(0, dtype=np.float32), np.empty(0, dtype=np.int64), 5
        )
        assert (ids == -1).all()
        assert np.isinf(dists).all()


class TestResidualVsRaw:
    def test_residual_encoding_recall_at_least_raw(self, small_dataset):
        """Residual encoding should be at least as good as raw PQ (usually better)."""
        gt = small_dataset.ensure_ground_truth(10)
        out = {}
        for flag in (True, False):
            idx = IVFPQIndex(d=32, nlist=8, m=4, ksub=64, by_residual=flag, seed=0)
            idx.train(small_dataset.base)
            idx.add(small_dataset.base)
            ids, _ = idx.search(small_dataset.queries, 10, 8)
            out[flag] = recall_at_k(ids, gt)
        assert out[True] >= out[False] - 0.05


class TestMemoryModel:
    def test_memory_bytes_accounting(self, trained_ivf):
        n = trained_ivf.ntotal
        expect_codes = n * trained_ivf.m  # uint8 codes
        expect_ids = n * 8
        expect_cent = trained_ivf.nlist * trained_ivf.d * 4
        assert trained_ivf.memory_bytes() == expect_codes + expect_ids + expect_cent

    def test_expected_scan_fraction_monotone(self, trained_ivf):
        f1 = trained_ivf.expected_scan_fraction(1)
        f8 = trained_ivf.expected_scan_fraction(8)
        f16 = trained_ivf.expected_scan_fraction(16)
        assert 0 < f1 < f8 <= f16 <= 1.0 + 1e-9
