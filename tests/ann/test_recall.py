"""Tests for recall evaluation."""

import numpy as np
import pytest

from repro.ann.recall import recall_at_k, recall_curve


class TestRecallAtK:
    def test_perfect(self):
        gt = np.array([[1, 2, 3], [4, 5, 6]])
        assert recall_at_k(gt.copy(), gt) == 1.0

    def test_zero(self):
        found = np.array([[7, 8, 9]])
        gt = np.array([[1, 2, 3]])
        assert recall_at_k(found, gt) == 0.0

    def test_partial(self):
        found = np.array([[1, 8, 9], [4, 5, 0]])
        gt = np.array([[1, 2, 3], [4, 5, 6]])
        assert recall_at_k(found, gt) == pytest.approx(3 / 6)

    def test_order_irrelevant(self):
        found = np.array([[3, 2, 1]])
        gt = np.array([[1, 2, 3]])
        assert recall_at_k(found, gt) == 1.0

    def test_padding_ignored(self):
        found = np.array([[1, -1, -1]])
        gt = np.array([[1, 2, 3]])
        assert recall_at_k(found, gt) == pytest.approx(1 / 3)

    def test_k_subset(self):
        found = np.array([[1, 9, 9, 9]])
        gt = np.array([[1, 2, 3, 4]])
        assert recall_at_k(found, gt, k=1) == 1.0

    def test_query_count_mismatch_raises(self):
        with pytest.raises(ValueError, match="query count"):
            recall_at_k(np.zeros((2, 3)), np.zeros((3, 3)))

    def test_bad_k_raises(self):
        with pytest.raises(ValueError, match="invalid k"):
            recall_at_k(np.zeros((1, 3)), np.zeros((1, 3)), k=5)


class TestRecallCurve:
    def test_monotone_on_real_index(self, trained_ivf, small_dataset):
        gt = small_dataset.ensure_ground_truth(10)

        def fn(q, k, nprobe):
            return trained_ivf.search(q, k, nprobe)

        curve = recall_curve(fn, small_dataset.queries, gt, 10, [1, 4, 16])
        assert curve[16] >= curve[4] >= curve[1] - 1e-9
        assert set(curve) == {1, 4, 16}
