"""Tests for preselect-once search: coarse plan reuse across shards.

The router-side half of the multi-process data plane: ``preselect()``
runs OPQ + coarse distances + cell selection once, and
``search_batch_preselected()`` finishes LUT + scan + top-K from that
plan — on the full index or on any shard, with ``-1``-padded cell slots
(pruned for a shard whose slice of the cell is empty) scanning nothing.
"""

import numpy as np
import pytest

from repro.ann.ivf import IVFPQIndex
from repro.ann.merge import merge_partial_topk
from repro.ann.partition import (
    partition_index,
    prune_probed_cells,
    shard_cell_sizes,
)
from repro.data.synthetic import make_clustered

K = 5
NPROBE = 4


class TestPreselect:
    def test_plan_matches_staged_pipeline(self, trained_ivf, small_dataset):
        q = small_dataset.queries[:8]
        queries_t, probed = trained_ivf.preselect(q, NPROBE)
        qt_ref = trained_ivf.stage_opq(q)
        probed_ref = trained_ivf.stage_select_cells(
            trained_ivf.stage_ivf_dist(qt_ref), NPROBE
        )
        np.testing.assert_array_equal(queries_t, qt_ref)
        np.testing.assert_array_equal(probed, probed_ref)

    def test_counts_batches_and_queries(self, trained_ivf, small_dataset):
        b0 = trained_ivf.stats.preselect_batches
        q0 = trained_ivf.stats.preselect_queries
        trained_ivf.preselect(small_dataset.queries[:8], NPROBE)
        trained_ivf.preselect(small_dataset.queries[:3], NPROBE)
        assert trained_ivf.stats.preselect_batches == b0 + 2
        assert trained_ivf.stats.preselect_queries == q0 + 11


class TestSearchBatchPreselected:
    def test_bit_identical_to_search(self, trained_ivf, small_dataset):
        q = small_dataset.queries[:16]
        ref_ids, ref_dists = trained_ivf.search(q, K, NPROBE)
        queries_t, probed = trained_ivf.preselect(q, NPROBE)
        ids, dists = trained_ivf.search_batch_preselected(queries_t, probed, K)
        np.testing.assert_array_equal(ids, ref_ids)
        np.testing.assert_array_equal(dists, ref_dists)

    def test_padding_columns_are_inert(self, trained_ivf, small_dataset):
        """Extra -1 slots must not change results — they scan nothing."""
        q = small_dataset.queries[:6]
        ref_ids, ref_dists = trained_ivf.search(q, K, NPROBE)
        queries_t, probed = trained_ivf.preselect(q, NPROBE)
        padded = np.full((probed.shape[0], probed.shape[1] + 3), -1, np.int64)
        padded[:, : probed.shape[1]] = probed
        ids, dists = trained_ivf.search_batch_preselected(queries_t, padded, K)
        np.testing.assert_array_equal(ids, ref_ids)
        np.testing.assert_array_equal(dists, ref_dists)

    def test_all_pruned_row_yields_padding(self, trained_ivf, small_dataset):
        q = small_dataset.queries[:2]
        queries_t, probed = trained_ivf.preselect(q, NPROBE)
        probed[0, :] = -1  # this query has no cells on this "shard"
        ids, dists = trained_ivf.search_batch_preselected(queries_t, probed, K)
        assert (ids[0] == -1).all() and np.isinf(dists[0]).all()
        assert (ids[1] != -1).any()

    def test_codes_scanned_matches_search(self, trained_ivf, small_dataset):
        q = small_dataset.queries[:8]
        c0 = trained_ivf.stats.codes_scanned
        trained_ivf.search(q, K, NPROBE)
        per_search = trained_ivf.stats.codes_scanned - c0
        queries_t, probed = trained_ivf.preselect(q, NPROBE)
        c1 = trained_ivf.stats.codes_scanned
        trained_ivf.search_batch_preselected(queries_t, probed, K)
        assert trained_ivf.stats.codes_scanned - c1 == per_search

    def test_validation(self, trained_ivf, small_dataset):
        q = small_dataset.queries[:2]
        queries_t, probed = trained_ivf.preselect(q, NPROBE)
        with pytest.raises(ValueError, match="k must"):
            trained_ivf.search_batch_preselected(queries_t, probed, 0)
        with pytest.raises(ValueError, match="rows"):
            trained_ivf.search_batch_preselected(queries_t, probed[:1], K)
        with pytest.raises(ValueError, match="cell"):
            bad = probed.copy()
            bad[0, 0] = trained_ivf.nlist
            trained_ivf.search_batch_preselected(queries_t, bad, K)


class TestPreselectedScatter:
    def test_sharded_scatter_bit_identical(self, trained_ivf, small_dataset):
        """One coarse plan, scattered to shards, merges to the global
        answer bit for bit — and the shards never ran coarse."""
        q = small_dataset.queries[:10]
        ref_ids, ref_dists = trained_ivf.search(q, K, NPROBE)
        shards = partition_index(trained_ivf, 3)
        queries_t, probed = trained_ivf.preselect(q, NPROBE)
        parts = [
            s.search_batch_preselected(
                queries_t, prune_probed_cells(probed, s.cell_sizes), K
            )
            for s in shards
        ]
        ids, dists = merge_partial_topk(parts, K)
        np.testing.assert_array_equal(ids, ref_ids)
        np.testing.assert_array_equal(dists, ref_dists)
        for s in shards:
            assert s.stats.preselect_batches == 0  # coarse ran once, upstream

    def test_shard_cell_sizes_matches_shard_views(self, trained_ivf):
        sizes = trained_ivf.cell_sizes
        shards = partition_index(trained_ivf, 4)
        for part, shard in enumerate(shards):
            np.testing.assert_array_equal(
                shard_cell_sizes(sizes, part, 4), shard.cell_sizes
            )

    def test_shard_cell_sizes_validation(self, trained_ivf):
        with pytest.raises(ValueError, match="n_parts"):
            shard_cell_sizes(trained_ivf.cell_sizes, 0, 0)
        with pytest.raises(ValueError, match="part"):
            shard_cell_sizes(trained_ivf.cell_sizes, 4, 4)

    def test_pruning_actually_prunes_sparse_cells(self):
        """With cells smaller than the shard count, most shard slices of a
        probed cell are empty — pruning must mark them and the merged
        answer must still equal the unsharded one exactly."""
        vecs = make_clustered(300, 16, n_clusters=64, seed=9)
        index = IVFPQIndex(d=16, nlist=64, m=4, ksub=16, seed=2)
        index.train(vecs)
        index.add(vecs)
        rng = np.random.default_rng(0)
        q = rng.standard_normal((12, 16)).astype(np.float32)
        ref_ids, ref_dists = index.search(q, K, 8)
        shards = partition_index(index, 4)
        queries_t, probed = index.preselect(q, 8)
        pruned_slots = 0
        parts = []
        for s in shards:
            pruned = prune_probed_cells(probed, s.cell_sizes)
            pruned_slots += int((pruned == -1).sum() - (probed == -1).sum())
            parts.append(s.search_batch_preselected(queries_t, pruned, K))
        assert pruned_slots > 0  # the sparse layout genuinely triggers it
        ids, dists = merge_partial_topk(parts, K)
        np.testing.assert_array_equal(ids, ref_ids)
        np.testing.assert_array_equal(dists, ref_dists)

    def test_prune_preserves_slot_order_and_existing_pads(self):
        sizes = np.array([0, 3, 0, 2], dtype=np.int64)
        probed = np.array([[1, 0, -1], [2, 3, 1]], dtype=np.int64)
        pruned = prune_probed_cells(probed, sizes)
        np.testing.assert_array_equal(
            pruned, np.array([[1, -1, -1], [-1, 3, 1]], dtype=np.int64)
        )
