"""Tests for the repo's standalone tools/ scripts."""
