"""Tests for the timeline validator tool (tools/check_timeline.py)."""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_timeline  # noqa: E402  (needs the tools/ path above)


def tick(ts, seq, availability=1.0, **extra):
    return {"kind": "tick", "ts": ts, "seq": seq,
            "availability": availability, **extra}


def event(ts, etype, **extra):
    return {"kind": "event", "ts": ts, "type": etype, "pid": 1, **extra}


def coverage(ts, etype, shard=0, replica=0, **extra):
    return event(ts, etype, scope="replica", shard=shard, replica=replica,
                 **extra)


def write(tmp_path, records, *, meta=True):
    path = tmp_path / "timeline.jsonl"
    lines = []
    if meta:
        lines.append({"kind": "meta", "version": 1, "interval_s": 0.025})
    lines += records
    path.write_text("\n".join(json.dumps(r) for r in lines) + "\n")
    return path


class TestValidate:
    def test_clean_minimal_timeline(self, tmp_path):
        path = write(tmp_path, [tick(10, 0), tick(20, 1)])
        assert check_timeline.validate(path) == []

    def test_clean_outage_story(self, tmp_path):
        path = write(tmp_path, [
            tick(10, 0),
            coverage(15, "coverage_lost", exit_code=-9),
            tick(20, 1, availability=0.5),
            event(25, "slo_alert", rule="availability_floor"),
            event(38, "worker_restart", coverage_restored_us=25.0),
            coverage(40, "coverage_restored", coverage_restored_us=25.0),
            tick(50, 2),
            event(55, "slo_alert_cleared", rule="availability_floor"),
        ])
        assert check_timeline.validate(
            path, expect_restarts=1, expect_alert=True
        ) == []

    def test_missing_meta_header(self, tmp_path):
        path = write(tmp_path, [tick(10, 0)], meta=False)
        assert any("meta" in e for e in check_timeline.validate(path))

    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "timeline.jsonl"
        path.write_text('{"kind":"meta","version":1}\nnot json\n')
        errors = check_timeline.validate(path)
        assert any("invalid JSON" in e for e in errors)

    def test_unknown_event_type(self, tmp_path):
        path = write(tmp_path, [tick(10, 0), event(11, "volcano")])
        assert any("unknown event type" in e
                   for e in check_timeline.validate(path))

    def test_tick_missing_fields(self, tmp_path):
        path = write(tmp_path, [{"kind": "tick", "ts": 10}])
        errors = check_timeline.validate(path)
        assert any("seq" in e for e in errors)
        assert any("availability" in e for e in errors)

    def test_no_ticks_flagged(self, tmp_path):
        path = write(tmp_path, [event(10, "shed")])
        assert any("no tick" in e for e in check_timeline.validate(path))

    def test_backwards_ts_flagged(self, tmp_path):
        path = write(tmp_path, [tick(20, 0), tick(10, 1)])
        assert any("backwards" in e for e in check_timeline.validate(path))

    def test_non_increasing_seq_flagged(self, tmp_path):
        path = write(tmp_path, [tick(10, 1), tick(20, 1)])
        assert any("seq" in e for e in check_timeline.validate(path))


class TestCoveragePairing:
    def test_unrestored_loss_flagged(self, tmp_path):
        path = write(tmp_path, [tick(10, 0), coverage(15, "coverage_lost")])
        assert any("never restored" in e
                   for e in check_timeline.validate(path))

    def test_restore_without_loss_flagged(self, tmp_path):
        path = write(
            tmp_path, [tick(10, 0), coverage(15, "coverage_restored")]
        )
        assert any("without a preceding" in e
                   for e in check_timeline.validate(path))

    def test_pairing_is_per_slot(self, tmp_path):
        path = write(tmp_path, [
            tick(10, 0),
            coverage(11, "coverage_lost", shard=0),
            coverage(12, "coverage_restored", shard=1),  # wrong slot
        ])
        errors = check_timeline.validate(path)
        assert len(errors) == 2  # unmatched restore AND unrestored loss

    def test_engine_scope_events_not_paired(self, tmp_path):
        """Engine-scope coverage events (degrade-mode result coverage)
        are a separate signal and must not confuse replica pairing."""
        path = write(tmp_path, [
            tick(10, 0),
            event(15, "coverage_lost", scope="engine", coverage=0.5),
        ])
        assert check_timeline.validate(path) == []


class TestExpectations:
    def test_expect_restarts_unmet(self, tmp_path):
        path = write(tmp_path, [tick(10, 0)])
        errors = check_timeline.validate(path, expect_restarts=2)
        assert any("worker_restart" in e for e in errors)

    def test_restart_without_recovery_time_flagged(self, tmp_path):
        path = write(tmp_path, [tick(10, 0), event(15, "worker_restart")])
        errors = check_timeline.validate(path, expect_restarts=1)
        assert any("coverage_restored_us" in e for e in errors)

    def test_expect_alert_requires_alert_in_window(self, tmp_path):
        path = write(tmp_path, [
            tick(10, 0),
            coverage(15, "coverage_lost"),
            coverage(40, "coverage_restored"),
            event(90, "slo_alert"),  # fired after the outage closed
        ])
        errors = check_timeline.validate(path, expect_alert=True)
        assert any("outage window" in e for e in errors)

    def test_expect_alert_with_no_alert(self, tmp_path):
        path = write(tmp_path, [tick(10, 0)])
        errors = check_timeline.validate(path, expect_alert=True)
        assert any("slo_alert" in e for e in errors)


class TestMain:
    def test_ok_exit_zero(self, tmp_path, capsys):
        path = write(tmp_path, [tick(10, 0), event(15, "shed")])
        assert check_timeline.main([str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_fail_exit_one_lists_violations(self, tmp_path, capsys):
        path = write(tmp_path, [tick(20, 0), tick(10, 1)])
        assert check_timeline.main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "backwards" in out

    def test_unreadable_file(self, tmp_path, capsys):
        assert check_timeline.main([str(tmp_path / "missing.jsonl")]) == 1
        assert "unreadable" in capsys.readouterr().out
