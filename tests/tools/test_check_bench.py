"""Tests for the benchmark drift report tool (tools/check_bench.py)."""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_bench  # noqa: E402  (needs the tools/ path above)


class TestNumericLeaves:
    def test_flattens_nested_structures(self):
        obj = {"a": 1, "b": {"c": 2.5, "d": [{"qps": 10}, {"qps": 20}]}}
        leaves = check_bench.numeric_leaves(obj)
        assert leaves == {
            "a": 1.0, "b.c": 2.5, "b.d[0].qps": 10.0, "b.d[1].qps": 20.0,
        }

    def test_skips_bools_and_strings(self):
        leaves = check_bench.numeric_leaves({"ok": True, "name": "x", "n": 3})
        assert leaves == {"n": 3.0}


class TestDriftRows:
    def test_reports_percentage_drift_for_matching_metrics(self):
        old = {"qps": 100.0, "p99_us": 2000.0, "note": 7}
        new = {"qps": 110.0, "p99_us": 1000.0, "note": 9}
        rows = check_bench.drift_rows(old, new)
        by_key = {k: (b, c, d) for k, b, c, d in rows}
        assert set(by_key) == {"qps", "p99_us"}  # 'note' filtered out
        assert by_key["qps"][2] == 10.0
        assert by_key["p99_us"][2] == -50.0

    def test_added_and_removed_metrics(self):
        rows = check_bench.drift_rows({"old_qps": 5.0}, {"new_qps": 6.0})
        by_key = {k: (b, c, d) for k, b, c, d in rows}
        assert by_key["old_qps"] == (5.0, None, None)
        assert by_key["new_qps"] == (None, 6.0, None)

    def test_zero_baseline_has_no_drift(self):
        rows = check_bench.drift_rows({"qps": 0.0}, {"qps": 5.0})
        assert rows == [("qps", 0.0, 5.0, None)]

    def test_gap_leaves_tracked_by_default_filter(self):
        """The codesign model-accuracy leaves are drift-tracked."""
        old = {
            "qps_gap": -0.20, "p99_gap": -0.05,
            "modeled_qps": 2000.0, "measured_qps": 1600.0,
            "time_scale": 25.0, "n_failed": 0,
        }
        new = dict(old, qps_gap=-0.10, measured_qps=1800.0)
        rows = check_bench.drift_rows(old, new)
        keys = {k for k, *_ in rows}
        assert {"qps_gap", "p99_gap", "modeled_qps", "measured_qps"} <= keys
        # Non-metric bookkeeping leaves stay out of the drift table.
        assert "time_scale" not in keys
        assert "n_failed" not in keys

    def test_custom_metric_filter(self):
        rows = check_bench.drift_rows(
            {"recall": 0.9, "qps": 1.0}, {"recall": 0.8, "qps": 2.0},
            metrics_re="recall",
        )
        assert [k for k, *_ in rows] == ["recall"]

    def test_max_abs_drift(self):
        rows = check_bench.drift_rows(
            {"qps": 100.0, "grid": [{"p99_us": 10.0}]},
            {"qps": 90.0, "grid": [{"p99_us": 12.0}]},
        )
        assert check_bench.max_abs_drift(rows) == 20.0


class TestFormatReport:
    def test_sections_per_file(self):
        report = check_bench.format_report(
            {
                "BENCH_a.json": [("qps", 100.0, 120.0, 20.0)],
                "BENCH_new.json": None,
            }
        )
        assert "== BENCH_a.json" in report
        assert "+20.0%" in report
        assert "no committed baseline" in report


class TestCommittedBaseline:
    def test_reads_committed_version(self):
        """The committed BENCH_serve.json parses through git show."""
        path = REPO_ROOT / "BENCH_serve.json"
        committed = check_bench.committed_json(path, "HEAD", REPO_ROOT)
        assert committed is not None and "benchmark" in committed

    def test_uncommitted_file_has_no_baseline(self):
        ghost = REPO_ROOT / "BENCH_does_not_exist.json"
        assert check_bench.committed_json(ghost, "HEAD", REPO_ROOT) is None

    def test_path_outside_repo_has_no_baseline(self, tmp_path):
        """A downloaded artifact outside the repo is a baseline miss, not
        a crash."""
        outside = tmp_path / "BENCH_artifact.json"
        outside.write_text(json.dumps({"qps": 1.0}))
        assert check_bench.committed_json(outside, "HEAD", REPO_ROOT) is None


class TestMainWarnOnly:
    def test_exit_zero_despite_drift(self, capsys):
        """Default mode never fails the build, whatever the numbers do."""
        rc = check_bench.main([str(REPO_ROOT / "BENCH_serve.json")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "benchmark drift vs HEAD" in out

    def test_report_file_written(self, tmp_path, capsys):
        report = tmp_path / "drift.txt"
        rc = check_bench.main(
            [str(REPO_ROOT / "BENCH_serve.json"), "--report", str(report)]
        )
        assert rc == 0
        assert report.read_text().startswith("benchmark drift vs HEAD")


class TestHistory:
    def test_append_then_load_round_trips(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        check_bench.append_history(
            path, {"BENCH_a.json": {"qps": 100.0}}, commit="aaa", timestamp=1.0
        )
        check_bench.append_history(
            path, {"BENCH_a.json": {"qps": 110.0}}, commit="bbb", timestamp=2.0
        )
        entries = check_bench.load_history(path)
        assert [e["commit"] for e in entries] == ["aaa", "bbb"]
        assert entries[1]["files"]["BENCH_a.json"]["qps"] == 110.0

    def test_load_skips_corrupt_lines(self, tmp_path):
        """A truncated artifact tail must not poison later appends."""
        path = tmp_path / "hist.jsonl"
        check_bench.append_history(
            path, {"BENCH_a.json": {"qps": 1.0}}, commit="aaa"
        )
        with path.open("a") as fh:
            fh.write('{"commit": "bbb", "files": {"BENCH_a.js')  # cut mid-line
        assert len(check_bench.load_history(path)) == 1
        check_bench.append_history(
            path, {"BENCH_a.json": {"qps": 2.0}}, commit="ccc"
        )
        # The corrupt line also breaks "ccc" (no newline before it), so
        # only further intact appends land — the file stays usable.
        check_bench.append_history(
            path, {"BENCH_a.json": {"qps": 3.0}}, commit="ddd"
        )
        entries = check_bench.load_history(path)
        assert [e["commit"] for e in entries] == ["aaa", "ddd"]

    def test_load_missing_file_is_empty(self, tmp_path):
        assert check_bench.load_history(tmp_path / "none.jsonl") == []

    def test_format_history_shows_series_and_drift(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        for i, (commit, qps) in enumerate(
            [("aaa", 100.0), ("bbb", 98.0), ("ccc", 96.0)]
        ):
            check_bench.append_history(
                path, {"BENCH_a.json": {"qps": qps, "p99_us": 10.0 + i}},
                commit=commit, timestamp=float(i),
            )
        text = check_bench.format_history(check_bench.load_history(path))
        assert "aaa -> bbb -> ccc" in text
        assert "100.0 | 98.0 | 96.0" in text
        # The slow-drift signal: small per-run, visible vs first.
        assert "-2.0% vs prev" in text
        assert "-4.0% vs first" in text

    def test_format_history_handles_metric_gaps(self):
        """A metric added mid-history shows '-' for runs without it."""
        entries = [
            {"commit": "aaa", "files": {"BENCH_a.json": {"qps": 1.0}}},
            {"commit": "bbb", "files": {"BENCH_a.json": {"qps": 2.0, "p99": 5.0}}},
        ]
        text = check_bench.format_history(entries)
        assert "- | 5.0" in text

    def test_trend_window_bounded_to_newest_runs(self):
        entries = [
            {"commit": f"c{i}", "files": {"BENCH_a.json": {"qps": float(i)}}}
            for i in range(20)
        ]
        text = check_bench.format_history(entries, max_runs=4)
        header = text.split("\n")[0]
        assert header == "trend over 4 run(s): c16 -> c17 -> c18 -> c19"

    def test_main_with_history_appends_and_prints_trend(self, tmp_path, capsys):
        hist = tmp_path / "bench_history.jsonl"
        for _ in range(2):
            rc = check_bench.main(
                [str(REPO_ROOT / "BENCH_serve.json"), "--history", str(hist)]
            )
            assert rc == 0
        out = capsys.readouterr().out
        assert "bench history" in out and "2 recorded run(s)" in out
        assert len(check_bench.load_history(hist)) == 2

    def test_history_included_in_report_file(self, tmp_path):
        hist = tmp_path / "hist.jsonl"
        report = tmp_path / "drift.txt"
        rc = check_bench.main(
            [
                str(REPO_ROOT / "BENCH_serve.json"),
                "--history", str(hist), "--report", str(report),
            ]
        )
        assert rc == 0
        assert "bench history" in report.read_text()


class TestTolerantLoading:
    def test_unreadable_input_skipped_not_fatal(self, tmp_path, capsys):
        """A non-benchmark JSON (or garbage) passed alongside real files —
        e.g. a serve-bench metrics.json swept up by a glob — is skipped
        with a note instead of crashing the report."""
        bad = tmp_path / "BENCH_bogus.json"
        bad.write_text("{not valid json")
        missing = tmp_path / "BENCH_gone.json"
        rc = check_bench.main([str(bad), str(missing),
                               str(REPO_ROOT / "BENCH_serve.json")])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("skipping") == 2
        assert "BENCH_serve.json" in out
