"""Tests for the trace validator tool (tools/check_trace.py)."""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_trace  # noqa: E402  (needs the tools/ path above)


def span(name, trace, sid, parent, pid, ts, dur=10, tid=1):
    return {
        "name": name, "ph": "X", "ts": ts, "dur": dur, "pid": pid, "tid": tid,
        "args": {"trace": trace, "span": sid, "parent": parent},
    }


def write(tmp_path, events):
    path = tmp_path / "trace.json"
    path.write_text(json.dumps({"traceEvents": events}))
    return path


def multiproc_trace():
    """A minimal complete cross-process trace (router pid 1, workers 2/3)."""
    ev = [
        span("request", 1, 10, None, 1, 0, dur=100),
        span("exec", 1, 11, 10, 1, 5, dur=90),
        span("scatter", 1, 12, 11, 1, 6, dur=80),
        span("shard_rpc", 1, 13, 12, 1, 10, dur=40),
        span("shard_rpc", 1, 14, 12, 1, 10, dur=40),
        span("worker_scan", 1, 15, 13, 2, 12, dur=30),
        span("worker_scan", 1, 16, 14, 3, 12, dur=30),
        span("merge", 1, 17, 12, 1, 60, dur=10),
    ]
    return ev


class TestValidate:
    def test_clean_single_process_trace(self, tmp_path):
        path = write(tmp_path, [
            span("request", 1, 10, None, 1, 0, dur=100),
            span("queue", 1, 11, 10, 1, 2, dur=20),
        ])
        assert check_trace.validate(path) == []

    def test_clean_multiproc_trace(self, tmp_path):
        path = write(tmp_path, multiproc_trace())
        assert check_trace.validate(path, expect_workers=2) == []

    def test_missing_parent_flagged(self, tmp_path):
        path = write(tmp_path, [
            span("request", 1, 10, None, 1, 0),
            span("queue", 1, 11, 999, 1, 2),
        ])
        errs = check_trace.validate(path)
        assert any("parent span 999" in e for e in errs)

    def test_cross_trace_parent_flagged(self, tmp_path):
        path = write(tmp_path, [
            span("request", 1, 10, None, 1, 0),
            span("queue", 2, 11, 10, 1, 2),
        ])
        errs = check_trace.validate(path)
        assert any("different trace id" in e for e in errs)

    def test_negative_timestamp_and_duration_flagged(self, tmp_path):
        path = write(tmp_path, [
            span("request", 1, 10, None, 1, -5),
            span("queue", 1, 11, 10, 1, 2, dur=-1),
        ])
        errs = check_trace.validate(path)
        assert any("negative" in e and "ts" in e for e in errs)
        assert any("negative" in e and "dur" in e for e in errs)

    def test_child_before_parent_flagged(self, tmp_path):
        path = write(tmp_path, [
            span("request", 1, 10, None, 1, 1000, dur=100),
            span("queue", 1, 11, 10, 1, 200, dur=20),
        ])
        errs = check_trace.validate(path, slack_us=10.0)
        assert any("before its parent" in e for e in errs)

    def test_duplicate_span_id_flagged(self, tmp_path):
        path = write(tmp_path, [
            span("request", 1, 10, None, 1, 0),
            span("request", 2, 10, None, 1, 0),
        ])
        errs = check_trace.validate(path)
        assert any("duplicate span id" in e for e in errs)

    def test_missing_worker_pids_flagged(self, tmp_path):
        path = write(tmp_path, [span("request", 1, 10, None, 1, 0)])
        errs = check_trace.validate(path, expect_workers=2)
        assert any("worker pid" in e for e in errs)
        assert any("stage chain" in e for e in errs)

    def test_incomplete_stage_chain_flagged(self, tmp_path):
        events = [e for e in multiproc_trace() if e["name"] != "merge"]
        path = write(tmp_path, events)
        errs = check_trace.validate(path, expect_workers=2)
        assert any("stage chain" in e for e in errs)

    def test_schema_violations_flagged(self, tmp_path):
        path = write(tmp_path, [{"ph": "X", "name": "x"}])
        errs = check_trace.validate(path)
        assert errs and any("missing" in e or "span identity" in e for e in errs)

    def test_unreadable_file(self, tmp_path):
        bad = tmp_path / "nope.json"
        bad.write_text("{not json")
        errs = check_trace.validate(bad)
        assert errs and "unreadable" in errs[0]

    def test_main_exit_codes(self, tmp_path, capsys):
        good = write(tmp_path, multiproc_trace())
        assert check_trace.main([str(good), "--expect-workers", "2"]) == 0
        assert "OK" in capsys.readouterr().out
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [
            span("queue", 1, 11, 999, 1, 2),
        ]}))
        assert check_trace.main([str(bad)]) == 1
        assert "FAIL" in capsys.readouterr().out
