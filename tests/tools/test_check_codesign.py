"""Tests for the co-design report validator (tools/check_codesign.py)."""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_codesign  # noqa: E402  (needs the tools/ path above)


def design(qps, **overrides):
    d = {
        "nlist": 64, "use_opq": False, "nprobe": 4, "replicas": 2,
        "shards": 2, "max_batch": 8, "window_us": 1000.0,
        "qos_scheme": "uniform", "workers": 4,
    }
    d.update(overrides)
    return {
        "design": d,
        "feasible": True,
        "reasons": [],
        "modeled_qps": qps,
        "modeled_p99_us": 1500.0,
        "utilization": 0.4,
    }


def good_report():
    ranked = [design(5000.0), design(4000.0, replicas=1, workers=2),
              design(3000.0, nlist=32)]
    top = ranked[0]["design"]
    return {
        "schema": 1,
        "quick": True,
        "gap_bound": 0.5,
        "traffic": {"rate_qps": 1000.0, "slo_p99_us": 20000.0},
        "search": {
            "n_enumerated": 10,
            "n_feasible": 3,
            "prune_counts": {"capacity": 5, "qos": 2},
            "ranked": ranked,
        },
        "winner_spec": {
            "version": 1,
            "index": {
                "d": 32, "nlist": top["nlist"], "nprobe": top["nprobe"],
                "k": 10, "use_opq": top["use_opq"], "m": 8, "ksub": 32,
            },
            "topology": {
                "replicas": top["replicas"], "shards": top["shards"],
                "policy": "least-loaded",
            },
            "engine": {
                "max_batch": top["max_batch"], "window_us": top["window_us"],
            },
            "qos_scheme": top["qos_scheme"],
            "tenants": [{"name": "default", "weight": 1.0, "priority": False}],
            "slo_p99_us": 20000.0,
            "model": {},
        },
        "validation": {
            "time_scale": 25.0,
            "modeled_qps": 2000.0,
            "measured_qps": 1700.0,
            "qps_gap": -0.15,
            "modeled_p99_us": 30000.0,
            "measured_p99_us": 28000.0,
            "p99_gap": -0.07,
            "n_requests": 240,
            "n_failed": 0,
            "bit_identical": True,
            "tenant_p99_us": {"default": 28000.0},
        },
        "params": {},
    }


def write(tmp_path, report):
    path = tmp_path / "report.json"
    path.write_text(json.dumps(report))
    return path


def test_good_report_passes(tmp_path):
    path = write(tmp_path, good_report())
    assert check_codesign.validate(path) == []
    assert check_codesign.validate(path, require_validation=True) == []
    assert check_codesign.main([str(path), "--require-validation"]) == 0


def test_wrong_schema_fails(tmp_path):
    report = good_report()
    report["schema"] = 2
    errors = check_codesign.validate(write(tmp_path, report))
    assert any("schema" in e for e in errors)


def test_unsorted_ranking_fails(tmp_path):
    report = good_report()
    ranked = report["search"]["ranked"]
    ranked[0], ranked[-1] = ranked[-1], ranked[0]
    errors = check_codesign.validate(write(tmp_path, report))
    assert any("not sorted" in e for e in errors)


def test_inconsistent_counts_fail(tmp_path):
    report = good_report()
    report["search"]["n_feasible"] = 99
    errors = check_codesign.validate(write(tmp_path, report))
    assert any("inconsistent counts" in e for e in errors)


def test_prune_counts_must_cover_pruned_points(tmp_path):
    report = good_report()
    report["search"]["prune_counts"] = {"capacity": 1}
    errors = check_codesign.validate(write(tmp_path, report))
    assert any("cannot cover" in e for e in errors)


def test_missing_winner_on_nonempty_frontier_fails(tmp_path):
    report = good_report()
    report["winner_spec"] = None
    errors = check_codesign.validate(write(tmp_path, report))
    assert any("winner_spec is null" in e for e in errors)


def test_empty_frontier_needs_no_winner(tmp_path):
    report = good_report()
    report["search"].update(
        n_feasible=0, ranked=[], prune_counts={"recall": 10}
    )
    report["winner_spec"] = None
    report["validation"] = None
    path = write(tmp_path, report)
    assert check_codesign.validate(path) == []
    # But --require-validation still demands a validation section.
    errors = check_codesign.validate(path, require_validation=True)
    assert any("no validation section" in e for e in errors)


def test_winner_must_match_rank_one(tmp_path):
    report = good_report()
    report["winner_spec"]["topology"]["replicas"] = 3
    errors = check_codesign.validate(write(tmp_path, report))
    assert any("does not match rank-1" in e for e in errors)


def test_validation_gates(tmp_path):
    for mutate, needle in (
        (lambda v: v.update(qps_gap=-0.7), "exceeds the bound"),
        (lambda v: v.update(bit_identical=False), "bit-identical"),
        (lambda v: v.update(n_failed=3), "failed request"),
    ):
        report = good_report()
        mutate(report["validation"])
        path = write(tmp_path, report)
        assert check_codesign.validate(path) == []  # structural pass
        errors = check_codesign.validate(path, require_validation=True)
        assert any(needle in e for e in errors), (needle, errors)
        assert check_codesign.main([str(path), "--require-validation"]) == 1


def test_max_gap_flag_loosens_the_gate(tmp_path):
    report = good_report()
    report["validation"]["qps_gap"] = -0.7
    path = write(tmp_path, report)
    assert check_codesign.validate(
        path, require_validation=True, max_gap=0.8
    ) == []


def test_unreadable_file_fails(tmp_path):
    path = tmp_path / "nope.json"
    errors = check_codesign.validate(path)
    assert any("unreadable" in e for e in errors)
    path.write_text("not json")
    errors = check_codesign.validate(path)
    assert any("unreadable" in e for e in errors)


def test_harness_report_passes_validator(tmp_path):
    """The real report writer and the validator agree on the contract."""
    from repro.core import codesign
    from repro.harness.serve_bench import CodesignServeResult
    from repro.serve.topology_spec import TopologySpec

    traffic = codesign.TrafficProfile(
        rate_qps=2_000.0, slo_p99_us=20_000.0, recall_floor=0.5,
        n_vectors=20_000, d=32, m=8, ksub=32,
    )
    options = codesign.synthetic_index_options(
        (64,), traffic.n_vectors, traffic.recall_floor, seed=3
    )
    report = codesign.search(
        traffic,
        codesign.HostConstraints(max_workers=4, pe_grid=(1, 2, 4, 8, 16)),
        codesign.SearchSpace.quick(),
        options,
    )
    result = CodesignServeResult(
        report=report,
        spec=TopologySpec.from_design(report.winner, traffic),
        validation=None,
        quick=True,
    )
    path = write(tmp_path, result.to_json_dict())
    assert check_codesign.validate(path) == []
