"""Tests for the LogGP model and collectives."""

import pytest

from repro.net.collectives import (
    MERGE_US,
    binary_tree_broadcast_us,
    binary_tree_depth,
    binary_tree_reduce_us,
)
from repro.net.loggp import LogGPParams, PAPER_LOGGP, point_to_point_us


class TestLogGP:
    def test_paper_constants(self):
        assert PAPER_LOGGP.latency_us == 6.0
        assert PAPER_LOGGP.overhead_us == 4.7
        assert PAPER_LOGGP.gap_per_byte_ns == 0.73

    def test_point_to_point_formula(self):
        # o + L + (n-1)G + o for a 1-byte message = 2*4.7 + 6.0.
        assert point_to_point_us(1) == pytest.approx(15.4)

    def test_serialization_grows_with_bytes(self):
        small = point_to_point_us(64)
        big = point_to_point_us(64_000)
        assert big - small == pytest.approx((64_000 - 64) * 0.73e-3, rel=1e-6)

    def test_invalid(self):
        with pytest.raises(ValueError, match="nbytes"):
            point_to_point_us(0)
        with pytest.raises(ValueError, match="non-negative"):
            LogGPParams(latency_us=-1)


class TestCollectives:
    def test_depth(self):
        assert binary_tree_depth(1) == 0
        assert binary_tree_depth(2) == 1
        assert binary_tree_depth(8) == 3
        assert binary_tree_depth(1024) == 10

    def test_depth_invalid(self):
        with pytest.raises(ValueError, match="n_nodes"):
            binary_tree_depth(0)

    def test_single_node_free(self):
        assert binary_tree_broadcast_us(1, 512) == 0.0
        assert binary_tree_reduce_us(1, 120) == 0.0

    def test_broadcast_log_scaling(self):
        t8 = binary_tree_broadcast_us(8, 512)
        t64 = binary_tree_broadcast_us(64, 512)
        assert t64 == pytest.approx(2 * t8)

    def test_reduce_adds_merge_per_level(self):
        b = binary_tree_broadcast_us(16, 120)
        r = binary_tree_reduce_us(16, 120)
        assert r - b == pytest.approx(4 * MERGE_US)
