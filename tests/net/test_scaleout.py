"""Tests for the scale-out latency estimators."""

import numpy as np
import pytest

from repro.net.scaleout import DistributedSearchEstimator, simulate_cluster_latencies


class TestSimulateCluster:
    def test_max_plus_network(self):
        lat = np.array([[10.0, 20.0], [30.0, 5.0]])
        out = simulate_cluster_latencies(lat, d=128, k=10)
        net = out[0] - 30.0
        assert net > 0
        assert out[1] == pytest.approx(20.0 + net)

    def test_single_node_no_network(self):
        lat = np.array([[10.0, 20.0]])
        np.testing.assert_allclose(simulate_cluster_latencies(lat), [10.0, 20.0])

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="n_nodes, n_queries"):
            simulate_cluster_latencies(np.zeros(5))


class TestEstimator:
    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            DistributedSearchEstimator(np.array([]))
        with pytest.raises(ValueError, match="non-negative"):
            DistributedSearchEstimator(np.array([-1.0]))
        est = DistributedSearchEstimator(np.array([10.0]))
        with pytest.raises(ValueError, match="n_accelerators"):
            est.sample(0)

    def test_latency_grows_with_cluster_size(self):
        rng = np.random.default_rng(0)
        hist = rng.lognormal(3.0, 0.4, 100_000)
        est = DistributedSearchEstimator(hist)
        p99 = est.percentile_curve([1, 16, 256], q=99.0, n_queries=4000)
        assert p99[1] < p99[16] < p99[256]

    def test_low_variance_scales_flat(self):
        """The paper's core scalability argument: max-of-N over a tight
        distribution (FPGA) grows far slower than over a heavy tail (GPU)."""
        rng = np.random.default_rng(1)
        fpga_hist = 500.0 * rng.lognormal(0.0, 0.03, 50_000)
        gpu_hist = 150.0 * rng.lognormal(0.0, 0.45, 50_000)
        gpu_hist[rng.random(50_000) < 0.05] *= 6.0
        fpga = DistributedSearchEstimator(fpga_hist)
        gpu = DistributedSearchEstimator(gpu_hist)
        speedup_16 = gpu.sample(16, 4000).mean() / fpga.sample(16, 4000).mean()
        speedup_1024 = gpu.sample(1024, 4000).mean() / fpga.sample(1024, 4000).mean()
        assert speedup_1024 > speedup_16

    def test_network_logarithmic(self):
        est = DistributedSearchEstimator(np.array([100.0]))
        assert est.network_us(1024) == pytest.approx(
            est.network_us(32) * 2, rel=1e-6
        )

    def test_deterministic_with_rng(self):
        est = DistributedSearchEstimator(np.arange(1.0, 100.0))
        a = est.sample(8, 100, np.random.default_rng(5))
        b = est.sample(8, 100, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)
