"""Tests for the hardware TCP/IP stack model."""

import pytest

from repro.net.tcp import HardwareTCPStack


class TestTCPStack:
    def test_rtt_about_5us(self):
        """§7.3.2: around five microseconds RTT."""
        stack = HardwareTCPStack()
        overhead = stack.query_overhead_us(512, 120)
        assert 5.0 < overhead < 8.0

    def test_wire_time_scales(self):
        stack = HardwareTCPStack()
        small = stack.query_overhead_us(512, 120)
        large = stack.query_overhead_us(512_000, 120)
        assert large > small

    def test_line_rate_qps(self):
        stack = HardwareTCPStack()
        # 128-d float query = 512 B -> ~24 M queries/s at 100 Gbps.
        assert stack.max_qps(512) == pytest.approx(12_500e6 / 512, rel=1e-6)

    def test_validation(self):
        stack = HardwareTCPStack()
        with pytest.raises(ValueError, match="non-negative"):
            stack.query_overhead_us(-1, 0)
        with pytest.raises(ValueError, match="positive"):
            stack.max_qps(0)
