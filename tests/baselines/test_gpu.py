"""Tests for the GPU baseline cost model."""

import numpy as np
import pytest

from repro.baselines.cpu import CPUBaseline
from repro.baselines.gpu import GPUBaseline
from repro.core.config import AlgorithmParams


def params(**kw):
    defaults = dict(d=128, nlist=8192, nprobe=16, k=10, m=16, ksub=256)
    defaults.update(kw)
    return AlgorithmParams(**defaults)


@pytest.fixture(scope="module")
def gpu():
    return GPUBaseline()


class TestStageModel:
    def test_fractions_sum_to_one(self, gpu):
        assert sum(gpu.stage_fractions(params(), 200_000).values()) == pytest.approx(1.0)

    def test_fig3_nprobe_effect(self, gpu):
        """Fig. 3 (GPU): PQDist+SelK share grows from ~20 % to ~80 % with
        nprobe."""
        lo = gpu.stage_fractions(params(nprobe=1), 12_000)
        hi = gpu.stage_fractions(params(nprobe=128), 1_600_000)
        share = lambda f: f["PQDist"] + f["SelK"]
        assert share(lo) < 0.6
        assert share(hi) > 0.7

    def test_fig3_k_blows_up_selk_on_gpu(self, gpu):
        """Fig. 3 col 3 (GPU): SelK share rises significantly with K."""
        k1 = gpu.stage_fractions(params(k=1), 200_000)
        k100 = gpu.stage_fractions(params(k=100), 200_000)
        assert k100["SelK"] > 1.5 * k1["SelK"]

    def test_fig3_nlist_effect_milder_than_cpu(self, gpu):
        """'The main bottlenecks of GPUs are still in later stages even if
        nlist is reasonably large' (§3.1)."""
        cpu = CPUBaseline()
        gpu_frac = gpu.stage_fractions(params(nlist=2**16), 200_000)["IVFDist"]
        cpu_frac = cpu.stage_fractions(params(nlist=2**16), 200_000)["IVFDist"]
        assert gpu_frac < cpu_frac


class TestThroughputVsCPU:
    def test_gpu_beats_cpu_in_batch_qps(self, gpu):
        """Fig. 10: the GPU's flop/s and bandwidth dominate batch mode."""
        cpu = CPUBaseline()
        p = params()
        assert gpu.qps(p, 200_000) > 3 * cpu.qps(p, 200_000)


class TestLatencyTail:
    def test_heavy_tail_vs_cpu(self, gpu):
        """Fig. 11: GPUs show *long* tails relative to their median."""
        cpu = CPUBaseline()
        rng = np.random.default_rng(3)
        g = gpu.sample_latencies_us(params(), 200_000, 20_000, rng)
        c = cpu.sample_latencies_us(params(), 200_000, 20_000, np.random.default_rng(3))
        g_ratio = np.percentile(g, 99) / np.percentile(g, 50)
        c_ratio = np.percentile(c, 99) / np.percentile(c, 50)
        assert g_ratio > c_ratio

    def test_median_low(self, gpu):
        """GPU median online latency beats the CPU's (Fig. 11)."""
        cpu = CPUBaseline()
        rng = np.random.default_rng(5)
        g = np.median(gpu.sample_latencies_us(params(), 200_000, 5000, rng))
        c = np.median(
            cpu.sample_latencies_us(params(), 200_000, 5000, np.random.default_rng(5))
        )
        assert g < c
