"""Tests for the parameter-independent FPGA baseline designs."""

import pytest

from repro.baselines.fpga_baseline import BASELINE_PE_ALLOCATIONS, baseline_config
from repro.core.config import AlgorithmParams
from repro.core.resource_model import is_valid
from repro.hw.device import U55C


def params(**kw):
    defaults = dict(d=128, nlist=8192, nprobe=16, k=10, m=16, ksub=256)
    defaults.update(kw)
    return AlgorithmParams(**defaults)


class TestBaselineConfigs:
    @pytest.mark.parametrize("k", [1, 10, 100])
    def test_table4_pe_counts(self, k):
        cfg = baseline_config(params(k=k))
        n_ivf, n_lut, n_pq, selk = BASELINE_PE_ALLOCATIONS[k]
        assert cfg.n_ivf_pes == n_ivf
        assert cfg.n_lut_pes == n_lut
        assert cfg.n_pq_pes == n_pq
        assert cfg.selk_arch == selk

    @pytest.mark.parametrize("k", [1, 10, 100])
    def test_fits_u55c(self, k):
        assert is_valid(baseline_config(params(k=k)), U55C)

    def test_streams_from_hbm(self):
        cfg = baseline_config(params())
        assert not cfg.ivf_cache_on_chip
        assert not cfg.lut_cache_on_chip

    def test_nearest_tier(self):
        assert baseline_config(params(k=3)).n_pq_pes == BASELINE_PE_ALLOCATIONS[1][2]
        assert baseline_config(params(k=60)).n_pq_pes == BASELINE_PE_ALLOCATIONS[100][2]

    def test_pe_counts_clamped_to_tiny_nlist(self):
        cfg = baseline_config(params(nlist=4, nprobe=2))
        assert cfg.n_ivf_pes <= 4
        assert cfg.n_lut_pes <= 4

    def test_rebind_parameters(self):
        """The same hardware must serve arbitrary indexes (its whole point)."""
        cfg = baseline_config(params(nlist=1024, nprobe=4))
        rebound = cfg.with_params(params(nlist=2048, nprobe=64))
        assert rebound.n_pq_pes == cfg.n_pq_pes
        assert rebound.params.nlist == 2048


class TestCoDesignAdvantage:
    def test_fanns_beats_baseline_in_prediction(self):
        """The headline claim: a co-designed accelerator out-predicts the
        fixed design on its target parameters (1.3-23x in Fig. 10)."""
        import numpy as np

        from repro.core.perf_model import IndexProfile, predict
        from repro.core.config import AcceleratorConfig

        p = params(nlist=1024, nprobe=32, k=10)
        profile = IndexProfile(
            nlist=1024, use_opq=False, cell_sizes=np.full(1024, 2000)
        )
        base = predict(baseline_config(p), profile)
        codesigned = AcceleratorConfig(
            params=p, n_ivf_pes=8, n_lut_pes=9, n_pq_pes=36, selk_arch="HSMPQG"
        )
        tuned = predict(codesigned, profile)
        assert tuned.qps > 1.3 * base.qps
