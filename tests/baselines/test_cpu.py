"""Tests for the CPU baseline cost model."""

import numpy as np
import pytest

from repro.baselines.cpu import CPUBaseline, CPUSpec
from repro.core.config import AlgorithmParams


def params(**kw):
    defaults = dict(d=128, nlist=8192, nprobe=16, k=10, m=16, ksub=256)
    defaults.update(kw)
    return AlgorithmParams(**defaults)


@pytest.fixture(scope="module")
def cpu():
    return CPUBaseline()


class TestStageModel:
    def test_six_stages(self, cpu):
        secs = cpu.stage_seconds(params(), 200_000)
        assert set(secs) == {"OPQ", "IVFDist", "SelCells", "BuildLUT", "PQDist", "SelK"}
        assert all(v >= 0 for v in secs.values())

    def test_opq_zero_when_disabled(self, cpu):
        assert cpu.stage_seconds(params(), 1000)["OPQ"] == 0.0
        assert cpu.stage_seconds(params(use_opq=True), 1000)["OPQ"] > 0.0

    def test_fractions_sum_to_one(self, cpu):
        f = cpu.stage_fractions(params(), 200_000)
        assert sum(f.values()) == pytest.approx(1.0)

    def test_fig3_nprobe_shifts_bottleneck_to_scan(self, cpu):
        """Fig. 3 col 1 (CPU): growing nprobe grows PQDist+SelK share."""
        lo = cpu.stage_fractions(params(nprobe=1), 12_000)
        hi = cpu.stage_fractions(params(nprobe=128), 1_600_000)
        share = lambda f: f["PQDist"] + f["SelK"]
        assert share(hi) > share(lo)

    def test_fig3_nlist_shifts_bottleneck_to_ivfdist(self, cpu):
        """Fig. 3 col 2 (CPU): growing nlist at fixed nprobe grows IVFDist —
        'more significant on CPUs due to their limited flop/s'."""
        lo = cpu.stage_fractions(params(nlist=1024), 200_000)
        hi = cpu.stage_fractions(params(nlist=2**18), 200_000)
        assert hi["IVFDist"] > lo["IVFDist"]
        assert hi["IVFDist"] > 0.3

    def test_fig3_k_effect_mild_on_cpu(self, cpu):
        """Fig. 3 col 3 (CPU): K barely moves the CPU breakdown."""
        k1 = cpu.stage_fractions(params(k=1), 200_000)
        k100 = cpu.stage_fractions(params(k=100), 200_000)
        assert abs(k100["SelK"] - k1["SelK"]) < 0.45


class TestThroughput:
    def test_qps_decreases_with_workload(self, cpu):
        assert cpu.qps(params(), 10_000) > cpu.qps(params(), 1_000_000)

    def test_thread_validation(self):
        with pytest.raises(ValueError, match="threads"):
            CPUBaseline(threads=0)
        with pytest.raises(ValueError, match="threads"):
            CPUBaseline(CPUSpec(cores=4), threads=8)

    def test_online_slower_than_batch(self, cpu):
        p = params()
        assert cpu.query_seconds(p, 200_000, batch=False) >= cpu.query_seconds(
            p, 200_000, batch=True
        )


class TestLatencySampling:
    def test_distribution_positive_and_jittered(self, cpu):
        lat = cpu.sample_latencies_us(params(), 100_000, 2000, np.random.default_rng(0))
        assert (lat > 0).all()
        assert lat.std() > 0

    def test_moderate_tail(self, cpu):
        """CPU P95/P50 stays modest (Fig. 11: CPU sits between FPGA and GPU)."""
        lat = cpu.sample_latencies_us(params(), 100_000, 20_000, np.random.default_rng(1))
        ratio = np.percentile(lat, 95) / np.percentile(lat, 50)
        assert 1.1 < ratio < 3.5

    def test_deterministic_with_seed(self, cpu):
        a = cpu.sample_latencies_us(params(), 1000, 50, np.random.default_rng(7))
        b = cpu.sample_latencies_us(params(), 1000, 50, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)
