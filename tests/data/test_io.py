"""Tests for the TEXMEX file readers."""

import numpy as np
import pytest

from repro.data.io import dataset_from_files, read_bvecs, read_fvecs, read_ivecs


def write_fvecs(path, mat):
    mat = np.asarray(mat, dtype="<f4")
    n, d = mat.shape
    out = np.empty((n, 1 + d), dtype="<f4")
    out[:, 0] = np.frombuffer(np.full(n, d, dtype="<i4").tobytes(), dtype="<f4")
    out[:, 1:] = mat
    out.tofile(str(path))


def write_bvecs(path, mat):
    mat = np.asarray(mat, dtype=np.uint8)
    n, d = mat.shape
    rows = []
    for row in mat:
        rows.append(np.array([d], dtype="<i4").tobytes() + row.tobytes())
    with open(path, "wb") as f:
        f.write(b"".join(rows))


def write_ivecs(path, mat):
    mat = np.asarray(mat, dtype="<i4")
    n, d = mat.shape
    out = np.empty((n, 1 + d), dtype="<i4")
    out[:, 0] = d
    out[:, 1:] = mat
    out.tofile(str(path))


class TestReaders:
    def test_fvecs_roundtrip(self, tmp_path, rng):
        mat = rng.standard_normal((7, 5)).astype(np.float32)
        write_fvecs(tmp_path / "x.fvecs", mat)
        got = read_fvecs(tmp_path / "x.fvecs")
        np.testing.assert_allclose(got, mat, rtol=1e-6)

    def test_bvecs_roundtrip(self, tmp_path, rng):
        mat = rng.integers(0, 256, (4, 8)).astype(np.uint8)
        write_bvecs(tmp_path / "x.bvecs", mat)
        got = read_bvecs(tmp_path / "x.bvecs")
        np.testing.assert_array_equal(got, mat.astype(np.float32))

    def test_ivecs_roundtrip(self, tmp_path, rng):
        mat = rng.integers(0, 1000, (5, 10)).astype("<i4")
        write_ivecs(tmp_path / "gt.ivecs", mat)
        np.testing.assert_array_equal(read_ivecs(tmp_path / "gt.ivecs"), mat)

    def test_limit(self, tmp_path, rng):
        mat = rng.standard_normal((10, 3)).astype(np.float32)
        write_fvecs(tmp_path / "x.fvecs", mat)
        assert read_fvecs(tmp_path / "x.fvecs", limit=4).shape == (4, 3)

    def test_truncated_raises(self, tmp_path, rng):
        mat = rng.standard_normal((3, 4)).astype(np.float32)
        write_fvecs(tmp_path / "x.fvecs", mat)
        data = (tmp_path / "x.fvecs").read_bytes()
        (tmp_path / "bad.fvecs").write_bytes(data[:-3])
        with pytest.raises(ValueError, match="truncated"):
            read_fvecs(tmp_path / "bad.fvecs")

    def test_empty_raises(self, tmp_path):
        (tmp_path / "e.fvecs").write_bytes(b"")
        with pytest.raises(ValueError, match="empty"):
            read_fvecs(tmp_path / "e.fvecs")

    def test_inconsistent_headers_raise(self, tmp_path, rng):
        a = rng.standard_normal((2, 4)).astype(np.float32)
        write_fvecs(tmp_path / "x.fvecs", a)
        raw = bytearray((tmp_path / "x.fvecs").read_bytes())
        raw[20:24] = np.array([5], dtype="<i4").tobytes()  # corrupt 2nd header
        (tmp_path / "bad.fvecs").write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="inconsistent"):
            read_fvecs(tmp_path / "bad.fvecs")


class TestDatasetFromFiles:
    def test_assembles_dataset(self, tmp_path, rng):
        base = rng.standard_normal((50, 6)).astype(np.float32)
        queries = rng.standard_normal((5, 6)).astype(np.float32)
        gt = rng.integers(0, 50, (5, 3)).astype("<i4")
        write_fvecs(tmp_path / "base.fvecs", base)
        write_fvecs(tmp_path / "q.fvecs", queries)
        write_ivecs(tmp_path / "gt.ivecs", gt)
        ds = dataset_from_files(
            "real", tmp_path / "base.fvecs", tmp_path / "q.fvecs", tmp_path / "gt.ivecs"
        )
        assert ds.n == 50 and ds.nq == 5 and ds.gt_k == 3
        np.testing.assert_allclose(ds.base, base, rtol=1e-6)

    def test_gt_mismatch_raises(self, tmp_path, rng):
        base = rng.standard_normal((10, 4)).astype(np.float32)
        queries = rng.standard_normal((3, 4)).astype(np.float32)
        gt = rng.integers(0, 10, (2, 3)).astype("<i4")
        write_fvecs(tmp_path / "base.fvecs", base)
        write_fvecs(tmp_path / "q.fvecs", queries)
        write_ivecs(tmp_path / "gt.ivecs", gt)
        with pytest.raises(ValueError, match="ground truth"):
            dataset_from_files(
                "bad", tmp_path / "base.fvecs", tmp_path / "q.fvecs", tmp_path / "gt.ivecs"
            )
