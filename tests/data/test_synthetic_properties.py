"""The recall-shape claims made in repro.data.synthetic's module docstring.

The synthetic datasets must reproduce the qualitative recall-vs-nprobe
behaviour of the real SIFT/Deep benchmarks: recall grows smoothly with
nprobe instead of saturating at nprobe=1, and 16-byte-PQ-class quantization
reaches useful recall because the data has low intrinsic dimensionality.
"""

import numpy as np
import pytest

from repro.ann.ivf import IVFPQIndex
from repro.ann.recall import recall_at_k
from repro.data.datasets import Dataset
from repro.data.synthetic import make_deep_like, make_sift_like


@pytest.fixture(scope="module", params=["sift", "deep"])
def bench_dataset(request):
    gen = make_sift_like if request.param == "sift" else make_deep_like
    return Dataset.synthetic(request.param, gen, 8000, 100, gt_k=10, seed=5)


@pytest.fixture(scope="module")
def curve(bench_dataset):
    d = bench_dataset.d
    idx = IVFPQIndex(d=d, nlist=32, m=16, ksub=64, seed=0)
    idx.train(bench_dataset.training_vectors(6000))
    idx.add(bench_dataset.base)
    gt = bench_dataset.ensure_ground_truth(10)
    out = {}
    for nprobe in (1, 2, 4, 8, 32):
        ids, _ = idx.search(bench_dataset.queries, 10, nprobe)
        out[nprobe] = recall_at_k(ids, gt)
    return out


class TestRecallCurveShape:
    def test_monotone_in_nprobe(self, curve):
        vals = [curve[p] for p in (1, 2, 4, 8, 32)]
        assert all(b >= a - 1e-9 for a, b in zip(vals, vals[1:]))

    def test_not_saturated_at_nprobe_one(self, curve):
        """The co-design trade-off only exists if nprobe buys recall."""
        assert curve[8] > curve[1] + 0.1

    def test_quantization_ceiling_useful(self, curve):
        """Full probing must exceed the scaled R@10 goals (~0.7)."""
        assert curve[32] > 0.6
