"""Tests for synthetic dataset generators."""

import numpy as np
import pytest

from repro.data.synthetic import make_clustered, make_deep_like, make_sift_like


class TestMakeClustered:
    def test_shape_and_dtype(self):
        x = make_clustered(100, 16, n_clusters=8, intrinsic_dim=4, seed=0)
        assert x.shape == (100, 16)
        assert x.dtype == np.float32

    def test_deterministic(self):
        a = make_clustered(50, 8, intrinsic_dim=4, seed=3)
        b = make_clustered(50, 8, intrinsic_dim=4, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_output(self):
        a = make_clustered(50, 8, intrinsic_dim=4, seed=1)
        b = make_clustered(50, 8, intrinsic_dim=4, seed=2)
        assert not np.array_equal(a, b)

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError, match="n must be positive"):
            make_clustered(0, 8)
        with pytest.raises(ValueError, match="d must be positive"):
            make_clustered(10, 0)
        with pytest.raises(ValueError, match="intrinsic_dim"):
            make_clustered(10, 8, intrinsic_dim=20)

    def test_clusters_fewer_than_n(self):
        x = make_clustered(5, 4, n_clusters=100, intrinsic_dim=2, seed=0)
        assert x.shape == (5, 4)

    def test_low_rank_structure(self):
        """Spectrum must be dominated by ~intrinsic_dim directions."""
        x = make_clustered(2000, 32, n_clusters=16, intrinsic_dim=4, seed=0)
        x = x - x.mean(axis=0)
        s = np.linalg.svd(x, compute_uv=False)
        energy = (s**2) / (s**2).sum()
        assert energy[:4].sum() > 0.9


class TestSiftLike:
    def test_range_and_dim(self):
        x = make_sift_like(200, seed=0)
        assert x.shape == (200, 128)
        assert x.min() >= 0.0
        assert x.max() <= 255.0

    def test_custom_dim(self):
        assert make_sift_like(10, d=64).shape == (10, 64)


class TestDeepLike:
    def test_unit_norm(self):
        x = make_deep_like(150, seed=0)
        assert x.shape == (150, 96)
        np.testing.assert_allclose(np.linalg.norm(x, axis=1), 1.0, rtol=1e-5)


class TestClusterImbalance:
    def test_skewed_weights_produce_imbalanced_cells(self):
        """The paper's perf model depends on imbalanced cell sizes."""
        from repro.ann.kmeans import kmeans_fit

        x = make_clustered(4000, 16, n_clusters=64, intrinsic_dim=6, skew=0.9, seed=0)
        _, assign, _ = kmeans_fit(x, 32, seed=0, n_iter=8)
        counts = np.bincount(assign, minlength=32)
        assert counts.max() > 2 * max(counts.min(), 1)
