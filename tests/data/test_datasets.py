"""Tests for the Dataset container and ground-truth computation."""

import numpy as np
import pytest

from repro.data.datasets import Dataset, compute_ground_truth
from repro.data.synthetic import make_clustered


class TestComputeGroundTruth:
    def test_self_first(self, rng):
        base = rng.standard_normal((60, 8)).astype(np.float32)
        gt = compute_ground_truth(base[:4], base, 3)
        np.testing.assert_array_equal(gt[:, 0], np.arange(4))


class TestDataset:
    def test_properties(self, small_dataset):
        assert small_dataset.d == 32
        assert small_dataset.n == 2000
        assert small_dataset.nq == 50

    def test_dim_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="dim mismatch"):
            Dataset(
                name="bad",
                base=rng.standard_normal((10, 4)).astype(np.float32),
                queries=rng.standard_normal((2, 8)).astype(np.float32),
            )

    def test_non_2d_raises(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            Dataset(name="bad", base=np.zeros(10), queries=np.zeros((2, 4)))

    def test_ground_truth_cached_and_extended(self, rng):
        vecs = make_clustered(520, 8, intrinsic_dim=4, seed=0)
        ds = Dataset(name="t", base=vecs[:500], queries=vecs[500:])
        g5 = ds.ensure_ground_truth(5)
        assert g5.shape == (20, 5)
        first = ds.ground_truth
        g3 = ds.ensure_ground_truth(3)
        assert g3.shape == (20, 3)
        assert ds.ground_truth is first  # no recompute for smaller k
        g8 = ds.ensure_ground_truth(8)
        assert g8.shape == (20, 8)

    def test_training_vectors_cap(self, small_dataset):
        t = small_dataset.training_vectors(100)
        assert t.shape[0] == 100

    def test_training_vectors_explicit_split(self, rng):
        base = rng.standard_normal((30, 4)).astype(np.float32)
        train = rng.standard_normal((7, 4)).astype(np.float32)
        ds = Dataset(name="t", base=base, queries=base[:2], train=train)
        assert ds.training_vectors().shape == (7, 4)

    def test_synthetic_constructor(self):
        ds = Dataset.synthetic(
            "s", make_clustered, 300, 10, gt_k=4, seed=0, d=16, intrinsic_dim=4
        )
        assert ds.n == 300
        assert ds.nq == 10
        assert ds.ground_truth.shape == (10, 4)
        # Base and queries disjoint slices of one sample.
        assert not np.array_equal(ds.base[:10], ds.queries)
