"""Tests for index partitioning (the multi-accelerator layout of Fig. 1)."""

import numpy as np
import pytest

from repro.ann.merge import merge_partial_topk
from repro.ann.partition import partition_index, replicate_index


class TestPartitionIndex:
    def test_shards_cover_everything_disjointly(self, trained_ivf):
        shards = partition_index(trained_ivf, 4)
        assert len(shards) == 4
        all_ids = np.concatenate([np.concatenate(s.cell_ids) for s in shards])
        orig_ids = np.concatenate(trained_ivf.cell_ids)
        np.testing.assert_array_equal(np.sort(all_ids), np.sort(orig_ids))

    def test_shards_share_trained_quantizers(self, trained_ivf):
        shards = partition_index(trained_ivf, 2)
        for s in shards:
            assert s.centroids is trained_ivf.centroids
            assert s.pq is trained_ivf.pq

    def test_roughly_balanced(self, trained_ivf):
        shards = partition_index(trained_ivf, 4)
        counts = [s.ntotal for s in shards]
        assert max(counts) - min(counts) <= trained_ivf.nlist

    def test_shard_search_merge_equals_global_bitwise(self, trained_ivf, small_dataset):
        """Merging per-shard top-k through the exact (distance, id) kernel
        must reproduce the global top-k bit for bit — at full probing AND
        at partial probing (shards probe the same cells by construction)."""
        shards = partition_index(trained_ivf, 3)
        q = small_dataset.queries[:8]
        for k, nprobe in [(5, trained_ivf.nlist), (5, 2), (11, 4)]:
            global_ids, global_dists = trained_ivf.search(q, k, nprobe)
            parts = [s.search(q, k, nprobe) for s in shards]
            ids, dists = merge_partial_topk(parts, k)
            np.testing.assert_array_equal(ids, global_ids)
            np.testing.assert_array_equal(dists, global_dists)

    def test_invalid_parts(self, trained_ivf):
        with pytest.raises(ValueError, match="n_parts"):
            partition_index(trained_ivf, 0)

    def test_stats_independent(self, trained_ivf, small_dataset):
        shards = partition_index(trained_ivf, 2)
        shards[0].search(small_dataset.queries[:2], 3, 2)
        assert shards[1].stats.n_queries == 0

    def test_reexported_from_fig01(self):
        from repro.harness.fig01 import partition_index as legacy
        assert legacy is partition_index


class TestReplicateIndex:
    def test_replicas_share_storage_not_state(self, trained_ivf, small_dataset):
        reps = replicate_index(trained_ivf, 3)
        assert len(reps) == 3
        for r in reps:
            assert r.invlists is trained_ivf.invlists
            assert r.centroids is trained_ivf.centroids
        reps[0].search(small_dataset.queries[:2], 3, 2)
        assert reps[1].stats.n_queries == 0

    def test_replica_results_identical(self, trained_ivf, small_dataset):
        q = small_dataset.queries[:6]
        ref = trained_ivf.search(q, 5, 4)
        for r in replicate_index(trained_ivf, 2):
            got = r.search(q, 5, 4)
            np.testing.assert_array_equal(got[0], ref[0])
            np.testing.assert_array_equal(got[1], ref[1])

    def test_invalid_count(self, trained_ivf):
        with pytest.raises(ValueError, match="n_replicas"):
            replicate_index(trained_ivf, 0)
