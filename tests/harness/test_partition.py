"""Tests for index partitioning (the multi-accelerator layout of Fig. 1)."""

import numpy as np
import pytest

from repro.harness.fig01 import partition_index


class TestPartitionIndex:
    def test_shards_cover_everything_disjointly(self, trained_ivf):
        shards = partition_index(trained_ivf, 4)
        assert len(shards) == 4
        all_ids = np.concatenate([np.concatenate(s.cell_ids) for s in shards])
        orig_ids = np.concatenate(trained_ivf.cell_ids)
        np.testing.assert_array_equal(np.sort(all_ids), np.sort(orig_ids))

    def test_shards_share_trained_quantizers(self, trained_ivf):
        shards = partition_index(trained_ivf, 2)
        for s in shards:
            assert s.centroids is trained_ivf.centroids
            assert s.pq is trained_ivf.pq

    def test_roughly_balanced(self, trained_ivf):
        shards = partition_index(trained_ivf, 4)
        counts = [s.ntotal for s in shards]
        assert max(counts) - min(counts) <= trained_ivf.nlist

    def test_shard_search_union_equals_global(self, trained_ivf, small_dataset):
        """Merging shard top-k by distance must equal the global top-k."""
        k, nprobe = 5, trained_ivf.nlist  # probe everything: no probe noise
        shards = partition_index(trained_ivf, 3)
        q = small_dataset.queries[:8]
        global_ids, _ = trained_ivf.search(q, k, nprobe)
        ids = [s.search(q, k, nprobe)[0] for s in shards]
        dists = [s.search(q, k, nprobe)[1] for s in shards]
        merged = []
        for qi in range(q.shape[0]):
            cat_i = np.concatenate([i[qi] for i in ids])
            cat_d = np.concatenate([d[qi] for d in dists])
            merged.append(cat_i[np.argsort(cat_d, kind="stable")][:k])
        np.testing.assert_array_equal(np.sort(np.vstack(merged), axis=1),
                                      np.sort(global_ids, axis=1))

    def test_invalid_parts(self, trained_ivf):
        with pytest.raises(ValueError, match="n_parts"):
            partition_index(trained_ivf, 0)

    def test_stats_independent(self, trained_ivf, small_dataset):
        shards = partition_index(trained_ivf, 2)
        shards[0].search(small_dataset.queries[:2], 3, 2)
        assert shards[1].stats.n_queries == 0
