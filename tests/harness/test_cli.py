"""Tests for the CLI experiment runner (analytic experiments only)."""

import pytest

from repro.harness.cli import EXPERIMENTS, main


class TestCLI:
    def test_all_experiment_ids_registered(self):
        assert set(EXPERIMENTS) == {
            "fig01", "fig03", "fig09", "fig10", "fig11", "fig12", "tab03", "tab04",
            "serve-bench", "trace-report", "serve-top", "codesign-serve",
        }

    def test_runs_analytic_experiment(self, capsys):
        assert main(["fig03"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out

    def test_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["figXX"])

    def test_qos_mode_rejects_inapplicable_flags(self):
        """--qos is exclusive with the replicated-matrix flags and takes
        no --clients/--requests (its load matrix is capacity-derived)."""
        with pytest.raises(SystemExit, match="exclusive"):
            main(["serve-bench", "--qos", "--replicas", "1,2"])
        with pytest.raises(SystemExit, match="exclusive"):
            main(["serve-bench", "--qos", "--shards", "2"])
        with pytest.raises(SystemExit, match="exclusive"):
            main(["serve-bench", "--qos", "--policy", "p2c"])
        with pytest.raises(SystemExit, match="clients"):
            main(["serve-bench", "--qos", "--clients", "8"])
        with pytest.raises(SystemExit, match="clients"):
            main(["serve-bench", "--qos", "--requests", "100"])

    def test_policy_rejected_outside_replicated_mode(self):
        with pytest.raises(SystemExit, match="replicated"):
            main(["serve-bench", "--policy", "p2c"])


class TestObservabilityFlags:
    def test_trace_rejected_in_modeled_modes(self, tmp_path):
        """Tracing instruments the real engine/worker tiers; the modeled
        qos/async/replicated sweeps refuse the flags instead of silently
        producing a partial trace."""
        out = str(tmp_path / "t.json")
        for extra in (["--qos"], ["--async"], ["--replicas", "1,2"]):
            with pytest.raises(SystemExit, match="--trace"):
                main(["serve-bench", *extra, "--trace", out])
        with pytest.raises(SystemExit, match="--trace"):
            main(["serve-bench", "--qos", "--metrics-out", out])

    def test_trace_sample_validated(self, tmp_path):
        with pytest.raises(SystemExit, match="trace-sample"):
            main(["serve-bench", "--trace", str(tmp_path / "t.json"),
                  "--trace-sample", "1.5"])

    def test_trace_report_requires_trace_path(self):
        with pytest.raises(SystemExit, match="requires --trace"):
            main(["trace-report"])

    def test_trace_report_reads_a_trace(self, tmp_path, capsys):
        import json

        from repro.obs.export import spans_to_chrome
        from repro.obs.trace import Tracer

        tracer = Tracer(sample_rate=1.0, seed=0)
        root = tracer.start_trace("request")
        root.interval("queue", root.t0_us, root.t0_us + 10)
        root.end()
        path = tmp_path / "t.trace.json"
        path.write_text(json.dumps(spans_to_chrome(tracer.spans())))
        assert main(["trace-report", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "stage durations" in out and "queue" in out

    def test_all_excludes_trace_report(self):
        from repro.harness.cli import NOT_IN_ALL

        assert "trace-report" in NOT_IN_ALL

    def test_trace_report_empty_trace_reports_zero_spans(self, tmp_path, capsys):
        """A recorded-but-empty trace (0% sampling hit) renders a clean
        'no spans' report instead of dividing by zero."""
        import json

        path = tmp_path / "empty.trace.json"
        path.write_text(json.dumps({"traceEvents": []}))
        assert main(["trace-report", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "0 span(s)" in out


class TestTimelineFlags:
    def test_timeline_rejected_outside_chaos_and_qos(self, tmp_path):
        out = str(tmp_path / "t.jsonl")
        for extra in ([], ["--async"], ["--replicas", "1,2"], ["--workers", "2"]):
            with pytest.raises(SystemExit, match="--timeline"):
                main(["serve-bench", *extra, "--timeline", out])

    def test_serve_top_requires_timeline_path(self):
        with pytest.raises(SystemExit, match="requires --timeline"):
            main(["serve-top", "--once"])

    def test_serve_top_missing_file_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["serve-top", "--timeline", str(tmp_path / "nope.jsonl"),
                  "--once"])

    def test_serve_top_renders_a_timeline(self, tmp_path, capsys):
        from repro.obs.events import EventLog
        from repro.obs.timeline import write_timeline_jsonl

        events = EventLog()
        events.emit("worker_restart", shard=0, replica=1, exit_code=-9)
        path = tmp_path / "timeline.jsonl"
        write_timeline_jsonl(
            path,
            [{"ts": 10, "seq": 0, "qps": 120.0, "availability": 1.0,
              "p99_us": 900.0, "counters": {"completed": 12}}],
            events.events(),
        )
        assert main(["serve-top", "--timeline", str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "serve-top @ tick" in out
        assert "worker_restart" in out

    def test_refresh_validated(self, tmp_path):
        with pytest.raises(SystemExit, match="refresh"):
            main(["serve-top", "--timeline", str(tmp_path / "t.jsonl"),
                  "--refresh", "0"])

    def test_all_excludes_serve_top(self):
        from repro.harness.cli import NOT_IN_ALL

        assert "serve-top" in NOT_IN_ALL


class TestCodesignFlags:
    def test_codesign_rejects_serve_bench_topology_flags(self):
        """codesign-serve picks its own topology; hand-tuning flags are
        the serve-bench modes' business."""
        for extra in (
            ["--workers", "2"], ["--qos"], ["--async"],
            ["--replicas", "1,2"], ["--shards", "2"], ["--policy", "p2c"],
            ["--connections", "4"], ["--clients", "8"], ["--requests", "64"],
        ):
            with pytest.raises(SystemExit, match="serve-bench modes only"):
                main(["codesign-serve", *extra])

    def test_codesign_rejects_observability_flags(self, tmp_path):
        out = str(tmp_path / "t.json")
        for extra in (["--trace", out], ["--metrics-out", out],
                      ["--timeline", out]):
            with pytest.raises(SystemExit, match="serve-bench modes only"):
                main(["codesign-serve", *extra])

    def test_codesign_flags_rejected_by_serve_bench(self, tmp_path):
        for extra in (
            ["--traffic", str(tmp_path / "t.json")], ["--validate"],
            ["--report", str(tmp_path / "r.json")],
            ["--spec", str(tmp_path / "s.json")],
        ):
            with pytest.raises(SystemExit, match="codesign-serve only"):
                main(["serve-bench", *extra])

    def test_codesign_in_all_set(self):
        from repro.harness.cli import NOT_IN_ALL

        assert "codesign-serve" not in NOT_IN_ALL
