"""Tests for the CLI experiment runner (analytic experiments only)."""

import pytest

from repro.harness.cli import EXPERIMENTS, main


class TestCLI:
    def test_all_experiment_ids_registered(self):
        assert set(EXPERIMENTS) == {
            "fig01", "fig03", "fig09", "fig10", "fig11", "fig12", "tab03", "tab04",
            "serve-bench",
        }

    def test_runs_analytic_experiment(self, capsys):
        assert main(["fig03"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out

    def test_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["figXX"])
