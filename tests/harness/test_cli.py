"""Tests for the CLI experiment runner (analytic experiments only)."""

import pytest

from repro.harness.cli import EXPERIMENTS, main


class TestCLI:
    def test_all_experiment_ids_registered(self):
        assert set(EXPERIMENTS) == {
            "fig01", "fig03", "fig09", "fig10", "fig11", "fig12", "tab03", "tab04",
            "serve-bench",
        }

    def test_runs_analytic_experiment(self, capsys):
        assert main(["fig03"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out

    def test_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["figXX"])

    def test_qos_mode_rejects_inapplicable_flags(self):
        """--qos is exclusive with the replicated-matrix flags and takes
        no --clients/--requests (its load matrix is capacity-derived)."""
        with pytest.raises(SystemExit, match="exclusive"):
            main(["serve-bench", "--qos", "--replicas", "1,2"])
        with pytest.raises(SystemExit, match="exclusive"):
            main(["serve-bench", "--qos", "--shards", "2"])
        with pytest.raises(SystemExit, match="exclusive"):
            main(["serve-bench", "--qos", "--policy", "p2c"])
        with pytest.raises(SystemExit, match="clients"):
            main(["serve-bench", "--qos", "--clients", "8"])
        with pytest.raises(SystemExit, match="clients"):
            main(["serve-bench", "--qos", "--requests", "100"])

    def test_policy_rejected_outside_replicated_mode(self):
        with pytest.raises(SystemExit, match="replicated"):
            main(["serve-bench", "--policy", "p2c"])
