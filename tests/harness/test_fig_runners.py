"""Fast sanity tests for the analytic experiment runners.

The full-scale runs live in benchmarks/; these check structure and the key
qualitative shapes at reduced sweep sizes so the unit suite stays quick.
"""

import numpy as np

from repro.harness import fig03, fig09
from repro.net.scaleout import DistributedSearchEstimator


class TestFig03Runner:
    def test_structure_and_shapes(self):
        r = fig03.run(nprobes=(1, 64), nlists=(2**10, 2**16), ks=(1, 100))
        # Every (hw, sweep, value) cell sums to one.
        for frac in r.fractions.values():
            assert abs(sum(frac.values()) - 1.0) < 1e-9
        scan = ("PQDist", "SelK")
        assert r.share("GPU", "nprobe", 64, scan) > r.share("GPU", "nprobe", 1, scan)
        assert r.share("CPU", "nlist", 2**16, ("IVFDist",)) > r.share(
            "CPU", "nlist", 2**10, ("IVFDist",)
        )

    def test_format_is_text_table(self):
        r = fig03.run(nprobes=(1,), nlists=(2**10,), ks=(1,))
        assert "Figure 3" in r.format()


class TestFig09Runner:
    def test_single_point(self):
        r = fig09.run(nprobes=(16,), nlists=(2**13,), ks=(10,))
        ratios = r.ratios[("nprobe", 16)]
        assert abs(sum(ratios.values()) - 1.0) < 1e-6
        cfg = r.designs[("K", 10)]
        assert cfg.params.k == 10


class TestFig12Estimator:
    def test_speedup_grows_with_tail_gap(self):
        rng = np.random.default_rng(0)
        tight = 400 + rng.normal(0, 5, 20_000).clip(min=0)
        heavy = 100 * rng.lognormal(0, 0.5, 20_000)
        heavy[rng.random(20_000) < 0.05] *= 8
        f = DistributedSearchEstimator(tight)
        g = DistributedSearchEstimator(heavy)
        s16 = np.percentile(g.sample(16, 2000), 99) / np.percentile(f.sample(16, 2000), 99)
        s512 = np.percentile(g.sample(512, 2000), 99) / np.percentile(f.sample(512, 2000), 99)
        assert s512 > s16
