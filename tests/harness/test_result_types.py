"""Unit tests for the experiment result containers (no expensive runs)."""

import numpy as np

from repro.harness.fig01 import Fig01Result
from repro.harness.fig10 import Fig10Cell, Fig10Result
from repro.harness.fig11 import Fig11Result
from repro.harness.fig12 import Fig12Result
from repro.harness.tab03 import Tab03Result


class TestFig01Result:
    def test_speedup_and_format(self):
        rng = np.random.default_rng(0)
        r = Fig01Result(
            fpga_latencies_us=100 + rng.random(500),
            gpu_latencies_us=500 + 100 * rng.random(500),
        )
        assert r.speedup(50) > 1.0
        assert "speedup" in r.format()


class TestFig10Result:
    def test_cell_ratios(self):
        c = Fig10Cell(
            fanns_qps=10_000, fanns_predicted=11_000, baseline_fpga_qps=5_000,
            cpu_qps=2_000, gpu_qps=50_000,
        )
        assert c.fanns_vs_baseline == 2.0
        assert c.fanns_vs_cpu == 5.0
        assert c.gpu_vs_fanns == 5.0
        assert abs(c.model_accuracy - 10 / 11) < 1e-9

    def test_format_table(self):
        c = Fig10Cell(1000, 1100, 500, 400, 9000)
        out = Fig10Result(cells={("ds", "R@10=70%"): c}).format()
        assert "meas/pred" in out and "R@10=70%" in out


class TestFig11Result:
    def test_percentiles(self):
        rng = np.random.default_rng(1)
        r = Fig11Result(latencies_us={"FPGA": 10 + rng.random(1000)})
        assert r.percentile("FPGA", 99) >= r.percentile("FPGA", 50)
        assert "P99/P50" in r.format()


class TestFig12Result:
    def test_speedup_series(self):
        r = Fig12Result(
            counts=[16, 1024],
            fpga_p99_us={16: 100.0, 1024: 120.0},
            gpu_p99_us={16: 800.0, 1024: 4800.0},
        )
        assert r.speedup(16) == 8.0
        assert r.speedup(1024) == 40.0
        out = r.format()
        assert "speedup" in out and "1,024" in out or "1024" in out


class TestTab03Result:
    def test_format_rows(self):
        r = Tab03Result(seconds={"Build indexes": 12.5, "FPGA code generation": 0.01})
        out = r.format()
        assert "Build indexes" in out and "12.5" in out
