"""Tests for the experiment output formatting."""

from repro.harness.formatting import format_series, format_table


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, "x"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_number_formatting(self):
        out = format_table(["v"], [[12345.0], [0.00123], [12.34]])
        assert "12,345" in out
        assert "0.00123" in out
        assert "12.3" in out

    def test_empty_rows(self):
        out = format_table(["x", "y"], [])
        assert "x" in out


class TestFormatSeries:
    def test_pairs(self):
        out = format_series("s", [1, 2], [10.0, 20.0])
        assert out.startswith("s: ")
        assert "1:10" in out and "2:20" in out
