"""Tests for the telemetry plane (repro.obs.timeline)."""

import sys
import time
from pathlib import Path

import pytest

from repro.obs.events import EventLog
from repro.obs.timeline import (
    BurnRateRule,
    SLOMonitor,
    TelemetryCollector,
    load_timeline,
    render_dashboard,
    to_prometheus,
    write_timeline_jsonl,
)
from repro.serve.metrics import MetricsRegistry

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_timeline  # noqa: E402  (needs the tools/ path above)


class FakeReplicaSet:
    """Just the attributes the collector's router scrape reads."""

    def __init__(self, live, dispatch, failover):
        self.live = live
        self.dispatch_counts = dispatch
        self.failover_counts = failover


class FakeRouter:
    def __init__(self, shards):
        self.shards = shards


class FakePool:
    """Just the attributes the collector's pool scrape reads."""

    def __init__(self, alive, restart_log=(), stats=None):
        self.alive = list(alive)
        self.restart_log = list(restart_log)
        self._stats = stats

    def stats(self, *, drain_spans=False, drain_events=False):
        if self._stats is None:
            raise ConnectionError("worker gone")
        return dict(self._stats)


class TestBurnRateRule:
    def test_validates_op_and_window(self):
        with pytest.raises(ValueError, match="op"):
            BurnRateRule("r", "p99_us", ">=", 1.0)
        with pytest.raises(ValueError, match="window"):
            BurnRateRule("r", "p99_us", ">", 1.0, window=0)

    def test_breached_over_and_under(self):
        over = BurnRateRule("lat", "p99_us", ">", 100.0)
        under = BurnRateRule("avail", "availability", "<", 0.99)
        assert over.breached({"p99_us": 150.0})
        assert not over.breached({"p99_us": 50.0})
        assert under.breached({"availability": 0.5})
        assert not under.breached({"availability": 1.0})

    def test_dotted_path_and_missing_metric(self):
        rule = BurnRateRule("gold", "tenants.gold.qps", "<", 10.0)
        assert rule.breached({"tenants": {"gold": {"qps": 5.0}}})
        assert not rule.breached({"tenants": {"other": {"qps": 5.0}}})
        assert not rule.breached({})


class TestSLOMonitor:
    def _ticks(self, values):
        return [{"ts": i, "availability": v} for i, v in enumerate(values)]

    def test_fires_after_window_and_once_per_burn(self):
        events = EventLog()
        mon = SLOMonitor(
            [BurnRateRule("avail", "availability", "<", 0.99, window=3)],
            events=events,
        )
        fired = []
        for tick in self._ticks([1.0, 0.5, 0.5, 0.5, 0.5, 1.0]):
            fired += mon.observe(tick)
        types = [f["type"] for f in fired]
        assert types == ["slo_alert", "slo_alert_cleared"]
        assert [e["type"] for e in events.events()] == types
        alert = events.events("slo_alert")[0]
        assert alert["rule"] == "avail" and alert["value"] == 0.5

    def test_blip_shorter_than_window_is_a_non_event(self):
        mon = SLOMonitor(
            [BurnRateRule("avail", "availability", "<", 0.99, window=3)]
        )
        fired = []
        for tick in self._ticks([1.0, 0.5, 0.5, 1.0, 0.5, 1.0]):
            fired += mon.observe(tick)
        assert fired == []
        assert mon.firing == frozenset()

    def test_firing_state_tracks_burn(self):
        mon = SLOMonitor(
            [BurnRateRule("avail", "availability", "<", 0.99, window=1)]
        )
        mon.observe({"availability": 0.5})
        assert mon.firing == frozenset({"avail"})
        mon.observe({"availability": 1.0})
        assert mon.firing == frozenset()


class TestCollectorTicks:
    def test_interval_rates_not_lifetime_averages(self):
        metrics = MetricsRegistry()
        collector = TelemetryCollector(metrics)
        for _ in range(10):
            metrics.observe_request(5.0, 20.0, 25.0)
        t1 = collector.tick()
        assert t1["interval"]["completed"] == 10
        time.sleep(0.01)
        t2 = collector.tick()
        assert t2["interval"]["completed"] == 0
        assert t2["qps"] == 0.0
        assert t2["counters"]["completed"] == 10
        assert t2["ts"] >= t1["ts"] and t2["seq"] == t1["seq"] + 1

    def test_tenant_breakdown(self):
        metrics = MetricsRegistry()
        collector = TelemetryCollector(metrics)
        metrics.observe_request(1.0, 2.0, 3.0, tenant="gold")
        tick = collector.tick()
        assert tick["tenants"]["gold"]["completed"] == 1
        assert tick["tenants"]["gold"]["qps"] > 0

    def test_availability_fallback_from_partial_counter(self):
        metrics = MetricsRegistry()
        collector = TelemetryCollector(metrics)
        for _ in range(4):
            metrics.observe_request(1.0, 2.0, 3.0)
        metrics.inc("partial")
        tick = collector.tick()
        assert tick["availability"] == pytest.approx(0.75)

    def test_router_scrape_sets_availability(self):
        router = FakeRouter(
            [FakeReplicaSet([True, False], [3, 4], [1, 0]),
             FakeReplicaSet([True, True], [5, 5], [0, 0])]
        )
        collector = TelemetryCollector(router=router)
        tick = collector.tick()
        assert tick["shards"][0] == {
            "live": 1, "replicas": 2, "dispatch": 7, "failover": 1,
        }
        assert tick["availability"] == pytest.approx(0.75)

    def test_pool_scrape_survives_dead_worker(self):
        pool = FakePool([True, True], stats=None)  # stats raises
        collector = TelemetryCollector(pool=pool, events=EventLog())
        tick = collector.tick()
        assert tick["replicas_live"] == 2
        assert "workers" not in tick

    def test_pool_scrape_merges_worker_events(self):
        events = EventLog()
        pool = FakePool(
            [True],
            stats={
                "workers": [
                    {"pid": 7, "metrics": {"counters": {"completed": 3}}}
                ],
                "events": [{"ts": 1, "type": "shed", "pid": 7}],
            },
        )
        collector = TelemetryCollector(pool=pool, events=events)
        tick = collector.tick()
        assert tick["workers"] == [{"pid": 7, "completed": 3}]
        assert [e["type"] for e in events.events()] == ["shed"]

    def test_slo_observed_on_tick(self):
        events = EventLog()
        router = FakeRouter([FakeReplicaSet([False], [0], [0])])
        slo = SLOMonitor(
            [BurnRateRule("avail", "availability", "<", 0.99, window=1)],
            events=events,
        )
        collector = TelemetryCollector(router=router, slo=slo, events=events)
        tick = collector.tick()
        assert tick["alerts_firing"] == ["avail"]
        assert len(events.events("slo_alert")) == 1

    def test_ring_is_bounded(self):
        collector = TelemetryCollector(capacity=4)
        for _ in range(10):
            collector.tick()
        ticks = collector.ticks()
        assert len(ticks) == 4
        assert ticks[-1]["seq"] == 9

    def test_background_thread_ticks_and_stops(self):
        metrics = MetricsRegistry()
        with TelemetryCollector(metrics, interval_s=0.005) as collector:
            time.sleep(0.05)
        n = len(collector.ticks())
        assert n >= 2  # several interval ticks plus the final stop() tick
        time.sleep(0.02)
        assert len(collector.ticks()) == n  # thread actually stopped

    def test_start_twice_rejected(self):
        collector = TelemetryCollector(MetricsRegistry())
        collector.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                collector.start()
        finally:
            collector.stop()

    def test_params_validated(self):
        with pytest.raises(ValueError, match="interval_s"):
            TelemetryCollector(interval_s=0.0)
        with pytest.raises(ValueError, match="capacity"):
            TelemetryCollector(capacity=0)


class TestPrometheus:
    def test_exposition_format(self):
        metrics = MetricsRegistry()
        metrics.observe_request(5.0, 20.0, 25.0, tenant="gold")
        metrics.inc("shed", 2)
        metrics.set_gauge("coverage", 1.0)
        text = to_prometheus(metrics.snapshot())
        assert text.endswith("\n")
        assert "# TYPE repro_completed_total counter" in text
        assert "repro_shed_total 2.0" in text
        assert "# TYPE repro_coverage gauge" in text
        assert 'repro_request_latency_us{series="total",quantile="0.99"}' in text
        assert 'repro_tenant_completed_total{tenant="gold"} 1.0' in text
        assert 'repro_tenant_latency_us{tenant="gold",quantile="0.99"}' in text

    def test_accepts_snapshot_dict(self):
        metrics = MetricsRegistry()
        metrics.observe_request(1.0, 2.0, 3.0)
        text = to_prometheus(metrics.snapshot().to_dict())
        assert "repro_completed_total 1.0" in text

    def test_metric_names_sanitized(self):
        metrics = MetricsRegistry()
        metrics.inc("weird-name.x")
        text = to_prometheus(metrics.snapshot())
        assert "repro_weird_name_x_total 1.0" in text


class TestTimelineFile:
    def _collector(self):
        metrics = MetricsRegistry()
        events = EventLog()
        collector = TelemetryCollector(metrics, events=events)
        metrics.observe_request(1.0, 2.0, 3.0)
        collector.tick()
        events.emit("cache_invalidated")
        collector.tick()
        return collector

    def test_round_trip(self, tmp_path):
        collector = self._collector()
        path = collector.dump_jsonl(tmp_path / "t.jsonl")
        meta, ticks, events = load_timeline(path)
        assert meta["version"] == 1 and meta["interval_s"] == 0.1
        assert len(ticks) == 2 and len(events) == 1
        ts = [r["ts"] for r in ticks + events]
        assert [r["ts"] for r in sorted(ticks + events, key=lambda r: r["ts"])] \
            == sorted(ts)

    def test_dump_passes_the_ci_validator(self, tmp_path):
        collector = self._collector()
        path = collector.dump_jsonl(tmp_path / "t.jsonl")
        assert check_timeline.validate(path) == []

    def test_records_interleaved_by_ts(self, tmp_path):
        path = write_timeline_jsonl(
            tmp_path / "t.jsonl",
            [{"ts": 30, "seq": 0, "availability": 1.0}],
            [{"ts": 10, "type": "shed", "pid": 1},
             {"ts": 50, "type": "shed", "pid": 1}],
        )
        lines = path.read_text().splitlines()
        kinds = [line.split('"kind":"')[1].split('"')[0] for line in lines]
        assert kinds == ["meta", "event", "tick", "event"]


class TestDashboard:
    def test_empty_timeline(self):
        assert render_dashboard([], []) == "serve-top: no ticks yet\n"

    def test_sections_render(self):
        ticks = [
            {"ts": 100, "seq": 0, "qps": 50.0, "p99_us": 900.0,
             "availability": 0.5, "coverage": 1.0,
             "counters": {"completed": 10, "shed": 1, "errors": 0},
             "restarts": 1, "alerts_firing": ["availability_floor"],
             "tenants": {"gold": {"qps": 25.0, "p99_us": 800.0, "shed": 1}},
             "shards": [{"live": 1, "replicas": 2, "dispatch": 9,
                         "failover": 2}]},
        ]
        events = [{"ts": 90, "type": "coverage_lost", "pid": 3,
                   "scope": "replica", "shard": 0, "replica": 1}]
        frame = render_dashboard(ticks, events)
        assert "ALERTS FIRING: availability_floor" in frame
        assert "gold" in frame and "coverage_lost" in frame
        assert "1/2" in frame  # shard liveness column
