"""Tests for the typed operational event journal (repro.obs.events)."""

import pytest

from repro.obs.events import EVENT_TYPES, EventLog


class TestEmit:
    def test_emit_stamps_ts_type_pid_and_attrs(self):
        log = EventLog()
        rec = log.emit("shed", tenant="gold", depth=7)
        assert rec["type"] == "shed"
        assert rec["tenant"] == "gold" and rec["depth"] == 7
        assert isinstance(rec["ts"], int) and rec["ts"] > 0
        assert isinstance(rec["pid"], int)
        assert log.events() == [rec]

    def test_timestamps_are_monotonic(self):
        log = EventLog()
        records = [log.emit("shed") for _ in range(10)]
        ts = [r["ts"] for r in records]
        assert ts == sorted(ts)

    def test_unknown_type_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError, match="unknown event type"):
            log.emit("reactor_meltdown")
        assert len(log) == 0

    def test_every_declared_type_accepted(self):
        log = EventLog()
        for etype in sorted(EVENT_TYPES):
            log.emit(etype)
        assert len(log) == len(EVENT_TYPES)


class TestCapacity:
    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            EventLog(capacity=0)

    def test_overflow_drops_and_counts(self):
        log = EventLog(capacity=3)
        for _ in range(5):
            log.emit("shed")
        assert len(log) == 3
        assert log.dropped == 2

    def test_drain_frees_capacity(self):
        log = EventLog(capacity=2)
        log.emit("shed")
        log.emit("shed")
        drained = log.drain()
        assert len(drained) == 2 and len(log) == 0
        rec = log.emit("quota_exceeded", tenant="t")
        assert log.events() == [rec]


class TestFilterAndIngest:
    def test_events_filters_by_type(self):
        log = EventLog()
        log.emit("shed")
        log.emit("quota_exceeded")
        log.emit("shed")
        assert [e["type"] for e in log.events("shed")] == ["shed", "shed"]
        assert len(log.events()) == 3

    def test_ingest_merges_foreign_records(self):
        """Worker-side journals ride stats frames and merge by ingest."""
        worker = EventLog()
        worker.emit("shed", tenant="w")
        router = EventLog()
        router.emit("worker_restart", shard=0, replica=1)
        router.ingest(worker.drain())
        types = {e["type"] for e in router.events()}
        assert types == {"shed", "worker_restart"}

    def test_ingest_respects_capacity(self):
        log = EventLog(capacity=1)
        log.emit("shed")
        log.ingest([{"ts": 1, "type": "shed", "pid": 42}])
        assert len(log) == 1
        assert log.dropped == 1
