"""Tests for the tracer core, the exporters, and the report analyzer."""

import json
import os
import threading

import pytest

from repro.obs.export import (
    load_chrome_trace,
    spans_to_chrome,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.report import TraceReport
from repro.obs.trace import NOOP_SPAN, SpanContext, Tracer, current_span, now_us


class TestNoopSpan:
    def test_falsy_and_inert(self):
        assert not NOOP_SPAN
        assert NOOP_SPAN.child("x") is NOOP_SPAN
        assert NOOP_SPAN.interval("x", 0, 10) is NOOP_SPAN
        assert NOOP_SPAN.context() is None
        NOOP_SPAN.annotate(k=1)
        NOOP_SPAN.end()

    def test_context_manager_does_not_activate(self):
        with NOOP_SPAN as s:
            assert s is NOOP_SPAN
            assert current_span() is NOOP_SPAN

    def test_unsampled_tracer_returns_noop(self):
        t = Tracer(sample_rate=0.0, seed=0)
        assert not t.enabled
        assert t.start_trace("request") is NOOP_SPAN
        assert len(t) == 0


class TestSampling:
    def test_rate_one_always_samples(self):
        t = Tracer(sample_rate=1.0, seed=0)
        assert all(bool(t.start_trace("r")) for _ in range(20))

    def test_seeded_sampling_deterministic(self):
        def decisions(seed):
            t = Tracer(sample_rate=0.3, seed=seed)
            return [bool(t.start_trace("r")) for _ in range(200)]

        assert decisions(5) == decisions(5)
        assert decisions(5) != decisions(6)
        rate = sum(decisions(5)) / 200
        assert 0.15 < rate < 0.45

    def test_span_ids_do_not_consume_sampling_rng(self):
        """A sampled trace producing many spans must not perturb the
        sampling sequence of later requests."""

        def decisions(extra_spans):
            t = Tracer(sample_rate=0.5, seed=11)
            out = []
            for _ in range(50):
                span = t.start_trace("r")
                out.append(bool(span))
                if span:
                    for _ in range(extra_spans):
                        span.child("c").end()
                    span.end()
            return out

        assert decisions(0) == decisions(10)

    def test_continue_trace_honors_remote_decision(self):
        t = Tracer(sample_rate=0.0, seed=0)  # worker-style: never originates
        ctx = SpanContext(trace_id=7, span_id=3, sampled=True)
        span = t.continue_trace(ctx, "worker_scan")
        assert span and span.trace_id == 7 and span.parent_id == 3
        assert t.continue_trace(None, "x") is NOOP_SPAN
        unsampled = SpanContext(trace_id=7, span_id=3, sampled=False)
        assert t.continue_trace(unsampled, "x") is NOOP_SPAN

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError, match="sample_rate"):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError, match="capacity"):
            Tracer(capacity=0)


class TestSpanLifecycle:
    def test_tree_identity_and_record_shape(self):
        t = Tracer(sample_rate=1.0, seed=0)
        root = t.start_trace("request", args={"k": 10})
        child = root.child("exec", args={"batch_size": 4})
        child.end()
        root.end()
        recs = t.spans()
        assert [r["name"] for r in recs] == ["exec", "request"]
        exec_r, root_r = recs
        assert root_r["parent"] is None
        assert exec_r["parent"] == root_r["span"]
        assert exec_r["trace"] == root_r["trace"]
        assert root_r["pid"] == os.getpid()
        assert root_r["args"] == {"k": 10}
        assert root_r["dur"] >= 0 and exec_r["ts"] >= root_r["ts"]

    def test_end_is_idempotent(self):
        t = Tracer(sample_rate=1.0, seed=0)
        span = t.start_trace("r")
        span.end(t_us=span.t0_us + 5)
        dur = span.dur_us
        span.end(t_us=span.t0_us + 500)
        assert span.dur_us == dur and len(t) == 1

    def test_interval_clamps_negative_duration(self):
        t = Tracer(sample_rate=1.0, seed=0)
        root = t.start_trace("r")
        iv = root.interval("queue", 1000, 900)
        assert iv.dur_us == 0 and iv.t0_us == 1000

    def test_activation_nesting(self):
        t = Tracer(sample_rate=1.0, seed=0)
        root = t.start_trace("r")
        assert current_span() is NOOP_SPAN
        with root:
            assert current_span() is root
            with current_span().child("inner") as inner:
                assert current_span() is inner
            assert current_span() is root
        assert current_span() is NOOP_SPAN

    def test_exit_annotates_error(self):
        t = Tracer(sample_rate=1.0, seed=0)
        with pytest.raises(RuntimeError):
            with t.start_trace("r"):
                raise RuntimeError("boom")
        (rec,) = t.spans()
        assert rec["args"]["error"] == "RuntimeError"

    def test_threads_do_not_inherit_activation(self):
        t = Tracer(sample_rate=1.0, seed=0)
        seen = []
        with t.start_trace("r"):
            th = threading.Thread(target=lambda: seen.append(current_span()))
            th.start()
            th.join()
        assert seen == [NOOP_SPAN]


class TestBufferBounds:
    def test_overflow_drops_and_counts_without_corruption(self):
        t = Tracer(sample_rate=1.0, capacity=8, seed=0)
        for i in range(20):
            t.start_trace(f"r{i}").end()
        assert len(t) == 8
        assert t.dropped == 12
        names = [s["name"] for s in t.spans()]
        assert names == [f"r{i}" for i in range(8)]  # earliest kept intact

    def test_overflow_under_concurrent_writers(self):
        t = Tracer(sample_rate=1.0, capacity=100, seed=0)
        n_threads, per_thread = 8, 50
        barrier = threading.Barrier(n_threads)

        def work():
            barrier.wait()
            for _ in range(per_thread):
                t.start_trace("r").end()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert len(t) == 100
        assert t.dropped == n_threads * per_thread - 100
        assert all(s["dur"] >= 0 for s in t.spans())

    def test_drain_by_trace_id(self):
        t = Tracer(sample_rate=1.0, seed=0)
        a = t.start_trace("a")
        a.child("a1").end()
        a.end()
        b = t.start_trace("b")
        b.end()
        got = t.drain(a.trace_id)
        assert {s["name"] for s in got} == {"a", "a1"}
        assert [s["name"] for s in t.spans()] == ["b"]
        assert t.drain() == [{**s} for s in [b.to_dict()]]
        assert len(t) == 0

    def test_ingest_respects_capacity(self):
        t = Tracer(sample_rate=1.0, capacity=3, seed=0)
        t.ingest({"name": f"w{i}", "trace": 1, "span": i, "parent": None,
                  "pid": 9, "tid": 1, "ts": i, "dur": 1} for i in range(5))
        assert len(t) == 3 and t.dropped == 2


class TestExport:
    def _spans(self):
        t = Tracer(sample_rate=1.0, seed=0)
        root = t.start_trace("request")
        with root:
            root.child("exec", args={"batch_size": 2}).end()
        return t.spans()

    def test_chrome_shape_and_rebase(self):
        trace = spans_to_chrome(self._spans(), dropped=3)
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert trace["otherData"]["dropped_spans"] == 3
        assert min(e["ts"] for e in events) == 0  # re-based
        assert all({"trace", "span", "parent"} <= set(e["args"]) for e in events)
        kinds = {m["name"] for m in meta}
        assert "process_name" in kinds and "thread_name" in kinds
        proc = next(m for m in meta if m["name"] == "process_name")
        assert proc["args"]["name"].startswith("router")  # root-owning pid

    def test_round_trip_through_file(self, tmp_path):
        path = write_chrome_trace(tmp_path / "t.json", self._spans(), dropped=1)
        loaded = load_chrome_trace(path)
        assert loaded["otherData"]["dropped_spans"] == 1
        names = {e["name"] for e in loaded["traceEvents"] if e["ph"] == "X"}
        assert names == {"request", "exec"}

    def test_jsonl_sink(self, tmp_path):
        spans = self._spans()
        path = write_jsonl(tmp_path / "t.jsonl", spans)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines == spans


class TestReport:
    def _recorded(self):
        t = Tracer(sample_rate=1.0, seed=0)
        for i in range(4):
            base = now_us()
            root = t.start_trace("request")
            root.interval("queue", base, base + 100)
            root.interval(
                "exec", base + 100, base + 300, args={"batch_size": 2}
            )
            root.end(t_us=base + 350)
        return t.spans()

    def test_stage_and_critical_path(self):
        rep = TraceReport(self._recorded())
        assert rep.n_traces == 4
        assert rep.stages["queue"].row()[1] == 4
        # exec spans carry batch_size=2: amortized p50 is half the raw.
        _, _, p50, _, _, amort = rep.stages["exec"].row()
        assert amort == pytest.approx(p50 / 2)
        assert len(rep.path_us["(untracked)"]) == 4

    def test_from_chrome_matches_direct(self):
        spans = self._recorded()
        direct = TraceReport(spans)
        via_chrome = TraceReport.from_chrome(spans_to_chrome(spans))
        assert sorted(direct.stages) == sorted(via_chrome.stages)
        for name in direct.stages:
            assert direct.stages[name].row()[1] == via_chrome.stages[name].row()[1]
        assert direct.n_traces == via_chrome.n_traces

    def test_format_is_textual(self):
        text = TraceReport(self._recorded()).format()
        assert "stage durations" in text and "critical path" in text
        assert "(untracked)" in text


class TestEmptyTrace:
    """A run whose sampler never fired still exports and reports cleanly."""

    def test_exporter_handles_zero_spans(self, tmp_path):
        trace = spans_to_chrome([])
        assert trace["traceEvents"] == []
        path = write_chrome_trace(tmp_path / "empty.trace.json", [])
        loaded = load_chrome_trace(path)
        assert loaded["traceEvents"] == []
        assert loaded["displayTimeUnit"] == "ms"

    def test_jsonl_sink_handles_zero_spans(self, tmp_path):
        path = write_jsonl(tmp_path / "empty.jsonl", [])
        assert path.read_text() == ""

    def test_report_on_zero_spans(self):
        rep = TraceReport([])
        assert rep.n_traces == 0
        assert rep.stages == {}
        text = rep.format()
        assert "0 span(s)" in text

    def test_report_from_empty_chrome_trace(self):
        rep = TraceReport.from_chrome({"traceEvents": []})
        assert rep.n_traces == 0
        assert "0 span(s)" in rep.format()

    def test_report_ignores_metadata_only_trace(self):
        """Process-name metadata without any span events is still empty."""
        rep = TraceReport.from_chrome({
            "traceEvents": [
                {"ph": "M", "name": "process_name", "pid": 1,
                 "args": {"name": "router"}},
            ]
        })
        assert rep.n_traces == 0
        assert "0 span(s)" in rep.format()
