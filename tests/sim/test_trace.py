"""Tests for the pipeline Gantt trace utilities."""

import numpy as np
import pytest

from repro.sim.pipeline import simulate_pipeline
from repro.sim.trace import busy_intervals, render_gantt

NAMES = ("A", "B")


@pytest.fixture()
def timeline():
    occ = np.array([[4.0, 8.0], [4.0, 8.0], [4.0, 8.0]])
    lat = occ.copy()
    return simulate_pipeline(occ, lat, NAMES, 1.0), occ


class TestBusyIntervals:
    def test_counts(self, timeline):
        t, occ = timeline
        ivs = busy_intervals(t, occ)
        assert len(ivs) == 6  # 3 queries x 2 stages

    def test_durations_match_occupancy(self, timeline):
        t, occ = timeline
        for iv in busy_intervals(t, occ):
            s = NAMES.index(iv.stage)
            assert iv.duration == occ[iv.query, s]

    def test_zero_occupancy_skipped(self):
        occ = np.array([[0.0, 5.0]])
        lat = np.array([[0.0, 5.0]])
        t = simulate_pipeline(occ, lat, NAMES, 1.0)
        ivs = busy_intervals(t, occ)
        assert [iv.stage for iv in ivs] == ["B"]

    def test_shape_mismatch(self, timeline):
        t, _ = timeline
        with pytest.raises(ValueError, match="occupancy shape"):
            busy_intervals(t, np.zeros((1, 2)))


class TestGantt:
    def test_renders_all_stages(self, timeline):
        t, occ = timeline
        art = render_gantt(t, occ, width=40)
        assert "A |" in art and "B |" in art

    def test_bottleneck_denser_than_starved(self, timeline):
        t, occ = timeline
        art = render_gantt(t, occ, width=40)
        row_a = next(l for l in art.splitlines() if l.startswith("A"))
        row_b = next(l for l in art.splitlines() if l.startswith("B"))
        assert row_b.count(".") < row_a.count(".")  # B is the bottleneck

    def test_empty(self):
        occ = np.zeros((1, 2))
        t = simulate_pipeline(occ, occ, NAMES, 1.0)
        assert render_gantt(t, occ) == "(empty timeline)"

    def test_accelerator_integration(self, trained_ivf, small_dataset):
        from repro.core.config import AcceleratorConfig, AlgorithmParams
        from repro.sim.accelerator import AcceleratorSimulator

        params = AlgorithmParams(
            d=32, nlist=trained_ivf.nlist, nprobe=4, k=5, m=4, ksub=64
        )
        cfg = AcceleratorConfig(params=params, n_ivf_pes=2, n_lut_pes=2, n_pq_pes=4)
        res = AcceleratorSimulator(trained_ivf, cfg).run_batch(small_dataset.queries[:6])
        art = render_gantt(res.timeline, res.occupancy, width=60)
        assert "PQDist" in art and "BuildLUT" in art
