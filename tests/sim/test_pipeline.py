"""Tests for the tandem-pipeline timing engine."""

import numpy as np
import pytest

from repro.sim.pipeline import simulate_pipeline

NAMES2 = ("A", "B")


class TestRecurrence:
    def test_single_query_latency_is_sum(self):
        occ = np.array([[5.0, 3.0]])
        lat = np.array([[7.0, 4.0]])
        t = simulate_pipeline(occ, lat, NAMES2, freq_mhz=100.0)
        assert t.latencies_cycles[0] == 11.0

    def test_throughput_bound_by_slowest_stage(self):
        """Steady state: one query admitted per max-occupancy cycles (Eq. 3)."""
        n = 50
        occ = np.tile([4.0, 10.0], (n, 1))
        lat = np.tile([4.0, 10.0], (n, 1))
        t = simulate_pipeline(occ, lat, NAMES2, freq_mhz=1.0)
        # Makespan ≈ n * 10 for large n.
        assert t.makespan_cycles == pytest.approx(10.0 * n + 4.0, rel=0.02)

    def test_queries_overlap_across_stages(self):
        """Two queries in a two-stage pipeline must overlap, not serialize."""
        occ = np.array([[5.0, 5.0], [5.0, 5.0]])
        lat = occ.copy()
        t = simulate_pipeline(occ, lat, NAMES2, freq_mhz=1.0)
        assert t.makespan_cycles == 15.0  # 20 if serialized

    def test_later_query_waits_for_busy_stage(self):
        occ = np.array([[10.0, 1.0], [1.0, 1.0]])
        lat = occ.copy()
        t = simulate_pipeline(occ, lat, NAMES2, freq_mhz=1.0)
        # Query 1 cannot enter stage 0 before cycle 10.
        assert t.enter[1, 0] == 10.0

    def test_latency_can_be_less_than_occupancy(self):
        """Selection stages: drain latency < consume occupancy is legal."""
        occ = np.array([[10.0, 20.0]])
        lat = np.array([[10.0, 2.0]])
        t = simulate_pipeline(occ, lat, NAMES2, freq_mhz=1.0)
        assert t.latencies_cycles[0] == 12.0

    def test_arrival_times_respected(self):
        occ = np.array([[1.0, 1.0], [1.0, 1.0]])
        lat = occ.copy()
        t = simulate_pipeline(occ, lat, NAMES2, 1.0, arrival_cycles=np.array([0.0, 100.0]))
        assert t.enter[1, 0] == 100.0

    def test_qps_and_units(self):
        occ = np.full((100, 1), 140.0)
        lat = occ.copy()
        t = simulate_pipeline(occ, lat, ("S",), freq_mhz=140.0)
        # One query per 140 cycles at 140 MHz -> 1e6 QPS.
        assert t.qps == pytest.approx(1e6, rel=0.02)
        assert t.latencies_us[0] == pytest.approx(1.0)


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            simulate_pipeline(np.zeros((2, 2)), np.zeros((2, 3)), NAMES2, 1.0)

    def test_name_count(self):
        with pytest.raises(ValueError, match="stage names"):
            simulate_pipeline(np.zeros((2, 2)), np.zeros((2, 2)), ("A",), 1.0)

    def test_negative_values(self):
        with pytest.raises(ValueError, match="non-negative"):
            simulate_pipeline(np.full((1, 2), -1.0), np.zeros((1, 2)), NAMES2, 1.0)

    def test_bad_arrivals(self):
        occ = np.ones((2, 2))
        with pytest.raises(ValueError, match="non-decreasing"):
            simulate_pipeline(occ, occ, NAMES2, 1.0, arrival_cycles=np.array([5.0, 1.0]))
        with pytest.raises(ValueError, match="shape"):
            simulate_pipeline(occ, occ, NAMES2, 1.0, arrival_cycles=np.array([1.0]))


class TestBusyFractions:
    def test_bottleneck_near_one(self):
        n = 100
        occ = np.tile([2.0, 10.0], (n, 1))
        t = simulate_pipeline(occ, occ, NAMES2, 1.0)
        busy = t.stage_busy_fraction(occ)
        assert busy[1] == pytest.approx(1.0, rel=0.05)
        assert busy[0] == pytest.approx(0.2, rel=0.1)
