"""Tests for the accelerator simulator."""

import numpy as np
import pytest

from repro.core.config import AcceleratorConfig, AlgorithmParams
from repro.sim.accelerator import AcceleratorSimulator


def _config(trained_ivf, nprobe=4, k=5, **kw):
    params = AlgorithmParams(
        d=trained_ivf.d,
        nlist=trained_ivf.nlist,
        nprobe=nprobe,
        k=k,
        m=trained_ivf.m,
        ksub=trained_ivf.ksub,
    )
    defaults = dict(n_ivf_pes=2, n_lut_pes=2, n_pq_pes=4)
    defaults.update(kw)
    return AcceleratorConfig(params=params, **defaults)


class TestValidation:
    def test_mismatched_nlist_raises(self, trained_ivf):
        params = AlgorithmParams(d=32, nlist=99, nprobe=2, k=5, m=4, ksub=64)
        cfg = AcceleratorConfig(params=params, n_ivf_pes=1, n_lut_pes=1, n_pq_pes=2)
        with pytest.raises(ValueError, match="mismatch"):
            AcceleratorSimulator(trained_ivf, cfg)

    def test_opq_flag_mismatch_raises(self, trained_ivf):
        params = AlgorithmParams(
            d=32, nlist=trained_ivf.nlist, nprobe=2, k=5, m=4, ksub=64, use_opq=True
        )
        cfg = AcceleratorConfig(params=params, n_ivf_pes=1, n_lut_pes=1, n_pq_pes=2)
        with pytest.raises(ValueError, match="use_opq"):
            AcceleratorSimulator(trained_ivf, cfg)


class TestFunctionalEquivalence:
    def test_matches_software_search(self, trained_ivf, small_dataset):
        cfg = _config(trained_ivf)
        sim = AcceleratorSimulator(trained_ivf, cfg)
        res = sim.run_batch(small_dataset.queries)
        ids_ref, dists_ref = trained_ivf.search(small_dataset.queries, 5, 4)
        np.testing.assert_array_equal(res.ids, ids_ref)
        np.testing.assert_allclose(res.dists, dists_ref, rtol=1e-5)


class TestTiming:
    def test_qps_positive_and_finite(self, trained_ivf, small_dataset):
        res = AcceleratorSimulator(trained_ivf, _config(trained_ivf)).run_batch(
            small_dataset.queries
        )
        assert 0 < res.qps < 1e9

    def test_latency_includes_overhead(self, trained_ivf, small_dataset):
        sim = AcceleratorSimulator(trained_ivf, _config(trained_ivf))
        r0 = sim.run_batch(small_dataset.queries, overhead_us=0.0)
        r5 = sim.run_batch(small_dataset.queries, overhead_us=5.0)
        np.testing.assert_allclose(r5.latencies_us, r0.latencies_us + 5.0)

    def test_more_pq_pes_do_not_hurt_throughput(self, trained_ivf, small_dataset):
        few = AcceleratorSimulator(trained_ivf, _config(trained_ivf, n_pq_pes=2))
        many = AcceleratorSimulator(trained_ivf, _config(trained_ivf, n_pq_pes=16))
        q_few = few.run_batch(small_dataset.queries).qps
        q_many = many.run_batch(small_dataset.queries).qps
        assert q_many >= q_few * 0.99

    def test_higher_nprobe_lowers_qps(self, trained_ivf, small_dataset):
        lo = AcceleratorSimulator(trained_ivf, _config(trained_ivf, nprobe=1))
        hi = AcceleratorSimulator(trained_ivf, _config(trained_ivf, nprobe=16))
        assert lo.run_batch(small_dataset.queries).qps > hi.run_batch(
            small_dataset.queries
        ).qps

    def test_bottleneck_is_pipeline_stage(self, trained_ivf, small_dataset):
        res = AcceleratorSimulator(trained_ivf, _config(trained_ivf)).run_batch(
            small_dataset.queries
        )
        assert res.bottleneck() in res.stage_busy

    def test_open_loop_arrivals_reduce_queueing(self, trained_ivf, small_dataset):
        """Spaced arrivals should produce lower median latency than a burst."""
        sim = AcceleratorSimulator(trained_ivf, _config(trained_ivf))
        burst = sim.run_batch(small_dataset.queries)
        spaced = sim.run_batch(
            small_dataset.queries,
            arrival_us=np.arange(small_dataset.nq) * 1e4,
        )
        assert np.median(spaced.latencies_us) <= np.median(burst.latencies_us)

    def test_latency_variance_small_open_loop(self, trained_ivf, small_dataset):
        """FPGA latency variance comes only from cell-size imbalance; under
        open-loop arrivals the P95/P50 ratio must stay modest (Fig. 11)."""
        sim = AcceleratorSimulator(trained_ivf, _config(trained_ivf))
        res = sim.run_batch(
            small_dataset.queries, arrival_us=np.arange(small_dataset.nq) * 1e5
        )
        assert res.latency_percentile(95) < 4.0 * res.latency_percentile(50)


class TestSlowestPE:
    def test_round_robin_balance(self, trained_ivf):
        sim = AcceleratorSimulator(trained_ivf, _config(trained_ivf, n_pq_pes=4))
        sizes = trained_ivf.cell_sizes
        cells = np.argsort(-sizes)[:8]
        load = sim._slowest_pe_codes(cells, sizes)
        total = sizes[cells].sum()
        assert load >= total / 4  # cannot beat perfect balance
        assert load <= total  # cannot exceed everything on one PE
