"""Consistency between the analytic model (Eq. 3/4) and the simulator.

With perfectly uniform cells and full probing, the expected-workload
estimator is exact, so the simulator's sustained throughput must approach
the predicted QPS very closely — this pins the two implementations of the
stage timing to each other.
"""

import numpy as np
import pytest

from repro.core.config import AcceleratorConfig, AlgorithmParams
from repro.core.perf_model import IndexProfile, predict
from repro.sim.accelerator import AcceleratorSimulator


class TestModelSimulatorConsistency:
    @pytest.mark.parametrize("n_pq,selk", [(4, "HPQ"), (8, "HSMPQG")])
    def test_uniform_full_probe_matches_prediction(
        self, trained_ivf, small_dataset, n_pq, selk
    ):
        params = AlgorithmParams(
            d=trained_ivf.d, nlist=trained_ivf.nlist, nprobe=trained_ivf.nlist,
            k=5, m=trained_ivf.m, ksub=trained_ivf.ksub,
        )
        cfg = AcceleratorConfig(
            params=params, n_ivf_pes=2, n_lut_pes=2, n_pq_pes=n_pq, selk_arch=selk
        )
        profile = IndexProfile(
            nlist=trained_ivf.nlist, use_opq=False, cell_sizes=trained_ivf.cell_sizes
        )
        pred = predict(cfg, profile)
        sim = AcceleratorSimulator(trained_ivf, cfg)
        out = sim.run_batch(small_dataset.queries)
        # Full probing removes workload-estimation error; remaining gaps are
        # per-cell striping padding and pipeline fill/drain.
        assert out.qps == pytest.approx(pred.qps, rel=0.10)

    def test_prediction_never_wildly_optimistic(self, trained_ivf, small_dataset):
        """Across nprobe settings the simulator stays within the paper's
        measured/predicted band (86.9-99.4 %, plus margin)."""
        profile = IndexProfile(
            nlist=trained_ivf.nlist, use_opq=False, cell_sizes=trained_ivf.cell_sizes
        )
        for nprobe in (1, 4, 8):
            params = AlgorithmParams(
                d=trained_ivf.d, nlist=trained_ivf.nlist, nprobe=nprobe,
                k=5, m=trained_ivf.m, ksub=trained_ivf.ksub,
            )
            cfg = AcceleratorConfig(params=params, n_ivf_pes=2, n_lut_pes=2, n_pq_pes=4)
            pred = predict(cfg, profile)
            out = AcceleratorSimulator(trained_ivf, cfg).run_batch(small_dataset.queries)
            ratio = out.qps / pred.qps
            assert 0.75 < ratio < 1.2, (nprobe, ratio)
