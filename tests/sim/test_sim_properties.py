"""Property tests on the tandem-pipeline recurrence."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.pipeline import simulate_pipeline

# Subnormals excluded: a denormal cycle count (~5e-324) underflows to 0
# under the frequency division, voiding the exact-rescaling property for
# inputs no real occupancy model produces.
pos = st.floats(
    min_value=0.0, max_value=1e4, allow_nan=False, allow_subnormal=False
)


@st.composite
def pipeline_case(draw):
    n = draw(st.integers(1, 12))
    s = draw(st.integers(1, 4))
    occ = np.array([[draw(pos) for _ in range(s)] for _ in range(n)])
    lat = occ + np.array([[draw(pos) for _ in range(s)] for _ in range(n)]) * 0.1
    return occ, lat


class TestPipelineProperties:
    @given(pipeline_case())
    @settings(max_examples=50, deadline=None)
    def test_causality(self, case):
        """A query never leaves a stage before it entered it, and never
        enters stage s before leaving stage s-1."""
        occ, lat = case
        names = tuple(f"S{i}" for i in range(occ.shape[1]))
        t = simulate_pipeline(occ, lat, names, 1.0)
        assert (t.leave >= t.enter - 1e-9).all()
        if occ.shape[1] > 1:
            assert (t.enter[:, 1:] >= t.leave[:, :-1] - 1e-9).all()

    @given(pipeline_case())
    @settings(max_examples=50, deadline=None)
    def test_fifo_order_preserved(self, case):
        """Queries enter every stage in submission order (in-order pipeline)."""
        occ, lat = case
        names = tuple(f"S{i}" for i in range(occ.shape[1]))
        t = simulate_pipeline(occ, lat, names, 1.0)
        assert (np.diff(t.enter, axis=0) >= -1e-9).all()

    @given(pipeline_case())
    @settings(max_examples=50, deadline=None)
    def test_makespan_lower_bounds(self, case):
        """Makespan >= every stage's total occupancy, and >= any single
        query's latency (two classic pipeline bounds)."""
        occ, lat = case
        names = tuple(f"S{i}" for i in range(occ.shape[1]))
        t = simulate_pipeline(occ, lat, names, 1.0)
        span = t.leave[-1, -1]  # first arrival at 0
        assert span >= occ.sum(axis=0).max() - 1e-6
        assert span >= lat.sum(axis=1).max() - 1e-6

    @given(pipeline_case(), st.floats(1.0, 100.0))
    @settings(max_examples=30, deadline=None)
    def test_frequency_only_rescales_time(self, case, freq):
        occ, lat = case
        names = tuple(f"S{i}" for i in range(occ.shape[1]))
        t1 = simulate_pipeline(occ, lat, names, 1.0)
        t2 = simulate_pipeline(occ, lat, names, freq)
        np.testing.assert_allclose(
            t2.latencies_us * freq, t1.latencies_us, rtol=1e-9
        )
