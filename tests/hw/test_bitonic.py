"""Tests for the bitonic sort / partial-merge networks."""

import numpy as np
import pytest

from repro.hw.bitonic import (
    BitonicPartialMerger,
    BitonicSorter,
    bitonic_sort_batch,
    compare_swap_count,
    sort_latency_cycles,
)


class TestLatencyFormula:
    @pytest.mark.parametrize("width,expect", [(2, 1), (4, 3), (8, 6), (16, 10), (64, 21)])
    def test_paper_formula(self, width, expect):
        """Latency = log2(l)·(1+log2(l))/2 (§5.1.1)."""
        assert sort_latency_cycles(width) == expect

    def test_non_pow2_raises(self):
        with pytest.raises(ValueError, match="power of two"):
            sort_latency_cycles(10)

    def test_cs_count(self):
        assert compare_swap_count(4) == 2 * 3
        assert compare_swap_count(16) == 8 * 10


class TestSortNetwork:
    @pytest.mark.parametrize("width", [2, 4, 8, 16, 32])
    def test_sorts_correctly(self, width, rng):
        vals = rng.standard_normal((20, width))
        sv, si = bitonic_sort_batch(vals)
        np.testing.assert_allclose(sv, np.sort(vals, axis=1))

    def test_ids_permuted_with_values(self, rng):
        vals = rng.standard_normal((5, 8))
        ids = rng.integers(0, 1000, (5, 8)).astype(np.int64)
        sv, si = bitonic_sort_batch(vals, ids)
        for row in range(5):
            lookup = dict(zip(ids[row].tolist(), vals[row].tolist()))
            np.testing.assert_allclose([lookup[i] for i in si[row]], sv[row])

    def test_descending(self, rng):
        vals = rng.standard_normal((4, 8))
        sv, _ = bitonic_sort_batch(vals, ascending=False)
        np.testing.assert_allclose(sv, -np.sort(-vals, axis=1))

    def test_with_duplicates(self):
        vals = np.array([[3.0, 1.0, 3.0, 1.0]])
        sv, _ = bitonic_sort_batch(vals)
        np.testing.assert_allclose(sv, [[1.0, 1.0, 3.0, 3.0]])

    def test_with_inf_padding(self):
        vals = np.array([[np.inf, 2.0, np.inf, 1.0]])
        sv, _ = bitonic_sort_batch(vals)
        assert sv[0, 0] == 1.0 and sv[0, 1] == 2.0

    def test_bad_ids_shape(self):
        with pytest.raises(ValueError, match="ids shape"):
            bitonic_sort_batch(np.zeros((2, 4)), np.zeros((2, 3), dtype=np.int64))

    def test_sorter_object(self, rng):
        s = BitonicSorter(16)
        assert s.latency_cycles == 10
        assert s.resources.lut > 0
        sv, _ = s.sort(rng.standard_normal((3, 16)))
        assert (np.diff(sv, axis=1) >= 0).all()


class TestPartialMerger:
    def test_emits_smallest_w_sorted(self, rng):
        m = BitonicPartialMerger(8)
        a = np.sort(rng.standard_normal((10, 8)), axis=1)
        b = np.sort(rng.standard_normal((10, 8)), axis=1)
        mv, mi = m.merge(a, b)
        expect = np.sort(np.concatenate([a, b], axis=1), axis=1)[:, :8]
        np.testing.assert_allclose(mv, expect)

    def test_ids_follow(self, rng):
        m = BitonicPartialMerger(4)
        a = np.sort(rng.standard_normal((1, 4)), axis=1)
        b = np.sort(rng.standard_normal((1, 4)), axis=1)
        ia = np.arange(4, dtype=np.int64)[None, :]
        ib = np.arange(10, 14, dtype=np.int64)[None, :]
        mv, mi = m.merge(a, b, ia, ib)
        all_v = np.concatenate([a, b], axis=1)[0]
        all_i = np.concatenate([ia, ib], axis=1)[0]
        lookup = dict(zip(all_i.tolist(), all_v.tolist()))
        np.testing.assert_allclose([lookup[i] for i in mi[0]], mv[0])

    def test_shape_validation(self):
        m = BitonicPartialMerger(4)
        with pytest.raises(ValueError, match="batch, width"):
            m.merge(np.zeros((2, 4)), np.zeros((2, 8)))

    def test_latency_and_resources(self):
        m = BitonicPartialMerger(16)
        assert m.latency_cycles == 5  # log2(32)
        assert m.resources.lut > 0
