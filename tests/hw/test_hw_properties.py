"""Hypothesis property tests on hardware component invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.hw.bitonic import BitonicPartialMerger, bitonic_sort_batch
from repro.hw.priority_queue import SystolicPriorityQueue
from repro.hw.resources import ResourceVector
from repro.hw.selection import HPQ, HSMPQG

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=32
)


class TestBitonicProperties:
    @given(
        st.sampled_from([2, 4, 8, 16]),
        st.integers(1, 8),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_network_equals_npsort(self, width, batch, seed):
        rng = np.random.default_rng(seed)
        vals = rng.standard_normal((batch, width))
        sv, _ = bitonic_sort_batch(vals)
        np.testing.assert_allclose(sv, np.sort(vals, axis=1))

    @given(st.sampled_from([2, 4, 8]), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_merger_is_exact_partial_merge(self, width, seed):
        rng = np.random.default_rng(seed)
        a = np.sort(rng.standard_normal((3, width)), axis=1)
        b = np.sort(rng.standard_normal((3, width)), axis=1)
        mv, _ = BitonicPartialMerger(width).merge(a, b)
        expect = np.sort(np.concatenate([a, b], axis=1), axis=1)[:, :width]
        np.testing.assert_allclose(mv, expect)


class TestQueueProperties:
    @given(
        arrays(np.float32, st.integers(1, 200).map(lambda n: (n,)), elements=finite),
        st.integers(1, 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_queue_keeps_exact_minima(self, stream, length):
        q = SystolicPriorityQueue(length)
        q.push_stream(stream)
        got, _ = q.drain()
        k = min(length, len(stream))
        np.testing.assert_allclose(got[:k], np.sort(stream)[:k], rtol=1e-6)

    @given(
        arrays(np.float32, (60,), elements=finite),
        st.integers(1, 8),
        st.integers(1, 59),
    )
    @settings(max_examples=40, deadline=None)
    def test_queue_order_invariance(self, stream, length, cut):
        """Replace-only semantics: final contents ignore arrival order."""
        q1 = SystolicPriorityQueue(length)
        q1.push_stream(stream)
        q2 = SystolicPriorityQueue(length)
        q2.push_stream(np.concatenate([stream[cut:], stream[:cut]]))
        np.testing.assert_allclose(q1.drain()[0], q2.drain()[0], rtol=1e-6)


class TestSelectorProperties:
    @given(
        st.integers(1, 12),
        st.integers(1, 12),
        st.integers(1, 24),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_hpq_exact(self, z, s, v, seed):
        rng = np.random.default_rng(seed)
        vals = rng.standard_normal((z, v))
        got, _ = HPQ(z, s).select(vals)
        k = min(s, z * v)
        np.testing.assert_allclose(got[:k], np.sort(vals.ravel())[:k], rtol=1e-9)

    @given(
        st.integers(2, 40),
        st.integers(1, 12),
        st.integers(1, 16),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_hsmpqg_exact_when_valid(self, z, s, v, seed):
        if s >= z:
            return  # not constructible by design
        rng = np.random.default_rng(seed)
        vals = rng.standard_normal((z, v))
        got, _ = HSMPQG(z, s).select(vals)
        np.testing.assert_allclose(got, np.sort(vals.ravel())[:s], rtol=1e-9)

    @given(st.integers(1, 30), st.integers(1, 30))
    @settings(max_examples=40, deadline=None)
    def test_resources_positive_and_monotone_in_s(self, z, s):
        r1 = HPQ(z, s).resources
        r2 = HPQ(z, s + 5).resources
        assert r1.lut > 0
        assert r2.lut > r1.lut  # queue cost linear in length


class TestResourceVectorProperties:
    @given(st.lists(st.floats(0, 1e6), min_size=5, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_add_commutative_scale_distributive(self, vals):
        a = ResourceVector(*vals)
        b = ResourceVector(*reversed(vals))
        assert a + b == b + a
        assert (a + b) * 2.0 == a * 2.0 + b * 2.0
