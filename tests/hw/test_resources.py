"""Tests for resource vectors and device models."""

import pytest

from repro.hw.device import SMALL_DEVICE, U55C, FPGADevice
from repro.hw.resources import RESOURCE_KINDS, ResourceVector


class TestResourceVector:
    def test_add(self):
        a = ResourceVector(lut=100, dsp=2)
        b = ResourceVector(lut=50, ff=10)
        c = a + b
        assert c.lut == 150 and c.ff == 10 and c.dsp == 2

    def test_sub(self):
        a = ResourceVector(lut=100)
        assert (a - ResourceVector(lut=40)).lut == 60

    def test_scale(self):
        a = ResourceVector(lut=10, bram36=1)
        assert (3 * a).lut == 30
        assert (a * 3).bram36 == 3

    def test_fits_within(self):
        small = ResourceVector(lut=10, dsp=1)
        big = ResourceVector(lut=100, dsp=5, ff=100)
        assert small.fits_within(big)
        assert not big.fits_within(small)

    def test_fits_within_boundary(self):
        a = ResourceVector(lut=10)
        assert a.fits_within(ResourceVector(lut=10))

    def test_utilization(self):
        a = ResourceVector(lut=50, dsp=10)
        cap = ResourceVector(lut=100, dsp=100, ff=10)
        u = a.utilization(cap)
        assert u["lut"] == 0.5
        assert u["dsp"] == 0.1
        assert u["ff"] == 0.0
        assert a.max_utilization(cap) == 0.5

    def test_utilization_zero_capacity(self):
        u = ResourceVector(lut=5).utilization(ResourceVector())
        assert u["lut"] == 0.0

    def test_total(self):
        parts = [ResourceVector(lut=1)] * 5
        assert ResourceVector.total(parts).lut == 5

    def test_as_dict_keys(self):
        assert set(ResourceVector().as_dict()) == set(RESOURCE_KINDS)


class TestDevice:
    def test_u55c_headline_numbers(self):
        # §7.1: 1.3M LUTs, 9K DSPs, 16 GB HBM.
        assert U55C.capacity.lut == pytest.approx(1_304_000)
        assert U55C.capacity.dsp == pytest.approx(9024)
        assert U55C.hbm_bytes == 16 * 2**30

    def test_u55c_onchip_memory_about_40mb(self):
        # §7.1: "40MB on-chip memory".
        assert 35e6 < U55C.onchip_bytes < 46e6

    def test_budget_subtracts_infrastructure(self):
        b = U55C.budget(0.6)
        assert b.lut == pytest.approx(1_304_000 * 0.6 - U55C.infrastructure.lut)

    def test_budget_invalid_utilization(self):
        with pytest.raises(ValueError, match="max_utilization"):
            U55C.budget(0.0)
        with pytest.raises(ValueError, match="max_utilization"):
            U55C.budget(1.2)

    def test_fits_dataset(self):
        assert U55C.fits_dataset(10 * 2**30)
        assert not U55C.fits_dataset(20 * 2**30)

    def test_small_device_smaller(self):
        assert SMALL_DEVICE.capacity.lut < U55C.capacity.lut

    def test_custom_device(self):
        dev = FPGADevice(
            name="x", capacity=ResourceVector(lut=1000), hbm_bytes=100
        )
        assert dev.budget(1.0).lut == 1000 - dev.infrastructure.lut
