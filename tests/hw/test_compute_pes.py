"""Tests for the computation-stage PE models."""

import numpy as np
import pytest

from repro.hw.compute_pes import BuildLUTPE, IVFDistPE, OPQPE, PQDistPE, cycles_per_query
from repro.hw.device import U55C
from repro.hw.fifo import fifo_resources, stage_fifo_count


class TestPipelineFormula:
    def test_eq_cc(self):
        """CC = L + (N-1)·II (§6.3)."""
        assert cycles_per_query(10, 2, 5) == 10 + 4 * 2

    def test_zero_elements(self):
        assert cycles_per_query(10, 1, 0) == 10.0


class TestOPQPE:
    def test_cycles_for_query(self):
        pe = OPQPE(d=128)
        assert pe.cycles_for_query() == pe.latency + 127

    def test_functional(self, rng):
        r = np.linalg.qr(rng.standard_normal((16, 16)))[0].astype(np.float32)
        q = rng.standard_normal((3, 16)).astype(np.float32)
        np.testing.assert_allclose(OPQPE.apply(r, q), q @ r)

    def test_lightweight(self):
        """Table 4: Stage OPQ consumes ≈0.2 % LUT."""
        frac = OPQPE(d=128).resources.lut / U55C.capacity.lut
        assert frac < 0.005


class TestIVFDistPE:
    def test_on_chip_ii_is_d_over_lanes(self):
        # 128 dims at 16 lanes -> one centroid every 8 cycles.
        assert IVFDistPE(d=128, cache_on_chip=True, centroids_share=512).ii == 8

    def test_hbm_doubles_ii(self):
        assert IVFDistPE(d=128, cache_on_chip=False, centroids_share=512).ii == 16

    def test_on_chip_costs_uram(self):
        on = IVFDistPE(d=128, cache_on_chip=True, centroids_share=1024)
        off = IVFDistPE(d=128, cache_on_chip=False, centroids_share=1024)
        assert on.resources.uram > off.resources.uram

    def test_table4_lut_share(self):
        """16 on-chip IVFDist PEs ≈ 11 % of a U55C's LUTs (Table 4)."""
        pe = IVFDistPE(d=128, cache_on_chip=True, centroids_share=4096 // 16)
        frac = 16 * pe.resources.lut / U55C.capacity.lut
        assert 0.09 < frac < 0.13

    def test_functional(self, rng):
        q = rng.standard_normal(8).astype(np.float32)
        c = rng.standard_normal((5, 8)).astype(np.float32)
        expect = ((c - q) ** 2).sum(axis=1)
        np.testing.assert_allclose(IVFDistPE.distances(q, c), expect, rtol=1e-5)

    def test_cycles_scale_with_share(self):
        a = IVFDistPE(d=128, centroids_share=100)
        b = IVFDistPE(d=128, centroids_share=1000)
        assert b.cycles_for_query() > a.cycles_for_query()


class TestBuildLUTPE:
    def test_cycles_per_cell(self):
        pe = BuildLUTPE(d=128, m=16, ksub=256)
        assert pe.cycles_per_cell() == pe.latency + (16 * 256 - 1)

    def test_codebook_always_on_chip(self):
        pe = BuildLUTPE(d=128, m=16, ksub=256, cache_on_chip=False)
        assert pe.resources.bram36 >= 16 * 256 * 8 * 4 / 4608

    def test_functional_matches_pq(self, trained_pq, small_vectors):
        lut_hw = BuildLUTPE.build(trained_pq.codebooks, small_vectors[0])
        lut_sw = trained_pq.build_lut(small_vectors[0])
        np.testing.assert_allclose(lut_hw, lut_sw, rtol=1e-4, atol=1e-4)


class TestPQDistPE:
    def test_ii_one_code_per_cycle(self):
        assert PQDistPE(m=16).ii == 1

    def test_cycles(self):
        pe = PQDistPE(m=16)
        assert pe.cycles_for_codes(1000) == pe.latency + 999

    def test_table4_lut_share(self):
        """57 PQDist PEs ≈ 24 % of a U55C's LUTs (Table 4, K=1 FANNS row)."""
        frac = 57 * PQDistPE(m=16).resources.lut / U55C.capacity.lut
        assert 0.20 < frac < 0.28

    def test_dsp_add_tree(self):
        assert PQDistPE(m=16).resources.dsp == 30

    def test_functional_matches_pq_adc(self, trained_pq, small_vectors):
        lut = trained_pq.build_lut(small_vectors[0])
        codes = trained_pq.encode(small_vectors[1:20])
        np.testing.assert_allclose(
            PQDistPE.adc(lut, codes), trained_pq.adc(lut, codes), rtol=1e-5
        )


class TestFIFO:
    def test_counts(self):
        assert stage_fifo_count(4, "array") == 5
        assert stage_fifo_count(4, "p2p") == 4

    def test_invalid(self):
        with pytest.raises(ValueError, match="topology"):
            stage_fifo_count(2, "mesh")
        with pytest.raises(ValueError, match="non-negative"):
            stage_fifo_count(-1)
        with pytest.raises(ValueError, match="non-negative"):
            fifo_resources(-1)

    def test_resources_scale(self):
        assert fifo_resources(10).lut == 10 * fifo_resources(1).lut
