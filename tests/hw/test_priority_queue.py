"""Tests for the systolic priority queue model."""

import numpy as np
import pytest

from repro.hw.priority_queue import (
    CYCLES_PER_REPLACE,
    SystolicPriorityQueue,
    queue_resources,
)


class TestFunctional:
    def test_keeps_smallest(self, rng):
        q = SystolicPriorityQueue(5)
        vals = rng.standard_normal(100)
        for i, v in enumerate(vals):
            q.replace(float(v), i)
        got_v, got_i = q.drain()
        np.testing.assert_allclose(got_v, np.sort(vals)[:5])

    def test_push_stream_equals_replace_loop(self, rng):
        vals = rng.standard_normal(200)
        q1 = SystolicPriorityQueue(8)
        for i, v in enumerate(vals):
            q1.replace(float(v), i)
        q2 = SystolicPriorityQueue(8)
        q2.push_stream(vals)
        v1, i1 = q1.drain()
        v2, i2 = q2.drain()
        np.testing.assert_allclose(v1, v2)
        np.testing.assert_array_equal(i1, i2)

    def test_ids_track_values(self, rng):
        vals = rng.standard_normal(50)
        q = SystolicPriorityQueue(3)
        q.push_stream(vals, ids=np.arange(100, 150))
        got_v, got_i = q.drain()
        np.testing.assert_array_equal(got_i, 100 + np.argsort(vals)[:3])

    def test_underfilled_queue_pads_inf(self):
        q = SystolicPriorityQueue(4)
        q.push_stream(np.array([3.0, 1.0]))
        v, i = q.drain()
        assert v[0] == 1.0 and v[1] == 3.0
        assert np.isinf(v[2:]).all()
        assert (i[2:] == -1).all()

    def test_reset(self):
        q = SystolicPriorityQueue(2)
        q.push_stream(np.array([1.0]))
        q.reset()
        assert np.isinf(q.values).all()
        assert q.n_ops == 0

    def test_mismatched_ids_raise(self):
        q = SystolicPriorityQueue(2)
        with pytest.raises(ValueError, match="equal length"):
            q.push_stream(np.zeros(3), ids=np.zeros(2, dtype=np.int64))

    def test_invalid_length(self):
        with pytest.raises(ValueError, match="positive"):
            SystolicPriorityQueue(0)


class TestCostModel:
    def test_two_cycles_per_replace(self):
        q = SystolicPriorityQueue(10)
        assert q.cycles_consumed(100) == 100 * CYCLES_PER_REPLACE

    def test_drain_cycles(self):
        assert SystolicPriorityQueue(7).drain_cycles() == 7

    def test_resources_linear_in_length(self):
        """§6.2: registers and compare-swap units are linear in queue length."""
        r10 = queue_resources(10)
        r20 = queue_resources(20)
        r30 = queue_resources(30)
        assert r30.lut - r20.lut == pytest.approx(r20.lut - r10.lut)
        assert r30.ff - r20.ff == pytest.approx(r20.ff - r10.ff)

    def test_table4_calibration_k100(self):
        """18 length-100 queues ≈ 32 % of a U55C's LUTs (Table 4, K=100)."""
        from repro.hw.device import U55C

        lut = (queue_resources(100) * 18).lut
        frac = lut / U55C.capacity.lut
        assert 0.28 < frac < 0.36

    def test_resources_invalid_length(self):
        with pytest.raises(ValueError, match="positive"):
            queue_resources(0)
