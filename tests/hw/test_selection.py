"""Tests for the HPQ / HSMPQG K-selection microarchitectures."""

import numpy as np
import pytest

from repro.hw.device import U55C
from repro.hw.selection import HPQ, HSMPQG, make_selector, valid_selectors


def _expect_topk(values, s):
    flat = values.ravel()
    return np.sort(flat)[: min(s, flat.size)]


class TestHPQFunctional:
    @pytest.mark.parametrize("z,s,v", [(1, 5, 40), (4, 3, 25), (8, 10, 64), (16, 1, 10)])
    def test_exact_selection(self, z, s, v, rng):
        vals = rng.standard_normal((z, v))
        sel = HPQ(z, s)
        got_v, got_i = sel.select(vals)
        np.testing.assert_allclose(got_v[: min(s, z * v)], _expect_topk(vals, s))

    def test_ids_returned(self, rng):
        vals = rng.standard_normal((2, 30))
        ids = np.arange(60, dtype=np.int64).reshape(2, 30) + 1000
        got_v, got_i = HPQ(2, 4).select(vals, ids)
        order = np.argsort(vals.ravel())[:4]
        np.testing.assert_array_equal(np.sort(got_i), np.sort(ids.ravel()[order]))

    def test_pads_when_too_few_inputs(self):
        got_v, got_i = HPQ(1, 10).select(np.array([[1.0, 2.0]]))
        assert got_v.shape == (10,)
        assert np.isinf(got_v[2:]).all()
        assert (got_i[2:] == -1).all()

    def test_wrong_stream_count_raises(self):
        with pytest.raises(ValueError, match="expected 3 streams"):
            HPQ(3, 2).select(np.zeros((2, 5)))


class TestHSMPQGFunctional:
    @pytest.mark.parametrize("z,s,v", [(20, 10, 16), (36, 10, 30), (80, 10, 12), (5, 2, 9)])
    def test_exact_selection(self, z, s, v, rng):
        vals = rng.standard_normal((z, v))
        sel = HSMPQG(z, s)
        got_v, _ = sel.select(vals)
        np.testing.assert_allclose(got_v, _expect_topk(vals, s))

    def test_requires_s_less_than_z(self):
        with pytest.raises(ValueError, match="s < z"):
            HSMPQG(4, 10)
        with pytest.raises(ValueError, match="s < z"):
            HSMPQG(10, 10)

    def test_figure7_shape(self):
        """Figure 7: 64 < z <= 80, s=10 → five width-16 sorters, 4 mergers."""
        sel = HSMPQG(80, 10)
        assert sel.sort_width == 16
        assert sel.n_sorters == 5
        assert sel.n_mergers == 4

    def test_scaling_rule(self):
        """§5.1.2: 16 < z <= 32 → 2 sorters 1 merger; 32 < z <= 48 → 3 and 2."""
        assert HSMPQG(32, 10).n_sorters == 2
        assert HSMPQG(32, 10).n_mergers == 1
        assert HSMPQG(48, 10).n_sorters == 3
        assert HSMPQG(48, 10).n_mergers == 2


class TestValidity:
    def test_hpq_always_valid(self):
        archs = [s.arch for s in valid_selectors(2, 10)]
        assert archs == ["HPQ"]

    def test_both_when_s_less_than_z(self):
        archs = {s.arch for s in valid_selectors(40, 10)}
        assert archs == {"HPQ", "HSMPQG"}

    def test_make_selector(self):
        assert make_selector("HPQ", 4, 2).arch == "HPQ"
        assert make_selector("HSMPQG", 40, 10).arch == "HSMPQG"
        with pytest.raises(ValueError, match="unknown selector"):
            make_selector("FOO", 4, 2)


class TestCostModel:
    def test_hpq_input_streams_double(self):
        """Full-rate streams split in two (Table 4: 9 PQDist PEs → 18 InStream)."""
        assert HPQ(9, 100).n_input_streams == 18

    def test_hsmpqg_input_streams_equal_z(self):
        assert HSMPQG(36, 10).n_input_streams == 36

    def test_table4_k10_tradeoff(self):
        """At z=36, s=10 the hybrid design must beat HPQ in LUTs (the paper's
        K=10 accelerator chose HSMPQG)."""
        assert HSMPQG(36, 10).resources.lut < HPQ(36, 10).resources.lut

    def test_large_s_with_few_streams_only_hpq_valid(self):
        """At K=100 with 9 producer streams HSMPQG cannot filter (s >= z);
        HPQ is the only valid choice — matching the paper's K=100 design."""
        archs = [s.arch for s in valid_selectors(9, 100)]
        assert archs == ["HPQ"]

    def test_hsmpqg_not_always_better(self):
        """§5.1.2: "the second option is not always better even if s < z" —
        with few streams the sorter overhead exceeds the queue savings."""
        assert HPQ(11, 10).resources.lut < HSMPQG(11, 10).resources.lut

    def test_table4_selk_lut_shares(self):
        """HPQ(z=9, s=100) ≈ 32 % LUT; HSMPQG(z=36, s=10) ≈ 12-13 % (Table 4)."""
        frac_k100 = HPQ(9, 100).resources.lut / U55C.capacity.lut
        assert 0.28 < frac_k100 < 0.37
        frac_k10 = HSMPQG(36, 10).resources.lut / U55C.capacity.lut
        assert 0.09 < frac_k10 < 0.16

    def test_consume_cycles_full_rate(self):
        # 2 substream queues per stream keep up with 1 element/cycle.
        assert HPQ(4, 10).consume_cycles(100) == 100
        assert HSMPQG(40, 10).consume_cycles(100) == 100

    def test_post_cycles_positive(self):
        assert HPQ(4, 10).post_cycles() > 0
        assert HSMPQG(40, 10).post_cycles() > 0

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="z must be positive"):
            HPQ(0, 5)
        with pytest.raises(ValueError, match="s must be positive"):
            HPQ(2, 0)
