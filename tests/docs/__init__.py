"""Documentation integrity tests."""
