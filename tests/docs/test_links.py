"""Markdown link integrity for README.md, ROADMAP.md, and docs/."""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_links  # noqa: E402  (needs the tools/ path above)


class TestDocLinks:
    def test_no_broken_links_in_tracked_docs(self):
        files = check_links.collect_markdown(
            ["README.md", "ROADMAP.md", "docs"], REPO_ROOT
        )
        assert files, "expected markdown files to check"
        problems = []
        for f in files:
            problems.extend(check_links.check_file(f, REPO_ROOT))
        assert not problems, "\n".join(problems)

    def test_slugging_matches_github(self):
        assert check_links.github_slug("Where to add a backend") == (
            "where-to-add-a-backend"
        )
        assert check_links.github_slug("CLI reference") == "cli-reference"
        assert check_links.github_slug("`code` & Symbols!") == "code--symbols"

    def test_detects_broken_link(self, tmp_path):
        md = tmp_path / "x.md"
        md.write_text("see [gone](./missing.md) and [ok](#here)\n\n# Here\n")
        problems = check_links.check_file(md, tmp_path)
        assert len(problems) == 1 and "missing.md" in problems[0]

    def test_detects_broken_anchor(self, tmp_path):
        md = tmp_path / "x.md"
        md.write_text("[bad](#nope)\n\n# Yes\n")
        problems = check_links.check_file(md, tmp_path)
        assert len(problems) == 1 and "nope" in problems[0]
