#!/usr/bin/env python3
"""Markdown link checker for the repo's docs.

Validates every ``[text](target)`` link in the given markdown files or
directories:

- relative file links must point at an existing file or directory
  (resolved against the containing file);
- ``#anchor`` fragments (bare or after a file target) must match a
  heading in the target document, using GitHub's slug rules;
- external links (http/https/mailto) are recognized but **not** fetched —
  the check stays deterministic and offline.

Exit status is the number of broken links (0 = all good), so CI can run
``python tools/check_links.py README.md ROADMAP.md docs`` directly.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: [text](target) — target captured without surrounding whitespace/title.
_LINK_RE = re.compile(r"\[[^\]]*\]\(\s*<?([^)\s>]+)>?(?:\s+\"[^\"]*\")?\s*\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_CODE_FENCE_RE = re.compile(r"^(```|~~~)")
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug: lowercase, drop punctuation,
    spaces to hyphens (backticks and markdown emphasis stripped first)."""
    text = re.sub(r"[`*_]", "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    """All anchor slugs defined by a markdown file's headings."""
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = _HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def iter_links(path: Path):
    """Yield (line_number, target) for every markdown link in ``path``."""
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in _LINK_RE.finditer(line):
            yield lineno, m.group(1)


def check_file(path: Path, repo_root: Path) -> list[str]:
    """Return a list of human-readable problems for one markdown file."""
    problems: list[str] = []
    for lineno, target in iter_links(path):
        if target.startswith(_EXTERNAL_PREFIXES):
            continue  # external: recognized, deliberately not fetched
        file_part, _, anchor = target.partition("#")
        if file_part:
            dest = (path.parent / file_part).resolve()
            if not dest.exists():
                problems.append(
                    f"{path.relative_to(repo_root)}:{lineno}: broken link "
                    f"-> {target} (no such file)"
                )
                continue
        else:
            dest = path
        if anchor:
            if dest.is_dir() or dest.suffix.lower() not in (".md", ".markdown"):
                continue  # anchors into non-markdown targets: skip
            if anchor.lower() not in heading_slugs(dest):
                problems.append(
                    f"{path.relative_to(repo_root)}:{lineno}: broken anchor "
                    f"-> {target} (no heading '#{anchor}')"
                )
    return problems


def collect_markdown(args: list[str], repo_root: Path) -> list[Path]:
    """Expand file/directory arguments into a markdown file list."""
    files: list[Path] = []
    for arg in args:
        p = (repo_root / arg).resolve() if not Path(arg).is_absolute() else Path(arg)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.md")))
        elif p.exists():
            files.append(p)
        else:
            print(f"warning: {arg} does not exist, skipping", file=sys.stderr)
    return files


def main(argv: list[str]) -> int:
    """Check all given files/dirs; returns the number of broken links."""
    repo_root = Path(__file__).resolve().parents[1]
    targets = argv or ["README.md", "ROADMAP.md", "docs"]
    problems: list[str] = []
    files = collect_markdown(targets, repo_root)
    for f in files:
        problems.extend(check_file(f, repo_root))
    for p in problems:
        print(p)
    print(f"checked {len(files)} markdown file(s): {len(problems)} broken link(s)")
    return len(problems)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
