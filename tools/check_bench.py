#!/usr/bin/env python3
"""Benchmark drift report: committed ``BENCH_*.json`` vs the current run.

Benchmark tests rewrite the ``BENCH_*.json`` artifacts at the repo root on
every run; this tool diffs the headline metrics (any numeric field whose
key contains ``qps``, ``p99``, ``availability``, ``coverage``, or ``gap``,
configurable with ``--metrics``) of the
freshly-written files against the versions committed at a git ref
(default ``HEAD``), and prints a drift table::

    python tools/check_bench.py                    # all BENCH_*.json vs HEAD
    python tools/check_bench.py BENCH_serve.json --baseline origin/main
    python tools/check_bench.py --report drift.txt # also write to a file

It is **warn-only by design**: exit status is 0 regardless of drift
(shared CI runners are noisy; gating a build on wall-clock numbers makes
the build flaky, while a visible report makes regressions reviewable).
Pass ``--fail-over PCT`` to opt into a hard gate.  Files with no committed
baseline (a brand-new benchmark) are reported as such, not failed.

Single-commit diffs miss slow drifts — a metric decaying 2% per commit
never trips any one report.  ``--history PATH`` keeps a rolling record:
each run appends one JSON line (commit, timestamp, the qps/p99 leaves of
every benchmark file) to ``PATH`` and prints a trend table over the
recorded runs.  CI round-trips the file through a ``bench-history``
artifact, so the record survives across workflow runs::

    python tools/check_bench.py --history bench_history.jsonl
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import time
from pathlib import Path

#: Default pattern of metric keys worth tracking across runs.  Besides
#: the throughput/tail headline numbers, availability and coverage
#: leaves (the chaos/fault-tolerance benchmarks) are tracked so a
#: recovery regression is as visible as a latency one, and ``gap``
#: leaves (the codesign benchmark's modeled-vs-measured error, which
#: also matches its ``modeled_qps``/``measured_qps`` companions via the
#: ``qps`` alternative) so model-accuracy drift shows up in history.
DEFAULT_METRICS = r"(qps|p99|availability|coverage|gap)"

#: Most recent runs shown per metric in the trend table.
TREND_RUNS = 8


def numeric_leaves(obj, prefix: str = "") -> dict[str, float]:
    """Flatten a parsed-JSON tree to ``dotted.path -> float`` leaves.

    Lists index with ``[i]``; booleans are skipped (JSON ``true`` is not a
    metric); non-numeric leaves are ignored.
    """
    out: dict[str, float] = {}
    if isinstance(obj, dict):
        for key, val in obj.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(numeric_leaves(val, path))
    elif isinstance(obj, list):
        for i, val in enumerate(obj):
            out.update(numeric_leaves(val, f"{prefix}[{i}]"))
    elif isinstance(obj, bool):
        pass
    elif isinstance(obj, (int, float)):
        out[prefix] = float(obj)
    return out


def drift_rows(
    baseline: dict, current: dict, metrics_re: str = DEFAULT_METRICS
) -> list[tuple[str, float | None, float | None, float | None]]:
    """Compare two parsed benchmark records.

    Returns ``(metric_path, baseline, current, drift_pct)`` rows for every
    leaf matching ``metrics_re`` in either record, sorted by path.  A
    missing side reports ``None`` (metric added/removed); ``drift_pct`` is
    ``None`` when it cannot be computed (missing side or zero baseline).
    """
    pattern = re.compile(metrics_re, re.IGNORECASE)
    old = {k: v for k, v in numeric_leaves(baseline).items() if pattern.search(k)}
    new = {k: v for k, v in numeric_leaves(current).items() if pattern.search(k)}
    rows = []
    for key in sorted(set(old) | set(new)):
        b, c = old.get(key), new.get(key)
        if b is not None and c is not None and b != 0:
            drift = 100.0 * (c - b) / abs(b)
        else:
            drift = None
        rows.append((key, b, c, drift))
    return rows


def max_abs_drift(rows) -> float:
    """Largest absolute drift percentage across comparable rows (0 if none)."""
    drifts = [abs(d) for _, _, _, d in rows if d is not None]
    return max(drifts, default=0.0)


def format_report(per_file: dict[str, list | None]) -> str:
    """Render the drift table: one section per benchmark file.

    ``None`` rows mean the file had no committed baseline.
    """
    lines = []
    for name, rows in sorted(per_file.items()):
        lines.append(f"== {name}")
        if rows is None:
            lines.append("  (no committed baseline — new benchmark)")
            continue
        if not rows:
            lines.append("  (no matching metrics)")
            continue
        width = max(len(key) for key, *_ in rows)
        for key, b, c, drift in rows:
            b_s = "-" if b is None else f"{b:,.1f}"
            c_s = "-" if c is None else f"{c:,.1f}"
            d_s = "n/a" if drift is None else f"{drift:+.1f}%"
            lines.append(f"  {key:<{width}}  {b_s:>12} -> {c_s:>12}  {d_s:>8}")
        lines.append(f"  max |drift|: {max_abs_drift(rows):.1f}%")
    return "\n".join(lines)


def current_commit(repo_root: Path) -> str:
    """The commit to stamp history entries with (CI env, then git)."""
    import os

    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha[:12]
    proc = subprocess.run(
        ["git", "rev-parse", "--short=12", "HEAD"],
        cwd=repo_root, capture_output=True, text=True,
    )
    return proc.stdout.strip() if proc.returncode == 0 else "unknown"


def append_history(
    path: Path,
    metrics_per_file: dict[str, dict[str, float]],
    *,
    commit: str,
    timestamp: float | None = None,
) -> dict:
    """Append one run's metric leaves to the JSONL history; returns the entry.

    The file is append-only JSON-lines so CI can re-upload it as a
    rolling artifact; a corrupt tail (truncated upload) never poisons
    subsequent appends.
    """
    entry = {
        "commit": commit,
        "ts": round(timestamp if timestamp is not None else time.time(), 3),
        "files": {
            name: dict(sorted(metrics.items()))
            for name, metrics in sorted(metrics_per_file.items())
        },
    }
    with path.open("a") as fh:
        fh.write(json.dumps(entry) + "\n")
    return entry


def load_history(path: Path) -> list[dict]:
    """Parse the JSONL history, skipping unparseable lines (truncated
    artifact tails) rather than failing the report."""
    if not path.exists():
        return []
    entries = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict) and isinstance(entry.get("files"), dict):
            entries.append(entry)
    return entries


def format_history(entries: list[dict], max_runs: int = TREND_RUNS) -> str:
    """Render the trend table: per metric, the last ``max_runs`` values.

    The last column shows drift of the newest run vs the previous one and
    vs the oldest shown — the slow-drift signal single-commit diffs miss.
    """
    if not entries:
        return "(history empty)"
    window = entries[-max_runs:]
    commits = [str(e.get("commit", "?"))[:12] for e in window]
    lines = [
        f"trend over {len(window)} run(s): " + " -> ".join(commits)
    ]
    files = sorted({name for e in window for name in e["files"]})
    for name in files:
        lines.append(f"== {name}")
        metrics = sorted({
            m for e in window for m in e["files"].get(name, {})
        })
        width = max((len(m) for m in metrics), default=0)
        for metric in metrics:
            series = [
                e["files"].get(name, {}).get(metric) for e in window
            ]
            cells = " | ".join(
                "-" if v is None else f"{v:,.1f}" for v in series
            )
            present = [v for v in series if v is not None]
            tail = ""
            if len(present) >= 2 and series[-1] is not None:
                prev = next(
                    (v for v in reversed(series[:-1]) if v is not None), None
                )
                drifts = []
                if prev not in (None, 0):
                    drifts.append(f"{100 * (series[-1] - prev) / abs(prev):+.1f}% vs prev")
                if len(present) >= 3 and present[0] != 0:
                    drifts.append(
                        f"{100 * (series[-1] - present[0]) / abs(present[0]):+.1f}% vs first"
                    )
                if drifts:
                    tail = "  (" + ", ".join(drifts) + ")"
            lines.append(f"  {metric:<{width}}  {cells}{tail}")
    return "\n".join(lines)


def committed_json(path: Path, ref: str, repo_root: Path) -> dict | None:
    """The file's parsed content at ``ref``; None if not committed there.

    A path outside the repo (e.g. a downloaded CI artifact) has no
    committed counterpart and reports None like any other baseline miss.
    """
    try:
        rel = path.resolve().relative_to(repo_root.resolve())
    except ValueError:
        return None
    proc = subprocess.run(
        ["git", "show", f"{ref}:{rel.as_posix()}"],
        cwd=repo_root, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def main(argv: list[str] | None = None) -> int:
    """Entry point; exit code is 0 unless ``--fail-over`` is exceeded."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files", nargs="*",
        help="benchmark JSON files (default: BENCH_*.json at the repo root)",
    )
    parser.add_argument(
        "--baseline", default="HEAD", metavar="REF",
        help="git ref holding the committed baselines (default: HEAD)",
    )
    parser.add_argument(
        "--metrics", default=DEFAULT_METRICS, metavar="REGEX",
        help=f"metric-key filter (default: {DEFAULT_METRICS!r})",
    )
    parser.add_argument(
        "--report", metavar="PATH", default=None,
        help="also write the report to this file (CI artifact)",
    )
    parser.add_argument(
        "--history", metavar="PATH", default=None,
        help=(
            "append this run's metric leaves to a JSONL history file and "
            "print a trend table over the recorded runs (CI artifact)"
        ),
    )
    parser.add_argument(
        "--fail-over", type=float, default=None, metavar="PCT",
        help="exit non-zero when any |drift| exceeds PCT (default: warn only)",
    )
    args = parser.parse_args(argv)

    repo_root = Path(__file__).resolve().parents[1]
    files = (
        [Path(f) for f in args.files]
        if args.files
        else sorted(repo_root.glob("BENCH_*.json"))
    )
    if not files:
        print("no BENCH_*.json files found — run the benchmarks first")
        return 0

    pattern = re.compile(args.metrics, re.IGNORECASE)
    per_file: dict[str, list | None] = {}
    current_metrics: dict[str, dict[str, float]] = {}
    worst = 0.0
    for path in files:
        # Tolerate unreadable or non-JSON inputs (e.g. a metrics.json or
        # trace file swept up by a glob): skip with a note, don't fail
        # the whole report.
        try:
            current = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"skipping {path}: not a readable benchmark JSON ({exc})")
            continue
        name = Path(path).name
        current_metrics[name] = {
            k: v for k, v in numeric_leaves(current).items() if pattern.search(k)
        }
        baseline = committed_json(Path(path), args.baseline, repo_root)
        if baseline is None:
            per_file[name] = None
            continue
        rows = drift_rows(baseline, current, args.metrics)
        per_file[name] = rows
        worst = max(worst, max_abs_drift(rows))

    report = format_report(per_file)
    header = (
        f"benchmark drift vs {args.baseline} "
        f"(metrics: {args.metrics!r}, worst |drift|: {worst:.1f}%)"
    )
    text = f"{header}\n{report}\n"
    if args.history:
        hpath = Path(args.history)
        append_history(
            hpath, current_metrics, commit=current_commit(repo_root)
        )
        entries = load_history(hpath)
        text += (
            f"\nbench history ({hpath.name}, {len(entries)} recorded run(s))\n"
            f"{format_history(entries)}\n"
        )
    print(text, end="")
    if args.report:
        Path(args.report).write_text(text)
    if args.fail_over is not None and worst > args.fail_over:
        print(f"FAIL: worst drift {worst:.1f}% exceeds --fail-over {args.fail_over}%")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
