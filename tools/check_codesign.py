#!/usr/bin/env python3
"""Validate a co-design report written by ``codesign-serve --report``.

The autotuner's report is only useful if its internal accounting is
consistent and its model was actually held against a measurement.  This
gate checks both, so CI catches a search that silently stopped pruning,
a ranking that stopped being sorted, or a validation run whose
modeled-vs-measured gap drifted past the documented bound::

    python tools/check_codesign.py codesign_report.json
    python tools/check_codesign.py codesign_report.json --require-validation

Validated invariants:

- **schema** — version-1 report with the traffic/search/winner_spec
  sections the drift tooling reads.
- **search accounting** — ``n_enumerated >= n_feasible >= len(ranked)``,
  prune counts sum to the gap between enumerated and feasible, every
  ranked entry is marked feasible, and the ranked list is sorted by
  modeled QPS (non-increasing).
- **winner consistency** — a winner spec exists iff the frontier is
  non-empty, and its index/topology/engine fields match the top-ranked
  design exactly (the spec is the *deployable* form of rank 1, not a
  separate artifact that can drift).
- **validation honesty** (``--require-validation``) — the winner was
  materialized: results bit-identical to direct search, zero failed
  requests, and ``|qps_gap| <= --max-gap`` (default 0.5, the
  ``CODESIGN_GAP_BOUND`` the harness documents and writes into the
  report's ``gap_bound`` field).

Exit status is non-zero on any violation — a CI gate, like
``check_timeline.py`` and unlike ``check_bench.py``'s warn-only drift
report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Matches ``repro.harness.serve_bench.CODESIGN_GAP_BOUND``; kept literal
#: so the tool stays import-free and runs from any cwd.
DEFAULT_MAX_GAP = 0.5

#: Required keys of each report section (missing = schema violation).
TOP_KEYS = ("schema", "traffic", "search", "winner_spec", "validation")
SEARCH_KEYS = ("n_enumerated", "n_feasible", "prune_counts", "ranked")
SPEC_KEYS = ("version", "index", "topology", "engine", "tenants", "slo_p99_us")
VALIDATION_KEYS = (
    "time_scale", "modeled_qps", "measured_qps", "qps_gap",
    "n_requests", "n_failed", "bit_identical",
)

#: winner_spec field -> (section, key) of the rank-1 design it must match.
SPEC_DESIGN_FIELDS = (
    ("index", "nlist", "nlist"),
    ("index", "use_opq", "use_opq"),
    ("index", "nprobe", "nprobe"),
    ("topology", "replicas", "replicas"),
    ("topology", "shards", "shards"),
    ("engine", "max_batch", "max_batch"),
    ("engine", "window_us", "window_us"),
)


def load_report(path: Path) -> dict:
    """Parse the report JSON (raises ValueError on malformed input)."""
    try:
        report = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid JSON ({exc})")
    if not isinstance(report, dict):
        raise ValueError("report is not a JSON object")
    return report


def check_schema(report: dict) -> list[str]:
    """Top-level shape violations (empty list = clean)."""
    errors = []
    if report.get("schema") != 1:
        errors.append(f"unsupported schema {report.get('schema')!r} (want 1)")
    for key in TOP_KEYS:
        if key not in report:
            errors.append(f"report missing top-level key {key!r}")
    search = report.get("search")
    if not isinstance(search, dict):
        errors.append("'search' section is not an object")
    else:
        for key in SEARCH_KEYS:
            if key not in search:
                errors.append(f"search section missing {key!r}")
    return errors


def check_search(search: dict) -> list[str]:
    """Search-accounting violations: counts, feasibility, ranking order."""
    errors = []
    n_enum, n_feas = search["n_enumerated"], search["n_feasible"]
    ranked = search["ranked"]
    if not isinstance(ranked, list):
        return ["search 'ranked' is not a list"]
    if not (n_enum >= n_feas >= len(ranked) >= 0):
        errors.append(
            f"inconsistent counts: enumerated {n_enum}, feasible {n_feas}, "
            f"ranked {len(ranked)}"
        )
    prune_counts = search["prune_counts"]
    if not isinstance(prune_counts, dict):
        errors.append("search 'prune_counts' is not an object")
        prune_counts = {}
    # Reasons are per-violation (one point can fail several checks), so
    # the reason total must *cover* the pruned points, never undercount.
    pruned = n_enum - n_feas
    total_reasons = sum(prune_counts.values())
    if total_reasons < pruned:
        errors.append(
            f"prune_counts total {total_reasons} cannot cover "
            f"{pruned} pruned point(s)"
        )
    if pruned == 0 and total_reasons > 0:
        errors.append(
            f"prune_counts total {total_reasons} but nothing was pruned"
        )
    prev_qps = None
    for i, entry in enumerate(ranked):
        where = f"ranked[{i}]"
        if not isinstance(entry, dict) or "design" not in entry:
            errors.append(f"{where}: missing design")
            continue
        if entry.get("feasible") is not True:
            errors.append(f"{where}: ranked entry not marked feasible")
        qps = entry.get("modeled_qps")
        if not isinstance(qps, (int, float)) or qps <= 0:
            errors.append(f"{where}: non-positive modeled_qps ({qps!r})")
            continue
        # Non-increasing within float tolerance: a sort that decayed into
        # insertion order is the failure this catches.
        if prev_qps is not None and qps > prev_qps * (1 + 1e-9):
            errors.append(
                f"{where}: ranking not sorted by modeled_qps "
                f"({prev_qps} then {qps})"
            )
        prev_qps = qps
    return errors


def check_winner(report: dict) -> list[str]:
    """Winner-spec presence and its agreement with the rank-1 design."""
    errors = []
    search = report["search"]
    ranked = search["ranked"]
    spec = report.get("winner_spec")
    if search["n_feasible"] > 0 and spec is None:
        return ["frontier is non-empty but winner_spec is null"]
    if search["n_feasible"] == 0:
        if spec is not None:
            errors.append("empty frontier but winner_spec is present")
        return errors
    if not isinstance(spec, dict):
        return [f"winner_spec is not an object ({type(spec).__name__})"]
    for key in SPEC_KEYS:
        if key not in spec:
            errors.append(f"winner_spec missing {key!r}")
    if not spec.get("tenants"):
        errors.append("winner_spec has no tenant lanes")
    if errors or not ranked:
        return errors
    top = ranked[0].get("design", {})
    for section, spec_key, design_key in SPEC_DESIGN_FIELDS:
        got = spec.get(section, {}).get(spec_key)
        want = top.get(design_key)
        if got != want:
            errors.append(
                f"winner_spec {section}.{spec_key}={got!r} does not match "
                f"rank-1 design {design_key}={want!r}"
            )
    if spec.get("qos_scheme") != top.get("qos_scheme"):
        errors.append(
            f"winner_spec qos_scheme={spec.get('qos_scheme')!r} does not "
            f"match rank-1 design {top.get('qos_scheme')!r}"
        )
    return errors


def check_validation(report: dict, max_gap: float) -> list[str]:
    """Validation-honesty violations (the --require-validation gate)."""
    v = report.get("validation")
    if v is None:
        return [
            "--require-validation: report has no validation section "
            "(run codesign-serve with --validate)"
        ]
    if not isinstance(v, dict):
        return [f"validation is not an object ({type(v).__name__})"]
    errors = []
    for key in VALIDATION_KEYS:
        if key not in v:
            errors.append(f"validation missing {key!r}")
    if errors:
        return errors
    if v["bit_identical"] is not True:
        errors.append("materialized winner is not bit-identical to direct search")
    if v["n_failed"] != 0:
        errors.append(f"validation run had {v['n_failed']} failed request(s)")
    gap = v["qps_gap"]
    if not isinstance(gap, (int, float)):
        errors.append(f"qps_gap is not numeric ({gap!r})")
    elif abs(gap) > max_gap:
        errors.append(
            f"|qps_gap| = {abs(gap):.3f} exceeds the bound {max_gap} "
            f"(modeled {v['modeled_qps']:.1f} vs measured "
            f"{v['measured_qps']:.1f} QPS)"
        )
    return errors


def validate(
    path: Path, *, require_validation: bool = False,
    max_gap: float = DEFAULT_MAX_GAP,
) -> list[str]:
    """All violations found in the report file at ``path``."""
    try:
        report = load_report(path)
    except (OSError, ValueError) as exc:
        return [f"unreadable report file: {exc}"]
    errors = check_schema(report)
    if errors:
        return errors  # the consistency checks assume the schema holds
    errors += check_search(report["search"])
    errors += check_winner(report)
    if require_validation:
        errors += check_validation(report, max_gap)
    return errors


def main(argv: list[str] | None = None) -> int:
    """Entry point; non-zero exit on any violated invariant."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "report", help="report JSON written by codesign-serve --report"
    )
    parser.add_argument(
        "--require-validation", action="store_true",
        help="require a validation section with bit-identity, zero "
             "failures, and the QPS gap within --max-gap",
    )
    parser.add_argument(
        "--max-gap", type=float, default=DEFAULT_MAX_GAP, metavar="FRAC",
        help="largest tolerated |modeled-vs-measured| QPS gap as a "
             f"fraction (default: {DEFAULT_MAX_GAP})",
    )
    args = parser.parse_args(argv)
    errors = validate(
        Path(args.report),
        require_validation=args.require_validation,
        max_gap=args.max_gap,
    )
    if errors:
        print(f"FAIL: {args.report}: {len(errors)} violation(s)")
        for err in errors:
            print(f"  - {err}")
        return 1
    report = load_report(Path(args.report))
    search = report["search"]
    v = report.get("validation")
    gap = "n/a" if v is None else f"{100 * v['qps_gap']:+.1f}%"
    print(
        f"OK: {args.report}: {search['n_feasible']}/{search['n_enumerated']} "
        f"feasible, {len(search['ranked'])} ranked, qps gap {gap}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
