#!/usr/bin/env python3
"""Validate a timeline JSONL written by ``serve-bench --timeline``.

Checks the invariants ``serve-top``, the bench reports, and the SLO
tooling silently assume, so CI catches a malformed collector before a
human stares at a nonsensical dashboard::

    python tools/check_timeline.py timeline.jsonl
    python tools/check_timeline.py timeline.jsonl --expect-restarts 1 --expect-alert

Validated invariants:

- **schema** — first line is a ``meta`` header with a version; every
  other line is a ``tick`` or ``event`` object; ticks carry
  ts/seq/availability, events carry ts/type/pid with a type drawn from
  the journal's typed taxonomy (``repro.obs.events.EVENT_TYPES``).
- **monotonic ticks** — tick timestamps never decrease and ``seq``
  strictly increases (ticks share the host-wide monotonic clock with
  the tracer and the journal).
- **coverage pairing** — every replica-scope ``coverage_lost`` is
  followed by a ``coverage_restored`` for the same (shard, replica)
  slot, and never restored without a preceding loss.
- **recovery accounting** (``--expect-restarts N``) — at least N
  ``worker_restart`` events, each carrying its supervisor-measured
  ``coverage_restored_us``.
- **alerting** (``--expect-alert``) — the SLO monitor fired at least
  one ``slo_alert`` whose timestamp falls inside a replica outage
  window (between a ``coverage_lost`` and its ``coverage_restored``).

Exit status is non-zero on any violation — this is a CI gate, unlike
``check_bench.py``'s warn-only drift report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: The journal's typed taxonomy (mirrors ``repro.obs.events.EVENT_TYPES``;
#: kept literal so the tool stays import-free and runs from any cwd).
EVENT_TYPES = frozenset(
    {
        "coverage_lost",
        "coverage_restored",
        "worker_restart",
        "shed",
        "quota_exceeded",
        "cache_invalidated",
        "slo_alert",
        "slo_alert_cleared",
    }
)

#: Fields every tick record must carry.
TICK_FIELDS = ("ts", "seq", "availability")


def load_records(path: Path) -> list[dict]:
    """Parse the timeline file into a list of record dicts."""
    records = []
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"line {lineno}: invalid JSON ({exc})")
            if not isinstance(record, dict):
                raise ValueError(f"line {lineno}: not a JSON object")
            record["_lineno"] = lineno
            records.append(record)
    return records


def check_schema(records: list[dict]) -> list[str]:
    """Per-record schema violations (empty list = clean)."""
    errors = []
    if not records:
        return ["timeline is empty"]
    head = records[0]
    if head.get("kind") != "meta":
        errors.append("line 1: first record must be the 'meta' header")
    elif not isinstance(head.get("version"), int):
        errors.append("line 1: meta header missing integer 'version'")
    for record in records[1:]:
        where = f"line {record['_lineno']}"
        kind = record.get("kind")
        if kind == "tick":
            for field in TICK_FIELDS:
                if field not in record:
                    errors.append(f"{where}: tick missing {field!r}")
        elif kind == "event":
            for field in ("ts", "type", "pid"):
                if field not in record:
                    errors.append(f"{where}: event missing {field!r}")
            etype = record.get("type")
            if etype is not None and etype not in EVENT_TYPES:
                errors.append(f"{where}: unknown event type {etype!r}")
        elif kind == "meta":
            errors.append(f"{where}: duplicate meta header")
        else:
            errors.append(f"{where}: unknown record kind {kind!r}")
    return errors


def check_ticks(ticks: list[dict]) -> list[str]:
    """Tick timestamps never decrease; seq strictly increases."""
    errors = []
    if not ticks:
        return ["timeline contains no tick records"]
    for prev, cur in zip(ticks, ticks[1:]):
        where = f"line {cur['_lineno']}"
        if cur["ts"] < prev["ts"]:
            errors.append(
                f"{where}: tick ts went backwards "
                f"({prev['ts']} -> {cur['ts']})"
            )
        if cur["seq"] <= prev["seq"]:
            errors.append(
                f"{where}: tick seq not increasing "
                f"({prev['seq']} -> {cur['seq']})"
            )
    return errors


def outage_windows(events: list[dict]) -> tuple[list[str], list[tuple]]:
    """Pair replica-scope coverage events into (lost_ts, restored_ts) windows."""
    errors = []
    pending: dict = {}
    windows: list[tuple] = []
    for ev in events:
        if ev.get("scope") != "replica":
            continue
        where = f"line {ev['_lineno']}"
        key = (ev.get("shard"), ev.get("replica"))
        if ev["type"] == "coverage_lost":
            if key in pending:
                errors.append(
                    f"{where}: coverage_lost for slot {key} while already lost"
                )
            pending[key] = ev["ts"]
        elif ev["type"] == "coverage_restored":
            lost_ts = pending.pop(key, None)
            if lost_ts is None:
                errors.append(
                    f"{where}: coverage_restored for slot {key} without a "
                    f"preceding coverage_lost"
                )
            else:
                windows.append((lost_ts, ev["ts"]))
    for key, lost_ts in sorted(pending.items(), key=lambda kv: kv[1]):
        errors.append(
            f"coverage_lost for slot {key} (ts {lost_ts}) never restored"
        )
    return errors, windows


def check_restarts(events: list[dict], expect_restarts: int) -> list[str]:
    """At least N worker_restart events, each with its recovery time."""
    errors = []
    restarts = [ev for ev in events if ev["type"] == "worker_restart"]
    if len(restarts) < expect_restarts:
        errors.append(
            f"expected >= {expect_restarts} worker_restart event(s), "
            f"found {len(restarts)}"
        )
    for ev in restarts:
        where = f"line {ev['_lineno']}"
        us = ev.get("coverage_restored_us")
        if not isinstance(us, (int, float)) or us <= 0:
            errors.append(
                f"{where}: worker_restart without a positive "
                f"coverage_restored_us ({us!r})"
            )
    return errors


def check_alert(events: list[dict], windows: list[tuple]) -> list[str]:
    """An slo_alert fired inside some replica outage window."""
    alerts = [ev["ts"] for ev in events if ev["type"] == "slo_alert"]
    if not alerts:
        return ["expected an slo_alert event, found none"]
    if not windows:
        return ["--expect-alert needs at least one coverage outage window"]
    for ts in alerts:
        if any(lost <= ts <= restored for lost, restored in windows):
            return []
    return [
        f"no slo_alert fired inside an outage window "
        f"(alerts at {alerts}, windows {windows})"
    ]


def validate(
    path: Path, *, expect_restarts: int = 0, expect_alert: bool = False
) -> list[str]:
    """All violations found in the timeline file at ``path``."""
    try:
        records = load_records(path)
    except (OSError, ValueError) as exc:
        return [f"unreadable timeline file: {exc}"]
    errors = check_schema(records)
    if errors:
        return errors  # the structural checks assume the schema holds
    ticks = [r for r in records if r.get("kind") == "tick"]
    events = [r for r in records if r.get("kind") == "event"]
    errors += check_ticks(ticks)
    pair_errors, windows = outage_windows(events)
    errors += pair_errors
    if expect_restarts > 0:
        errors += check_restarts(events, expect_restarts)
    if expect_alert:
        errors += check_alert(events, windows)
    return errors


def main(argv: list[str] | None = None) -> int:
    """Entry point; non-zero exit on any violated invariant."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "timeline", help="timeline JSONL written by serve-bench --timeline"
    )
    parser.add_argument(
        "--expect-restarts", type=int, default=0, metavar="N",
        help="require >= N worker_restart events with recovery times "
             "(default: structural checks only)",
    )
    parser.add_argument(
        "--expect-alert", action="store_true",
        help="require an slo_alert inside a replica outage window",
    )
    args = parser.parse_args(argv)
    errors = validate(
        Path(args.timeline),
        expect_restarts=args.expect_restarts,
        expect_alert=args.expect_alert,
    )
    if errors:
        print(f"FAIL: {args.timeline}: {len(errors)} violation(s)")
        for err in errors:
            print(f"  - {err}")
        return 1
    records = load_records(Path(args.timeline))
    ticks = [r for r in records if r.get("kind") == "tick"]
    events = [r for r in records if r.get("kind") == "event"]
    print(
        f"OK: {args.timeline}: {len(ticks)} tick(s), {len(events)} event(s), "
        f"{len({e['type'] for e in events})} event type(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
