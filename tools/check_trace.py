#!/usr/bin/env python3
"""Validate a Chrome/Perfetto trace written by ``serve-bench --trace``.

Checks the invariants the rest of the observability tooling (Perfetto,
``trace-report``) silently assumes, so CI catches a malformed exporter
before a human stares at a nonsensical flame chart::

    python tools/check_trace.py out.trace.json
    python tools/check_trace.py out.trace.json --expect-workers 2

Validated invariants:

- **schema** — top-level ``traceEvents`` list; every complete ("X")
  event carries name/ts/dur/pid/tid plus ``args.trace`` / ``args.span``
  identity; metadata ("M") events carry ``args.name``.
- **timestamps** — every ``ts`` and ``dur`` is a non-negative number
  and every child span starts no earlier than its parent (all spans
  share the host-wide monotonic clock; ``--slack-us`` absorbs the
  microsecond rounding of retroactive intervals).
- **span tree** — span ids are unique; every non-null parent id exists
  in the file and belongs to the same trace id; at least one root span
  exists.
- **cross-process completeness** (``--expect-workers N``) — at least N
  distinct worker pids (pids owning no root span) recorded spans, and
  at least one trace stitches router and worker processes together
  through the full multi-process stage chain
  (request -> exec -> scatter -> shard_rpc -> worker_scan -> merge).

Exit status is non-zero on any violation — this is a CI gate, unlike
``check_bench.py``'s warn-only drift report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Stage chain one trace must stitch together in a multi-process run.
MULTIPROC_STAGES = ("request", "exec", "scatter", "shard_rpc", "worker_scan", "merge")


def load_events(path: Path) -> list[dict]:
    """Parse the trace file and return its ``traceEvents`` list."""
    trace = json.loads(path.read_text())
    if not isinstance(trace, dict) or not isinstance(trace.get("traceEvents"), list):
        raise ValueError("top level must be an object with a 'traceEvents' list")
    return trace["traceEvents"]


def check_schema(events: list[dict]) -> list[str]:
    """Schema violations of individual events (empty list = clean)."""
    errors = []
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev:
            errors.append(f"event[{i}]: not an object with a 'ph' phase")
            continue
        if ev["ph"] == "M":
            if not isinstance(ev.get("args", {}).get("name"), str):
                errors.append(f"event[{i}]: metadata event without args.name")
            continue
        if ev["ph"] != "X":
            errors.append(f"event[{i}]: unexpected phase {ev['ph']!r}")
            continue
        for key in ("name", "ts", "dur", "pid", "tid"):
            if key not in ev:
                errors.append(f"event[{i}] ({ev.get('name')!r}): missing {key!r}")
        args = ev.get("args")
        if not isinstance(args, dict) or "trace" not in args or "span" not in args:
            errors.append(
                f"event[{i}] ({ev.get('name')!r}): args must carry span identity "
                f"(trace/span)"
            )
    return errors


def check_timestamps(spans: list[dict], slack_us: float) -> list[str]:
    """Non-negative monotonic timestamps; children start inside parents."""
    errors = []
    by_span = {s["args"]["span"]: s for s in spans}
    for s in spans:
        name = s["name"]
        if not isinstance(s["ts"], (int, float)) or s["ts"] < 0:
            errors.append(f"{name}: negative or non-numeric ts {s['ts']!r}")
        if not isinstance(s["dur"], (int, float)) or s["dur"] < 0:
            errors.append(f"{name}: negative or non-numeric dur {s['dur']!r}")
        parent = by_span.get(s["args"].get("parent"))
        if parent is not None and s["ts"] < parent["ts"] - slack_us:
            errors.append(
                f"{name}: starts {parent['ts'] - s['ts']:.0f}us before its "
                f"parent {parent['name']} (slack {slack_us}us)"
            )
    return errors


def check_tree(spans: list[dict]) -> list[str]:
    """Unique span ids; parents exist within the same trace; roots exist."""
    errors = []
    by_span: dict = {}
    for s in spans:
        sid = s["args"]["span"]
        if sid in by_span:
            errors.append(f"duplicate span id {sid} ({s['name']!r})")
        by_span[sid] = s
    for s in spans:
        pid = s["args"].get("parent")
        if pid is None:
            continue
        parent = by_span.get(pid)
        if parent is None:
            errors.append(f"{s['name']}: parent span {pid} not in trace file")
        elif parent["args"]["trace"] != s["args"]["trace"]:
            errors.append(
                f"{s['name']}: parent {parent['name']} belongs to a "
                f"different trace id"
            )
    if spans and not any(s["args"].get("parent") is None for s in spans):
        errors.append("no root span (every span has a parent)")
    return errors


def check_workers(spans: list[dict], expect_workers: int) -> list[str]:
    """Worker pids present and one trace spans the full multiproc chain."""
    errors = []
    root_pids = {s["pid"] for s in spans if s["args"].get("parent") is None}
    worker_pids = {s["pid"] for s in spans} - root_pids
    if len(worker_pids) < expect_workers:
        errors.append(
            f"expected spans from >= {expect_workers} worker pid(s), found "
            f"{len(worker_pids)} ({sorted(worker_pids)})"
        )
    stages_by_trace: dict = {}
    pids_by_trace: dict = {}
    for s in spans:
        tid = s["args"]["trace"]
        stages_by_trace.setdefault(tid, set()).add(s["name"])
        pids_by_trace.setdefault(tid, set()).add(s["pid"])
    complete = [
        tid
        for tid, names in stages_by_trace.items()
        if names.issuperset(MULTIPROC_STAGES) and len(pids_by_trace[tid]) >= 2
    ]
    if not complete:
        errors.append(
            "no trace stitches router and worker processes through the full "
            f"stage chain {MULTIPROC_STAGES}"
        )
    return errors


def validate(path: Path, *, expect_workers: int = 0, slack_us: float = 10.0) -> list[str]:
    """All violations found in the trace file at ``path``."""
    try:
        events = load_events(path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        return [f"unreadable trace file: {exc}"]
    errors = check_schema(events)
    if errors:
        return errors  # span checks assume the schema holds
    spans = [e for e in events if e["ph"] == "X"]
    if not spans:
        return ["trace contains no complete ('X') span events"]
    errors += check_timestamps(spans, slack_us)
    errors += check_tree(spans)
    if expect_workers > 0:
        errors += check_workers(spans, expect_workers)
    return errors


def main(argv: list[str] | None = None) -> int:
    """Entry point; non-zero exit on any violated invariant."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace JSON written by serve-bench --trace")
    parser.add_argument(
        "--expect-workers", type=int, default=0, metavar="N",
        help="require spans from >= N worker pids and a complete "
             "cross-process span chain (default: single-process checks only)",
    )
    parser.add_argument(
        "--slack-us", type=float, default=10.0, metavar="US",
        help="parent/child start-time slack for interval rounding (default: 10)",
    )
    args = parser.parse_args(argv)
    errors = validate(
        Path(args.trace), expect_workers=args.expect_workers, slack_us=args.slack_us
    )
    if errors:
        print(f"FAIL: {args.trace}: {len(errors)} violation(s)")
        for err in errors:
            print(f"  - {err}")
        return 1
    spans = [e for e in load_events(Path(args.trace)) if e["ph"] == "X"]
    pids = {s["pid"] for s in spans}
    print(
        f"OK: {args.trace}: {len(spans)} span(s), "
        f"{len({s['args']['trace'] for s in spans})} trace(s), "
        f"{len(pids)} process(es)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
