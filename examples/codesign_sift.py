#!/usr/bin/env python
"""Full co-design walkthrough: three recall goals, three accelerators.

Reproduces the workflow behind the paper's Table 4 on a scaled SIFT-like
dataset: for each recall goal (R@1, R@10, R@100) FANNS picks a different
index, a different nprobe, and different hardware, then emits the
ready-to-compile FPGA project for each winner.

Run: python examples/codesign_sift.py   (~2-4 minutes)
"""

import tempfile
from pathlib import Path

from repro.baselines.fpga_baseline import baseline_config
from repro.core import predict
from repro.core.resource_model import utilization_report
from repro.harness.context import small_context


def main() -> None:
    ctx = small_context()
    ds = ctx.dataset("sift-like")
    fanns = ctx.framework("sift-like")
    goals = ctx.goals["sift-like"]

    print(f"dataset: {ds.name} ({ds.n} vectors, d={ds.d})")
    print(f"device : {fanns.device.name}\n")

    for goal in goals:
        result = fanns.fit(ds, goal, max_queries=ctx.max_queries)
        rep = utilization_report(result.config, fanns.device)
        print(f"--- {goal} ---")
        print(result.summary())
        print(
            "stage LUT shares: "
            + "  ".join(
                f"{s}={rep[s]['lut_pct']:.1f}%"
                for s in ("IVFDist", "BuildLUT", "PQDist", "SelK")
            )
        )

        # Compare against the parameter-independent baseline on the same
        # algorithm parameters.
        base = baseline_config(result.config.params)
        base_pred = predict(base, result.candidate.profile)
        print(
            f"baseline (fixed K={goal.k} design): predicted QPS "
            f"{base_pred.qps:,.0f}  ->  co-design advantage "
            f"{result.prediction.qps / base_pred.qps:.2f}x"
        )

        # Emit the FPGA project (constants.hpp / kernel.cpp / connectivity).
        outdir = Path(tempfile.mkdtemp(prefix=f"fanns_k{goal.k}_"))
        paths = result.generate_project(outdir)
        print(f"generated project: {', '.join(p.name for p in paths)} in {outdir}\n")


if __name__ == "__main__":
    main()
