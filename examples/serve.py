#!/usr/bin/env python
"""Online serving: dynamic micro-batching over the IVF-PQ index.

Builds an index, starts the serving engine, and replays an open-loop
Poisson arrival trace (independent clients issuing one query at a time)
against two schedulers:

- batch-size-1 (every request served alone — the naive serving model);
- dynamic micro-batching (requests coalesce for up to a batch window),
  with the LRU query cache enabled.

The percentile tables show where the time goes (queue vs exec) and what
batching buys at the tail.  Results are bit-identical either way — the
scheduler changes *when* queries run, never what they return.
"""

import numpy as np

from repro.harness.formatting import format_series, format_table
from repro.harness.serve_bench import build_serving_index
from repro.serve import (
    InstrumentedBackend,
    QueryResultCache,
    ServingEngine,
    run_open_loop,
)

K = 10
NPROBE = 8
RATE_QPS = 1500.0
N_REQUESTS = 1200


def replay(name: str, engine: ServingEngine, backend: InstrumentedBackend,
           queries: np.ndarray) -> None:
    with engine:
        report = run_open_loop(
            engine, queries, K, NPROBE, rate_qps=RATE_QPS, seed=7
        )
    print(format_table(
        ["series", "mean_us", "p50_us", "p95_us", "p99_us"],
        report.percentile_rows(),
        title=(
            f"{name}: {report.n_completed} ok @ {RATE_QPS:.0f} QPS offered "
            f"({report.achieved_qps:.0f} achieved)"
        ),
    ))
    snap = engine.metrics.snapshot()
    hist = snap.batch_histogram
    if hist:
        print(format_series("batch-size histogram", list(hist), list(hist.values())))
    if engine.cache is not None:
        print(f"cache: {engine.cache.hits} hits / {engine.cache.misses} misses "
              f"({100 * engine.cache.hit_rate:.0f}% hit rate)")
    print(f"backend calls: {backend.calls} "
          f"(mean batch {backend.mean_batch_size:.1f})\n")


def main() -> None:
    print("== build index ==")
    index, pool = build_serving_index()
    print(f"{index.ntotal} vectors, nlist={index.nlist}, m={index.m}\n")
    # A skewed open-loop trace: requests sample a small pool of hot queries
    # plus a uniform tail, like production traffic.
    rng = np.random.default_rng(0)
    hot = pool[:20]
    picks = np.where(
        rng.random(N_REQUESTS) < 0.5,
        rng.integers(0, len(hot), N_REQUESTS),
        rng.integers(0, len(pool), N_REQUESTS),
    )
    trace = pool[picks]

    print("== replay Poisson trace ==")
    b1 = InstrumentedBackend(index)
    replay("batch-1 baseline",
           ServingEngine(b1, max_batch=1), b1, trace)

    bN = InstrumentedBackend(index)
    replay(
        "micro-batched (max_batch=16, window=2ms, cache on)",
        ServingEngine(
            bN, max_batch=16, max_wait_us=2000.0,
            cache=QueryResultCache(capacity=4096),
        ),
        bN, trace,
    )


if __name__ == "__main__":
    main()
