#!/usr/bin/env python
"""Scale-out demo: eight accelerators today, a thousand by extrapolation.

Reproduces the two distributed experiments:

- the Figure 1 prototype: eight FPGA shards vs eight GPUs, median/P95
  latency of distributed queries (max over nodes + binary-tree collectives);
- the Figure 12 extrapolation: P99 latency from 16 to 1024 accelerators via
  the sample-max + LogGP estimator.

Run: python examples/scaleout_cluster.py   (~2-4 minutes)
"""

from repro.harness import fig01, fig12
from repro.harness.context import small_context


def main() -> None:
    ctx = small_context()

    print("== Figure 1: eight-accelerator prototype ==")
    r1 = fig01.run(ctx, n_accelerators=8, n_queries=1200)
    print(r1.format())
    print(
        f"\nFPGA wins {r1.speedup(50):.1f}x at the median and "
        f"{r1.speedup(95):.1f}x at P95 (paper: 5.5x / 7.6x)\n"
    )

    print("== Figure 12: extrapolation to large clusters ==")
    r12 = fig12.run(ctx, counts=(16, 64, 256, 1024), history_size=10_000)
    print(r12.format())
    print(
        f"\nP99 speedup grows from {r12.speedup(16):.1f}x @16 to "
        f"{r12.speedup(1024):.1f}x @1024 (paper: 6.1x -> 42.1x)"
    )


if __name__ == "__main__":
    main()
