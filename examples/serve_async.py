#!/usr/bin/env python
"""Async serving: one event loop, hundreds of connections, one engine.

Builds an index, starts the micro-batching engine behind a
``VectorSearchServer`` (the length-prefixed binary socket protocol), and
drives it with many concurrent client connections from one process:

- a **closed-loop sweep**: N connections each awaiting one request at a
  time — the thread-free way to hold far more clients than threads;
- a **pipelining demo**: one connection with many requests in flight,
  answered in completion order and correlated by request id;
- a **quota shed**: a rate-limited tenant is refused with a
  ``retry_after_s`` hint derived from its token bucket's refill rate.

Results are bit-identical to direct search — the wire carries raw
i64/f32 — and the engine batches exactly as it does for thread clients.
"""

import asyncio
import time

import numpy as np

from repro.harness.serve_bench import build_serving_index
from repro.serve import (
    AsyncClient,
    AsyncServingEngine,
    QuotaExceededError,
    ServingEngine,
    TenantPolicy,
    VectorSearchServer,
    WFQDiscipline,
)

K = 10
NPROBE = 8
CONNECTIONS = 256
REQUESTS_PER_CONN = 4


async def closed_loop_sweep(host: str, port: int, pool: np.ndarray) -> None:
    """N connections, each a closed loop; report wall time and tails."""
    lat_us: list[float] = []

    async def drive(ci: int) -> None:
        async with await AsyncClient.connect(host, port) as client:
            for r in range(REQUESTS_PER_CONN):
                q = pool[(ci * REQUESTS_PER_CONN + r) % len(pool)]
                t0 = time.perf_counter()
                await client.search(q, K, NPROBE)
                lat_us.append((time.perf_counter() - t0) * 1e6)

    t0 = time.perf_counter()
    await asyncio.gather(*(drive(i) for i in range(CONNECTIONS)))
    wall = time.perf_counter() - t0
    lat = np.array(lat_us)
    print(
        f"{CONNECTIONS} connections x {REQUESTS_PER_CONN} requests: "
        f"{len(lat) / wall:,.0f} QPS, p50 {np.percentile(lat, 50):,.0f}us, "
        f"p99 {np.percentile(lat, 99):,.0f}us"
    )


async def pipelining_demo(host: str, port: int, pool: np.ndarray) -> None:
    """One connection, 32 requests in flight at once."""
    async with await AsyncClient.connect(host, port) as client:
        futs = [client.submit(pool[i], K, NPROBE) for i in range(32)]
        print(f"pipelined {client.in_flight} requests on one connection...")
        results = await asyncio.gather(*futs)
    batches = sorted({r.batch_size for r in results})
    print(f"...all {len(results)} answered (batch sizes {batches})")


async def quota_demo(host: str, port: int, pool: np.ndarray) -> None:
    """A metered tenant sheds with a precise retry-after hint."""
    async with await AsyncClient.connect(host, port) as client:
        await client.search(pool[0], K, NPROBE, tenant="metered")
        try:
            await client.search(pool[1], K, NPROBE, tenant="metered")
        except QuotaExceededError as exc:
            print(
                f"tenant 'metered' shed over the wire: retry in "
                f"{exc.retry_after_s:.2f}s (token-bucket refill)"
            )


async def main() -> None:
    print("== build index ==")
    index, pool = build_serving_index()
    print(f"{index.ntotal} vectors, nlist={index.nlist}, m={index.m}\n")

    # Shed policy: an event loop needs backpressure as exceptions, never
    # as a blocked loop.  The metered tenant exists for the quota demo.
    discipline = WFQDiscipline(
        {"metered": TenantPolicy(rate_qps=0.5, burst=1)},
        depth=4 * CONNECTIONS,
    )
    engine = ServingEngine(
        index, max_batch=64, max_wait_us=500.0, policy="shed",
        discipline=discipline,
    )
    async with AsyncServingEngine(engine) as aeng:
        async with VectorSearchServer(aeng, backlog=CONNECTIONS) as server:
            host, port = server.address
            print(f"== serving on {host}:{port} ==")
            await closed_loop_sweep(host, port, pool)
            await pipelining_demo(host, port, pool)
            await quota_demo(host, port, pool)


if __name__ == "__main__":
    asyncio.run(main())
