#!/usr/bin/env python
"""Dynamic dataset deployment: the production loop around FANNS (§4).

Production vector search systems manage insertions and deletions on top of
the static snapshot the accelerator serves: a graph-based incremental index
buffers new vectors, a bitmap masks deletions, and a periodic merge produces
the next snapshot — for which FANNS redesigns the accelerator while the old
one keeps serving.

This example runs that loop end to end on synthetic data:
snapshot -> inserts -> deletes -> queries (union semantics) -> merge ->
FANNS redesign for the new snapshot.
"""

import numpy as np

from repro.ann.flat import brute_force_topk
from repro.ann.recall import recall_at_k
from repro.core import Fanns, RecallGoal
from repro.data.synthetic import make_sift_like
from repro.data.datasets import Dataset
from repro.hw.device import U55C
from repro.service.dynamic import DynamicVectorService


def main() -> None:
    vecs = make_sift_like(24_000, seed=3)
    base, delta, queries = vecs[:20_000], vecs[20_000:23_800], vecs[23_800:]

    print("== bootstrap snapshot ==")
    svc = DynamicVectorService(d=128, nlist=64, m=16, ksub=64, nprobe=8)
    ids = svc.bootstrap(base)
    print(f"snapshot: {svc.ntotal} vectors")

    print("\n== live traffic: inserts + deletes ==")
    new_ids = svc.insert(delta)
    n_deleted = svc.delete(ids[:1000])
    print(f"inserted {len(new_ids)}, deleted {n_deleted}, live total {svc.ntotal}")

    out_ids, _ = svc.search(delta[:20], 1)
    fresh_hit = np.isin(out_ids[:, 0], new_ids).mean()
    print(f"freshly inserted vectors findable: {100 * fresh_hit:.0f}%")
    out_ids, _ = svc.search(queries, 10)
    assert not np.isin(out_ids, ids[:1000]).any(), "deleted ids must never surface"
    print("deleted ids never surface: OK")

    print("\n== periodic merge -> new snapshot ==")
    stats = svc.merge()
    print(
        f"generation {stats.generation}: snapshot {stats.snapshot_size} "
        f"(+{stats.inserted_since} / -{stats.deleted_since})"
    )
    live = np.vstack([base[1000:], delta])
    gt, _ = brute_force_topk(queries, live, 10)
    # Map positions in `live` back to service ids for recall accounting.
    live_ids = np.concatenate([ids[1000:], new_ids])
    out_ids, _ = svc.search(queries, 10)
    r = recall_at_k(np.vectorize(lambda i: i)(out_ids), live_ids[gt])
    print(f"post-merge R@10 vs exact on live set: {r:.2f}")

    print("\n== FANNS redesign for the new snapshot ==")
    ds = Dataset(name="snapshot-gen1", base=svc._snapshot_vectors, queries=queries)
    fanns = Fanns(
        U55C, m=16, ksub=64, nlist_grid=[32, 64], max_train_vectors=8000,
        pe_grid=(1, 2, 4, 6, 8, 12, 16, 24),
    )
    result = fanns.fit(ds, RecallGoal(10, 0.6), max_queries=100)
    print(result.summary())
    print("(the old accelerator keeps serving while this design compiles)")


if __name__ == "__main__":
    main()
