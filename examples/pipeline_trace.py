#!/usr/bin/env python
"""Visualize the accelerator pipeline: who is busy, who starves.

Builds a small index, runs a handful of queries through the cycle
simulator under two different PE allocations, and renders ASCII Gantt
charts — making the paper's "shifting bottleneck" story visible query by
query (queries overlap across stages exactly as in Figure 5).
"""

from repro.core.config import AcceleratorConfig, AlgorithmParams
from repro.data.synthetic import make_sift_like
from repro.data.datasets import Dataset
from repro.ann.ivf import IVFPQIndex
from repro.sim.accelerator import AcceleratorSimulator
from repro.sim.trace import render_gantt


def show(title, cfg, index, queries):
    res = AcceleratorSimulator(index, cfg).run_batch(queries)
    print(f"--- {title} ---")
    print(f"QPS={res.qps:,.0f}  bottleneck={res.bottleneck()}")
    print(render_gantt(res.timeline, res.occupancy, width=70, max_queries=6))
    print()


def main() -> None:
    ds = Dataset.synthetic("trace", make_sift_like, 12_000, 50, seed=2)
    index = IVFPQIndex(d=128, nlist=64, m=16, ksub=64).train(
        ds.training_vectors(6000)
    ).add(ds.base)
    params = AlgorithmParams(d=128, nlist=64, nprobe=8, k=10, m=16, ksub=64)
    queries = ds.queries[:6]

    balanced = AcceleratorConfig(params=params, n_ivf_pes=4, n_lut_pes=8, n_pq_pes=16)
    show("balanced allocation", balanced, index, queries)

    starved = AcceleratorConfig(params=params, n_ivf_pes=4, n_lut_pes=1, n_pq_pes=16)
    show("BuildLUT starved (1 PE)", starved, index, queries)


if __name__ == "__main__":
    main()
