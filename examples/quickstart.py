#!/usr/bin/env python
"""Quickstart: index a synthetic dataset, search it, co-design an accelerator.

Runs in well under a minute on a laptop:

1. generate a SIFT-like clustered dataset and exact ground truth;
2. build an IVF-PQ index from scratch and measure recall vs nprobe;
3. let FANNS co-design algorithm parameters + FPGA hardware for a recall
   goal and show the generated design;
4. "deploy" it on the cycle simulator and compare measured QPS against the
   performance-model prediction.
"""

import numpy as np

from repro.ann.recall import recall_at_k
from repro.core import Fanns, RecallGoal
from repro.data import Dataset, make_sift_like
from repro.hw.device import U55C


def main() -> None:
    print("== 1. Dataset ==")
    ds = Dataset.synthetic("sift-like", make_sift_like, n_base=20_000, n_queries=200, seed=0)
    gt = ds.ensure_ground_truth(10)
    print(f"base {ds.base.shape}, queries {ds.queries.shape}")

    print("\n== 2. IVF-PQ from scratch ==")
    from repro.ann import IVFPQIndex

    index = IVFPQIndex(d=ds.d, nlist=64, m=16).train(ds.training_vectors(8000)).add(ds.base)
    for nprobe in (1, 4, 16):
        ids, _ = index.search(ds.queries, k=10, nprobe=nprobe)
        print(f"nprobe={nprobe:3d}  R@10={recall_at_k(ids, gt):.3f}")

    print("\n== 3. FANNS co-design ==")
    fanns = Fanns(
        U55C,
        m=16,
        ksub=64,  # shrunk sub-quantizers keep the demo fast
        nlist_grid=[32, 64],
        max_train_vectors=8000,
        pe_grid=(1, 2, 3, 4, 6, 8, 12, 16, 24, 32),
    )
    result = fanns.fit(ds, RecallGoal(k=10, target=0.70), max_queries=150)
    print(result.summary())

    print("\n== 4. Deploy on the cycle simulator ==")
    sim = result.simulator()
    out = sim.run_batch(ds.queries)
    print(f"simulated QPS : {out.qps:,.0f}")
    print(f"predicted QPS : {result.prediction.qps:,.0f}")
    print(f"model accuracy: {100 * out.qps / result.prediction.qps:.1f}%")
    ids, _ = result.index.search(ds.queries, 10, result.nprobe)
    assert np.array_equal(out.ids, ids), "simulator must match software search"
    print(f"achieved R@10 : {recall_at_k(out.ids, gt):.3f} (goal {result.goal})")


if __name__ == "__main__":
    main()
