#!/usr/bin/env python
"""Bottleneck analysis: why vector search needs hardware-algorithm co-design.

Reproduces the paper's two motivating studies:

- Figure 3: on CPUs and GPUs the dominant search stage *shifts* with
  nprobe, nlist, and K — no fixed accelerator serves all settings well;
- Figure 9: consequently, the optimal FPGA design (resource share per
  stage) moves dramatically as the parameters move.

Everything here is analytic (performance + cost models at the paper's
100M-vector scale) and runs in seconds.
"""

from repro.harness import fig03, fig09


def main() -> None:
    print("== Figure 3: CPU/GPU stage-time breakdowns ==")
    r3 = fig03.run()
    print(r3.format())

    print("\nKey shifts (share of PQDist+SelK as nprobe grows):")
    for hw in ("CPU", "GPU"):
        lo = r3.share(hw, "nprobe", 1, ("PQDist", "SelK"))
        hi = r3.share(hw, "nprobe", 128, ("PQDist", "SelK"))
        print(f"  {hw}: {lo * 100:.0f}% -> {hi * 100:.0f}%")

    print("\n== Figure 9: optimal FPGA design vs parameters ==")
    r9 = fig09.run(nprobes=(1, 16, 64), nlists=(2**11, 2**13, 2**15), ks=(1, 10, 100))
    print(r9.format())

    print("\nReadout:")
    print(
        "  nprobe up   -> resources migrate IVFDist -> PQDist/SelK "
        f"(IVFDist {r9.ratios[('nprobe', 1)]['IVFDist'] * 100:.0f}% -> "
        f"{r9.ratios[('nprobe', 64)]['IVFDist'] * 100:.0f}%)"
    )
    print(
        "  nlist up    -> IVFDist share "
        f"{r9.ratios[('nlist', 2**11)]['IVFDist'] * 100:.0f}% -> "
        f"{r9.ratios[('nlist', 2**15)]['IVFDist'] * 100:.0f}%"
    )
    print(
        "  K up        -> SelK share "
        f"{r9.ratios[('K', 1)]['SelK'] * 100:.0f}% -> "
        f"{r9.ratios[('K', 100)]['SelK'] * 100:.0f}%"
    )


if __name__ == "__main__":
    main()
