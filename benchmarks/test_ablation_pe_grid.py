"""Ablation: design-space grid granularity.

The paper enumerates millions of combinations; we use a dense-but-bounded
PE-count grid.  This ablation checks the grid is not leaving QPS on the
table: refining the grid around the coarse optimum must improve the best
predicted QPS by at most a few percent, while a crude power-of-two grid
(what "human designers favor", §4) can lose more — the paper's point that
the model-driven irregular PE counts matter.
"""

import numpy as np
from conftest import emit

from repro.core.config import AlgorithmParams
from repro.core.design_space import enumerate_designs
from repro.core.perf_model import IndexProfile, predict
from repro.harness.formatting import format_table
from repro.hw.device import U55C

PARAMS = AlgorithmParams(d=128, nlist=2**13, nprobe=17, k=10)
PROFILE = IndexProfile(
    nlist=2**13, use_opq=False,
    cell_sizes=np.full(2**13, 100_000_000 // 2**13, dtype=np.int64),
)


def best_qps(grid):
    best = 0.0
    for cfg in enumerate_designs(PARAMS, U55C, pe_grid=grid):
        best = max(best, predict(cfg, PROFILE).qps)
    return best


def test_pe_grid_granularity(benchmark):
    grids = {
        "pow2 (human)": (1, 2, 4, 8, 16, 32),
        "default dense": (1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48, 57),
        "exhaustive 1..57": tuple(range(1, 58)),
    }

    def run():
        return {name: best_qps(grid) for name, grid in grids.items()}

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, qps] for name, qps in result.items()]
    emit("Ablation: PE grid granularity (best predicted QPS)", format_table(["grid", "QPS"], rows))

    dense = result["default dense"]
    exhaustive = result["exhaustive 1..57"]
    pow2 = result["pow2 (human)"]
    # The dense grid captures (nearly) everything the exhaustive one finds.
    assert dense > 0.97 * exhaustive
    # Power-of-two-only designs leave throughput on the table.
    assert pow2 <= dense + 1e-6
