"""Table 4 benchmark: FANNS designs vs the human-crafted baseline.

Paper shapes asserted (§7.2.2):
- FANNS picks different (index, nprobe) per recall goal;
- FANNS generates different hardware per goal;
- the SelK stage's LUT share spans a wide range across goals (2.9-31.7 % in
  the paper) and grows with K;
- every generated design fits the U55C at 60 % utilization.
"""

from conftest import emit

from repro.core.resource_model import is_valid, utilization_report
from repro.harness import tab04
from repro.hw.device import U55C


def test_tab04_designs(benchmark, ctx):
    result = benchmark.pedantic(tab04.run, args=(ctx,), rounds=1, iterations=1)
    emit("Table 4: baseline vs FANNS designs", result.format())

    fits = result.fits
    assert len(fits) == 3

    # Different algorithm parameters per goal.
    combos = {(r.config.params.nlist, r.config.params.nprobe, r.config.params.k)
              for r in fits.values()}
    assert len(combos) == 3

    # Different hardware per goal.
    hw = {
        (r.config.n_ivf_pes, r.config.n_lut_pes, r.config.n_pq_pes, r.config.selk_arch)
        for r in fits.values()
    }
    assert len(hw) >= 2

    # SelK LUT share grows with K.
    selk_shares = {}
    for goal_str, res in fits.items():
        rep = utilization_report(res.config, U55C)
        selk_shares[res.goal.k] = rep["SelK"]["lut_pct"]
    assert selk_shares[100] > selk_shares[10] > selk_shares[1]

    # All designs valid under the paper's utilization cap.
    for res in fits.values():
        assert is_valid(res.config, U55C, max_utilization=0.6)
