"""Micro-benchmark: batched packed-CSR scan vs the seed per-query loop.

The reference implementation below is the *seed* search loop frozen
verbatim: per-cell list-of-arrays storage semantics, one Python iteration
per query, one LUT einsum + one ADC call per probed cell (the layout and
loop structure this PR replaced).  The packed engine must beat it by >= 3x
at batch >= 64, nprobe >= 8.

Records batched-search QPS into ``BENCH_packed_scan.json`` at the repo
root, so future PRs can track the software baseline's perf trajectory
toward the "as fast as the hardware allows" north star.

Run: ``python -m pytest benchmarks/test_bench_packed_scan.py -s``
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.ann.ivf import IVFPQIndex
from repro.data.synthetic import make_clustered

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_packed_scan.json"

N_BASE = 12_000
D = 64
NLIST = 512
M = 8
KSUB = 64
N_QUERIES = 256  # batch >= 64 (acceptance criterion)
NPROBE = 16  # >= 8 (acceptance criterion)
K = 10
REPEATS = 3


def _seed_build_luts(pq, residuals: np.ndarray) -> np.ndarray:
    """The seed's Stage BuildLUT: materialized diff + einsum, per query."""
    qs = residuals.reshape(residuals.shape[0], pq.m, pq.dsub)
    diff = qs[:, :, None, :] - pq.codebooks[None, :, :, :]
    return np.einsum("qjkd,qjkd->qjk", diff, diff)


def _seed_per_query_search(index: IVFPQIndex, queries: np.ndarray, k: int, nprobe: int):
    """The seed implementation: Python loop per query, per probed cell."""
    cell_codes = index.cell_codes  # legacy list-of-arrays layout
    cell_ids = index.cell_ids
    qt = index.stage_opq(queries)
    probed = index.stage_select_cells(index.stage_ivf_dist(qt), nprobe)
    nq = qt.shape[0]
    out_ids = np.empty((nq, k), dtype=np.int64)
    out_dists = np.empty((nq, k), dtype=np.float32)
    for qi in range(nq):
        cells = probed[qi]
        luts = _seed_build_luts(index.pq, qt[qi][None, :] - index.centroids[cells])
        dists, ids = [], []
        for lut, cell in zip(luts, cells):
            codes = cell_codes[cell]
            if codes.shape[0] == 0:
                continue
            dists.append(index.pq.adc(lut, codes))
            ids.append(cell_ids[cell])
        d = np.concatenate(dists) if dists else np.empty(0, dtype=np.float32)
        i = np.concatenate(ids) if ids else np.empty(0, dtype=np.int64)
        out_ids[qi], out_dists[qi] = index.stage_select_k(d, i, k)
    return out_ids, out_dists


def _best_qps(fn, nq: int, repeats: int = REPEATS) -> float:
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return nq / best


def test_packed_scan_speedup():
    vecs = make_clustered(N_BASE + N_QUERIES, D, n_clusters=NLIST, seed=42)
    base, queries = vecs[:N_BASE], vecs[N_BASE:]
    index = IVFPQIndex(d=D, nlist=NLIST, m=M, ksub=KSUB, seed=0)
    index.train(base)
    index.add(base)
    index.invlists  # flush so neither timing pays the packing cost

    # Functional agreement first — a fast wrong answer is not a speedup.
    # (The frozen seed builds LUTs with the old einsum arithmetic, so
    # distances agree to float32 round-off rather than bit-for-bit; exact
    # bitwise identity of the current per-query path vs the batched engine
    # is asserted in tests/ann/test_invlists.py.)
    ids_ref, d_ref = _seed_per_query_search(index, queries, K, NPROBE)
    ids, dists = index.search(queries, K, NPROBE)
    np.testing.assert_allclose(dists, d_ref, rtol=1e-4, atol=1e-4)
    agree = float(np.mean(ids == ids_ref))
    assert agree > 0.999, f"id agreement {agree:.4f} vs frozen seed"

    qps_batched = _best_qps(lambda: index.search(queries, K, NPROBE), N_QUERIES)
    qps_seed = _best_qps(
        lambda: _seed_per_query_search(index, queries, K, NPROBE), N_QUERIES
    )
    speedup = qps_batched / qps_seed

    record = {
        "benchmark": "packed_scan",
        "params": {
            "n_base": N_BASE, "d": D, "nlist": NLIST, "m": M, "ksub": KSUB,
            "batch": N_QUERIES, "nprobe": NPROBE, "k": K, "repeats": REPEATS,
        },
        "qps_batched": round(qps_batched, 1),
        "qps_seed_per_query_loop": round(qps_seed, 1),
        "speedup": round(speedup, 2),
    }
    ARTIFACT.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\npacked scan: {qps_batched:.0f} QPS batched vs {qps_seed:.0f} QPS "
          f"per-query loop ({speedup:.1f}x) -> {ARTIFACT.name}")

    # Acceptance criterion: >= 3x over the seed loop at batch>=64, nprobe>=8.
    assert speedup >= 3.0, f"expected >= 3x speedup, got {speedup:.2f}x"
