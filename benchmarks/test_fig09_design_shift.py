"""Figure 9 benchmark: the optimal FPGA design shifts with parameters.

Paper shapes asserted (§7.2.1):
- nprobe up  -> PQDist+SelK resources up, IVFDist share down;
- nlist up   -> IVFDist share up;
- K up       -> SelK share up (priority-queue cost linear in K).
"""

from conftest import emit

from repro.harness import fig09


def test_fig09_optimal_designs_shift(benchmark):
    result = benchmark.pedantic(
        fig09.run,
        kwargs=dict(nprobes=(1, 16, 64), nlists=(2**11, 2**13, 2**15), ks=(1, 10, 100)),
        rounds=1,
        iterations=1,
    )
    emit("Figure 9: optimal design resource ratios", result.format())
    r = result.ratios

    # nprobe panel.
    assert r[("nprobe", 1)]["IVFDist"] > r[("nprobe", 64)]["IVFDist"]
    scan1 = r[("nprobe", 1)]["PQDist"] + r[("nprobe", 1)]["SelK"] + r[("nprobe", 1)]["BuildLUT"]
    scan64 = (
        r[("nprobe", 64)]["PQDist"] + r[("nprobe", 64)]["SelK"] + r[("nprobe", 64)]["BuildLUT"]
    )
    assert scan64 > scan1

    # nlist panel.
    assert r[("nlist", 2**15)]["IVFDist"] > r[("nlist", 2**11)]["IVFDist"]

    # K panel.
    assert r[("K", 100)]["SelK"] > r[("K", 10)]["SelK"] > r[("K", 1)]["SelK"]
    assert r[("K", 100)]["SelK"] > 0.5  # queues dominate at K=100 (31.7 % of
    # the whole chip in Table 4 => far more than half of the design's LUTs)

    # Microarchitecture switches: K=100 must use HPQ (HSMPQG cannot filter).
    assert result.designs[("K", 100)].selk_arch == "HPQ"
