"""Table 3 benchmark: FANNS workflow step timing.

Paper ordering asserted (absolute values are scale-dependent):
index building >> design prediction, recall evaluation; code generation is
near-instant ("within seconds" at paper scale, milliseconds here).
"""

from conftest import emit

from repro.harness import tab03


def test_tab03_workflow_timing(benchmark, ctx):
    result = benchmark.pedantic(tab03.run, args=(ctx,), rounds=1, iterations=1)
    emit("Table 3: workflow timing", result.format())
    s = result.seconds

    assert s["Build indexes"] > s["FPGA code generation"]
    assert s["Predict optimal design"] > s["FPGA code generation"]
    # Code generation is string assembly: well under a second.
    assert s["FPGA code generation"] < 1.0
    # "Compilation" (simulator build) is trivial in the reproduction.
    assert s["Bitstream generation (simulator build)"] < 1.0
