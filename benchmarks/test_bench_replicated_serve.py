"""Replicated / sharded serving benchmark: the scale-out serving tier.

Measures the R×S serving grid end to end through the real scheduler and
routing stack — micro-batching engine with one dispatcher per replica,
least-loaded :class:`~repro.serve.routing.ReplicaSet` routing, exact
scatter-gather :class:`~repro.serve.routing.ShardedBackend` merge — over
simulated accelerator devices (exact results, wall time padded to a
modeled device service time plus a LogGP network hop), and records
``BENCH_replicated_serve.json`` at the repo root.

Acceptance (the scale-out claims the serving tier must deliver):

- results through the full replicated+sharded stack are **bit-identical**
  to direct unpartitioned ``IVFPQIndex.search``;
- at a fixed closed-loop load, 3 replicas serve **>= 2x the QPS** of one
  replica with **p99 no worse than 1.5x**;
- replica routing balances: no replica takes more than twice its fair
  share of dispatched batches.

Run: ``python -m pytest benchmarks/test_bench_replicated_serve.py -s``
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.harness import serve_bench

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_replicated_serve.json"

REPLICAS = (1, 2, 3)
SHARDS = (1, 2, 4)
N_CLIENTS = 32
N_REQUESTS = 600


def _row_record(row) -> dict:
    r = row.report
    return {
        "replicas": row.replicas,
        "shards": row.shards,
        "policy": row.policy,
        "qps": round(r.achieved_qps, 1),
        "p50_us": round(r.total.p50_us, 1),
        "p99_us": round(r.total.p99_us, 1),
        "p99_plus_net_us": round(r.total.p99_us + row.net_us, 1),
        "modeled_device_us": round(row.device_us, 1),
        "modeled_net_us": round(row.net_us, 1),
        "mean_batch": round(r.mean_batch_size, 2),
        "dispatch_counts": row.dispatch_counts,
    }


def test_replica_scaling_at_flat_tail():
    result = serve_bench.run_replicated(
        replicas=REPLICAS, shards=SHARDS,
        n_clients=N_CLIENTS, n_requests=N_REQUESTS,
    )

    # Functional agreement first — a fast wrong answer is not a speedup.
    assert result.bit_identical, (
        "replicated/sharded serving diverged from direct search"
    )

    record = {
        "benchmark": "replicated_serve",
        "params": {
            **result.params,
            "n_clients": N_CLIENTS, "n_requests": N_REQUESTS,
        },
        "bit_identical_to_direct_search": result.bit_identical,
        "grid": [_row_record(r) for r in result.rows],
        "replica_speedup_at_3x1": round(result.replica_speedup(3), 2),
    }
    ARTIFACT.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n{result.format()}\n-> {ARTIFACT.name}")

    base = result.row(1, 1).report
    scaled = result.row(3, 1).report

    # Throughput must scale with the replica count...
    speedup = result.replica_speedup(3)
    assert speedup >= 2.0, (
        f"3 replicas gave only {speedup:.2f}x the single-replica QPS"
    )
    # ...without inflating the tail (same offered load, more capacity).
    assert scaled.total.p99_us <= 1.5 * base.total.p99_us, (
        f"p99 grew from {base.total.p99_us:.0f}us to {scaled.total.p99_us:.0f}us "
        "with 3 replicas"
    )

    # Routing balance: no replica hoards the work (fair share is 1/3).
    counts = result.row(3, 1).dispatch_counts
    assert len(counts) == 3 and sum(counts) > 0
    assert max(counts) <= 2 * (sum(counts) / len(counts)), (
        f"least-loaded routing is lopsided: {counts}"
    )
