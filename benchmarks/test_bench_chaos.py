"""Chaos benchmark: availability and tails through a kill/recover cycle.

Runs the fault-injection serving mode
(:func:`repro.harness.serve_bench.run_chaos`): an R×S replicated worker
grid under supervised restart serves closed-loop load while workers are
SIGKILLed on a seeded schedule, and records ``BENCH_chaos.json`` at the
repo root:

- **availability** — the fraction of completed requests answered with
  full shard coverage (R=2 over one shard: replica failover should keep
  this at exactly 1.0);
- **p50/p99 latency and QPS** through the whole cycle, kills included;
- per-kill **time to restored coverage**, from the supervisor's clock;
- the leak audit (every spawned process reaped after stop).

Acceptance: zero failed requests, every kill recovered within the
budget, answers bit-identical to direct search before the first kill
and after the last recovery, no leaked processes.  Latency numbers are
recorded, not asserted — a 1-CPU CI runner's tails are noise.

Run: ``python -m pytest benchmarks/test_bench_chaos.py -s``
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.harness import serve_bench

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_chaos.json"

REPLICAS = 2
SHARDS = 1
KILLS = 2
N_CLIENTS = 6
N_REQUESTS = 240
#: Generous per-kill recovery budget for slow, oversubscribed CI hosts.
RECOVERY_BUDGET_S = 30.0


def test_chaos_kill_recover_cycle_availability():
    result = serve_bench.run_chaos(
        replicas=REPLICAS,
        shards=SHARDS,
        kills=KILLS,
        n_clients=N_CLIENTS,
        n_requests=N_REQUESTS,
        **serve_bench.MP_QUICK,
    )

    record = {
        "benchmark": "chaos_serve",
        "params": result.params,
        "availability": round(result.availability, 4),
        "qps": round(result.report.achieved_qps, 1),
        "p50_us": round(result.report.total.p50_us, 1),
        "p99_us": round(result.report.total.p99_us, 1),
        "completed": result.report.n_completed,
        "errors": result.report.n_errors,
        "partial_results": result.partial_results,
        "worker_restarts": result.worker_restarts,
        "coverage_lost": result.coverage_lost,
        "coverage_restored": result.coverage_restored,
        "bit_identical_before": result.bit_identical_before,
        "bit_identical_after": result.bit_identical_after,
        "kills": [
            {
                "worker": f"{k.shard}.{k.replica}",
                "t_kill_s": round(k.t_kill_s, 3),
                "recovered": k.recovered,
                "attempts": k.attempts,
                "coverage_restored_ms": round(k.coverage_restored_us / 1e3, 1),
            }
            for k in result.kills
        ],
        "leaked_pids": result.leaked_pids,
        "host_cpus": result.host_cpus,
    }
    ARTIFACT.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n{result.format()}\n-> {ARTIFACT.name}")

    # The fault-tolerance contract, end to end.
    assert result.report.n_errors == 0, (
        f"{result.report.n_errors} requests failed during the chaos run"
    )
    assert result.report.n_completed == N_REQUESTS
    assert len(result.kills) == KILLS, (
        f"killer landed {len(result.kills)}/{KILLS} strikes"
    )
    assert result.all_recovered, f"unrecovered kills: {result.kills}"
    assert result.worker_restarts == KILLS
    for kill in result.kills:
        assert kill.coverage_restored_us < RECOVERY_BUDGET_S * 1e6, (
            f"recovery of worker {kill.shard}.{kill.replica} took "
            f"{kill.coverage_restored_us / 1e6:.1f}s"
        )
    # R=2 over one shard: the surviving replica keeps coverage at 1.0
    # for every request, so availability is exact.
    assert result.partial_results == 0
    assert result.availability == 1.0
    # Byte-exact before the first kill and after the last recovery.
    assert result.bit_identical_before
    assert result.bit_identical_after
    # Every process ever spawned (grid + respawns) was reaped.
    assert result.leaked_pids == []
