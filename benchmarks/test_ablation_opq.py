"""Ablation: OPQ on/off (Table 2's "OPQenable").

Claims checked:
- OPQ reduces quantization error on correlated data, which lets an index
  reach the same recall with a smaller nprobe (or reach recalls plain PQ
  cannot) — the reason FANNS trains every nlist both ways;
- at query time OPQ costs one extra (cheap) pipeline stage.
"""

import numpy as np
from conftest import emit

from repro.core.index_explorer import IndexExplorer, RecallGoal
from repro.data.datasets import Dataset
from repro.data.synthetic import make_clustered
from repro.harness.formatting import format_table


def test_opq_ablation(benchmark):
    vecs = make_clustered(6200, 64, n_clusters=64, intrinsic_dim=6, seed=4)
    ds = Dataset(name="opq-ablation", base=vecs[:6000], queries=vecs[6000:])
    ds.ensure_ground_truth(10)
    explorer = IndexExplorer(m=8, ksub=64, seed=0, max_train_vectors=6000)

    def run():
        cands = explorer.build(ds, [32], opq_options=(False, True))
        goal = RecallGoal(10, 0.60)
        out = {}
        for cand in cands:
            nprobe = explorer.min_nprobe(cand, ds, goal, max_queries=100)
            err = (
                cand.index.opq.quantization_error(ds.base[:1000])
                if cand.index.opq is not None
                else cand.index.pq.quantization_error(ds.base[:1000])
            )
            out[cand.key] = (nprobe, err)
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[k, v[0] if v[0] is not None else "unreachable", v[1]] for k, v in result.items()]
    emit("Ablation: OPQ on/off", format_table(["index", "min nprobe @R@10=60%", "quant MSE"], rows))

    keys = list(result)
    plain = next(k for k in keys if not k.startswith("OPQ+"))
    opq = next(k for k in keys if k.startswith("OPQ+"))

    # OPQ must not lose on quantization error (rotation is learned).
    assert result[opq][1] <= result[plain][1] * 1.05
    # And must reach the goal with no more nprobe than plain PQ (allowing
    # one step of slack for search noise).
    if result[plain][0] is not None and result[opq][0] is not None:
        assert result[opq][0] <= result[plain][0] + 1
