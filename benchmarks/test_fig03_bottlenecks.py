"""Figure 3 benchmark: CPU/GPU bottlenecks shift with nprobe, nlist, K.

Paper shapes asserted:
- CPU & GPU: PQDist+SelK share grows with nprobe (GPU: ~20 % -> ~80 %);
- CPU & GPU: IVFDist share grows with nlist, more pronounced on the CPU;
- GPU: SelK share grows significantly with K; CPU: barely moves.
"""

from conftest import emit

from repro.harness import fig03


def test_fig03_bottleneck_shifts(benchmark):
    result = benchmark.pedantic(fig03.run, rounds=1, iterations=1)
    emit("Figure 3: stage-time breakdowns", result.format())

    scan = ("PQDist", "SelK")
    # nprobe column.
    for hw in ("CPU", "GPU"):
        assert result.share(hw, "nprobe", 128, scan) > result.share(hw, "nprobe", 1, scan)
    assert result.share("GPU", "nprobe", 1, scan) < 0.35  # "from 20%"
    assert result.share("GPU", "nprobe", 128, scan) > 0.7  # "to 80%"

    # nlist column: IVFDist grows; CPU effect stronger at the common value.
    for hw in ("CPU", "GPU"):
        assert result.share(hw, "nlist", 2**18, ("IVFDist",)) > result.share(
            hw, "nlist", 2**10, ("IVFDist",)
        )
    assert result.share("CPU", "nlist", 2**14, ("IVFDist",)) > result.share(
        "GPU", "nlist", 2**14, ("IVFDist",)
    )

    # K column: GPU SelK inflates; CPU barely reacts.
    gpu_k = result.share("GPU", "K", 100, ("SelK",)) - result.share("GPU", "K", 1, ("SelK",))
    cpu_k = result.share("CPU", "K", 100, ("SelK",)) - result.share("CPU", "K", 1, ("SelK",))
    assert gpu_k > 0.08
    assert abs(cpu_k) < 0.05
