"""Observability overhead benchmark: what does tracing cost the hot path?

Measures closed-loop engine throughput under five observability
configurations and records ``BENCH_obs.json`` at the repo root:

- **baseline** — no tracer object at all (the pre-tracing engine);
- **disabled** — a tracer with ``sample_rate=0``: the instrumentation
  sites run but every span call hits the NOOP singleton;
- **sampled_1pct** — head sampling at 1% (the production setting);
- **sampled_100pct** — every request traced (the debugging setting);
- **collector** — no tracer, but the live telemetry plane on: an
  :class:`~repro.obs.events.EventLog` journal wired into the engine and
  a :class:`~repro.obs.timeline.TelemetryCollector` (with an SLO
  monitor) scraping the metrics registry at its default interval.

Each configuration runs ``REPEATS`` interleaved rounds and keeps the best
round (the one least disturbed by scheduler noise on a shared runner).

Acceptance: the disabled configuration sits within noise of the
baseline, 1% sampling costs at most 5% QPS, and the timeline collector
costs at most 5% QPS (collector/baseline >= 0.95) — the overhead
budgets documented in docs/ARCHITECTURE.md.

Run: ``python -m pytest benchmarks/test_bench_obs.py -s``
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.harness import serve_bench
from repro.obs.events import EventLog
from repro.obs.timeline import BurnRateRule, SLOMonitor, TelemetryCollector
from repro.obs.trace import Tracer
from repro.serve.loadgen import run_closed_loop
from repro.serve.scheduler import ServingEngine

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_obs.json"

N_CLIENTS = 8
N_REQUESTS = 300
REPEATS = 3
MAX_BATCH = 16
K = serve_bench.K
NPROBE = serve_bench.NPROBE

#: Acceptance bounds on best-of-repeats QPS ratios.
DISABLED_NOISE_FLOOR = 0.93   # disabled/baseline: within runner noise
SAMPLED_1PCT_FLOOR = 0.95     # 1% sampling costs at most 5% QPS
COLLECTOR_FLOOR = 0.95        # timeline collector costs at most 5% QPS

CONFIGS = (
    ("baseline", None),
    ("disabled", 0.0),
    ("sampled_1pct", 0.01),
    ("sampled_100pct", 1.0),
    ("collector", "collector"),
)


def _measure(index, queries, sample_rate, seed):
    """One closed-loop round; returns (report, tracer-or-None, ticks)."""
    tracer = None
    events = None
    if sample_rate == "collector":
        events = EventLog()
    elif sample_rate is not None:
        tracer = Tracer(sample_rate=sample_rate, seed=seed)
    ticks = 0
    with ServingEngine(
        index, max_batch=MAX_BATCH, max_wait_us=0.0, tracer=tracer,
        events=events,
    ) as engine:
        collector = None
        if events is not None:
            slo = SLOMonitor(
                [BurnRateRule("p99_slo", "p99_us", ">", 1e9, window=3)],
                events=events,
            )
            collector = TelemetryCollector(
                engine.metrics, events=events, slo=slo
            )
            collector.start()
        try:
            report = run_closed_loop(
                engine, queries, K, NPROBE,
                n_clients=N_CLIENTS, n_requests=N_REQUESTS,
            )
        finally:
            if collector is not None:
                collector.stop()
                ticks = len(collector.ticks())
    return report, tracer, ticks


def test_tracing_overhead_budget():
    index, queries = serve_bench.build_serving_index()

    # Results must stay bit-identical with every request traced.
    ref_ids, ref_dists = index.search(queries[:32], K, NPROBE)
    with ServingEngine(
        index, max_batch=MAX_BATCH, max_wait_us=1000.0,
        tracer=Tracer(sample_rate=1.0, seed=0),
    ) as eng:
        futs = [eng.submit(q, K, NPROBE) for q in queries[:32]]
        got = [f.result() for f in futs]
    assert np.array_equal(np.stack([g.ids for g in got]), ref_ids)
    assert np.array_equal(np.stack([g.dists for g in got]), ref_dists)

    # Interleaved repeats: config order inside each round, so slow drift
    # of the runner hits every configuration equally.
    qps: dict[str, list[float]] = {name: [] for name, _ in CONFIGS}
    spans: dict[str, int] = {name: 0 for name, _ in CONFIGS}
    ticks: dict[str, int] = {name: 0 for name, _ in CONFIGS}
    for rep in range(REPEATS):
        for name, rate in CONFIGS:
            report, tracer, n_ticks = _measure(index, queries, rate, seed=rep)
            qps[name].append(report.achieved_qps)
            ticks[name] = max(ticks[name], n_ticks)
            if tracer is not None:
                spans[name] = max(spans[name], len(tracer) + tracer.dropped)

    best = {name: max(vals) for name, vals in qps.items()}
    ratios = {
        "disabled_vs_baseline": best["disabled"] / best["baseline"],
        "sampled_1pct_vs_disabled": best["sampled_1pct"] / best["disabled"],
        "sampled_100pct_vs_disabled": best["sampled_100pct"] / best["disabled"],
        "collector_vs_baseline": best["collector"] / best["baseline"],
    }

    record = {
        "benchmark": "obs",
        "params": {
            "n_clients": N_CLIENTS, "n_requests": N_REQUESTS,
            "repeats": REPEATS, "max_batch": MAX_BATCH,
            "k": K, "nprobe": NPROBE,
            "disabled_noise_floor": DISABLED_NOISE_FLOOR,
            "sampled_1pct_floor": SAMPLED_1PCT_FLOOR,
            "collector_floor": COLLECTOR_FLOOR,
        },
        "configs": {
            name: {
                "sample_rate": None if rate == "collector" else rate,
                "qps_runs": [round(v, 1) for v in qps[name]],
                "qps": round(best[name], 1),
                "spans_recorded": spans[name],
                "ticks_recorded": ticks[name],
            }
            for name, rate in CONFIGS
        },
        "ratios": {k: round(v, 4) for k, v in ratios.items()},
    }
    ARTIFACT.write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"\ntracing overhead (best of {REPEATS}): "
        + "  ".join(f"{n}: {best[n]:,.0f} QPS" for n, _ in CONFIGS)
        + f"\n-> {ARTIFACT.name}"
    )

    # Sampling actually sampled: 100% records spans for every request,
    # 1% records far fewer (but the machinery demonstrably ran).
    assert spans["sampled_100pct"] >= N_REQUESTS
    assert 0 <= spans["sampled_1pct"] < spans["sampled_100pct"]
    assert spans["disabled"] == 0

    assert ratios["disabled_vs_baseline"] >= DISABLED_NOISE_FLOOR, (
        f"tracing-off overhead exceeds noise: disabled/baseline = "
        f"{ratios['disabled_vs_baseline']:.3f}"
    )
    assert ratios["sampled_1pct_vs_disabled"] >= SAMPLED_1PCT_FLOOR, (
        f"1% sampling costs more than the 5% budget: "
        f"{ratios['sampled_1pct_vs_disabled']:.3f}"
    )

    # The collector demonstrably ran (ticks buffered) within its budget.
    assert ticks["collector"] > 0
    assert ratios["collector_vs_baseline"] >= COLLECTOR_FLOOR, (
        f"timeline collector costs more than the 5% budget: "
        f"{ratios['collector_vs_baseline']:.3f}"
    )
