"""Figure 12 benchmark: estimated latency at 16-1024 accelerators.

Paper shapes asserted: the FPGA-over-GPU P99 speedup *grows* with cluster
size (6.1x at 16 -> 42.1x at 1024 in the paper), because the GPU's
heavy-tailed per-node distribution diverges under max-of-N sampling while
the FPGA's tight distribution is flat.
"""

from conftest import emit

from repro.harness import fig12


def test_fig12_large_scale_extrapolation(benchmark, ctx):
    result = benchmark.pedantic(
        fig12.run,
        args=(ctx,),
        kwargs=dict(counts=(16, 64, 256, 1024), history_size=8000, n_queries=3000),
        rounds=1,
        iterations=1,
    )
    emit("Figure 12: large-scale P99 extrapolation", result.format())

    # FPGA wins P99 at every size.
    for n in result.counts:
        assert result.speedup(n) > 1.5, n

    # The speedup grows with the cluster size (paper: 6.1x -> 42.1x; the
    # growth factor here is smaller because the GPU model's tail, while
    # heavy, is milder than the measured Faiss-GPU one).
    assert result.speedup(1024) > 1.3 * result.speedup(16)

    # FPGA P99 stays nearly flat: its search tail saturates immediately and
    # only the logarithmic LogGP collective term grows.
    assert result.fpga_p99_us[1024] < 2.2 * result.fpga_p99_us[16]
