"""Figure 11 benchmark: single-node online latency distributions.

Paper shapes asserted (§7.3.2):
- the FPGA has by far the lowest latency *variance* (fixed pipeline logic);
- the GPU has the heaviest tail relative to its median;
- the FPGA beats the CPU at P95 (paper: 2.0-4.6x).
"""

from conftest import emit

from repro.harness import fig11


def test_fig11_latency_distributions(benchmark, ctx):
    result = benchmark.pedantic(
        fig11.run, args=(ctx,), kwargs=dict(n_queries=1500), rounds=1, iterations=1
    )
    emit("Figure 11: online latency distributions", result.format())

    spread = {
        hw: result.percentile(hw, 99) / result.percentile(hw, 50)
        for hw in ("CPU", "GPU", "FPGA")
    }
    # FPGA variance smallest; GPU tail heaviest.
    assert spread["FPGA"] < spread["CPU"] < spread["GPU"]
    assert spread["FPGA"] < 1.6

    # FPGA P95 beats CPU P95 (paper: 2.0-4.6x better).
    assert result.percentile("FPGA", 95) < result.percentile("CPU", 95)

    # GPU median is the lowest (raw flop/s), as in the paper.
    assert result.percentile("GPU", 50) < result.percentile("CPU", 50)
