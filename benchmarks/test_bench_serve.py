"""Serving benchmark: micro-batching scheduler vs batch-size-1 serving.

Measures the online serving subsystem end to end and records
``BENCH_serve.json`` at the repo root:

- **closed loop** (16 concurrent clients): QPS and p99 for batch-size-1
  serving vs the micro-batching scheduler across batch windows, and with
  the LRU query cache on a repeating query stream;
- **open loop** (Poisson arrivals at ~1.5x the batch-1 capacity): tail
  latency when the offered rate exceeds what unbatched serving sustains.

Acceptance: the scheduler beats the batch-size-1 baseline on QPS at equal
or better p99 for at least one (load, batch window) point, with results
bit-identical to direct ``IVFPQIndex.search``.

Run: ``python -m pytest benchmarks/test_bench_serve.py -s``
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.harness import serve_bench
from repro.serve import ServingEngine
from repro.serve.loadgen import run_open_loop

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

N_CLIENTS = 16
N_REQUESTS = 400
WINDOWS_US = (0.0, 1000.0, 4000.0)
N_OPEN = 300
K = serve_bench.K
NPROBE = serve_bench.NPROBE


def _row_record(row) -> dict:
    r = row.report
    return {
        "config": row.name,
        "max_batch": row.max_batch,
        "window_us": row.max_wait_us,
        "cache": row.cache,
        "qps": round(r.achieved_qps, 1),
        "p50_us": round(r.total.p50_us, 1),
        "p99_us": round(r.total.p99_us, 1),
        "mean_batch": round(r.mean_batch_size, 2),
        "cache_hits": r.cache_hits,
        "cache_misses": r.cache_misses,
    }


def test_serving_micro_batching_beats_batch1():
    result = serve_bench.run(
        n_clients=N_CLIENTS, n_requests=N_REQUESTS, windows_us=WINDOWS_US
    )

    # Functional agreement first — a fast wrong answer is not a speedup.
    assert result.bit_identical, "serving results diverged from direct search"

    base = result.baseline.report

    # Open loop: offer ~1.5x the rate batch-1 sustains; compare tails.
    index, queries = serve_bench.build_serving_index()
    rate = 1.5 * base.achieved_qps
    open_queries = queries[: min(N_OPEN, len(queries))]
    open_rows = []
    for name, mb, wait in [("batch-1", 1, 0.0), ("batched w=2000us", 16, 2000.0)]:
        with ServingEngine(index, max_batch=mb, max_wait_us=wait) as eng:
            rep = run_open_loop(eng, open_queries, K, NPROBE, rate_qps=rate, seed=5)
        open_rows.append({
            "config": name, "max_batch": mb, "window_us": wait,
            "offered_qps": round(rate, 1),
            "achieved_qps": round(rep.achieved_qps, 1),
            "p50_us": round(rep.total.p50_us, 1),
            "p99_us": round(rep.total.p99_us, 1),
            "mean_batch": round(rep.mean_batch_size, 2),
        })

    record = {
        "benchmark": "serve",
        "params": {
            **result.params,
            "n_clients": N_CLIENTS, "n_requests": N_REQUESTS,
            "n_open": len(open_queries), "open_rate_qps": round(rate, 1),
        },
        "bit_identical_to_direct_search": result.bit_identical,
        "closed_loop": [_row_record(r) for r in result.rows],
        "open_loop": open_rows,
    }
    ARTIFACT.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n{result.format()}\n-> {ARTIFACT.name}")
    print(f"open loop @ {rate:.0f} QPS offered: " + "  ".join(
        f"{r['config']}: p99 {r['p99_us']:.0f}us" for r in open_rows
    ))

    # Acceptance: some micro-batched point beats batch-1 on QPS at equal or
    # better p99 (closed loop), and the open-loop tail confirms it.
    wins = [
        r for r in result.rows
        if r.max_batch > 1 and not r.cache
        and r.report.achieved_qps > base.achieved_qps
        and r.report.total.p99_us <= base.total.p99_us
    ]
    assert wins, (
        "no micro-batched config beat batch-1 on QPS at equal-or-better p99: "
        + "; ".join(
            f"{r.name}: {r.report.achieved_qps:.0f} QPS / p99 "
            f"{r.report.total.p99_us:.0f}us" for r in result.rows
        )
    )
    assert open_rows[1]["p99_us"] < open_rows[0]["p99_us"], (
        "micro-batching should cut the open-loop tail under overload"
    )
