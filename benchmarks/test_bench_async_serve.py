"""Async connection-tier benchmark: asyncio vs thread front end.

Measures the asyncio socket front end (:mod:`repro.serve.aio`) against
the thread-per-client path across connection counts and records
``BENCH_async_serve.json`` at the repo root:

- every connection runs its own closed loop over real localhost TCP
  (binary protocol, pipeline-capable), latency measured client-side;
- the thread rows drive the same engine with one client thread per
  connection, measured identically, up to a thread cap — past it only
  the async tier can hold the connections, which is the point.

Acceptance: the async front end sustains >= 4096 concurrent connections
in one process with every request completed and results bit-identical to
direct ``IVFPQIndex.search`` through the socket protocol, and its p99 at
C=64 stays within ~1.2x of the thread front end (asserted with headroom
for single-core CI noise; the measured ratio is in the artifact).

Run: ``python -m pytest benchmarks/test_bench_async_serve.py -s``
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.harness import serve_bench

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_async_serve.json"

CONNECTIONS = (64, 512, 4096)
REQUESTS_PER_CONN = 4
THREAD_CAP = 512
#: The ~1.2x acceptance target plus noise headroom for shared runners.
P99_RATIO_BOUND = 1.45


def _row_record(row) -> dict:
    if row.report is None:
        return {
            "frontend": row.frontend, "connections": row.connections,
            "skipped": row.note,
        }
    r = row.report
    return {
        "frontend": row.frontend,
        "connections": row.connections,
        "qps": round(r.achieved_qps, 1),
        "p50_us": round(r.total.p50_us, 1),
        "p99_us": round(r.total.p99_us, 1),
        "mean_batch": round(r.mean_batch_size, 2),
        "completed": r.n_completed,
        "issued": r.n_issued,
        "connect_s": round(row.connect_s, 3),
    }


def test_async_front_end_holds_thousands_of_connections():
    result = serve_bench.run_async(
        connections=CONNECTIONS,
        requests_per_conn=REQUESTS_PER_CONN,
        thread_cap=THREAD_CAP,
    )

    # Functional agreement first — a fast wrong answer is not a speedup.
    assert result.bit_identical, (
        "results through the socket protocol diverged from direct search"
    )

    ratio = result.p99_ratio(CONNECTIONS[0])
    record = {
        "benchmark": "async_serve",
        "params": result.params,
        "bit_identical_through_socket": result.bit_identical,
        "rows": [_row_record(r) for r in result.rows],
        "max_async_connections": result.max_async_connections(),
        "p99_ratio_async_over_threads_at_c64": (
            round(ratio, 3) if ratio is not None else None
        ),
    }
    ARTIFACT.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n{result.format()}\n-> {ARTIFACT.name}")

    # Acceptance: one process holds >= 4096 connections, every request
    # served (max_async_connections only counts fully-completed sweeps).
    assert result.max_async_connections() >= 4096, (
        f"async front end completed only "
        f"{result.max_async_connections()} connections"
    )
    # And the multiplexing is not bought with tail latency at moderate
    # concurrency: p99 at the smallest sweep point within the bound.
    assert ratio is not None and ratio <= P99_RATIO_BOUND, (
        f"async p99 at C={CONNECTIONS[0]} is {ratio:.2f}x the thread "
        f"front end (bound {P99_RATIO_BOUND}x)"
    )
