"""Figure 1 benchmark: eight-FPGA vs eight-GPU distributed latency.

Paper shapes asserted: at eight accelerators the FPGA cluster wins both
median and P95 latency, and the P95 advantage exceeds the median advantage
(the tail is where the GPU's max-of-8 hurts; paper: 5.5x median, 7.6x P95).
"""

from conftest import emit

from repro.harness import fig01


def test_fig01_eight_accelerators(benchmark, ctx):
    result = benchmark.pedantic(
        fig01.run, args=(ctx,), kwargs=dict(n_queries=1200), rounds=1, iterations=1
    )
    emit("Figure 1: 8-accelerator scale-out", result.format())

    assert result.speedup(50) > 1.5, "FPGA must win the median at 8 accelerators"
    assert result.speedup(95) > 2.0, "FPGA must win P95 at 8 accelerators"
    assert result.speedup(95) > result.speedup(50) * 0.9, (
        "the tail advantage should be at least comparable to the median one"
    )
