"""Shared benchmark fixtures.

The experiment context (datasets + trained index grids) is built once per
session; each benchmark regenerates one table or figure of the paper and
asserts its shape claims.  Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pytest

from repro.harness.context import ExperimentContext, small_context


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return small_context()


def emit(title: str, text: str) -> None:
    """Print an experiment artifact so it lands in the benchmark log."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{text}\n")
