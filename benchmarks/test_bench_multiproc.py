"""Multi-process data-plane benchmark: mmap shard workers, preselect-once.

Sweeps worker-process counts over one saved index directory
(:func:`repro.harness.serve_bench.run_multiproc`) and records
``BENCH_multiproc.json`` at the repo root:

- every worker mmaps the same directory read-only and serves one
  contiguous shard over the length-prefixed socket protocol;
- the router computes OPQ/coarse/cell-selection **once per batch** and
  scatters the plan (preselect frames), so shard count multiplies scan
  throughput without multiplying coarse work;
- each sweep point is first checked bit-identical to direct
  ``IVFPQIndex.search`` through the full socket path, then load-tested
  closed-loop.

Acceptance: bit-identical answers at every worker count, coarse planned
exactly once per batch (planner counters), zero failed requests, and —
**on hosts with >= 4 CPUs** — >= 2.5x QPS at 4 workers over 1.  On
smaller hosts real parallel scaling cannot physically manifest, so the
speedup assertion is skipped while the measured ratio and the host CPU
count are still recorded honestly in the artifact.

Run: ``python -m pytest benchmarks/test_bench_multiproc.py -s``
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.harness import serve_bench

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_multiproc.json"

WORKERS = (1, 2, 4)
N_CLIENTS = 8
N_REQUESTS = 240
#: The >= 2.5x acceptance target at 4 workers, asserted only when the
#: host has enough CPUs for real parallelism.
SPEEDUP_TARGET = 2.5
MIN_CPUS_FOR_SCALING = 4


def _row_record(row) -> dict:
    r = row.report
    return {
        "workers": row.workers,
        "qps": round(r.achieved_qps, 1),
        "p50_us": round(r.total.p50_us, 1),
        "p99_us": round(r.total.p99_us, 1),
        "mean_batch": round(r.mean_batch_size, 2),
        "completed": r.n_completed,
        "issued": r.n_issued,
        "errors": r.n_errors,
        "coarse_runs": row.preselect_batches,
        "planned_queries": row.preselect_queries,
        "scatter_bytes": row.scatter_bytes,
        "worker_codes_scanned": row.worker_codes_scanned,
    }


def test_multiproc_scaling_with_preselect_once_scatter():
    result = serve_bench.run_multiproc(
        workers=WORKERS, n_clients=N_CLIENTS, n_requests=N_REQUESTS
    )

    # Functional agreement first — a fast wrong answer is not a speedup.
    assert result.bit_identical, (
        "scatter-gather through worker processes diverged from direct search"
    )
    # The tentpole invariant: coarse quantization ran once per batch at
    # the router, for every worker count (planner counters, not timing).
    assert result.coarse_once, (
        "preselect planner counters do not match the batch/request counts"
    )

    speedup = result.speedup(WORKERS[-1]) if len(WORKERS) > 1 else 1.0
    record = {
        "benchmark": "multiproc_serve",
        "params": result.params,
        "bit_identical_through_workers": result.bit_identical,
        "coarse_once_per_batch": result.coarse_once,
        "rows": [_row_record(r) for r in result.rows],
        "host_cpus": result.host_cpus,
        f"speedup_qps_{WORKERS[-1]}w_over_1w": round(speedup, 3),
        "speedup_asserted": result.host_cpus >= MIN_CPUS_FOR_SCALING,
    }
    ARTIFACT.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n{result.format()}\n-> {ARTIFACT.name}")

    # Every request at every sweep point completed; none failed.
    for row in result.rows:
        assert row.report.n_errors == 0, (
            f"{row.report.n_errors} failed requests at {row.workers} workers"
        )
        assert row.report.n_completed == row.report.n_issued

    # Real parallel scaling needs real CPUs; on a 1-2 core runner the
    # workers time-slice one core and the ratio is meaningless, so the
    # bound is only enforced where it can physically hold.
    if result.host_cpus < MIN_CPUS_FOR_SCALING:
        pytest.skip(
            f"host has {result.host_cpus} CPUs (< {MIN_CPUS_FOR_SCALING}); "
            f"measured {speedup:.2f}x at {WORKERS[-1]} workers, recorded "
            f"in {ARTIFACT.name} without asserting the scaling bound"
        )
    assert speedup >= SPEEDUP_TARGET, (
        f"{WORKERS[-1]} workers reached only {speedup:.2f}x the 1-worker "
        f"QPS on {result.host_cpus} CPUs (target {SPEEDUP_TARGET}x)"
    )
