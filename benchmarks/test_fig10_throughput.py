"""Figure 10 benchmark: batch throughput, FANNS vs CPU / GPU / fixed FPGA.

Paper shapes asserted (§7.3.1):
- FANNS >= the parameter-independent FPGA baseline everywhere, with a
  meaningful gap somewhere (paper: 1.3-23x; large-nlist dynamics behind the
  23x extreme do not arise at the scaled nlist grid — see EXPERIMENTS.md);
- FANNS beats the CPU at K in {1, 10} and the CPU catches up around K=100
  (paper: 0.8-37.2x);
- the GPU stays above the FPGA in batch throughput (paper: 5.3-22x);
- measured (simulated) QPS lands near the model prediction (paper:
  86.9-99.4 %).
"""

from conftest import emit

from repro.harness import fig10


def test_fig10_throughput(benchmark, ctx):
    result = benchmark.pedantic(
        fig10.run, args=(ctx,), kwargs=dict(n_batch_queries=200), rounds=1, iterations=1
    )
    emit("Figure 10: batch throughput", result.format())
    cells = result.cells
    assert len(cells) >= 5  # two datasets x three goals (one may be skipped)

    for key, c in cells.items():
        # Co-design never loses to the fixed design.
        assert c.fanns_vs_baseline > 0.95, key
        # GPU above FPGA in batch mode.
        assert c.gpu_vs_fanns > 2.0, key
        # Model accuracy in the paper's neighbourhood.
        assert 0.80 < c.model_accuracy < 1.15, key

    # A meaningful co-design gap exists somewhere.
    assert max(c.fanns_vs_baseline for c in cells.values()) > 1.25

    # CPU relationship flips with K: FPGA wins at small K, CPU closes in at
    # K=100 (the paper's FPGA is "slightly surpassed by the CPU when K=100").
    k_small = [c.fanns_vs_cpu for (ds, g), c in cells.items() if "R@1=" in g or "R@10=" in g]
    k_large = [c.fanns_vs_cpu for (ds, g), c in cells.items() if "R@100=" in g]
    assert max(k_small) > 1.25
    assert min(k_large) < 1.15
    assert min(k_large) <= min(k_small) + 0.15
