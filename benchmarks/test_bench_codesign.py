"""Co-design autotuner benchmark: the model held against a measurement.

Runs the full ``codesign-serve`` pipeline — train the index grid,
calibrate real min-nprobe for the recall floor, search the joint
index × R×S topology × QoS × window space, materialize the winning
design through ``build_topology`` over simulated devices in scaled
time — and records ``BENCH_codesign.json`` at the repo root so the
drift tooling tracks modeled-vs-measured model accuracy across commits.

Acceptance (what keeps the autotuner honest):

- the search finds a **non-empty frontier** for the built-in traffic
  profile (an autotuner that cannot solve its own default is broken);
- the materialized winner's results are **bit-identical** to direct
  ``IVFPQIndex.search`` (a fast wrong topology is not a win);
- the validation run completes with **zero failed requests**;
- the modeled-vs-measured QPS gap stays within
  ``CODESIGN_GAP_BOUND`` (|gap| <= 0.5) — the same bound the CI smoke
  gates via ``tools/check_codesign.py``.  The gap is dimensionless
  (scaled time cancels host speed), so it is comparable across runs
  and hosts; its drift history is the model-accuracy record.

Run: ``python -m pytest benchmarks/test_bench_codesign.py -s``
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.harness import serve_bench

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_codesign.json"


def _ranked_record(ev) -> dict:
    d = ev.design
    return {
        "nlist": d.nlist,
        "use_opq": d.use_opq,
        "nprobe": d.nprobe,
        "replicas": d.replicas,
        "shards": d.shards,
        "max_batch": d.max_batch,
        "window_us": d.window_us,
        "qos_scheme": d.qos_scheme,
        "modeled_qps": round(ev.modeled_qps, 1),
        "modeled_p99_us": round(ev.modeled_p99_us, 1),
        "utilization": round(ev.utilization, 3),
    }


def test_codesign_search_and_validated_winner():
    result = serve_bench.run_codesign(quick=True, validate=True)
    report = result.report

    assert not report.empty, (
        "co-design search returned an empty frontier for the built-in "
        f"traffic profile (pruned: {report.prune_counts})"
    )
    v = result.validation
    assert v is not None, "validate=True produced no validation record"

    record = {
        "benchmark": "codesign",
        "params": result.params,
        "traffic": report.traffic.to_dict(),
        "n_enumerated": report.n_enumerated,
        "n_feasible": report.n_feasible,
        "prune_counts": dict(sorted(report.prune_counts.items())),
        "frontier_top": [_ranked_record(ev) for ev in report.ranked[:5]],
        "winner_spec": result.spec.to_dict(),
        "bit_identical_to_direct_search": v.bit_identical,
        "time_scale": round(v.time_scale, 2),
        # The drift-tracked leaves: modeled/measured throughput and the
        # dimensionless model error (check_bench's metric filter matches
        # qps, p99, and gap keys).
        "modeled_qps": round(v.modeled_qps, 2),
        "measured_qps": round(v.measured_qps, 2),
        "qps_gap": round(v.qps_gap, 4),
        "modeled_p99_us": round(v.modeled_p99_us, 1),
        "measured_p99_us": round(v.measured_p99_us, 1),
        "p99_gap": round(v.p99_gap, 4),
        "n_requests": v.n_requests,
        "n_failed": v.n_failed,
        "gap_bound": serve_bench.CODESIGN_GAP_BOUND,
    }
    ARTIFACT.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n{result.format()}\n-> {ARTIFACT.name}")

    assert v.bit_identical, (
        "materialized winner's results diverged from direct search"
    )
    assert v.n_failed == 0, f"validation run had {v.n_failed} failed request(s)"
    assert abs(v.qps_gap) <= serve_bench.CODESIGN_GAP_BOUND, (
        f"modeled-vs-measured QPS gap {v.qps_gap:+.3f} exceeds the "
        f"+-{serve_bench.CODESIGN_GAP_BOUND} bound (modeled "
        f"{v.modeled_qps:.1f} vs measured {v.measured_qps:.1f} QPS)"
    )
