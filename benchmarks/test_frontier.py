"""Recall-QPS frontier benchmark (extension beyond the paper's fixed goals).

Checks the frontier view is consistent with Figure 10's structure:
- recall is monotone in nprobe;
- every platform's QPS is non-increasing in nprobe;
- the GPU curve sits above the FPGA curve at matched nprobe (batch mode).
"""

from conftest import emit

from repro.harness import frontier


def test_recall_qps_frontier(benchmark, ctx):
    result = benchmark.pedantic(
        frontier.run,
        args=(ctx,),
        kwargs=dict(nprobes=(1, 4, 16, 32), n_queries=100),
        rounds=1,
        iterations=1,
    )
    emit("Recall-QPS frontier", result.format())

    recalls = [p.recall for p in result.points]
    assert recalls == sorted(recalls)

    for platform in ("FPGA", "CPU", "GPU"):
        curve = [p.qps[platform] for p in result.points]
        assert all(a >= b * 0.999 for a, b in zip(curve, curve[1:])), platform

    for p in result.points:
        assert p.qps["GPU"] > p.qps["FPGA"]
