"""Ablation: analytic performance model vs cycle simulator.

The paper validates its model against real bitstreams: measured QPS reaches
86.9-99.4 % of the prediction (§7.3.1).  We reproduce the comparison with
the cycle simulator standing in for the hardware, sweeping several designs
to show the model is consistently close and never wildly optimistic.
"""

import numpy as np
from conftest import emit

from repro.core.config import AcceleratorConfig, AlgorithmParams
from repro.core.perf_model import predict
from repro.harness.formatting import format_table
from repro.sim.accelerator import AcceleratorSimulator


def test_model_vs_simulator(benchmark, ctx):
    ds = ctx.dataset("sift-like")
    fanns = ctx.framework("sift-like")
    cands = fanns.explorer.build(ds, [128], opq_options=(False,))
    cand = cands[0]
    queries = ds.queries[:200]

    designs = [
        dict(n_ivf_pes=4, n_lut_pes=4, n_pq_pes=8, selk_arch="HPQ"),
        dict(n_ivf_pes=8, n_lut_pes=8, n_pq_pes=16, selk_arch="HSMPQG"),
        dict(n_ivf_pes=2, n_lut_pes=12, n_pq_pes=32, selk_arch="HSMPQG"),
    ]

    def run():
        rows = []
        for spec in designs:
            params = AlgorithmParams(
                d=ds.d, nlist=128, nprobe=8, k=10, m=fanns.m, ksub=fanns.ksub
            )
            cfg = AcceleratorConfig(params=params, **spec)
            pred = predict(cfg, cand.profile)
            sim = AcceleratorSimulator(
                cand.index, cfg, workload_scale=fanns.workload_scale
            )
            measured = sim.run_batch(queries).qps
            rows.append(
                [
                    f"ivf={spec['n_ivf_pes']} lut={spec['n_lut_pes']} "
                    f"pq={spec['n_pq_pes']} {spec['selk_arch']}",
                    pred.qps,
                    measured,
                    measured / pred.qps,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation: model vs simulator",
        format_table(["design", "predicted QPS", "simulated QPS", "ratio"], rows),
    )
    ratios = np.array([r[3] for r in rows])
    # The paper's measured/predicted band, with slack for workload-estimator
    # differences on skewed synthetic cells.
    assert (ratios > 0.75).all()
    assert (ratios < 1.15).all()
