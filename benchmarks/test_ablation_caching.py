"""Ablation: on-chip index caching vs HBM streaming (Table 2's "Caches").

Claims checked:
- caching the IVF index on-chip halves Stage IVFDist's initiation interval
  (throughput doubles when IVFDist-bound) at a URAM cost;
- for large nlist the cache no longer fits the budget, so the enumerator
  must fall back to HBM designs — "if nlist is large enough, caching the
  IVF index on-chip is not a choice at all" (§3.3).
"""

import numpy as np
from conftest import emit

from repro.core.config import AcceleratorConfig, AlgorithmParams
from repro.core.design_space import enumerate_designs
from repro.core.perf_model import IndexProfile, predict
from repro.core.timing import stage_cycles
from repro.harness.formatting import format_table
from repro.hw.device import U55C


def test_caching_ablation(benchmark):
    params = AlgorithmParams(d=128, nlist=2**14, nprobe=16, k=10)
    rows = []

    def run():
        for cache in (True, False):
            cfg = AcceleratorConfig(
                params=params, n_ivf_pes=8, n_lut_pes=8, n_pq_pes=16,
                ivf_cache_on_chip=cache,
            )
            sc = stage_cycles(cfg, codes_per_query=200_000)
            rows.append(
                ["on-chip" if cache else "HBM", sc["IVFDist"].occupancy,
                 cfg.ivf_pe_spec().resources.uram * cfg.n_ivf_pes]
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation: IVF index caching",
        format_table(["IVF store", "IVFDist occupancy (cycles)", "URAM"], rows),
    )

    # On-chip caching halves the stage occupancy but costs URAM.
    assert rows[1][1] == 2 * rows[0][1]
    assert rows[0][2] > rows[1][2]

    # At huge nlist the cached variant must disappear from the valid set.
    big = AlgorithmParams(d=128, nlist=2**20, nprobe=16, k=10)
    caches = {
        cfg.ivf_cache_on_chip
        for cfg in enumerate_designs(big, U55C, pe_grid=(8, 16))
    }
    assert caches == {False}

    # And the performance model sees the caching benefit end-to-end when
    # IVFDist-bound.
    profile = IndexProfile(
        nlist=2**14, use_opq=False, cell_sizes=np.full(2**14, 500)
    )
    qps = {}
    for cache in (True, False):
        cfg = AcceleratorConfig(
            params=params, n_ivf_pes=4, n_lut_pes=8, n_pq_pes=32,
            ivf_cache_on_chip=cache,
        )
        qps[cache] = predict(cfg, profile).qps
    assert qps[True] > 1.5 * qps[False]
