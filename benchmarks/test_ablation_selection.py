"""Ablation: HPQ vs HSMPQG K-selection microarchitecture.

DESIGN.md §5 calls out the selection-stage choice.  Claims checked:
- at K=10 with many producer streams, HSMPQG saves LUTs over HPQ (this is
  why the paper's K=10 accelerator chose it);
- at K=100 with few streams HSMPQG is not even constructible (s >= z) and
  HPQ is the only choice, as in the paper's K=100 accelerator;
- both designs are *functionally exact*: they select the true top-K.
"""

import numpy as np
from conftest import emit

from repro.harness.formatting import format_table
from repro.hw.selection import HPQ, HSMPQG, valid_selectors


def test_selection_ablation(benchmark):
    rows = []
    rng = np.random.default_rng(0)

    def sweep():
        for z in (16, 36, 64):
            for s in (1, 10):
                for sel in valid_selectors(z, s):
                    rows.append(
                        [f"z={z}", f"s={s}", sel.arch, f"{sel.resources.lut:,.0f}",
                         sel.n_input_streams]
                    )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation: selection microarchitecture LUT cost",
        format_table(["streams", "results", "arch", "LUT", "#InStream"], rows),
    )

    # HSMPQG wins at (z=36, s=10): the paper's K=10 choice.
    assert HSMPQG(36, 10).resources.lut < HPQ(36, 10).resources.lut
    # Only HPQ is valid at K=100 with 9 producers: the paper's K=100 choice.
    assert [s.arch for s in valid_selectors(9, 100)] == ["HPQ"]

    # Functional exactness of both options.
    vals = rng.standard_normal((36, 64))
    expect = np.sort(vals.ravel())[:10]
    for sel in (HPQ(36, 10), HSMPQG(36, 10)):
        got, _ = sel.select(vals)
        np.testing.assert_allclose(got, expect)
