"""Ablation: device sensitivity of the co-design.

FANNS takes the FPGA device as an input (Figure 4); the optimal design must
adapt to the resource balance of the card.  We compare the U55C (the
paper's card) against a U250-class card (more LUTs/DSPs) and a small test
device: bigger budgets must never *hurt* the achievable QPS, and the small
device must force a smaller design.
"""

import numpy as np
from conftest import emit

from repro.core.config import AlgorithmParams
from repro.core.design_space import enumerate_designs
from repro.core.perf_model import IndexProfile, predict
from repro.core.resource_model import total_resources
from repro.harness.formatting import format_table
from repro.hw.device import SMALL_DEVICE, U250, U55C

PARAMS = AlgorithmParams(d=128, nlist=2**13, nprobe=17, k=10)
PROFILE = IndexProfile(
    nlist=2**13, use_opq=False,
    cell_sizes=np.full(2**13, 100_000_000 // 2**13, dtype=np.int64),
)
GRID = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48)


def best(device):
    top = None
    for cfg in enumerate_designs(PARAMS, device, pe_grid=GRID):
        pred = predict(cfg, PROFILE)
        if top is None or pred.qps > top[0]:
            top = (pred.qps, cfg)
    return top


def test_device_sensitivity(benchmark):
    def run():
        return {dev.name: best(dev) for dev in (SMALL_DEVICE, U55C, U250)}

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, (qps, cfg) in result.items():
        rows.append([name, qps, cfg.n_ivf_pes, cfg.n_lut_pes, cfg.n_pq_pes, cfg.selk_arch])
    emit(
        "Ablation: device sensitivity",
        format_table(["device", "best QPS", "ivf", "lut", "pq", "selk"], rows),
    )

    q_small = result[SMALL_DEVICE.name][0]
    q_u55c = result[U55C.name][0]
    q_u250 = result[U250.name][0]
    # Bigger budget never hurts.
    assert q_u55c >= q_small
    assert q_u250 >= q_u55c
    # The small device forces a materially smaller accelerator.
    small_cfg = result[SMALL_DEVICE.name][1]
    u55c_cfg = result[U55C.name][1]
    assert total_resources(small_cfg).lut < total_resources(u55c_cfg).lut
