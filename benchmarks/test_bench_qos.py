"""Multi-tenant QoS benchmark: noisy-neighbor isolation + adaptive window.

Measures the QoS serving tier end to end through the real engine stack —
token-bucket admission quotas, weighted fair queueing
(:class:`~repro.serve.qos.WFQDiscipline`), and the SLO-driven adaptive
batch window — over a simulated accelerator device of known capacity, and
records ``BENCH_qos.json`` at the repo root.

Acceptance (the isolation claims the QoS tier must deliver):

- results through WFQ + quotas + the adaptive window are **bit-identical**
  to direct ``IVFPQIndex.search`` (QoS reorders requests, never answers);
- under a 2x-capacity aggressor burst, the victim tenants' p99 through the
  plain FIFO queue blows up (>= 10x the QoS p99 here, growing with the
  backlog), while the QoS engine holds it **within 3x of the victims'
  isolated baseline**;
- the adaptive window sits on the latency/throughput frontier neither
  fixed setting reaches: at low load its p99 stays near the greedy
  window's (<= 0.7x the large fixed window's p99 — no idle waiting), and
  under load it matches the large window's batch efficiency (<= 0.85x the
  greedy window's device busy-time per request) while keeping p99 within
  the SLO.

Run: ``python -m pytest benchmarks/test_bench_qos.py -s``
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.harness import serve_bench

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_qos.json"

VICTIMS = 2
SLO_US = 40_000.0

#: Acceptance bounds (see module docstring); measured margins are several
#: times larger, so shared-runner noise has room (typical measured values:
#: QoS inflation ~1.3x, FIFO ~95x QoS, adaptive/fixed low ~0.45,
#: adaptive/greedy low ~1.0, adaptive/greedy busy ~0.78, p99 ~0.7x SLO).
QOS_VS_ISOLATED_MAX = 3.0
FIFO_VS_QOS_MIN = 10.0
ADAPTIVE_VS_FIXED_LOW_MAX = 0.7
ADAPTIVE_VS_GREEDY_LOW_MAX = 1.5
ADAPTIVE_BUSY_VS_GREEDY_HIGH_MAX = 0.9
#: The SLO claim tolerates a one-off host stall spiking the measured tail
#: past the target the controller steered to.
ADAPTIVE_P99_VS_SLO_MAX = 1.25


def _tenant_record(row) -> dict:
    r = row.report
    return {
        "mode": row.mode,
        "tenant": row.tenant,
        "offered_qps": round(row.offered_qps, 1),
        "completed": r.n_completed,
        "shed": r.n_shed,
        "p50_us": round(r.total.p50_us, 1),
        "p99_us": round(r.total.p99_us, 1),
    }


def _window_record(row) -> dict:
    r = row.report
    return {
        "load": row.load,
        "config": row.config,
        "rate_qps": round(row.rate_qps, 1),
        "p50_us": round(r.total.p50_us, 1),
        "p99_us": round(r.total.p99_us, 1),
        "mean_batch": round(r.mean_batch_size, 2),
        "busy_us_per_req": round(row.busy_us_per_req, 1),
        "window_us": round(row.final_window_us, 1),
    }


def test_qos_isolates_victims_and_adapts_window():
    result = serve_bench.run_qos(victims=VICTIMS, slo_us=SLO_US)

    # Functional agreement first — QoS must only reorder, never rewrite.
    assert result.bit_identical, "QoS-scheduled results diverged from direct search"

    iso = result.victim_p99("isolated")
    fifo = result.victim_p99("fifo")
    qos = result.victim_p99("qos")

    record = {
        "benchmark": "qos",
        "params": result.params,
        "bit_identical_to_direct_search": result.bit_identical,
        "noisy_neighbor": [_tenant_record(r) for r in result.tenant_rows],
        "adaptive_window": [_window_record(r) for r in result.window_rows],
        "victim_p99_isolated_us": round(iso, 1),
        "victim_p99_fifo_us": round(fifo, 1),
        "victim_p99_qos_us": round(qos, 1),
        "fifo_inflation_x": round(fifo / max(iso, 1e-9), 2),
        "qos_inflation_x": round(qos / max(iso, 1e-9), 2),
    }
    ARTIFACT.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n{result.format()}\n-> {ARTIFACT.name}")

    # (a) Noisy neighbor: FIFO lets the aggressor inflate the victims'
    # tail without bound (it grows with the backlog); QoS must not.
    assert qos <= QOS_VS_ISOLATED_MAX * iso, (
        f"victim p99 under QoS is {qos:.0f}us, more than "
        f"{QOS_VS_ISOLATED_MAX}x its isolated {iso:.0f}us"
    )
    assert fifo >= FIFO_VS_QOS_MIN * qos, (
        f"FIFO victim p99 {fifo:.0f}us is not clearly worse than QoS "
        f"{qos:.0f}us — the aggressor burst did not saturate the queue"
    )

    # (b) Adaptive window, low load: no idle waiting — near the greedy
    # window, well under the fixed window's built-in delay.
    low_adaptive = result.window_row("low", "adaptive").report.total.p99_us
    low_fixed = result.window_row("low", "w=fixed").report.total.p99_us
    low_greedy = result.window_row("low", "w=0").report.total.p99_us
    assert low_adaptive <= ADAPTIVE_VS_FIXED_LOW_MAX * low_fixed, (
        f"adaptive p99 {low_adaptive:.0f}us did not beat the fixed window "
        f"{low_fixed:.0f}us at low load"
    )
    assert low_adaptive <= ADAPTIVE_VS_GREEDY_LOW_MAX * low_greedy, (
        f"adaptive p99 {low_adaptive:.0f}us strayed from the greedy window "
        f"{low_greedy:.0f}us at low load"
    )

    # (b) Adaptive window, high load: batch efficiency of the large window
    # (modeled device busy-time per request is deterministic), p99 within
    # the SLO the controller was given.
    high_adaptive = result.window_row("high", "adaptive")
    high_greedy = result.window_row("high", "w=0")
    assert (
        high_adaptive.busy_us_per_req
        <= ADAPTIVE_BUSY_VS_GREEDY_HIGH_MAX * high_greedy.busy_us_per_req
    ), (
        f"adaptive busy/req {high_adaptive.busy_us_per_req:.0f}us did not "
        f"beat greedy {high_greedy.busy_us_per_req:.0f}us under load"
    )
    assert high_adaptive.report.total.p99_us <= ADAPTIVE_P99_VS_SLO_MAX * SLO_US, (
        f"adaptive p99 {high_adaptive.report.total.p99_us:.0f}us exceeded "
        f"its {SLO_US:.0f}us SLO under load beyond the noise allowance"
    )
