"""Exact brute-force search — the ground-truth oracle for recall evaluation."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ann.distances import l2_sq_blocked, topk_smallest

__all__ = ["FlatIndex", "brute_force_topk"]


def brute_force_topk(
    queries: np.ndarray, base: np.ndarray, k: int, block: int = 512
) -> tuple[np.ndarray, np.ndarray]:
    """Exact top-k by blocked exhaustive scan.

    Returns (indices (q, k), distances (q, k)) with distances squared-L2,
    sorted ascending per query.
    """
    queries = np.atleast_2d(queries)
    dists = l2_sq_blocked(queries, base, block=block)
    idx, vals = topk_smallest(dists, k, axis=1)
    return idx, vals


@dataclass
class FlatIndex:
    """Minimal exact index with the same search signature as IVFPQIndex."""

    base: np.ndarray = field(repr=False)

    def search(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        return brute_force_topk(queries, self.base, k)

    @property
    def ntotal(self) -> int:
        return int(self.base.shape[0])
