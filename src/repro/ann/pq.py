"""Product quantization (Jégou et al. 2011), the PQ half of IVF-PQ.

A ``d``-dimensional vector is split into ``m`` sub-vectors; each sub-space is
clustered into ``ksub`` (default 256) centroids so a vector compresses to
``m`` bytes.  Query-time distances use a per-query lookup table (Stage
BuildLUT in the paper) plus ``m`` table lookups and an add-reduction per code
(Stage PQDist / asymmetric distance computation, Eq. 1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ann.distances import l2_sq_blocked, pairwise_argmin
from repro.ann.kmeans import kmeans_fit

__all__ = ["ProductQuantizer"]


@dataclass
class ProductQuantizer:
    """PQ codec with ``m`` sub-quantizers of ``ksub`` centroids each.

    Parameters
    ----------
    d : total vector dimensionality (must be divisible by ``m``).
    m : number of sub-spaces = bytes per code (the paper uses m=16).
    ksub : centroids per sub-space; 256 keeps codes at one byte per sub-space.
    """

    d: int
    m: int = 16
    ksub: int = 256
    seed: int = 0
    n_iter: int = 15
    #: (m, ksub, dsub) codebooks, populated by :meth:`train`.
    codebooks: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.d % self.m != 0:
            raise ValueError(f"d={self.d} not divisible by m={self.m}")
        if not 1 <= self.ksub <= 256:
            raise ValueError("ksub must be in [1, 256] to fit codes in one byte")

    # ------------------------------------------------------------------ #
    @property
    def dsub(self) -> int:
        """Dimensionality of each sub-space."""
        return self.d // self.m

    @property
    def is_trained(self) -> bool:
        return self.codebooks is not None

    def _require_trained(self) -> np.ndarray:
        if self.codebooks is None:
            raise RuntimeError("ProductQuantizer used before train()")
        return self.codebooks

    def _split(self, x: np.ndarray) -> np.ndarray:
        """(n, d) -> (n, m, dsub) view (no copy when contiguous)."""
        x = np.ascontiguousarray(np.atleast_2d(x), dtype=np.float32)
        if x.shape[1] != self.d:
            raise ValueError(f"expected dim {self.d}, got {x.shape[1]}")
        return x.reshape(x.shape[0], self.m, self.dsub)

    # ------------------------------------------------------------------ #
    def train(self, x: np.ndarray) -> "ProductQuantizer":
        """Learn the ``m`` sub-quantizer codebooks by k-means per sub-space."""
        sub = self._split(x)
        n = sub.shape[0]
        if n < self.ksub:
            raise ValueError(f"need >= ksub={self.ksub} training vectors, got {n}")
        books = np.empty((self.m, self.ksub, self.dsub), dtype=np.float32)
        for j in range(self.m):
            centroids, _, _ = kmeans_fit(
                np.ascontiguousarray(sub[:, j, :]),
                self.ksub,
                n_iter=self.n_iter,
                seed=self.seed + j,
            )
            books[j] = centroids
        self.codebooks = books
        return self

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Compress (n, d) vectors to (n, m) uint8 codes."""
        books = self._require_trained()
        sub = self._split(x)
        n = sub.shape[0]
        codes = np.empty((n, self.m), dtype=np.uint8)
        for j in range(self.m):
            codes[:, j] = pairwise_argmin(sub[:, j, :], books[j]).astype(np.uint8)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct (n, d) float32 approximations from (n, m) codes."""
        books = self._require_trained()
        codes = np.atleast_2d(codes)
        if codes.shape[1] != self.m:
            raise ValueError(f"expected {self.m} code bytes, got {codes.shape[1]}")
        # Fancy-index each sub-codebook: (n, m, dsub) -> (n, d).
        out = books[np.arange(self.m)[None, :], codes.astype(np.int64), :]
        return out.reshape(codes.shape[0], self.d)

    # ------------------------------------------------------------------ #
    def build_lut(self, query: np.ndarray) -> np.ndarray:
        """Stage BuildLUT: per-query distance table of shape (m, ksub).

        ``lut[j, c]`` = squared L2 distance between query sub-vector j and
        centroid c of sub-quantizer j.
        """
        books = self._require_trained()
        q = np.asarray(query, dtype=np.float32).reshape(self.m, self.dsub)
        diff = books - q[:, None, :]
        return np.einsum("jkd,jkd->jk", diff, diff)

    def build_luts(self, queries: np.ndarray) -> np.ndarray:
        """Batched :meth:`build_lut`: (q, d) -> (q, m, ksub)."""
        books = self._require_trained()
        qs = self._split(queries)  # (q, m, dsub)
        diff = qs[:, :, None, :] - books[None, :, :, :]
        return np.einsum("qjkd,qjkd->qjk", diff, diff)

    def adc(self, lut: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Stage PQDist: asymmetric distances for (n, m) codes given one LUT.

        Implements Eq. 1 of the paper: sum over sub-spaces of table lookups.
        """
        codes = np.atleast_2d(codes)
        # lut is (m, ksub); gather lut[j, codes[:, j]] then reduce over j.
        gathered = lut[np.arange(self.m)[None, :], codes.astype(np.int64)]
        return gathered.sum(axis=1)

    def symmetric_distance(self, codes_a: np.ndarray, codes_b: np.ndarray) -> np.ndarray:
        """Distance between two code sets via decoded representatives."""
        return np.sqrt(
            np.maximum(l2_sq_blocked(self.decode(codes_a), self.decode(codes_b)), 0.0)
        )

    # ------------------------------------------------------------------ #
    def quantization_error(self, x: np.ndarray) -> float:
        """Mean squared reconstruction error on ``x`` (lower is better)."""
        approx = self.decode(self.encode(x))
        diff = np.atleast_2d(x).astype(np.float32) - approx
        return float(np.mean(np.einsum("ij,ij->i", diff, diff)))
