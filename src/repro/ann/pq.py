"""Product quantization (Jégou et al. 2011), the PQ half of IVF-PQ.

A ``d``-dimensional vector is split into ``m`` sub-vectors; each sub-space is
clustered into ``ksub`` (default 256) centroids so a vector compresses to
``m`` bytes.  Query-time distances use a per-query lookup table (Stage
BuildLUT in the paper) plus ``m`` table lookups and an add-reduction per code
(Stage PQDist / asymmetric distance computation, Eq. 1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ann.distances import l2_sq_blocked, pairwise_argmin
from repro.ann.kmeans import kmeans_fit

__all__ = ["ProductQuantizer"]


@dataclass
class ProductQuantizer:
    """PQ codec with ``m`` sub-quantizers of ``ksub`` centroids each.

    Parameters
    ----------
    d : total vector dimensionality (must be divisible by ``m``).
    m : number of sub-spaces = bytes per code (the paper uses m=16).
    ksub : centroids per sub-space; 256 keeps codes at one byte per sub-space.
    """

    d: int
    m: int = 16
    ksub: int = 256
    seed: int = 0
    n_iter: int = 15
    #: (m, ksub, dsub) codebooks, populated by :meth:`train`.
    codebooks: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.d % self.m != 0:
            raise ValueError(f"d={self.d} not divisible by m={self.m}")
        if not 1 <= self.ksub <= 256:
            raise ValueError("ksub must be in [1, 256] to fit codes in one byte")

    # ------------------------------------------------------------------ #
    @property
    def dsub(self) -> int:
        """Dimensionality of each sub-space."""
        return self.d // self.m

    @property
    def is_trained(self) -> bool:
        return self.codebooks is not None

    def _require_trained(self) -> np.ndarray:
        if self.codebooks is None:
            raise RuntimeError("ProductQuantizer used before train()")
        return self.codebooks

    def _split(self, x: np.ndarray) -> np.ndarray:
        """(n, d) -> (n, m, dsub) view (no copy when contiguous)."""
        x = np.ascontiguousarray(np.atleast_2d(x), dtype=np.float32)
        if x.shape[1] != self.d:
            raise ValueError(f"expected dim {self.d}, got {x.shape[1]}")
        return x.reshape(x.shape[0], self.m, self.dsub)

    # ------------------------------------------------------------------ #
    def train(self, x: np.ndarray) -> "ProductQuantizer":
        """Learn the ``m`` sub-quantizer codebooks by k-means per sub-space."""
        sub = self._split(x)
        n = sub.shape[0]
        if n < self.ksub:
            raise ValueError(f"need >= ksub={self.ksub} training vectors, got {n}")
        books = np.empty((self.m, self.ksub, self.dsub), dtype=np.float32)
        for j in range(self.m):
            centroids, _, _ = kmeans_fit(
                np.ascontiguousarray(sub[:, j, :]),
                self.ksub,
                n_iter=self.n_iter,
                seed=self.seed + j,
            )
            books[j] = centroids
        self.codebooks = books
        return self

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Compress (n, d) vectors to (n, m) uint8 codes."""
        books = self._require_trained()
        sub = self._split(x)
        n = sub.shape[0]
        codes = np.empty((n, self.m), dtype=np.uint8)
        for j in range(self.m):
            codes[:, j] = pairwise_argmin(sub[:, j, :], books[j]).astype(np.uint8)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct (n, d) float32 approximations from (n, m) codes."""
        books = self._require_trained()
        codes = np.atleast_2d(codes)
        if codes.shape[1] != self.m:
            raise ValueError(f"expected {self.m} code bytes, got {codes.shape[1]}")
        # Fancy-index each sub-codebook: (n, m, dsub) -> (n, d).
        out = books[np.arange(self.m)[None, :], codes.astype(np.int64), :]
        return out.reshape(codes.shape[0], self.d)

    # ------------------------------------------------------------------ #
    def build_lut(self, query: np.ndarray) -> np.ndarray:
        """Stage BuildLUT: per-query distance table of shape (m, ksub).

        ``lut[j, c]`` = squared L2 distance between query sub-vector j and
        centroid c of sub-quantizer j.  Delegates to :meth:`build_luts` so
        single-query and batched tables are computed identically.
        """
        q = np.asarray(query, dtype=np.float32).reshape(1, self.d)
        return self.build_luts(q)[0]

    #: Fixed GEMM row-chunk for build_luts.  Every cross-term matmul runs at
    #: exactly this many rows (the tail is zero-padded), so BLAS always takes
    #: the same kernel path and a table row's bits never depend on how many
    #: queries were batched together (single-row calls would otherwise hit a
    #: gemv kernel with a different reduction order).
    _LUT_ROW_CHUNK = 256

    def build_luts(self, queries: np.ndarray) -> np.ndarray:
        """Batched :meth:`build_lut`: (q, d) -> (q, m, ksub).

        Uses the ``|q-c|^2 = |q|^2 - 2 q.c + |c|^2`` expansion so the cross
        term is a batched GEMM over the sub-space axis (the same push-into-
        BLAS idiom as :mod:`repro.ann.distances`), evaluated in fixed-size
        row chunks for batch-size-independent results.
        """
        books = self._require_trained()
        qs = self._split(queries)  # (q, m, dsub)
        n = qs.shape[0]
        chunk = self._LUT_ROW_CHUNK
        books_t = np.ascontiguousarray(books.transpose(0, 2, 1))  # (m, dsub, ksub)
        cross = np.empty((n, self.m, self.ksub), dtype=np.float32)
        for s in range(0, n, chunk):
            block = qs[s : s + chunk]
            nb = block.shape[0]
            if nb < chunk:
                block = np.concatenate(
                    [block, np.zeros((chunk - nb, self.m, self.dsub), np.float32)]
                )
            part = np.matmul(block.transpose(1, 0, 2), books_t)  # (m, chunk, ksub)
            cross[s : s + nb] = part.transpose(1, 0, 2)[:nb]
        q_sq = np.einsum("qjd,qjd->qj", qs, qs)
        c_sq = np.einsum("jkd,jkd->jk", books, books)
        lut = q_sq[:, :, None] + c_sq[None, :, :] - 2.0 * cross
        np.maximum(lut, 0.0, out=lut)
        return lut

    def adc(self, lut: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Stage PQDist: asymmetric distances for (n, m) codes given one LUT.

        Implements Eq. 1 of the paper: sum over sub-spaces of table lookups.
        """
        codes = np.atleast_2d(codes)
        # lut is (m, ksub); gather lut[j, codes[:, j]] then reduce over j.
        gathered = lut[np.arange(self.m)[None, :], codes.astype(np.int64)]
        return gathered.sum(axis=1)

    def symmetric_distance(self, codes_a: np.ndarray, codes_b: np.ndarray) -> np.ndarray:
        """Distance between two code sets via decoded representatives."""
        return np.sqrt(
            np.maximum(l2_sq_blocked(self.decode(codes_a), self.decode(codes_b)), 0.0)
        )

    # ------------------------------------------------------------------ #
    def quantization_error(self, x: np.ndarray) -> float:
        """Mean squared reconstruction error on ``x`` (lower is better)."""
        approx = self.decode(self.encode(x))
        diff = np.atleast_2d(x).astype(np.float32) - approx
        return float(np.mean(np.einsum("ij,ij->i", diff, diff)))
