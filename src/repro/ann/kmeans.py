"""Vectorized k-means (k-means++ seeding, Lloyd iterations).

Used for (a) training the IVF coarse quantizer (nlist centroids) and (b)
training each PQ sub-quantizer (256 centroids per sub-space).  Matches the
behaviour Faiss uses for index training, which is what the paper's index
explorer drives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ann.distances import l2_sq_blocked, pairwise_argmin

__all__ = ["KMeans", "kmeans_fit", "kmeans_pp_init"]


def kmeans_pp_init(
    x: np.ndarray, k: int, rng: np.random.Generator, n_local_trials: int | None = None
) -> np.ndarray:
    """k-means++ seeding (Arthur & Vassilvitskii 2007) with local trials.

    Returns a (k, d) array of initial centroids chosen to spread proportional
    to squared distance from already-chosen seeds.
    """
    n, d = x.shape
    if k > n:
        raise ValueError(f"k={k} exceeds number of points n={n}")
    if n_local_trials is None:
        n_local_trials = 2 + int(np.log(max(k, 2)))
    centers = np.empty((k, d), dtype=x.dtype)
    first = int(rng.integers(n))
    centers[0] = x[first]
    closest = l2_sq_blocked(x, centers[0:1]).ravel()
    for c in range(1, k):
        total = closest.sum()
        if total <= 0:
            # All points coincide with chosen centers; fill with random picks.
            centers[c:] = x[rng.integers(0, n, size=k - c)]
            break
        # Sample candidate seeds proportional to D^2, keep the best.
        probs = closest / total
        candidates = rng.choice(n, size=n_local_trials, p=probs)
        cand_dist = l2_sq_blocked(x, x[candidates])
        pot = np.minimum(closest[:, None], cand_dist).sum(axis=0)
        best = int(np.argmin(pot))
        centers[c] = x[candidates[best]]
        closest = np.minimum(closest, cand_dist[:, best])
    return centers


def _assign(x: np.ndarray, centers: np.ndarray) -> np.ndarray:
    return pairwise_argmin(x, centers)


def _update(
    x: np.ndarray, assign: np.ndarray, k: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Recompute centroids; reseed empty clusters from the largest cluster."""
    d = x.shape[1]
    centers = np.zeros((k, d), dtype=np.float64)
    np.add.at(centers, assign, x.astype(np.float64, copy=False))
    counts = np.bincount(assign, minlength=k)
    nonempty = counts > 0
    centers[nonempty] /= counts[nonempty, None]
    if not nonempty.all():
        # Re-seed empty clusters with random points of the biggest cluster,
        # the same strategy Faiss uses to keep nlist populated.
        big = int(np.argmax(counts))
        members = np.flatnonzero(assign == big)
        for ci in np.flatnonzero(~nonempty):
            pick = members[int(rng.integers(len(members)))]
            centers[ci] = x[pick] + 1e-6 * rng.standard_normal(d)
    return centers.astype(x.dtype, copy=False), counts


def kmeans_fit(
    x: np.ndarray,
    k: int,
    *,
    n_iter: int = 20,
    seed: int = 0,
    tol: float = 1e-4,
    verbose: bool = False,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Fit k-means; returns (centroids (k, d), assignment (n,), inertia).

    Stops early when the relative inertia improvement drops below ``tol``.
    """
    x = np.ascontiguousarray(np.atleast_2d(x))
    if x.ndim != 2:
        raise ValueError("x must be 2-D")
    rng = np.random.default_rng(seed)
    centers = kmeans_pp_init(x, k, rng)
    prev_inertia = np.inf
    assign = _assign(x, centers)
    for it in range(n_iter):
        centers, _ = _update(x, assign, k, rng)
        assign = _assign(x, centers)
        diff = x - centers[assign]
        inertia = float(np.einsum("ij,ij->", diff, diff))
        if verbose:
            print(f"kmeans iter {it}: inertia={inertia:.4g}")
        if prev_inertia - inertia <= tol * max(prev_inertia, 1e-30):
            break
        prev_inertia = inertia
    diff = x - centers[assign]
    inertia = float(np.einsum("ij,ij->", diff, diff))
    return centers, assign, inertia


@dataclass
class KMeans:
    """Scikit-learn-style wrapper over :func:`kmeans_fit`.

    Attributes are populated by :meth:`fit`: ``centroids_`` (k, d),
    ``labels_`` (n,), ``inertia_``.
    """

    k: int
    n_iter: int = 20
    seed: int = 0
    tol: float = 1e-4
    centroids_: np.ndarray | None = field(default=None, repr=False)
    labels_: np.ndarray | None = field(default=None, repr=False)
    inertia_: float | None = None

    def fit(self, x: np.ndarray) -> "KMeans":
        self.centroids_, self.labels_, self.inertia_ = kmeans_fit(
            x, self.k, n_iter=self.n_iter, seed=self.seed, tol=self.tol
        )
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.centroids_ is None:
            raise RuntimeError("KMeans.predict called before fit")
        return _assign(np.atleast_2d(x), self.centroids_)
