"""Shard and replica views of a trained IVF-PQ index.

The multi-accelerator layout of §7.3.2: every node runs the *same* FANNS
design (same coarse centroids, PQ codebooks, OPQ rotation) over its own
disjoint slice of the dataset.  :func:`partition_index` produces that
layout as ``n_parts`` zero-copy shard views — each shard holds a
contiguous ``1/n_parts`` slice of every packed cell slab, so partitioning
a paper-scale index moves no data (see
:meth:`repro.ann.invlists.PackedInvLists.shard`).

Two invariants make sharded scatter-gather exact (see
:mod:`repro.ann.merge`):

- shards share the trained quantizers by reference, so every shard probes
  bit-identically the same cells for a given query;
- each stored vector lands in exactly one shard, so candidate sets
  partition the unpartitioned index's candidate set and ids stay unique
  across shards.

:func:`replicate_index` is the throughput-scaling counterpart: views over
the *same* data that share the packed storage but carry independent
per-object mutable state (stats counters, gather caches), so concurrent
searcher threads never race on one object.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.ann.ivf import IVFPQIndex, IVFStats

__all__ = [
    "partition_index",
    "prune_probed_cells",
    "replicate_index",
    "shard_cell_sizes",
]


def partition_index(index: IVFPQIndex, n_parts: int) -> list[IVFPQIndex]:
    """Split one trained index into ``n_parts`` disjoint shards.

    All shards share the trained quantizers (coarse centroids, PQ, OPQ) and
    slice every packed cell slab contiguously — the multi-accelerator layout
    of §7.3.2 where every node runs the same index over its own partition.
    Slicing is **zero-copy**: shards are CSR views into the parent's packed
    code/id arrays, so partitioning a paper-scale index moves no data.
    """
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1, got {n_parts}")
    lists = index.invlists
    return [
        dataclasses.replace(
            index,
            _invlists=lists.shard(part, n_parts),
            _pending=None,
            stats=IVFStats(),
        )
        for part in range(n_parts)
    ]


def shard_cell_sizes(sizes: np.ndarray, part: int, n_parts: int) -> np.ndarray:
    """Per-cell sizes of shard ``part`` of ``n_parts``, computed locally.

    Mirrors :meth:`repro.ann.invlists.PackedInvLists.shard`'s slicing
    arithmetic (``lo = starts + (sizes * part) // n``), so a router can
    derive any shard's cell occupancy from the *unpartitioned* index's
    sizes alone — no data transfer, no shard handle.  That is what lets
    the preselect-once scatter prune each shard's cell list without ever
    asking the shard.
    """
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1, got {n_parts}")
    if not 0 <= part < n_parts:
        raise ValueError(f"part must be in [0, {n_parts}), got {part}")
    sizes = np.asarray(sizes, dtype=np.int64)
    return (sizes * (part + 1)) // n_parts - (sizes * part) // n_parts


def prune_probed_cells(probed: np.ndarray, cell_sizes: np.ndarray) -> np.ndarray:
    """Replace probed cells that are empty under ``cell_sizes`` with ``-1``.

    The router-side half of per-shard cell-subset scatter: given one
    batch's (nq, nprobe) preselect plan and a shard's per-cell sizes,
    mark the slots that shard cannot contribute to (its slice of the
    cell is empty) so the worker skips their LUT/scan work entirely.
    Slot order is preserved — the scan's candidate order, and therefore
    the bit-exact merge, is unchanged.
    """
    probed = np.atleast_2d(np.asarray(probed, dtype=np.int64))
    cell_sizes = np.asarray(cell_sizes, dtype=np.int64)
    keep = probed >= 0
    safe = np.where(keep, probed, 0)
    keep &= cell_sizes[safe] > 0
    return np.where(keep, probed, -1)


def replicate_index(index: IVFPQIndex, n_replicas: int) -> list[IVFPQIndex]:
    """``n_replicas`` independently-searchable views over the same data.

    Replicas share the packed inverted lists and trained quantizers by
    reference (zero-copy — replication moves no vectors), but each view is
    its own :class:`~repro.ann.ivf.IVFPQIndex` object with fresh stats and
    per-object search caches, so replicas may serve concurrent threads
    without racing on shared mutable state.  This is the software analogue
    of deploying the same accelerator design on N devices over one shard.
    """
    if n_replicas < 1:
        raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
    lists = index.invlists  # flush pending adds once, share the snapshot
    return [
        dataclasses.replace(
            index,
            _invlists=lists,
            _pending=None,
            stats=IVFStats(),
        )
        for _ in range(n_replicas)
    ]
