"""Shard and replica views of a trained IVF-PQ index.

The multi-accelerator layout of §7.3.2: every node runs the *same* FANNS
design (same coarse centroids, PQ codebooks, OPQ rotation) over its own
disjoint slice of the dataset.  :func:`partition_index` produces that
layout as ``n_parts`` zero-copy shard views — each shard holds a
contiguous ``1/n_parts`` slice of every packed cell slab, so partitioning
a paper-scale index moves no data (see
:meth:`repro.ann.invlists.PackedInvLists.shard`).

Two invariants make sharded scatter-gather exact (see
:mod:`repro.ann.merge`):

- shards share the trained quantizers by reference, so every shard probes
  bit-identically the same cells for a given query;
- each stored vector lands in exactly one shard, so candidate sets
  partition the unpartitioned index's candidate set and ids stay unique
  across shards.

:func:`replicate_index` is the throughput-scaling counterpart: views over
the *same* data that share the packed storage but carry independent
per-object mutable state (stats counters, gather caches), so concurrent
searcher threads never race on one object.
"""

from __future__ import annotations

import dataclasses

from repro.ann.ivf import IVFPQIndex, IVFStats

__all__ = ["partition_index", "replicate_index"]


def partition_index(index: IVFPQIndex, n_parts: int) -> list[IVFPQIndex]:
    """Split one trained index into ``n_parts`` disjoint shards.

    All shards share the trained quantizers (coarse centroids, PQ, OPQ) and
    slice every packed cell slab contiguously — the multi-accelerator layout
    of §7.3.2 where every node runs the same index over its own partition.
    Slicing is **zero-copy**: shards are CSR views into the parent's packed
    code/id arrays, so partitioning a paper-scale index moves no data.
    """
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1, got {n_parts}")
    lists = index.invlists
    return [
        dataclasses.replace(
            index,
            _invlists=lists.shard(part, n_parts),
            _pending=None,
            stats=IVFStats(),
        )
        for part in range(n_parts)
    ]


def replicate_index(index: IVFPQIndex, n_replicas: int) -> list[IVFPQIndex]:
    """``n_replicas`` independently-searchable views over the same data.

    Replicas share the packed inverted lists and trained quantizers by
    reference (zero-copy — replication moves no vectors), but each view is
    its own :class:`~repro.ann.ivf.IVFPQIndex` object with fresh stats and
    per-object search caches, so replicas may serve concurrent threads
    without racing on shared mutable state.  This is the software analogue
    of deploying the same accelerator design on N devices over one shard.
    """
    if n_replicas < 1:
        raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
    lists = index.invlists  # flush pending adds once, share the snapshot
    return [
        dataclasses.replace(
            index,
            _invlists=lists,
            _pending=None,
            stats=IVFStats(),
        )
        for _ in range(n_replicas)
    ]
