"""Algorithm substrate: from-scratch IVF-PQ approximate nearest neighbor search.

Implements every algorithmic piece the paper depends on, in vectorized NumPy:

- :mod:`repro.ann.distances` — batched/blocked L2 distance kernels.
- :mod:`repro.ann.kmeans` — k-means++ / Lloyd clustering.
- :mod:`repro.ann.pq` — product quantization (encode, decode, ADC lookup).
- :mod:`repro.ann.opq` — optimized product quantization (learned rotation).
- :mod:`repro.ann.flat` — exact brute-force search (ground truth oracle).
- :mod:`repro.ann.invlists` — packed CSR inverted-list storage (contiguous
  code/id slabs, zero-copy sharding) — the layout the accelerator streams.
- :mod:`repro.ann.ivf` — the IVF-PQ index (train / add / batched search).
- :mod:`repro.ann.partition` — zero-copy shard and replica views of one
  trained index (the multi-accelerator layout).
- :mod:`repro.ann.merge` — exact top-K merge of partial results under the
  canonical (distance, id) candidate order (the scatter-gather reduce).
- :mod:`repro.ann.stages` — the six query-time search stages, individually
  callable and instrumented (the unit the hardware accelerates).
- :mod:`repro.ann.recall` — recall@K evaluation.
"""

from repro.ann.flat import FlatIndex, brute_force_topk
from repro.ann.graph import NSWGraphIndex
from repro.ann.invlists import InvListBuilder, PackedInvLists
from repro.ann.io import load_index, load_index_dir, save_index, save_index_dir
from repro.ann.ivf import IVFPQIndex
from repro.ann.kmeans import KMeans, kmeans_fit
from repro.ann.merge import merge_partial_topk, merge_topk
from repro.ann.opq import OPQTransform
from repro.ann.partition import partition_index, replicate_index
from repro.ann.pq import ProductQuantizer
from repro.ann.recall import recall_at_k
from repro.ann.stages import SearchStageTrace, StagedSearcher

__all__ = [
    "FlatIndex",
    "IVFPQIndex",
    "InvListBuilder",
    "KMeans",
    "NSWGraphIndex",
    "OPQTransform",
    "PackedInvLists",
    "ProductQuantizer",
    "SearchStageTrace",
    "StagedSearcher",
    "brute_force_topk",
    "kmeans_fit",
    "load_index",
    "load_index_dir",
    "merge_partial_topk",
    "merge_topk",
    "partition_index",
    "recall_at_k",
    "replicate_index",
    "save_index",
    "save_index_dir",
]

