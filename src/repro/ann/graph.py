"""Graph-based incremental ANN index (NSW-style) for newly inserted vectors.

§4 "Framework deployment": production vector search keeps a *primary* IVF-PQ
index for a dataset snapshot plus "an incremental (usually graph-based)
index for new vectors added since the last snapshot".  This module provides
that incremental structure: a navigable-small-world graph (Malkov et al.
2014) with greedy best-first search — insertion-friendly (no retraining)
and accurate at the small scale the delta buffer reaches between merges.

The implementation keeps full-precision vectors (the delta is small, so no
quantization is needed) and a bounded out-degree; search is a standard
beam search from a random entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ann.distances import l2_sq

__all__ = ["NSWGraphIndex"]


@dataclass
class NSWGraphIndex:
    """Navigable-small-world graph over full-precision vectors.

    Parameters
    ----------
    d : vector dimensionality.
    max_degree : out-degree bound per node (M in HNSW terms).
    ef_construction : beam width while inserting.
    ef_search : default beam width while searching.
    """

    d: int
    max_degree: int = 16
    ef_construction: int = 32
    ef_search: int = 32
    seed: int = 0

    _vectors: list[np.ndarray] = field(default_factory=list, repr=False)
    _ids: list[int] = field(default_factory=list, repr=False)
    _neighbors: list[list[int]] = field(default_factory=list, repr=False)
    _rng: np.random.Generator = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.d <= 0:
            raise ValueError(f"d must be positive, got {self.d}")
        if self.max_degree < 1:
            raise ValueError(f"max_degree must be >= 1, got {self.max_degree}")
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------ #
    @property
    def ntotal(self) -> int:
        return len(self._vectors)

    def _matrix(self) -> np.ndarray:
        return np.vstack(self._vectors) if self._vectors else np.empty((0, self.d))

    # ------------------------------------------------------------------ #
    def _beam_search(
        self, query: np.ndarray, ef: int, n_entries: int = 2
    ) -> list[tuple[float, int]]:
        """Greedy beam search; returns [(dist, node)] sorted ascending."""
        n = self.ntotal
        if n == 0:
            return []
        entries = self._rng.choice(n, size=min(n_entries, n), replace=False)
        visited: set[int] = set()
        cand: list[tuple[float, int]] = []
        for e in entries:
            dist = float(l2_sq(query[None, :], self._vectors[e][None, :])[0, 0])
            cand.append((dist, int(e)))
            visited.add(int(e))
        cand.sort()
        best = list(cand)
        frontier = list(cand)
        while frontier:
            frontier.sort()
            d_cur, node = frontier.pop(0)
            worst = best[min(ef, len(best)) - 1][0]
            if d_cur > worst and len(best) >= ef:
                break
            fresh = [nb for nb in self._neighbors[node] if nb not in visited]
            if not fresh:
                continue
            visited.update(fresh)
            mat = np.vstack([self._vectors[nb] for nb in fresh])
            dists = l2_sq(query[None, :], mat)[0]
            for nb, dist in zip(fresh, dists):
                pair = (float(dist), nb)
                best.append(pair)
                frontier.append(pair)
            best.sort()
            best = best[: max(ef, 1)]
        return best

    def _prune(self, node: int) -> None:
        """Keep only the max_degree closest neighbors of ``node``."""
        nbs = self._neighbors[node]
        if len(nbs) <= self.max_degree:
            return
        mat = np.vstack([self._vectors[nb] for nb in nbs])
        dists = l2_sq(self._vectors[node][None, :], mat)[0]
        order = np.argsort(dists)[: self.max_degree]
        self._neighbors[node] = [nbs[i] for i in order]

    # ------------------------------------------------------------------ #
    def add(self, x: np.ndarray, ids: np.ndarray | None = None) -> "NSWGraphIndex":
        """Insert vectors one by one, wiring each to its nearest neighbors."""
        x = np.ascontiguousarray(np.atleast_2d(x), dtype=np.float32)
        if x.shape[1] != self.d:
            raise ValueError(f"expected dim {self.d}, got {x.shape[1]}")
        if ids is None:
            start = self._ids[-1] + 1 if self._ids else 0
            ids = np.arange(start, start + x.shape[0], dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape != (x.shape[0],):
                raise ValueError(f"ids shape {ids.shape} != ({x.shape[0]},)")
        for vec, id_ in zip(x, ids):
            node = self.ntotal
            hits = self._beam_search(vec, self.ef_construction)
            self._vectors.append(vec.copy())
            self._ids.append(int(id_))
            links = [h[1] for h in hits[: self.max_degree]]
            self._neighbors.append(links)
            for nb in links:  # bidirectional wiring + degree bound
                self._neighbors[nb].append(node)
                self._prune(nb)
        return self

    def search(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Top-k ids and squared distances per query (−1 / +inf padding)."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        nq = queries.shape[0]
        out_ids = np.full((nq, k), -1, dtype=np.int64)
        out_dists = np.full((nq, k), np.inf, dtype=np.float32)
        for qi in range(nq):
            hits = self._beam_search(queries[qi], max(self.ef_search, k))
            for slot, (dist, node) in enumerate(hits[:k]):
                out_ids[qi, slot] = self._ids[node]
                out_dists[qi, slot] = dist
        return out_ids, out_dists

    def vectors_and_ids(self) -> tuple[np.ndarray, np.ndarray]:
        """Snapshot of the buffered vectors (consumed by the merge step)."""
        return self._matrix().astype(np.float32), np.asarray(self._ids, dtype=np.int64)
