"""Blocked, vectorized distance kernels.

All ANN stages reduce to squared-L2 evaluations.  We use the expansion
``|x-y|^2 = |x|^2 - 2 x.y + |y|^2`` so the inner loop is a GEMM (the guidance
for HPC Python: push work into vendored BLAS, keep memory access contiguous,
block to bound the temporary footprint).
"""

from __future__ import annotations

import numpy as np

__all__ = ["l2_sq", "l2_sq_blocked", "pairwise_argmin", "topk_smallest"]

#: Block size (rows of X per GEMM) chosen so the (block, n_y) temporary stays
#: inside L2/L3 cache for typical n_y up to ~64k float32 columns.
_DEFAULT_BLOCK = 1024


def l2_sq(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Squared L2 distance matrix between rows of ``x`` (q, d) and ``y`` (n, d).

    Returns a (q, n) float32/float64 matrix.  Clamps tiny negative values that
    arise from the expansion's floating-point cancellation.
    """
    x = np.atleast_2d(x)
    y = np.atleast_2d(y)
    if x.shape[1] != y.shape[1]:
        raise ValueError(f"dimension mismatch: {x.shape[1]} vs {y.shape[1]}")
    x_sq = np.einsum("ij,ij->i", x, x)[:, None]
    y_sq = np.einsum("ij,ij->i", y, y)[None, :]
    d = x_sq + y_sq - 2.0 * (x @ y.T)
    np.maximum(d, 0.0, out=d)
    return d


def l2_sq_blocked(x: np.ndarray, y: np.ndarray, block: int = _DEFAULT_BLOCK) -> np.ndarray:
    """Like :func:`l2_sq` but blocks over rows of ``x`` to bound temporaries."""
    x = np.atleast_2d(x)
    y = np.atleast_2d(y)
    q = x.shape[0]
    if q <= block:
        return l2_sq(x, y)
    out = np.empty((q, y.shape[0]), dtype=np.result_type(x, y))
    y_sq = np.einsum("ij,ij->i", y, y)[None, :]
    for start in range(0, q, block):
        stop = min(start + block, q)
        xb = x[start:stop]
        x_sq = np.einsum("ij,ij->i", xb, xb)[:, None]
        d = x_sq + y_sq - 2.0 * (xb @ y.T)
        np.maximum(d, 0.0, out=d)
        out[start:stop] = d
    return out


def pairwise_argmin(x: np.ndarray, y: np.ndarray, block: int = _DEFAULT_BLOCK) -> np.ndarray:
    """Index of the nearest row of ``y`` for each row of ``x`` (blocked)."""
    x = np.atleast_2d(x)
    y = np.atleast_2d(y)
    out = np.empty(x.shape[0], dtype=np.int64)
    y_sq = np.einsum("ij,ij->i", y, y)[None, :]
    for start in range(0, x.shape[0], block):
        stop = min(start + block, x.shape[0])
        xb = x[start:stop]
        d = y_sq - 2.0 * (xb @ y.T)  # |x|^2 constant per row; skip it
        out[start:stop] = np.argmin(d, axis=1)
    return out


def topk_smallest(values: np.ndarray, k: int, axis: int = -1) -> tuple[np.ndarray, np.ndarray]:
    """Indices and values of the ``k`` smallest entries along ``axis``, sorted.

    Uses ``argpartition`` (O(n)) followed by a sort of only k elements, the
    standard HPC idiom for top-k selection.
    """
    n = values.shape[axis]
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    k = min(k, n)
    if k == n:
        idx = np.argsort(values, axis=axis)
    else:
        part = np.argpartition(values, k - 1, axis=axis)
        idx = np.take(part, np.arange(k), axis=axis)
        sub = np.take_along_axis(values, idx, axis=axis)
        order = np.argsort(sub, axis=axis)
        idx = np.take_along_axis(idx, order, axis=axis)
    vals = np.take_along_axis(values, idx, axis=axis)
    return idx, vals
