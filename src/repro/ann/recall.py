"""Recall@K — the quality metric the whole co-design optimizes against.

The paper uses *R@K*: the fraction of the true K nearest neighbors found in
the K returned results, averaged over queries (e.g. R@10=80 %).  For K=1 this
reduces to 1-recall@1.
"""

from __future__ import annotations

import numpy as np

__all__ = ["recall_at_k", "recall_curve"]


def recall_at_k(found: np.ndarray, ground_truth: np.ndarray, k: int | None = None) -> float:
    """Average |found ∩ truth| / K over queries.

    Parameters
    ----------
    found : (q, >=K) result ids per query (−1 entries are ignored / padding).
    ground_truth : (q, >=K) exact ids per query.
    k : evaluate at this K (default: ``found.shape[1]``).
    """
    found = np.atleast_2d(found)
    ground_truth = np.atleast_2d(ground_truth)
    if found.shape[0] != ground_truth.shape[0]:
        raise ValueError(
            f"query count mismatch: {found.shape[0]} vs {ground_truth.shape[0]}"
        )
    if k is None:
        k = found.shape[1]
    if k <= 0 or k > found.shape[1] or k > ground_truth.shape[1]:
        raise ValueError(f"invalid k={k} for shapes {found.shape}, {ground_truth.shape}")
    f = found[:, :k]
    g = ground_truth[:, :k]
    hits = 0
    for fi, gi in zip(f, g):
        hits += len(np.intersect1d(fi[fi >= 0], gi, assume_unique=False))
    return hits / (f.shape[0] * k)


def recall_curve(
    search_fn, queries: np.ndarray, ground_truth: np.ndarray, k: int, nprobes: list[int]
) -> dict[int, float]:
    """Evaluate recall@K across a list of nprobe settings.

    ``search_fn(queries, k, nprobe)`` must return (ids, dists).  This is the
    inner loop of the paper's index explorer (step 3 of Figure 4).
    """
    out: dict[int, float] = {}
    for np_ in nprobes:
        ids, _ = search_fn(queries, k, np_)
        out[np_] = recall_at_k(ids, ground_truth, k)
    return out
