"""Packed CSR inverted-list storage — the layout the accelerator streams.

The paper's Stage PQDist is fast *because* each probed cell is one contiguous
slab of PQ codes streamed from HBM (Figure 5: one memory channel per PE).
Faiss mirrors that on CPUs with flat, contiguous invlists.  This module gives
the software reproduction the same layout:

- ``codes``  — one ``(N, m) uint8`` array holding every PQ code;
- ``ids``    — one ``(N,) int64`` array of vector ids, aligned with ``codes``;
- per-cell ``[start, end)`` ranges into both (for a freshly packed index the
  ranges are a classic CSR ``offsets (nlist+1,)`` prefix-sum).

Keeping the ranges explicit (rather than only the prefix sum) lets a shard be
a *zero-copy view* over its parent's arrays: :meth:`PackedInvLists.shard`
splits every cell's slab contiguously and shares the backing memory, which is
the multi-accelerator partitioning of Figure 1 without moving a byte.

:class:`InvListBuilder` buffers ``add()`` batches as O(1) list appends and
packs them in one stable sort, so incremental insertion never degenerates
into the O(nlist) per-call ``vstack`` of the naive list-of-arrays layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["InvListBuilder", "PackedInvLists"]


@dataclass
class PackedInvLists:
    """Contiguous (or zero-copy sliced) inverted lists for ``nlist`` cells.

    ``codes``/``ids`` may be larger than this object's own contents when the
    instance is a shard view into a parent index — always go through
    :meth:`cell_codes` / :meth:`all_codes` instead of the raw arrays.
    Arrays may be ``np.memmap`` instances (see :mod:`repro.ann.io`).
    """

    m: int
    codes: np.ndarray = field(repr=False)  # (N_backing, m) uint8
    ids: np.ndarray = field(repr=False)  # (N_backing,) int64
    starts: np.ndarray = field(repr=False)  # (nlist,) int64
    ends: np.ndarray = field(repr=False)  # (nlist,) int64

    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, nlist: int, m: int) -> "PackedInvLists":
        zeros = np.zeros(nlist, dtype=np.int64)
        return cls(
            m=m,
            codes=np.empty((0, m), dtype=np.uint8),
            ids=np.empty(0, dtype=np.int64),
            starts=zeros,
            ends=zeros.copy(),
        )

    @classmethod
    def from_arrays(
        cls, codes: np.ndarray, ids: np.ndarray, offsets: np.ndarray
    ) -> "PackedInvLists":
        """Wrap pre-packed CSR arrays (``offsets`` is the (nlist+1,) prefix sum)."""
        offsets = np.asarray(offsets, dtype=np.int64)
        if codes.ndim != 2:
            raise ValueError(f"codes must be (N, m), got shape {codes.shape}")
        if offsets[0] != 0 or offsets[-1] != codes.shape[0] or len(ids) != codes.shape[0]:
            raise ValueError("offsets inconsistent with codes/ids lengths")
        if not np.all(np.diff(offsets) >= 0):
            raise ValueError("offsets must be non-decreasing")
        return cls(
            m=codes.shape[1], codes=codes, ids=ids,
            starts=offsets[:-1], ends=offsets[1:],
        )

    @classmethod
    def from_cells(
        cls, cell_codes: list[np.ndarray], cell_ids: list[np.ndarray], m: int
    ) -> "PackedInvLists":
        """Pack a legacy list-of-arrays layout (one array pair per cell)."""
        sizes = np.array([len(i) for i in cell_ids], dtype=np.int64)
        offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        if offsets[-1] == 0:
            return cls.empty(len(sizes), m)
        codes = np.ascontiguousarray(np.vstack(cell_codes), dtype=np.uint8)
        ids = np.concatenate(cell_ids).astype(np.int64, copy=False)
        return cls.from_arrays(codes, ids, offsets)

    # ------------------------------------------------------------------ #
    @property
    def nlist(self) -> int:
        return len(self.starts)

    @property
    def sizes(self) -> np.ndarray:
        return self.ends - self.starts

    @property
    def ntotal(self) -> int:
        return int(self.sizes.sum())

    @property
    def is_contiguous(self) -> bool:
        """True when cells tile the backing arrays exactly (no shard gaps)."""
        return bool(
            self.starts[0] == 0
            and self.ends[-1] == len(self.ids)
            and np.array_equal(self.starts[1:], self.ends[:-1])
        )

    @property
    def offsets(self) -> np.ndarray:
        """CSR prefix sum over *this object's* cell sizes (shape (nlist+1,))."""
        out = np.zeros(self.nlist + 1, dtype=np.int64)
        np.cumsum(self.sizes, out=out[1:])
        return out

    def memory_bytes(self) -> int:
        """Bytes of codes + ids actually owned by these lists."""
        n = self.ntotal
        return n * self.m + n * self.ids.dtype.itemsize

    # ------------------------------------------------------------------ #
    def cell_codes(self, cell: int) -> np.ndarray:
        """Zero-copy view of one cell's (size, m) code slab."""
        return self.codes[self.starts[cell] : self.ends[cell]]

    def cell_ids(self, cell: int) -> np.ndarray:
        """Zero-copy view of one cell's (size,) id slab."""
        return self.ids[self.starts[cell] : self.ends[cell]]

    def cell_codes_list(self) -> list[np.ndarray]:
        return [self.cell_codes(c) for c in range(self.nlist)]

    def cell_ids_list(self) -> list[np.ndarray]:
        return [self.cell_ids(c) for c in range(self.nlist)]

    def element_cells(self) -> np.ndarray:
        """Cell index of every element, aligned with :meth:`all_ids`."""
        return np.repeat(np.arange(self.nlist, dtype=np.int64), self.sizes)

    def all_codes(self) -> np.ndarray:
        """All codes in cell order — a view when contiguous, else a copy."""
        if self.is_contiguous:
            return self.codes
        return np.vstack(self.cell_codes_list()) if self.ntotal else np.empty(
            (0, self.m), dtype=np.uint8
        )

    def all_ids(self) -> np.ndarray:
        """All ids in cell order — a view when contiguous, else a copy."""
        if self.is_contiguous:
            return self.ids
        return np.concatenate(self.cell_ids_list()) if self.ntotal else np.empty(
            0, dtype=np.int64
        )

    def packed(self) -> "PackedInvLists":
        """A fully contiguous copy (self when already contiguous)."""
        if self.is_contiguous:
            return self
        return PackedInvLists.from_arrays(self.all_codes(), self.all_ids(), self.offsets)

    # ------------------------------------------------------------------ #
    def shard(self, part: int, n_parts: int) -> "PackedInvLists":
        """Zero-copy shard: a contiguous 1/n_parts slice of every cell's slab.

        Shards share the parent's ``codes``/``ids`` memory; each cell of size
        ``s`` contributes ``floor(s*(part+1)/n) - floor(s*part/n)`` elements,
        so shard totals differ by at most ``nlist`` — the balanced
        multi-accelerator layout of §7.3.2.
        """
        if not 0 <= part < n_parts:
            raise ValueError(f"part {part} outside [0, {n_parts})")
        sizes = self.sizes
        lo = self.starts + (sizes * part) // n_parts
        hi = self.starts + (sizes * (part + 1)) // n_parts
        return PackedInvLists(m=self.m, codes=self.codes, ids=self.ids, starts=lo, ends=hi)


class InvListBuilder:
    """Accumulates (cell assignment, codes, ids) batches; packs on demand.

    ``append`` is O(batch); :meth:`build` performs one stable argsort over
    everything pending (optionally preceded by an existing packed base), so
    per-cell insertion order — base first, then batches in append order — is
    preserved exactly.
    """

    def __init__(self, nlist: int, m: int):
        self.nlist = nlist
        self.m = m
        self._assign: list[np.ndarray] = []
        self._codes: list[np.ndarray] = []
        self._ids: list[np.ndarray] = []
        self._n = 0

    @property
    def n_pending(self) -> int:
        return self._n

    def append(self, assign: np.ndarray, codes: np.ndarray, ids: np.ndarray) -> None:
        assign = np.asarray(assign, dtype=np.int64)
        codes = np.asarray(codes, dtype=np.uint8)
        ids = np.asarray(ids, dtype=np.int64)
        if not (len(assign) == codes.shape[0] == len(ids)):
            raise ValueError("assign/codes/ids length mismatch")
        if codes.shape[1] != self.m:
            raise ValueError(f"expected {self.m} code bytes, got {codes.shape[1]}")
        if len(assign) and (assign.min() < 0 or assign.max() >= self.nlist):
            raise ValueError("cell assignment outside [0, nlist)")
        self._assign.append(assign)
        self._codes.append(codes)
        self._ids.append(ids)
        self._n += len(assign)

    def build(self, base: PackedInvLists | None = None) -> PackedInvLists:
        """Pack base + pending batches into one contiguous CSR layout."""
        assign, codes, ids = list(self._assign), list(self._codes), list(self._ids)
        if base is not None and base.ntotal:
            assign.insert(0, base.element_cells())
            codes.insert(0, base.all_codes())
            ids.insert(0, base.all_ids())
        if not assign:
            return base if base is not None else PackedInvLists.empty(self.nlist, self.m)
        cat_assign = np.concatenate(assign)
        cat_codes = np.vstack(codes)
        cat_ids = np.concatenate(ids)
        order = np.argsort(cat_assign, kind="stable")
        counts = np.bincount(cat_assign, minlength=self.nlist)
        offsets = np.zeros(self.nlist + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return PackedInvLists.from_arrays(
            np.ascontiguousarray(cat_codes[order]), cat_ids[order], offsets
        )
