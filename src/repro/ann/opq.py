"""Optimized product quantization (Ge et al. 2013), Stage OPQ's trainer.

OPQ learns an orthonormal rotation ``R`` so that, after rotating, the PQ
sub-spaces are decorrelated and variance-balanced.  Query time only adds one
vector-matrix multiply (the paper's Stage OPQ); everything downstream is
plain PQ on rotated vectors.

We implement the non-parametric alternating solver:
  1. fix R, train PQ on ``x @ R``;
  2. fix the codebooks, solve the orthogonal Procrustes problem
     ``min_R |x R - decode(encode(x R))|`` via SVD.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ann.pq import ProductQuantizer

__all__ = ["OPQTransform"]


@dataclass
class OPQTransform:
    """Learned orthonormal rotation for PQ preprocessing.

    After :meth:`train`, :attr:`rotation` holds a (d, d) orthonormal matrix
    and :attr:`pq` a :class:`ProductQuantizer` trained on rotated data.
    """

    d: int
    m: int = 16
    ksub: int = 256
    n_outer: int = 4
    seed: int = 0
    rotation: np.ndarray | None = field(default=None, repr=False)
    pq: ProductQuantizer | None = field(default=None, repr=False)

    @property
    def is_trained(self) -> bool:
        return self.rotation is not None and self.pq is not None

    def _init_rotation(self, rng: np.random.Generator) -> np.ndarray:
        # Random orthonormal init via QR of a Gaussian matrix.
        q, _ = np.linalg.qr(rng.standard_normal((self.d, self.d)))
        return q.astype(np.float32)

    def train(self, x: np.ndarray) -> "OPQTransform":
        """Alternate PQ training and Procrustes rotation updates."""
        x = np.ascontiguousarray(np.atleast_2d(x), dtype=np.float32)
        if x.shape[1] != self.d:
            raise ValueError(f"expected dim {self.d}, got {x.shape[1]}")
        rng = np.random.default_rng(self.seed)
        r = self._init_rotation(rng)
        pq = ProductQuantizer(self.d, self.m, self.ksub, seed=self.seed)
        for _ in range(self.n_outer):
            xr = x @ r
            pq = ProductQuantizer(self.d, self.m, self.ksub, seed=self.seed)
            pq.train(xr)
            recon = pq.decode(pq.encode(xr))
            # Procrustes: R = U V^T from SVD of X^T * recon.
            u, _, vt = np.linalg.svd(x.T @ recon, full_matrices=False)
            r = (u @ vt).astype(np.float32)
        self.rotation = r
        self.pq = pq
        return self

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Stage OPQ at query time: rotate vectors into the PQ-friendly basis."""
        if self.rotation is None:
            raise RuntimeError("OPQTransform used before train()")
        return np.atleast_2d(x).astype(np.float32) @ self.rotation

    def quantization_error(self, x: np.ndarray) -> float:
        """MSE of rotate→encode→decode on ``x``; compare against plain PQ."""
        if self.pq is None:
            raise RuntimeError("OPQTransform used before train()")
        xr = self.apply(x)
        approx = self.pq.decode(self.pq.encode(xr))
        diff = xr - approx
        return float(np.mean(np.einsum("ij,ij->i", diff, diff)))
