"""Instrumented six-stage search — the unit of the paper's bottleneck study.

Figure 3 of the paper breaks query time down per search stage on CPU and GPU
to show that the bottleneck *shifts* with nprobe / nlist / K.  This module
runs the six stages separately, recording wall-clock time and the workload
size N (input elements) per stage.  Both the CPU baseline breakdowns and the
FPGA performance model consume these traces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.ann.ivf import IVFPQIndex

__all__ = ["STAGE_NAMES", "SearchStageTrace", "StagedSearcher"]

#: Canonical stage order used across the whole package.
STAGE_NAMES = ("OPQ", "IVFDist", "SelCells", "BuildLUT", "PQDist", "SelK")


@dataclass
class SearchStageTrace:
    """Per-stage seconds and workload counters for one batch of queries."""

    seconds: dict[str, float] = field(default_factory=lambda: {s: 0.0 for s in STAGE_NAMES})
    workload: dict[str, float] = field(default_factory=lambda: {s: 0.0 for s in STAGE_NAMES})
    n_queries: int = 0

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def fractions(self) -> dict[str, float]:
        """Fraction of total time per stage (the bars of Figure 3)."""
        tot = self.total_seconds
        if tot <= 0:
            return {s: 0.0 for s in STAGE_NAMES}
        return {s: self.seconds[s] / tot for s in STAGE_NAMES}

    def bottleneck(self) -> str:
        """Name of the slowest stage."""
        return max(STAGE_NAMES, key=lambda s: self.seconds[s])

    def merged(self, other: "SearchStageTrace") -> "SearchStageTrace":
        out = SearchStageTrace()
        for s in STAGE_NAMES:
            out.seconds[s] = self.seconds[s] + other.seconds[s]
            out.workload[s] = self.workload[s] + other.workload[s]
        out.n_queries = self.n_queries + other.n_queries
        return out


class StagedSearcher:
    """Runs IVF-PQ queries stage by stage with timing instrumentation."""

    def __init__(self, index: IVFPQIndex):
        if not index.is_trained:
            raise ValueError("index must be trained before staged search")
        self.index = index

    def search(
        self, queries: np.ndarray, k: int, nprobe: int
    ) -> tuple[np.ndarray, np.ndarray, SearchStageTrace]:
        """Six-stage search returning (ids, dists, trace)."""
        idx = self.index
        trace = SearchStageTrace()
        queries = np.atleast_2d(queries)
        nq = queries.shape[0]
        trace.n_queries = nq

        t0 = time.perf_counter()
        queries_t = idx.stage_opq(queries)
        t1 = time.perf_counter()
        trace.seconds["OPQ"] += t1 - t0
        trace.workload["OPQ"] += nq * idx.d * idx.d if idx.opq is not None else 0.0

        cell_dists = idx.stage_ivf_dist(queries_t)
        t2 = time.perf_counter()
        trace.seconds["IVFDist"] += t2 - t1
        trace.workload["IVFDist"] += nq * idx.nlist

        probed = idx.stage_select_cells(cell_dists, nprobe)
        t3 = time.perf_counter()
        trace.seconds["SelCells"] += t3 - t2
        trace.workload["SelCells"] += nq * idx.nlist

        # Fused batched tail: the three remaining stages run blockwise over
        # the batch (grouped by probed cell, blocks bounded like search()),
        # yet stay separately timed — the Figure 3 instrumentation the
        # paper's bottleneck study needs.
        out_ids = np.empty((nq, k), dtype=np.int64)
        out_dists = np.empty((nq, k), dtype=np.float32)
        block = idx.lut_block_queries(nprobe)
        ta = t3
        for s in range(0, nq, block):
            sub = probed[s : s + block]
            luts = idx.stage_build_luts_batch(queries_t[s : s + block], sub)
            tb = time.perf_counter()
            trace.seconds["BuildLUT"] += tb - ta
            trace.workload["BuildLUT"] += sub.shape[0] * nprobe * idx.m * idx.ksub

            dists_f, ids_f, bounds = idx.stage_pq_dist_batch(luts, sub)
            tc = time.perf_counter()
            trace.seconds["PQDist"] += tc - tb
            n_codes = int(bounds[-1])
            trace.workload["PQDist"] += n_codes

            out_ids[s : s + block], out_dists[s : s + block] = idx.stage_select_k_batch(
                dists_f, ids_f, bounds, k
            )
            ta = time.perf_counter()
            trace.seconds["SelK"] += ta - tc
            trace.workload["SelK"] += n_codes

        return out_ids, out_dists, trace
