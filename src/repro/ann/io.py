"""Index persistence: save/load trained IVF-PQ indexes, with memory-mapping.

Production deployments (§4) snapshot indexes: the accelerator generation
flow trains once (hours at paper scale, Table 3) and reuses the artifacts
across recall goals and redeployments.  Two formats are supported, both
storing the packed CSR invlists (codes ``(N, m) uint8``, ids ``(N,) int64``,
offsets ``(nlist+1,)``) exactly as laid out in memory:

- a single compressed ``.npz`` archive (:func:`save_index` /
  :func:`load_index`) — portable, dependency-free;
- a directory of raw ``.npy`` arrays (:func:`save_index_dir` /
  :func:`load_index_dir`) whose code/id arrays can be **memory-mapped**, so
  a paper-scale index opens in milliseconds and pages slabs in on demand —
  the serving analogue of the accelerator streaming invlists from HBM.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.ann.invlists import PackedInvLists
from repro.ann.ivf import IVFPQIndex
from repro.ann.opq import OPQTransform
from repro.ann.pq import ProductQuantizer

__all__ = ["load_index", "load_index_dir", "save_index", "save_index_dir"]

_FORMAT_VERSION = 2

_INVLIST_KEYS = ("codes", "ids", "offsets")


def _meta_payload(index: IVFPQIndex) -> dict[str, np.ndarray]:
    payload: dict[str, np.ndarray] = {
        "format_version": np.array(_FORMAT_VERSION),
        "d": np.array(index.d),
        "nlist": np.array(index.nlist),
        "m": np.array(index.m),
        "ksub": np.array(index.ksub),
        "use_opq": np.array(index.use_opq),
        "by_residual": np.array(index.by_residual),
        "seed": np.array(index.seed),
        "centroids": index.centroids,
        "codebooks": index.pq.codebooks,
    }
    if index.opq is not None:
        payload["opq_rotation"] = index.opq.rotation
    return payload


def _invlist_payload(index: IVFPQIndex) -> dict[str, np.ndarray]:
    lists = index.invlists
    return {
        "codes": np.ascontiguousarray(lists.all_codes()),
        "ids": np.ascontiguousarray(lists.all_ids()),
        "offsets": lists.offsets,
    }


def _index_from_meta(data) -> IVFPQIndex:
    version = int(data["format_version"])
    if version not in (1, _FORMAT_VERSION):
        raise ValueError(f"unsupported index format version {version}")
    d = int(data["d"])
    m = int(data["m"])
    ksub = int(data["ksub"])
    index = IVFPQIndex(
        d=d,
        nlist=int(data["nlist"]),
        m=m,
        ksub=ksub,
        use_opq=bool(data["use_opq"]),
        by_residual=bool(data["by_residual"]),
        seed=int(data["seed"]),
    )
    index.centroids = data["centroids"]
    pq = ProductQuantizer(d=d, m=m, ksub=ksub, seed=index.seed)
    pq.codebooks = data["codebooks"]
    index.pq = pq
    if "opq_rotation" in data:
        opq = OPQTransform(d=d, m=m, ksub=ksub, seed=index.seed)
        opq.rotation = data["opq_rotation"]
        opq.pq = pq
        index.opq = opq
    return index


def save_index(index: IVFPQIndex, path: str | Path) -> Path:
    """Serialize a trained (optionally populated) index to one ``.npz``."""
    if not index.is_trained:
        raise ValueError("cannot save an untrained index")
    path = Path(path)
    payload = _meta_payload(index)
    payload.update(_invlist_payload(index))
    np.savez_compressed(path, **payload)
    # np.savez appends .npz when missing; report the real file.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_index(path: str | Path) -> IVFPQIndex:
    """Reconstruct an index saved by :func:`save_index`.

    Also reads legacy version-1 archives (one ``codes_<cell>``/``ids_<cell>``
    pair per inverted list), packing them into the CSR layout on load — old
    snapshots keep working without retraining.
    """
    with np.load(Path(path)) as data:
        index = _index_from_meta(data)
        if int(data["format_version"]) == 1:
            index._invlists = PackedInvLists.from_cells(
                [data[f"codes_{c}"] for c in range(index.nlist)],
                [data[f"ids_{c}"] for c in range(index.nlist)],
                m=index.m,
            )
        else:
            index._invlists = PackedInvLists.from_arrays(
                data["codes"], data["ids"], data["offsets"]
            )
    return index


def save_index_dir(index: IVFPQIndex, path: str | Path) -> Path:
    """Serialize to a directory of raw ``.npy`` arrays (mmap-friendly).

    Layout: ``meta.npz`` (quantizers + hyperparameters) plus one ``.npy``
    per packed invlist array, written uncompressed so :func:`load_index_dir`
    can memory-map them.
    """
    if not index.is_trained:
        raise ValueError("cannot save an untrained index")
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    # Write-to-temp then atomic rename: the target may be the very directory
    # this index was mmap-loaded from, and truncating a .npy that backs a
    # live memmap would corrupt both the source arrays and the snapshot.
    def _write(name: str, writer) -> None:
        tmp = path / (name + ".tmp")
        with open(tmp, "wb") as f:
            writer(f)
        os.replace(tmp, path / name)

    meta = _meta_payload(index)
    _write("meta.npz", lambda f: np.savez(f, **meta))
    for key, arr in _invlist_payload(index).items():
        _write(f"{key}.npy", lambda f, a=arr: np.save(f, a))
    return path


def load_index_dir(path: str | Path, *, mmap: bool = True) -> IVFPQIndex:
    """Load an index saved by :func:`save_index_dir`.

    With ``mmap=True`` (default) the packed code/id arrays are opened
    read-only as ``np.memmap`` — searches page in only the probed slabs, so
    cold-start cost is independent of index size.
    """
    path = Path(path)
    with np.load(path / "meta.npz") as data:
        index = _index_from_meta(data)
    mode = "r" if mmap else None
    arrays = {key: np.load(path / f"{key}.npy", mmap_mode=mode) for key in _INVLIST_KEYS}
    index._invlists = PackedInvLists.from_arrays(
        arrays["codes"], arrays["ids"], np.asarray(arrays["offsets"], dtype=np.int64)
    )
    return index
