"""Index persistence: save/load trained IVF-PQ indexes to ``.npz``.

Production deployments (§4) snapshot indexes: the accelerator generation
flow trains once (hours at paper scale, Table 3) and reuses the artifacts
across recall goals and redeployments.  The format is a flat ``np.savez``
archive — portable, mmap-friendly, dependency-free.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.ann.ivf import IVFPQIndex
from repro.ann.opq import OPQTransform
from repro.ann.pq import ProductQuantizer

__all__ = ["load_index", "save_index"]

_FORMAT_VERSION = 1


def save_index(index: IVFPQIndex, path: str | Path) -> Path:
    """Serialize a trained (optionally populated) index to ``path``."""
    if not index.is_trained:
        raise ValueError("cannot save an untrained index")
    path = Path(path)
    payload: dict[str, np.ndarray] = {
        "format_version": np.array(_FORMAT_VERSION),
        "d": np.array(index.d),
        "nlist": np.array(index.nlist),
        "m": np.array(index.m),
        "ksub": np.array(index.ksub),
        "use_opq": np.array(index.use_opq),
        "by_residual": np.array(index.by_residual),
        "seed": np.array(index.seed),
        "centroids": index.centroids,
        "codebooks": index.pq.codebooks,
    }
    if index.opq is not None:
        payload["opq_rotation"] = index.opq.rotation
    for cell in range(index.nlist):
        payload[f"codes_{cell}"] = index.cell_codes[cell]
        payload[f"ids_{cell}"] = index.cell_ids[cell]
    np.savez_compressed(path, **payload)
    # np.savez appends .npz when missing; report the real file.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_index(path: str | Path) -> IVFPQIndex:
    """Reconstruct an index saved by :func:`save_index`."""
    with np.load(Path(path)) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported index format version {version}")
        d = int(data["d"])
        nlist = int(data["nlist"])
        m = int(data["m"])
        ksub = int(data["ksub"])
        index = IVFPQIndex(
            d=d,
            nlist=nlist,
            m=m,
            ksub=ksub,
            use_opq=bool(data["use_opq"]),
            by_residual=bool(data["by_residual"]),
            seed=int(data["seed"]),
        )
        index.centroids = data["centroids"]
        pq = ProductQuantizer(d=d, m=m, ksub=ksub, seed=index.seed)
        pq.codebooks = data["codebooks"]
        index.pq = pq
        if "opq_rotation" in data:
            opq = OPQTransform(d=d, m=m, ksub=ksub, seed=index.seed)
            opq.rotation = data["opq_rotation"]
            opq.pq = pq
            index.opq = opq
        index.cell_codes = [data[f"codes_{c}"] for c in range(nlist)]
        index.cell_ids = [data[f"ids_{c}"] for c in range(nlist)]
    return index
