"""Exact top-K merging of partial results under the canonical order.

Scatter-gather search (shards of one index, the cluster service, the
snapshot+delta dynamic service) produces several partial top-K lists per
query that must merge into one — the reduce step of the paper's
multi-accelerator deployment (§7.3.2, "merging partial results from two
nodes").

Merging is only *exact* if every producer ranks candidates by the same
total order.  The repo's canonical candidate order is **(distance, id)**:
ascending float32 distance, ties broken by ascending vector id (see
:meth:`repro.ann.ivf.IVFPQIndex.stage_select_k`).  Because ids are unique
across shards of one index, the order is total, so the K best of the union
of per-shard top-K lists *is* the global top-K — bit-identical to searching
the unpartitioned index, ties included.

:func:`merge_topk` implements that reduce as a vectorized kernel: an
``argpartition`` prefilter narrows each row to K candidates in O(columns),
and a ``lexsort`` over the (distance, id) key orders the survivors.  Rows
whose K-th distance value is tied across the partition boundary fall back
to a full lexsort of that row, so boundary ties are still resolved by id —
the partition alone cannot see ids.
"""

from __future__ import annotations

import numpy as np

__all__ = ["merge_partial_topk", "merge_topk"]


def merge_topk(
    ids: np.ndarray, dists: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """K smallest (distance, id) pairs per row of a candidate matrix.

    Parameters
    ----------
    ids : (nq, c) int64 candidate ids; ``-1`` marks padding.
    dists : (nq, c) float32 candidate distances; padding rows carry ``inf``.
    k : results per query.

    Returns ``(ids (nq, k), dists (nq, k))`` sorted ascending by
    (distance, id) — rows with fewer than ``k`` finite candidates are padded
    with ``(-1, inf)``, matching ``IVFPQIndex.stage_select_k``.
    """
    ids = np.atleast_2d(np.asarray(ids, dtype=np.int64))
    dists = np.atleast_2d(np.asarray(dists, dtype=np.float32))
    if ids.shape != dists.shape:
        raise ValueError(f"ids shape {ids.shape} != dists shape {dists.shape}")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    nq, c = dists.shape
    if c <= k:
        # Fewer candidates than requested: order them all, pad the rest.
        order = np.lexsort((ids, dists), axis=1)
        out_i = np.take_along_axis(ids, order, axis=1)
        out_d = np.take_along_axis(dists, order, axis=1)
        if c < k:
            out_i = np.pad(out_i, ((0, 0), (0, k - c)), constant_values=-1)
            out_d = np.pad(out_d, ((0, 0), (0, k - c)), constant_values=np.inf)
        out_i[~np.isfinite(out_d)] = -1
        return out_i, out_d

    # O(c) prefilter: the k smallest distance *values* per row.
    part = np.argpartition(dists, k - 1, axis=1)[:, :k]
    d_blk = np.take_along_axis(dists, part, axis=1)
    i_blk = np.take_along_axis(ids, part, axis=1)
    # A row is exact iff every candidate tied with its boundary value (the
    # k-th smallest distance) landed inside the block; otherwise the id
    # tie-break must arbitrate across the partition boundary.
    boundary = d_blk.max(axis=1, keepdims=True)
    at_boundary_total = (dists == boundary).sum(axis=1)
    at_boundary_blk = (d_blk == boundary).sum(axis=1)
    order = np.lexsort((i_blk, d_blk), axis=1)
    out_i = np.take_along_axis(i_blk, order, axis=1)
    out_d = np.take_along_axis(d_blk, order, axis=1)
    inexact = np.flatnonzero(at_boundary_total > at_boundary_blk)
    if inexact.size:
        full = np.lexsort((ids[inexact], dists[inexact]), axis=1)[:, :k]
        out_i[inexact] = np.take_along_axis(ids[inexact], full, axis=1)
        out_d[inexact] = np.take_along_axis(dists[inexact], full, axis=1)
    # Normalize padding: anything non-finite is a "no candidate" slot.
    out_i[~np.isfinite(out_d)] = -1
    return out_i, out_d


def merge_partial_topk(
    parts: list[tuple[np.ndarray, np.ndarray]], k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Merge per-producer ``(ids, dists)`` partial top-K lists row-wise.

    ``parts`` holds one ``(ids (nq, k_p), dists (nq, k_p))`` pair per
    producer (shard / node / index), rows aligned by query.  Concatenates
    along the candidate axis and reduces with :func:`merge_topk`.
    """
    if not parts:
        raise ValueError("parts must be non-empty")
    cat_i = np.concatenate([np.atleast_2d(p[0]) for p in parts], axis=1)
    cat_d = np.concatenate([np.atleast_2d(p[1]) for p in parts], axis=1)
    return merge_topk(cat_i, cat_d, k)
