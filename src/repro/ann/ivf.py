"""The IVF-PQ index — the algorithm the paper accelerates.

An inverted-file (IVF) index partitions the database into ``nlist`` Voronoi
cells by k-means; product quantization compresses each vector into ``m``
bytes.  Queries scan only the ``nprobe`` nearest cells and rank candidates by
asymmetric distance computation (ADC) against a per-cell lookup table.

The implementation mirrors Faiss ``IndexIVFPQ`` semantics (residual encoding
by default, optional OPQ pre-transform) while keeping each of the paper's six
search stages a separately callable function (see :mod:`repro.ann.stages`).

Storage is the packed CSR layout of :mod:`repro.ann.invlists` — one
contiguous ``(N, m) uint8`` code array, one ``(N,) int64`` id array, per-cell
offsets — the same contiguous-slab layout the paper's accelerator streams
from HBM.  On top of it, :meth:`IVFPQIndex.search` runs a *batched* query
engine: Stage BuildLUT / Stage PQDist / Stage SelK are evaluated across the
whole query batch, grouping queries by probed cell so every cell slab is
scanned with one vectorized ADC instead of a Python loop per query×cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ann.distances import l2_sq_blocked, topk_smallest
from repro.ann.invlists import InvListBuilder, PackedInvLists
from repro.ann.merge import merge_topk
from repro.ann.kmeans import kmeans_fit
from repro.ann.opq import OPQTransform
from repro.ann.pq import ProductQuantizer
from repro.obs.trace import current_span, now_us

__all__ = ["IVFPQIndex", "IVFStats"]

#: Cap (in gathered elements) for one vectorized ADC temporary: groups of
#: queries probing the same cell are chunked so the (group, cell_size, m)
#: gather stays within ~64 MB of float32.
_ADC_CHUNK_ELEMS = 1 << 24

#: Cap (in float32 elements) for one batch's LUT tensor: search() splits the
#: query batch so the (queries, nprobe, m, ksub) tables stay within ~64 MB,
#: instead of materializing every table for an arbitrarily large batch.
_LUT_BATCH_ELEMS = 1 << 24


@dataclass
class IVFStats:
    """Per-search workload counters, consumed by the performance model."""

    n_queries: int = 0
    cells_scanned: int = 0
    codes_scanned: int = 0
    #: Coarse-quantization (OPQ + IVFDist + SelCells) invocations.  In a
    #: preselect-once scatter topology the *router's* counters grow while
    #: every shard's stay at zero — the observable proof that the coarse
    #: stage ran once per batch regardless of shard count.
    preselect_batches: int = 0
    preselect_queries: int = 0

    @property
    def codes_per_query(self) -> float:
        return self.codes_scanned / max(self.n_queries, 1)


@dataclass
class IVFPQIndex:
    """IVF-PQ index with optional OPQ rotation over packed CSR invlists.

    Parameters
    ----------
    d : vector dimensionality.
    nlist : number of Voronoi cells (the paper sweeps 2^10..2^18; we scale).
    m : PQ bytes per vector (paper: 16).
    ksub : centroids per PQ sub-space (256).
    use_opq : train and apply an OPQ rotation before quantization.
    by_residual : encode residuals w.r.t. the cell centroid (Faiss default).
    """

    d: int
    nlist: int
    m: int = 16
    ksub: int = 256
    use_opq: bool = False
    by_residual: bool = True
    seed: int = 0

    centroids: np.ndarray | None = field(default=None, repr=False)
    pq: ProductQuantizer | None = field(default=None, repr=False)
    opq: OPQTransform | None = field(default=None, repr=False)
    #: Packed storage; ``_pending`` buffers add() batches until next access.
    _invlists: PackedInvLists | None = field(default=None, repr=False)
    _pending: InvListBuilder | None = field(default=None, repr=False)
    stats: IVFStats = field(default_factory=IVFStats, repr=False)

    # ------------------------------------------------------------------ #
    @property
    def is_trained(self) -> bool:
        return self.centroids is not None and self.pq is not None

    @property
    def invlists(self) -> PackedInvLists:
        """The packed inverted lists, flushing any buffered ``add()`` batches."""
        if self._invlists is None:
            raise RuntimeError("IVFPQIndex used before train()")
        if self._pending is not None and self._pending.n_pending:
            self._invlists = self._pending.build(base=self._invlists)
            self._pending = None
        return self._invlists

    @property
    def ntotal(self) -> int:
        stored = self._invlists.ntotal if self._invlists is not None else 0
        pending = self._pending.n_pending if self._pending is not None else 0
        return stored + pending

    @property
    def cell_sizes(self) -> np.ndarray:
        return self.invlists.sizes

    @property
    def cell_codes(self) -> list[np.ndarray]:
        """Per-cell code views (zero-copy compatibility accessor)."""
        if self._invlists is None:
            return []
        return self.invlists.cell_codes_list()

    @property
    def cell_ids(self) -> list[np.ndarray]:
        """Per-cell id views (zero-copy compatibility accessor)."""
        if self._invlists is None:
            return []
        return self.invlists.cell_ids_list()

    def _require_trained(self) -> tuple[np.ndarray, ProductQuantizer]:
        if self.centroids is None or self.pq is None:
            raise RuntimeError("IVFPQIndex used before train()")
        return self.centroids, self.pq

    def _transform(self, x: np.ndarray) -> np.ndarray:
        """Apply the OPQ rotation if enabled (Stage OPQ)."""
        x = np.ascontiguousarray(np.atleast_2d(x), dtype=np.float32)
        if x.shape[1] != self.d:
            raise ValueError(f"expected dim {self.d}, got {x.shape[1]}")
        if self.opq is not None:
            return self.opq.apply(x)
        return x

    # ------------------------------------------------------------------ #
    def train(self, x: np.ndarray) -> "IVFPQIndex":
        """Train the coarse quantizer, the optional OPQ rotation, and the PQ.

        Training order matches Faiss' ``OPQMatrix + IVFPQ`` chain: the OPQ
        rotation is learned on raw vectors, then the coarse quantizer and the
        PQ are trained in the rotated space.
        """
        x = np.ascontiguousarray(np.atleast_2d(x), dtype=np.float32)
        if x.shape[0] < max(self.nlist, self.ksub):
            raise ValueError(
                f"need >= max(nlist, ksub) = {max(self.nlist, self.ksub)} training "
                f"vectors, got {x.shape[0]}"
            )
        if self.use_opq:
            self.opq = OPQTransform(self.d, self.m, self.ksub, seed=self.seed)
            self.opq.train(x)
            xt = self.opq.apply(x)
        else:
            self.opq = None
            xt = x
        self.centroids, assign, _ = kmeans_fit(xt, self.nlist, seed=self.seed)
        pq_input = xt - self.centroids[assign] if self.by_residual else xt
        self.pq = ProductQuantizer(self.d, self.m, self.ksub, seed=self.seed)
        self.pq.train(pq_input)
        self._invlists = PackedInvLists.empty(self.nlist, self.m)
        self._pending = None
        return self

    def add(self, x: np.ndarray, ids: np.ndarray | None = None) -> "IVFPQIndex":
        """Assign vectors to cells and buffer their PQ codes (O(batch)).

        Batches are packed lazily on the next invlist access, so repeated
        ``add()`` calls never pay the O(nlist) per-call re-allocation of a
        list-of-arrays layout.
        """
        centroids, pq = self._require_trained()
        xt = self._transform(x)
        n = xt.shape[0]
        if ids is None:
            ids = np.arange(self.ntotal, self.ntotal + n, dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape != (n,):
                raise ValueError(f"ids shape {ids.shape} != ({n},)")
        assign = np.argmin(l2_sq_blocked(xt, centroids), axis=1)
        encode_input = xt - centroids[assign] if self.by_residual else xt
        codes = pq.encode(encode_input)
        if self._pending is None:
            self._pending = InvListBuilder(self.nlist, self.m)
        self._pending.append(assign, codes, ids)
        return self

    # ------------------------------------------------------------------ #
    # The six query-time stages (callable individually; see ann.stages).
    def stage_opq(self, queries: np.ndarray) -> np.ndarray:
        """Stage OPQ: rotate queries (identity when OPQ is disabled)."""
        return self._transform(queries)

    def stage_ivf_dist(self, queries_t: np.ndarray) -> np.ndarray:
        """Stage IVFDist: distances from each query to all nlist centroids."""
        centroids, _ = self._require_trained()
        return l2_sq_blocked(queries_t, centroids)

    def stage_select_cells(self, cell_dists: np.ndarray, nprobe: int) -> np.ndarray:
        """Stage SelCells: ids of the nprobe nearest cells per query."""
        if not 1 <= nprobe <= self.nlist:
            raise ValueError(f"nprobe={nprobe} outside [1, nlist={self.nlist}]")
        idx, _ = topk_smallest(cell_dists, nprobe, axis=1)
        return idx

    def stage_build_luts(self, query_t: np.ndarray, cells: np.ndarray) -> np.ndarray:
        """Stage BuildLUT: one (m, ksub) table per probed cell for one query.

        With residual encoding the table depends on the cell centroid, so
        ``nprobe`` tables are built per query — exactly the per-cell workload
        of the paper's Stage BuildLUT PEs.
        """
        centroids, pq = self._require_trained()
        if self.by_residual:
            residuals = query_t[None, :] - centroids[cells]
            return pq.build_luts(residuals)
        lut = pq.build_lut(query_t)
        return np.broadcast_to(lut, (len(cells),) + lut.shape)

    def stage_pq_dist(
        self, luts: np.ndarray, cells: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stage PQDist: ADC distances for all codes in the probed cells.

        Returns (distances, ids) concatenated across the probed cells.
        """
        _, pq = self._require_trained()
        lists = self.invlists
        dists: list[np.ndarray] = []
        ids: list[np.ndarray] = []
        for lut, cell in zip(luts, cells):
            codes = lists.cell_codes(cell)
            if codes.shape[0] == 0:
                continue
            dists.append(pq.adc(lut, codes))
            ids.append(lists.cell_ids(cell))
        if not dists:
            return np.empty(0, dtype=np.float32), np.empty(0, dtype=np.int64)
        return np.concatenate(dists), np.concatenate(ids)

    @staticmethod
    def stage_select_k(
        dists: np.ndarray, ids: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stage SelK: the K smallest distances with their vector ids.

        Selection follows the repo's **canonical candidate order**:
        ascending distance, ties broken by ascending id.  The tie-break is
        what makes distributed search exact — every shard of a partitioned
        index ranks candidates by the same total order, so merging partial
        top-K lists (:mod:`repro.ann.merge`) reproduces the unpartitioned
        result bit for bit, ties included.

        Pads with (-1, +inf) when fewer than K candidates were scanned.
        """
        if dists.shape[0] == 0:
            return (np.full(k, -1, dtype=np.int64), np.full(k, np.inf, dtype=np.float32))
        out_ids, out_dists = merge_topk(ids[None, :], dists[None, :], k)
        return out_ids[0], out_dists[0]

    # ------------------------------------------------------------------ #
    # Batched stages: same arithmetic as the per-query stages, evaluated
    # across a whole query batch (the packed-CSR query engine).
    def stage_build_luts_batch(
        self, queries_t: np.ndarray, probed: np.ndarray
    ) -> np.ndarray:
        """Stage BuildLUT for a batch: (nq, nprobe, m, ksub) tables.

        Without residual encoding the per-cell axis is a broadcast view (one
        table per query), so no memory is spent on the nprobe dimension.
        """
        centroids, pq = self._require_trained()
        nq, nprobe = probed.shape
        if self.by_residual:
            # -1-padded slots (cells pruned for this shard) still get a
            # table built against centroid 0 — it is never consumed, the
            # padded pair scans zero codes — but must not index negative.
            cells = np.maximum(probed, 0)
            residuals = queries_t[:, None, :] - centroids[cells]  # (nq, nprobe, d)
            luts = pq.build_luts(residuals.reshape(nq * nprobe, self.d))
            return luts.reshape(nq, nprobe, self.m, self.ksub)
        luts = pq.build_luts(queries_t)  # (nq, m, ksub)
        return np.broadcast_to(luts[:, None], (nq, nprobe, self.m, self.ksub))

    def stage_pq_dist_batch(
        self, luts: np.ndarray, probed: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stage PQDist for a batch, grouped by probed cell.

        Queries probing the same cell share one vectorized ADC over that
        cell's contiguous code slab — the software analogue of the
        accelerator streaming each slab once from HBM — instead of a Python
        loop per query×cell.  Returns flat ``(dists, ids, bounds)`` where
        ``bounds`` is an (nq+1,) prefix sum and query ``q``'s candidates
        occupy ``[bounds[q], bounds[q+1])`` in probe order (identical
        ordering to the per-query stages).
        """
        lists = self.invlists
        nq, nprobe = probed.shape
        sizes = lists.sizes
        # ``-1`` entries are pruned slots (cells empty on this shard):
        # they contribute zero candidates, so the flat gather below skips
        # them through their zero pair count.
        safe_cells = np.where(probed >= 0, probed, 0)
        pair_sizes = np.where(probed >= 0, sizes[safe_cells], 0)  # (nq, nprobe)
        bounds = np.zeros(nq + 1, dtype=np.int64)
        np.cumsum(pair_sizes.sum(axis=1), out=bounds[1:])
        total = int(bounds[-1])
        if total == 0:
            return np.empty(0, dtype=np.float32), np.empty(0, dtype=np.int64), bounds
        out_d = np.empty(total, dtype=np.float32)
        counts = pair_sizes.ravel()
        flat_cells = probed.ravel()
        # Start of each (query, probe-slot) pair's candidate run in the flat
        # query-major output (the global exclusive prefix sum of counts).
        run_starts = np.cumsum(counts) - counts
        # Candidate ids resolve with one flat gather over the packed array:
        # candidate e of pair p is packed element starts[cell_p] + offset.
        elem = (
            np.repeat(lists.starts[safe_cells.ravel()] - run_starts, counts)
            + np.arange(total)
        )
        out_i = np.asarray(lists.ids)[elem]
        # Group (query, cell) pairs by cell: one vectorized ADC per slab.
        order = np.argsort(flat_cells, kind="stable")
        sorted_cells = flat_cells[order]
        group_bounds = np.flatnonzero(
            np.r_[True, sorted_cells[1:] != sorted_cells[:-1], True]
        )
        qs_all, slots_all = order // nprobe, order % nprobe
        counts_sorted = counts[order]
        cm_starts = np.cumsum(counts_sorted) - counts_sorted
        d_cm = np.empty(total, dtype=np.float32)  # distances, cell-major
        gather_per_cell = self._gather_table(lists)
        gather_dtype = self._gather_dtype()
        jj = np.arange(self.m)[None, :]
        for g0, g1 in zip(group_bounds[:-1], group_bounds[1:]):
            cell = int(sorted_cells[g0])
            if cell < 0:
                continue  # pruned slots: no candidates by construction
            nc = int(sizes[cell])
            if nc == 0:
                continue
            gather = gather_per_cell.get(cell)
            if gather is None:
                gather = self._gather_entry(lists, cell, jj, gather_dtype)
                gather_per_cell[cell] = gather
            c0 = cm_starts[g0]
            chunk = max(1, _ADC_CHUNK_ELEMS // (nc * self.m))
            for s in range(g0, g1, chunk):
                e = min(s + chunk, g1)
                lut_g = luts[qs_all[s:e], slots_all[s:e]]
                flat = lut_g.reshape(lut_g.shape[0], self.m * self.ksub)
                d_g = np.take(flat, gather, axis=1).reshape(-1, nc, self.m).sum(axis=2)
                n_out = d_g.size
                d_cm[c0 : c0 + n_out] = d_g.ravel()
                c0 += n_out
        # One global scatter from cell-major back to query-major probe order.
        out_d[
            np.repeat(run_starts[order] - cm_starts, counts_sorted) + np.arange(total)
        ] = d_cm
        return out_d, out_i, bounds

    def _gather_table(self, lists) -> dict:
        """The per-invlist-snapshot gather cache dict, (re)keyed to ``lists``.

        Flattened per-cell gather indices into each (m, ksub) LUT, cached
        per invlist snapshot: any add() flush produces a new
        PackedInvLists object, which invalidates the cache.
        """
        cache = getattr(self, "_gather_cache", None)
        if cache is None or cache[0] is not lists:
            cache = (lists, {})
            self._gather_cache = cache
        return cache[1]

    def _gather_dtype(self):
        """Narrowest dtype that can address every ``m * ksub`` LUT entry,
        so the cache stays within ~2x of the uint8 code store even when
        every cell of a memory-mapped index has been probed."""
        return np.uint16 if self.m * self.ksub <= 1 << 16 else np.int32

    def _gather_entry(self, lists, cell: int, jj, gather_dtype) -> np.ndarray:
        """One cell's flattened LUT-gather indices (``j*ksub + code``).

        The **single** construction site for gather tables: the lazy path
        in :meth:`stage_pq_dist_batch` and the eager
        :meth:`warm_gather_cache` both call this, so warm and cold entries
        are identical by construction.  ``np.take`` over these keeps the
        gather C-contiguous, so the float32 reduction order matches
        per-query ``pq.adc()`` bit for bit.
        """
        return (jj * self.ksub + lists.cell_codes(cell)).ravel().astype(gather_dtype)

    def warm_gather_cache(self, cells=None) -> int:
        """Prime the per-cell ADC gather tables ahead of serving.

        :meth:`stage_pq_dist_batch` builds each probed cell's flattened
        LUT-gather index lazily on first touch; a freshly-built replica
        view (see :func:`repro.ann.partition.replicate_index`) therefore
        pays that build cost on its first queries — N replicas cold-start
        N times.  This primes the same cache eagerly through the shared
        :meth:`_gather_entry` construction (search results and performance
        are unchanged except the first-touch cost moving here).

        Parameters
        ----------
        cells : iterable of cell ids to warm; default all non-empty cells.

        Returns the number of gather tables built (already-warm or empty
        cells are skipped).
        """
        lists = self.invlists
        gather_per_cell = self._gather_table(lists)
        gather_dtype = self._gather_dtype()
        jj = np.arange(self.m)[None, :]
        sizes = lists.sizes
        built = 0
        cell_iter = range(len(sizes)) if cells is None else cells
        for cell in cell_iter:
            cell = int(cell)
            if sizes[cell] == 0 or cell in gather_per_cell:
                continue
            gather_per_cell[cell] = self._gather_entry(lists, cell, jj, gather_dtype)
            built += 1
        return built

    def stage_select_k_batch(
        self, dists: np.ndarray, ids: np.ndarray, bounds: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stage SelK for a batch over the flat candidate layout."""
        nq = len(bounds) - 1
        out_ids = np.empty((nq, k), dtype=np.int64)
        out_dists = np.empty((nq, k), dtype=np.float32)
        for qi in range(nq):
            lo, hi = bounds[qi], bounds[qi + 1]
            out_ids[qi], out_dists[qi] = self.stage_select_k(dists[lo:hi], ids[lo:hi], k)
        return out_ids, out_dists

    # ------------------------------------------------------------------ #
    def search(
        self, queries: np.ndarray, k: int, nprobe: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Full six-stage batched search.  Returns (ids (q, k), distances (q, k)).

        Large batches are processed in blocks sized so the per-block LUT
        tensor stays bounded (:data:`_LUT_BATCH_ELEMS`); results are
        independent per query, so blocking never changes them.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        queries_t, probed = self.preselect(queries, nprobe)
        out_ids, out_dists, codes_scanned = self.search_preselected(queries_t, probed, k)
        nq = queries_t.shape[0]
        self.stats.n_queries += nq
        self.stats.cells_scanned += nq * nprobe
        self.stats.codes_scanned += codes_scanned
        return out_ids, out_dists

    def preselect(
        self, queries: np.ndarray, nprobe: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """The host-side coarse plan: OPQ + IVFDist + SelCells, exported.

        Returns ``(queries_t, probed)`` — the rotated queries and the
        ``(nq, nprobe)`` probed cell ids — exactly the inputs
        :meth:`search_preselected` consumes.  Shards of a partitioned
        index share the trained quantizers, so a router computes this
        plan **once** per batch and scatters it to every shard instead
        of each shard redoing identical coarse work
        (:class:`repro.serve.routing.ShardedBackend` with a planner).
        The ``preselect_batches`` / ``preselect_queries`` stats counters
        record every invocation (including the ones inside
        :meth:`search`), making coarse-once topologies observable.
        """
        # Stage timers hang off the caller's active span (NOOP when no
        # request is being traced — one falsy check, no timestamping).
        span = current_span()
        t0 = now_us() if span else 0
        queries_t = self.stage_opq(queries)
        cell_dists = self.stage_ivf_dist(queries_t)
        probed = self.stage_select_cells(cell_dists, nprobe)
        if span:
            span.interval(
                "ivf_coarse", t0, now_us(),
                args={"nq": int(queries_t.shape[0]), "nprobe": int(nprobe)},
            )
        self.stats.preselect_batches += 1
        self.stats.preselect_queries += queries_t.shape[0]
        return queries_t, probed

    def lut_block_queries(self, nprobe: int) -> int:
        """Queries per block such that one block's LUT tensor stays bounded
        (:data:`_LUT_BATCH_ELEMS`) — shared by every batched engine caller."""
        return max(1, _LUT_BATCH_ELEMS // (nprobe * self.m * self.ksub))

    def search_preselected(
        self, queries_t: np.ndarray, probed: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Fused BuildLUT + PQDist + SelK over precomputed probed cells.

        The batch is processed in blocks sized so the per-block LUT tensor
        stays bounded (:data:`_LUT_BATCH_ELEMS`); results are independent
        per query, so blocking never changes them.  Returns
        ``(ids (q, k), dists (q, k), codes_scanned)``; stats are left to
        the caller.
        """
        nq, nprobe = probed.shape
        block = self.lut_block_queries(nprobe)
        out_ids = np.empty((nq, k), dtype=np.int64)
        out_dists = np.empty((nq, k), dtype=np.float32)
        codes_scanned = 0
        # Per-block stage timers hang off the caller's active span (NOOP
        # when untraced: one falsy check per block, no timestamping).
        span = current_span()
        for s in range(0, nq, block):
            sub = probed[s : s + block]
            t0 = now_us() if span else 0
            luts = self.stage_build_luts_batch(queries_t[s : s + block], sub)
            t1 = now_us() if span else 0
            dists_f, ids_f, bounds = self.stage_pq_dist_batch(luts, sub)
            t2 = now_us() if span else 0
            out_ids[s : s + block], out_dists[s : s + block] = self.stage_select_k_batch(
                dists_f, ids_f, bounds, k
            )
            if span:
                span.interval("ivf_build_lut", t0, t1)
                span.interval(
                    "ivf_pq_scan", t1, t2, args={"codes": int(bounds[-1])}
                )
                span.interval("ivf_select_k", t2, now_us())
            codes_scanned += int(bounds[-1])
        return out_ids, out_dists, codes_scanned

    def search_batch_preselected(
        self, queries_t: np.ndarray, probed: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Serving entry for a router-computed preselect plan.

        The shard-side half of the preselect-once scatter: validates the
        plan, runs the fused BuildLUT + PQDist + SelK scan over this
        index's (shard's) data, and updates the workload stats.  ``-1``
        entries in ``probed`` are pruned slots (cells the router knows
        are empty on this shard) and scan nothing.  Results are
        bit-identical to :meth:`search` when the plan came from
        :meth:`preselect` on an index sharing these quantizers.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        queries_t = np.ascontiguousarray(np.atleast_2d(queries_t), dtype=np.float32)
        if queries_t.shape[1] != self.d:
            raise ValueError(f"expected dim {self.d}, got {queries_t.shape[1]}")
        probed = np.ascontiguousarray(np.atleast_2d(probed), dtype=np.int64)
        if probed.shape[0] != queries_t.shape[0]:
            raise ValueError(
                f"probed rows ({probed.shape[0]}) != queries rows "
                f"({queries_t.shape[0]})"
            )
        if probed.size == 0 or probed.max() >= self.nlist:
            raise ValueError(
                f"probed cells must lie in [-1, nlist={self.nlist})"
            )
        out_ids, out_dists, codes_scanned = self.search_preselected(
            queries_t, probed, k
        )
        nq = queries_t.shape[0]
        self.stats.n_queries += nq
        self.stats.cells_scanned += int((probed >= 0).sum())
        self.stats.codes_scanned += codes_scanned
        return out_ids, out_dists

    def search_batch(
        self, queries: np.ndarray, k: int, nprobe: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Uniform serving entry point (see :mod:`repro.serve.backends`).

        Identical to :meth:`search`; ``nprobe`` is mandatory for a raw
        index (cluster/dynamic services bake it into their config).  The
        serving engine calls this from a single worker thread, which is
        the supported concurrency model — search mutates per-index caches
        (gather tables, stats), so concurrent searchers must wrap it.
        """
        if nprobe is None:
            raise ValueError("IVFPQIndex serving requires an explicit nprobe")
        return self.search(queries, k, nprobe)

    # ------------------------------------------------------------------ #
    def expected_scan_fraction(self, nprobe: int) -> float:
        """Expected fraction of the database scanned per query.

        Assumes the query distribution matches the database distribution so a
        cell is probed with probability proportional to its size — the same
        estimator the paper's performance model uses for Stage PQDist's N.
        """
        sizes = self.cell_sizes.astype(np.float64)
        total = sizes.sum()
        if total == 0:
            return 0.0
        p = sizes / total
        # Probability-weighted top-nprobe: approximate by taking the nprobe
        # largest expected contributions of a size-biased sample.
        order = np.argsort(-p)
        take = order[: min(nprobe, len(order))]
        # Scale: probing is biased toward big cells but not exclusively the
        # largest; interpolate between uniform (nprobe/nlist) and size-biased.
        uniform = nprobe / max(self.nlist, 1)
        biased = float(p[take].sum())
        return 0.5 * (uniform + biased)

    def reconstruct(self, ids) -> np.ndarray:
        """Approximate original vectors for stored ``ids``.

        Decodes the PQ codes, re-adds the cell centroid (residual encoding),
        and applies the inverse OPQ rotation.  The L2 error is the index's
        quantization error — useful for re-ranking and debugging.

        Lookup is fully vectorized: a sorted-id permutation is cached per
        packed-lists snapshot (any ``add()`` produces a new snapshot, so the
        cache can never serve stale positions — ids need not be contiguous
        or dense).
        """
        _, pq = self._require_trained()
        lists = self.invlists
        ids = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        cache = getattr(self, "_recon_cache", None)
        if cache is None or cache[0] is not lists:
            all_ids = lists.all_ids()
            order = np.argsort(all_ids, kind="stable")
            cache = (
                lists,
                np.asarray(all_ids)[order],
                order,
                np.asarray(lists.all_codes()),
                lists.element_cells(),
            )
            self._recon_cache = cache
        _, sorted_ids, order, all_codes, element_cells = cache
        if len(ids) == 0:
            return np.empty((0, self.d), dtype=np.float32)
        if len(sorted_ids) == 0:
            raise KeyError(f"id {int(ids[0])} not in index")
        pos = np.searchsorted(sorted_ids, ids)
        pos_clipped = np.minimum(pos, len(sorted_ids) - 1)
        missing = (pos >= len(sorted_ids)) | (sorted_ids[pos_clipped] != ids)
        if missing.any():
            raise KeyError(f"id {int(ids[missing][0])} not in index")
        elem = order[pos_clipped]
        out = pq.decode(all_codes[elem])
        if self.by_residual:
            out = out + self.centroids[element_cells[elem]]
        if self.opq is not None:
            # Rotation is orthonormal: inverse = transpose.
            out = out @ self.opq.rotation.T
        return out.astype(np.float32, copy=False)

    def memory_bytes(self) -> int:
        """Bytes of PQ codes + ids + centroids (what must fit in FPGA HBM)."""
        cent = self.centroids.nbytes if self.centroids is not None else 0
        return self.invlists.memory_bytes() + cent
