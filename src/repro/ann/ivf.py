"""The IVF-PQ index — the algorithm the paper accelerates.

An inverted-file (IVF) index partitions the database into ``nlist`` Voronoi
cells by k-means; product quantization compresses each vector into ``m``
bytes.  Queries scan only the ``nprobe`` nearest cells and rank candidates by
asymmetric distance computation (ADC) against a per-cell lookup table.

The implementation mirrors Faiss ``IndexIVFPQ`` semantics (residual encoding
by default, optional OPQ pre-transform) while keeping each of the paper's six
search stages a separately callable function (see :mod:`repro.ann.stages`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ann.distances import l2_sq_blocked, topk_smallest
from repro.ann.kmeans import kmeans_fit
from repro.ann.opq import OPQTransform
from repro.ann.pq import ProductQuantizer

__all__ = ["IVFPQIndex", "IVFStats"]


@dataclass
class IVFStats:
    """Per-search workload counters, consumed by the performance model."""

    n_queries: int = 0
    cells_scanned: int = 0
    codes_scanned: int = 0

    @property
    def codes_per_query(self) -> float:
        return self.codes_scanned / max(self.n_queries, 1)


@dataclass
class IVFPQIndex:
    """IVF-PQ index with optional OPQ rotation.

    Parameters
    ----------
    d : vector dimensionality.
    nlist : number of Voronoi cells (the paper sweeps 2^10..2^18; we scale).
    m : PQ bytes per vector (paper: 16).
    ksub : centroids per PQ sub-space (256).
    use_opq : train and apply an OPQ rotation before quantization.
    by_residual : encode residuals w.r.t. the cell centroid (Faiss default).
    """

    d: int
    nlist: int
    m: int = 16
    ksub: int = 256
    use_opq: bool = False
    by_residual: bool = True
    seed: int = 0

    centroids: np.ndarray | None = field(default=None, repr=False)
    pq: ProductQuantizer | None = field(default=None, repr=False)
    opq: OPQTransform | None = field(default=None, repr=False)
    cell_codes: list[np.ndarray] = field(default_factory=list, repr=False)
    cell_ids: list[np.ndarray] = field(default_factory=list, repr=False)
    stats: IVFStats = field(default_factory=IVFStats, repr=False)

    # ------------------------------------------------------------------ #
    @property
    def is_trained(self) -> bool:
        return self.centroids is not None and self.pq is not None

    @property
    def ntotal(self) -> int:
        return int(sum(len(ids) for ids in self.cell_ids))

    @property
    def cell_sizes(self) -> np.ndarray:
        return np.array([len(ids) for ids in self.cell_ids], dtype=np.int64)

    def _require_trained(self) -> tuple[np.ndarray, ProductQuantizer]:
        if self.centroids is None or self.pq is None:
            raise RuntimeError("IVFPQIndex used before train()")
        return self.centroids, self.pq

    def _transform(self, x: np.ndarray) -> np.ndarray:
        """Apply the OPQ rotation if enabled (Stage OPQ)."""
        x = np.ascontiguousarray(np.atleast_2d(x), dtype=np.float32)
        if x.shape[1] != self.d:
            raise ValueError(f"expected dim {self.d}, got {x.shape[1]}")
        if self.opq is not None:
            return self.opq.apply(x)
        return x

    # ------------------------------------------------------------------ #
    def train(self, x: np.ndarray) -> "IVFPQIndex":
        """Train the coarse quantizer, the optional OPQ rotation, and the PQ.

        Training order matches Faiss' ``OPQMatrix + IVFPQ`` chain: the OPQ
        rotation is learned on raw vectors, then the coarse quantizer and the
        PQ are trained in the rotated space.
        """
        x = np.ascontiguousarray(np.atleast_2d(x), dtype=np.float32)
        if x.shape[0] < max(self.nlist, self.ksub):
            raise ValueError(
                f"need >= max(nlist, ksub) = {max(self.nlist, self.ksub)} training "
                f"vectors, got {x.shape[0]}"
            )
        if self.use_opq:
            self.opq = OPQTransform(self.d, self.m, self.ksub, seed=self.seed)
            self.opq.train(x)
            xt = self.opq.apply(x)
        else:
            self.opq = None
            xt = x
        self.centroids, assign, _ = kmeans_fit(xt, self.nlist, seed=self.seed)
        pq_input = xt - self.centroids[assign] if self.by_residual else xt
        self.pq = ProductQuantizer(self.d, self.m, self.ksub, seed=self.seed)
        self.pq.train(pq_input)
        self.cell_codes = [np.empty((0, self.m), dtype=np.uint8) for _ in range(self.nlist)]
        self.cell_ids = [np.empty(0, dtype=np.int64) for _ in range(self.nlist)]
        return self

    def add(self, x: np.ndarray, ids: np.ndarray | None = None) -> "IVFPQIndex":
        """Assign vectors to cells and append their PQ codes."""
        centroids, pq = self._require_trained()
        xt = self._transform(x)
        n = xt.shape[0]
        if ids is None:
            ids = np.arange(self.ntotal, self.ntotal + n, dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape != (n,):
                raise ValueError(f"ids shape {ids.shape} != ({n},)")
        assign = np.argmin(l2_sq_blocked(xt, centroids), axis=1)
        encode_input = xt - centroids[assign] if self.by_residual else xt
        codes = pq.encode(encode_input)
        order = np.argsort(assign, kind="stable")
        sorted_assign = assign[order]
        boundaries = np.searchsorted(sorted_assign, np.arange(self.nlist + 1))
        for cell in range(self.nlist):
            lo, hi = boundaries[cell], boundaries[cell + 1]
            if lo == hi:
                continue
            sel = order[lo:hi]
            self.cell_codes[cell] = np.vstack([self.cell_codes[cell], codes[sel]])
            self.cell_ids[cell] = np.concatenate([self.cell_ids[cell], ids[sel]])
        return self

    # ------------------------------------------------------------------ #
    # The six query-time stages (callable individually; see ann.stages).
    def stage_opq(self, queries: np.ndarray) -> np.ndarray:
        """Stage OPQ: rotate queries (identity when OPQ is disabled)."""
        return self._transform(queries)

    def stage_ivf_dist(self, queries_t: np.ndarray) -> np.ndarray:
        """Stage IVFDist: distances from each query to all nlist centroids."""
        centroids, _ = self._require_trained()
        return l2_sq_blocked(queries_t, centroids)

    def stage_select_cells(self, cell_dists: np.ndarray, nprobe: int) -> np.ndarray:
        """Stage SelCells: ids of the nprobe nearest cells per query."""
        if not 1 <= nprobe <= self.nlist:
            raise ValueError(f"nprobe={nprobe} outside [1, nlist={self.nlist}]")
        idx, _ = topk_smallest(cell_dists, nprobe, axis=1)
        return idx

    def stage_build_luts(self, query_t: np.ndarray, cells: np.ndarray) -> np.ndarray:
        """Stage BuildLUT: one (m, ksub) table per probed cell for one query.

        With residual encoding the table depends on the cell centroid, so
        ``nprobe`` tables are built per query — exactly the per-cell workload
        of the paper's Stage BuildLUT PEs.
        """
        centroids, pq = self._require_trained()
        if self.by_residual:
            residuals = query_t[None, :] - centroids[cells]
            return pq.build_luts(residuals)
        lut = pq.build_lut(query_t)
        return np.broadcast_to(lut, (len(cells),) + lut.shape)

    def stage_pq_dist(
        self, luts: np.ndarray, cells: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stage PQDist: ADC distances for all codes in the probed cells.

        Returns (distances, ids) concatenated across the probed cells.
        """
        _, pq = self._require_trained()
        dists: list[np.ndarray] = []
        ids: list[np.ndarray] = []
        for lut, cell in zip(luts, cells):
            codes = self.cell_codes[cell]
            if codes.shape[0] == 0:
                continue
            dists.append(pq.adc(lut, codes))
            ids.append(self.cell_ids[cell])
        if not dists:
            return np.empty(0, dtype=np.float32), np.empty(0, dtype=np.int64)
        return np.concatenate(dists), np.concatenate(ids)

    @staticmethod
    def stage_select_k(
        dists: np.ndarray, ids: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stage SelK: the K smallest distances with their vector ids.

        Pads with (-1, +inf) when fewer than K candidates were scanned.
        """
        if dists.shape[0] == 0:
            return (np.full(k, -1, dtype=np.int64), np.full(k, np.inf, dtype=np.float32))
        idx, vals = topk_smallest(dists, k)
        out_ids = ids[idx]
        if len(out_ids) < k:
            pad = k - len(out_ids)
            out_ids = np.concatenate([out_ids, np.full(pad, -1, dtype=np.int64)])
            vals = np.concatenate([vals, np.full(pad, np.inf, dtype=vals.dtype)])
        return out_ids, vals

    # ------------------------------------------------------------------ #
    def search(
        self, queries: np.ndarray, k: int, nprobe: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Full six-stage search.  Returns (ids (q, k), distances (q, k))."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        queries_t = self.stage_opq(queries)
        cell_dists = self.stage_ivf_dist(queries_t)
        probed = self.stage_select_cells(cell_dists, nprobe)
        nq = queries_t.shape[0]
        out_ids = np.empty((nq, k), dtype=np.int64)
        out_dists = np.empty((nq, k), dtype=np.float32)
        sizes = self.cell_sizes
        for qi in range(nq):
            cells = probed[qi]
            luts = self.stage_build_luts(queries_t[qi], cells)
            dists, ids = self.stage_pq_dist(luts, cells)
            out_ids[qi], out_dists[qi] = self.stage_select_k(dists, ids, k)
            self.stats.codes_scanned += int(sizes[cells].sum())
        self.stats.n_queries += nq
        self.stats.cells_scanned += nq * nprobe
        return out_ids, out_dists

    # ------------------------------------------------------------------ #
    def expected_scan_fraction(self, nprobe: int) -> float:
        """Expected fraction of the database scanned per query.

        Assumes the query distribution matches the database distribution so a
        cell is probed with probability proportional to its size — the same
        estimator the paper's performance model uses for Stage PQDist's N.
        """
        sizes = self.cell_sizes.astype(np.float64)
        total = sizes.sum()
        if total == 0:
            return 0.0
        p = sizes / total
        # Probability-weighted top-nprobe: approximate by taking the nprobe
        # largest expected contributions of a size-biased sample.
        order = np.argsort(-p)
        take = order[: min(nprobe, len(order))]
        # Scale: probing is biased toward big cells but not exclusively the
        # largest; interpolate between uniform (nprobe/nlist) and size-biased.
        uniform = nprobe / max(self.nlist, 1)
        biased = float(p[take].sum())
        return 0.5 * (uniform + biased)

    def reconstruct(self, ids) -> np.ndarray:
        """Approximate original vectors for stored ``ids``.

        Decodes the PQ codes, re-adds the cell centroid (residual encoding),
        and applies the inverse OPQ rotation.  The L2 error is the index's
        quantization error — useful for re-ranking and debugging.
        """
        _, pq = self._require_trained()
        ids = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        out = np.empty((len(ids), self.d), dtype=np.float32)
        # Lazy id -> (cell, slot) map; rebuilt when the index grew.
        lookup = getattr(self, "_id_lookup", None)
        if lookup is None or len(lookup) != self.ntotal:
            lookup = {
                int(vid): (cell, slot)
                for cell, vids in enumerate(self.cell_ids)
                for slot, vid in enumerate(vids)
            }
            self._id_lookup = lookup
        for row, vid in enumerate(ids):
            if int(vid) not in lookup:
                raise KeyError(f"id {int(vid)} not in index")
            cell, slot = lookup[int(vid)]
            vec = pq.decode(self.cell_codes[cell][slot : slot + 1])[0]
            if self.by_residual:
                vec = vec + self.centroids[cell]
            out[row] = vec
        if self.opq is not None:
            # Rotation is orthonormal: inverse = transpose.
            out = out @ self.opq.rotation.T
        return out

    def memory_bytes(self) -> int:
        """Bytes of PQ codes + ids + centroids (what must fit in FPGA HBM)."""
        codes = sum(c.nbytes for c in self.cell_codes)
        ids = sum(i.nbytes for i in self.cell_ids)
        cent = self.centroids.nbytes if self.centroids is not None else 0
        return codes + ids + cent
