"""Hardware substrate: FPGA component models with functional + cost behaviour.

Everything the paper's accelerator is assembled from:

- :mod:`repro.hw.resources` — the five-resource accounting of Eq. 2.
- :mod:`repro.hw.device` — FPGA cards (U55C is the paper's device).
- :mod:`repro.hw.priority_queue` — systolic priority queue (Figure 6).
- :mod:`repro.hw.bitonic` — bitonic sort / partial-merge networks (§5.1.1).
- :mod:`repro.hw.selection` — HPQ and HSMPQG K-selection designs (§5.1.2).
- :mod:`repro.hw.compute_pes` — OPQ / IVFDist / BuildLUT / PQDist PEs (§5.2).
- :mod:`repro.hw.fifo` — FIFO interconnect costs (§5.2.2).
"""

from repro.hw.bitonic import BitonicPartialMerger, BitonicSorter, sort_latency_cycles
from repro.hw.compute_pes import BuildLUTPE, IVFDistPE, OPQPE, PQDistPE, cycles_per_query
from repro.hw.device import SMALL_DEVICE, U250, U55C, FPGADevice
from repro.hw.fifo import FIFO_COST, fifo_resources, stage_fifo_count
from repro.hw.priority_queue import SystolicPriorityQueue, queue_resources
from repro.hw.resources import RESOURCE_KINDS, ResourceVector
from repro.hw.selection import HPQ, HSMPQG, make_selector, valid_selectors

__all__ = [
    "FIFO_COST",
    "HPQ",
    "HSMPQG",
    "BitonicPartialMerger",
    "BitonicSorter",
    "BuildLUTPE",
    "FPGADevice",
    "IVFDistPE",
    "OPQPE",
    "PQDistPE",
    "RESOURCE_KINDS",
    "ResourceVector",
    "SMALL_DEVICE",
    "SystolicPriorityQueue",
    "U250",
    "U55C",
    "cycles_per_query",
    "fifo_resources",
    "make_selector",
    "queue_resources",
    "sort_latency_cycles",
    "stage_fifo_count",
    "valid_selectors",
]
