"""Systolic priority queue (Leiserson 1979; Huang et al. 2014) — Figure 6.

The hardware queue is a register array interconnected by compare-swap units
supporting only the *replace* operation: if the input is smaller than the
current maximum, it replaces it; the array then locally re-sorts via
odd/even swap phases.  One replace takes **two clock cycles**, so a queue
sustains 0.5 inputs/cycle — this factor drives the paper's "split each
1-element/cycle stream into two sub-streams with two queues" rule.

This module provides both the *functional* model (exact min-K semantics,
implemented with the same replace-only operation set) and the *cost* model
(cycles, resources) used by the performance model.  Resources are linear in
queue length (Section 6.2 of the paper: "the numbers of registers and
compare-swap units in a priority queue are linear to the queue length").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hw.resources import ResourceVector

__all__ = ["SystolicPriorityQueue", "queue_resources"]

#: Calibrated per-entry costs: each entry holds a (distance, id) register pair
#: (64 bit) plus a compare-swap unit shared between neighbours.  Chosen so a
#: length-100 queue costs ≈0.53 % of a U55C's LUTs — 18 queues + overhead land
#: at the 31.7 % Stage SelK consumption of the paper's K=100 design (Table 4).
_LUT_PER_ENTRY = 230.0
_FF_PER_ENTRY = 140.0
_LUT_FIXED = 150.0
_FF_FIXED = 90.0

#: A replace operation completes every two clock cycles (Figure 6).
CYCLES_PER_REPLACE = 2


def queue_resources(length: int) -> ResourceVector:
    """Linear resource model for a queue of ``length`` entries."""
    if length <= 0:
        raise ValueError(f"queue length must be positive, got {length}")
    return ResourceVector(
        lut=_LUT_FIXED + _LUT_PER_ENTRY * length,
        ff=_FF_FIXED + _FF_PER_ENTRY * length,
    )


@dataclass
class SystolicPriorityQueue:
    """Functional + cost model of a replace-only max-at-root queue.

    The queue keeps the ``length`` smallest (value, id) pairs seen so far.
    ``replace`` mirrors the hardware op: compare against the current maximum
    and swap in if smaller.  The functional state is kept sorted only
    logically (hardware keeps it *locally* ordered); :meth:`drain` returns
    values in ascending order, exactly what the hardware can emit.
    """

    length: int
    values: np.ndarray = field(init=False, repr=False)
    ids: np.ndarray = field(init=False, repr=False)
    #: Total replace operations issued (for cycle accounting).
    n_ops: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"queue length must be positive, got {self.length}")
        self.values = np.full(self.length, np.inf, dtype=np.float64)
        self.ids = np.full(self.length, -1, dtype=np.int64)

    # -------------------------------------------------------------- #
    def reset(self) -> None:
        self.values.fill(np.inf)
        self.ids.fill(-1)
        self.n_ops = 0

    def replace(self, value: float, id_: int) -> None:
        """Hardware replace: evict the current max if ``value`` is smaller."""
        self.n_ops += 1
        worst = int(np.argmax(self.values))
        if value < self.values[worst]:
            self.values[worst] = value
            self.ids[worst] = id_

    def push_stream(self, values: np.ndarray, ids: np.ndarray | None = None) -> None:
        """Feed a whole stream through the replace port (vectorized).

        Functionally identical to calling :meth:`replace` per element;
        implemented with a partial sort for speed.
        """
        values = np.asarray(values, dtype=np.float64).ravel()
        if ids is None:
            ids = np.arange(len(values), dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64).ravel()
        if values.shape != ids.shape:
            raise ValueError("values and ids must have equal length")
        self.n_ops += len(values)
        merged_v = np.concatenate([self.values, values])
        merged_i = np.concatenate([self.ids, ids])
        keep = np.argpartition(merged_v, self.length - 1)[: self.length]
        self.values = merged_v[keep]
        self.ids = merged_i[keep]

    def drain(self) -> tuple[np.ndarray, np.ndarray]:
        """Emit contents in ascending value order (hardware drain phase)."""
        order = np.argsort(self.values, kind="stable")
        return self.values[order], self.ids[order]

    # -------------------------------------------------------------- #
    def cycles_consumed(self, n_inputs: int) -> int:
        """Cycles to ingest ``n_inputs`` elements: 2 per replace (Fig. 6)."""
        return CYCLES_PER_REPLACE * n_inputs

    def drain_cycles(self) -> int:
        """Cycles to shift out the sorted contents (one per entry)."""
        return self.length

    @property
    def resources(self) -> ResourceVector:
        return queue_resources(self.length)
