"""FIFO interconnect cost model (Eq. 2's second term).

PEs communicate exclusively through FIFOs (§5.2.2).  A FIFO's cost is fixed
per instance (measured once, then multiplied by the connection count, exactly
as the paper models it).  Computation stages use a 1-D array topology —
``n`` PEs need ``n`` FIFO hops plus one output — while selection stages use
direct point-to-point links.
"""

from __future__ import annotations

from repro.hw.resources import ResourceVector

__all__ = ["FIFO_COST", "fifo_resources", "stage_fifo_count"]

#: Measured cost of one 512-deep, 64-bit FIFO instance.
FIFO_COST = ResourceVector(bram36=0.5, lut=50.0, ff=60.0)


def fifo_resources(n_fifos: int) -> ResourceVector:
    """Total cost of ``n_fifos`` FIFO instances."""
    if n_fifos < 0:
        raise ValueError(f"n_fifos must be non-negative, got {n_fifos}")
    return FIFO_COST * n_fifos


def stage_fifo_count(n_pes: int, topology: str = "array") -> int:
    """FIFO connections for a stage of ``n_pes`` PEs.

    ``array``: the adopted 1-D array (n hops + 1 egress).
    ``p2p``: point-to-point fan-in of a selection stage (one per stream).
    """
    if n_pes < 0:
        raise ValueError(f"n_pes must be non-negative, got {n_pes}")
    if topology == "array":
        return n_pes + 1
    if topology == "p2p":
        return n_pes
    raise ValueError(f"unknown topology {topology!r}")
