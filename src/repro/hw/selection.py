"""K-selection microarchitectures: HPQ and HSMPQG (§5.1.2, Figures 6–7).

Both designs collect the ``s`` smallest values per query out of ``z`` input
streams, where each stream produces one element per clock cycle:

- **HPQ** (hierarchical priority queue): each full-rate stream is split into
  two sub-streams feeding two level-1 queues (a queue sustains one replace
  per two cycles), so level 1 holds ``2z`` queues of length ``s``; a level-2
  queue selects the final ``s`` out of the ``2z·s`` collected elements.

- **HSMPQG** (hybrid sorting, merging, priority queue group): per cycle, the
  ``z`` elements are sorted by ``ceil(z/w)`` width-``w`` bitonic sorters
  (``w`` = smallest power of two ≥ s), partial-merged down to one sorted
  width-``w`` array, and the smallest ``s`` per cycle are inserted into a
  small HPQ group.  This exactness relies on the invariant that any global
  top-``s`` element is a top-``s`` element of its own cycle.

Resource calibration reproduces the paper's Table 4 LUT shares: e.g. HPQ
with 18 input streams at K=100 ≈ 32 % of a U55C's LUTs; HSMPQG with 36
streams at K=10 ≈ 12.7 %.

Both classes expose the same interface: functional ``select``, plus the
cycle/resource cost model consumed by :mod:`repro.core.perf_model`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.hw.bitonic import BitonicPartialMerger, BitonicSorter, bitonic_sort_batch
from repro.hw.priority_queue import CYCLES_PER_REPLACE, queue_resources
from repro.hw.resources import ResourceVector

__all__ = ["HPQ", "HSMPQG", "SelectorBase", "make_selector", "valid_selectors"]


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p *= 2
    return p


def _exact_topk(values: np.ndarray, ids: np.ndarray, s: int) -> tuple[np.ndarray, np.ndarray]:
    """Pad-aware exact top-s used as the terminal reduction of both designs."""
    flat_v = values.ravel()
    flat_i = ids.ravel()
    s_eff = min(s, flat_v.size)
    keep = np.argpartition(flat_v, s_eff - 1)[:s_eff]
    order = np.argsort(flat_v[keep], kind="stable")
    out_v = flat_v[keep][order]
    out_i = flat_i[keep][order]
    if s_eff < s:
        out_v = np.concatenate([out_v, np.full(s - s_eff, np.inf)])
        out_i = np.concatenate([out_i, np.full(s - s_eff, -1, dtype=np.int64)])
    return out_v, out_i


@lru_cache(maxsize=4096)
def _cached_selector_resources(sel: "SelectorBase") -> ResourceVector:
    """Selectors are frozen dataclasses; memoize their resource vectors
    across the design-space sweep."""
    return sel._compute_resources()


@dataclass(frozen=True)
class SelectorBase:
    """Common parameters: ``z`` full-rate input streams, ``s`` results."""

    z: int
    s: int

    def __post_init__(self) -> None:
        if self.z <= 0:
            raise ValueError(f"z must be positive, got {self.z}")
        if self.s <= 0:
            raise ValueError(f"s must be positive, got {self.s}")

    # Interface implemented by subclasses ------------------------------- #
    @property
    def arch(self) -> str:
        raise NotImplementedError

    @property
    def n_input_streams(self) -> int:
        """The "#InStream" column of Table 4 (hardware input ports)."""
        raise NotImplementedError

    def _compute_resources(self) -> ResourceVector:
        raise NotImplementedError

    @property
    def resources(self) -> ResourceVector:
        return _cached_selector_resources(self)

    def consume_cycles(self, v: int) -> int:
        """Cycles to ingest ``v`` elements per stream, overlapped with producers."""
        raise NotImplementedError

    def post_cycles(self) -> int:
        """Drain/flush cycles after the last input element arrives."""
        raise NotImplementedError

    def select(self, values: np.ndarray, ids: np.ndarray | None = None):
        """Functional model: the ``s`` smallest of a (z, v) stream matrix."""
        raise NotImplementedError

    def _check_streams(self, values: np.ndarray, ids: np.ndarray | None):
        values = np.atleast_2d(np.asarray(values, dtype=np.float64))
        if values.shape[0] != self.z:
            raise ValueError(f"expected {self.z} streams, got {values.shape[0]}")
        if ids is None:
            v = values.shape[1]
            ids = np.arange(self.z * v, dtype=np.int64).reshape(self.z, v)
        else:
            ids = np.atleast_2d(np.asarray(ids, dtype=np.int64))
            if ids.shape != values.shape:
                raise ValueError("ids shape must match values shape")
        return values, ids


@dataclass(frozen=True)
class HPQ(SelectorBase):
    """Hierarchical priority queue selector (Option 1 of §5.1.2)."""

    #: Sub-streams per full-rate input stream (2 because a queue accepts one
    #: replace per two cycles; use 1 for half-rate producers).
    substreams: int = 2

    @property
    def arch(self) -> str:
        return "HPQ"

    @property
    def n_level1_queues(self) -> int:
        return self.z * self.substreams

    @property
    def n_input_streams(self) -> int:
        return self.n_level1_queues

    def _compute_resources(self) -> ResourceVector:
        level1 = queue_resources(self.s) * self.n_level1_queues
        level2 = queue_resources(self.s)
        return level1 + level2

    def consume_cycles(self, v: int) -> int:
        # The substream queues run in parallel: each ingests ceil(v/substreams)
        # elements at 2 cycles per replace.  With substreams=2 this matches a
        # full-rate producer (one element per cycle).
        per_queue = -(-v // self.substreams)  # ceil
        return CYCLES_PER_REPLACE * per_queue

    def post_cycles(self) -> int:
        # Level-2 queue re-scans all level-1 contents, then drains s results.
        return CYCLES_PER_REPLACE * self.n_level1_queues * self.s + self.s

    def select(self, values: np.ndarray, ids: np.ndarray | None = None):
        values, ids = self._check_streams(values, ids)
        v = values.shape[1]
        # Level 1: per sub-stream top-s (round-robin split of each stream).
        level1_v = []
        level1_i = []
        for zi in range(self.z):
            for sub in range(self.substreams):
                sv = values[zi, sub :: self.substreams]
                si = ids[zi, sub :: self.substreams]
                if sv.size == 0:
                    continue
                tv, ti = _exact_topk(sv, si, min(self.s, sv.size))
                level1_v.append(tv)
                level1_i.append(ti)
        # Level 2: top-s of the union.
        return _exact_topk(np.concatenate(level1_v), np.concatenate(level1_i), self.s)


@dataclass(frozen=True)
class HSMPQG(SelectorBase):
    """Hybrid sorting/merging/priority-queue-group selector (Option 2)."""

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.s >= self.z:
            raise ValueError(
                f"HSMPQG requires s < z (cannot filter otherwise); got s={self.s}, z={self.z}"
            )

    @property
    def arch(self) -> str:
        return "HSMPQG"

    @property
    def sort_width(self) -> int:
        """Minimum bitonic width that can carry s results (16 for s=10)."""
        return _next_pow2(self.s)

    @property
    def n_sorters(self) -> int:
        return -(-self.z // self.sort_width)  # ceil(z / w)

    @property
    def n_mergers(self) -> int:
        return max(self.n_sorters - 1, 0)

    @property
    def n_input_streams(self) -> int:
        return self.z

    def _compute_resources(self) -> ResourceVector:
        w = self.sort_width
        sorters = BitonicSorter(w).resources * self.n_sorters
        mergers = BitonicPartialMerger(w).resources * self.n_mergers
        # The s picked elements per cycle feed an HPQ group: 2s level-1
        # queues (full-rate streams) plus the level-2 queue.
        queues = queue_resources(self.s) * (2 * self.s + 1)
        return sorters + mergers + queues

    def consume_cycles(self, v: int) -> int:
        # Sorters take all z lanes each cycle; fully pipelined.
        return v

    def post_cycles(self) -> int:
        w = self.sort_width
        sort_lat = BitonicSorter(w).latency_cycles
        merge_depth = int(np.ceil(np.log2(max(self.n_sorters, 1)))) if self.n_sorters > 1 else 0
        merge_lat = merge_depth * BitonicPartialMerger(w).latency_cycles
        queue_flush = CYCLES_PER_REPLACE * 2 * self.s * self.s + self.s
        return sort_lat + merge_lat + queue_flush

    def select(self, values: np.ndarray, ids: np.ndarray | None = None):
        values, ids = self._check_streams(values, ids)
        v = values.shape[1]
        w = self.sort_width
        lanes = self.n_sorters * w
        # Transpose: each cycle (row) carries one element per stream; pad the
        # dummy lanes the paper adds for the last sorter.
        pv = np.full((v, lanes), np.inf)
        pi = np.full((v, lanes), -1, dtype=np.int64)
        pv[:, : self.z] = values.T
        pi[:, : self.z] = ids.T
        # Stage 1: per-cycle bitonic sorts of each width-w group.
        sorted_v = np.empty_like(pv)
        sorted_i = np.empty_like(pi)
        for g in range(self.n_sorters):
            cols = slice(g * w, (g + 1) * w)
            sv, si = bitonic_sort_batch(pv[:, cols], pi[:, cols])
            sorted_v[:, cols] = sv
            sorted_i[:, cols] = si
        # Stage 2: partial-merge tree down to one width-w sorted array.
        merger = BitonicPartialMerger(w)
        groups_v = [sorted_v[:, g * w : (g + 1) * w] for g in range(self.n_sorters)]
        groups_i = [sorted_i[:, g * w : (g + 1) * w] for g in range(self.n_sorters)]
        while len(groups_v) > 1:
            next_v, next_i = [], []
            for a in range(0, len(groups_v) - 1, 2):
                mv, mi = merger.merge(groups_v[a], groups_v[a + 1], groups_i[a], groups_i[a + 1])
                next_v.append(mv)
                next_i.append(mi)
            if len(groups_v) % 2 == 1:
                next_v.append(groups_v[-1])
                next_i.append(groups_i[-1])
            groups_v, groups_i = next_v, next_i
        # Stage 3: pick s per cycle, then the priority-queue group reduces.
        picked_v = groups_v[0][:, : self.s]
        picked_i = groups_i[0][:, : self.s]
        return _exact_topk(picked_v, picked_i, self.s)


def valid_selectors(z: int, s: int) -> list[SelectorBase]:
    """All selection microarchitectures valid for (z, s).

    HPQ always works; HSMPQG additionally requires s < z (§5.1.2: otherwise
    it "cannot filter out unnecessary elements per cycle at all").
    """
    out: list[SelectorBase] = [HPQ(z, s)]
    if s < z:
        out.append(HSMPQG(z, s))
    return out


@lru_cache(maxsize=4096)
def make_selector(arch: str, z: int, s: int) -> SelectorBase:
    """Construct a selector by architecture name ('HPQ' or 'HSMPQG').

    Cached: selectors are immutable and reused across the design sweep.
    """
    if arch == "HPQ":
        return HPQ(z, s)
    if arch == "HSMPQG":
        return HSMPQG(z, s)
    raise ValueError(f"unknown selector architecture {arch!r}")
