"""FPGA device models.

The paper targets the Xilinx Alveo U55C (1.3 M LUTs, 9 K DSPs, 40 MB on-chip
memory, 16 GB HBM).  A device provides the capacity side of Eq. 2; the
framework multiplies it by a conservative ``max_utilization`` (0.6 in the
paper) because designs that consume the whole chip fail placement & routing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.resources import ResourceVector

__all__ = ["FPGADevice", "U55C", "U250", "SMALL_DEVICE"]


@dataclass(frozen=True)
class FPGADevice:
    """An FPGA accelerator card.

    Parameters mirror the numbers a datasheet provides.  ``hbm_bytes`` bounds
    the dataset (PQ codes + ids + any spilled index) that one card can hold;
    ``hbm_channels`` bounds how many memory-bound PEs can stream concurrently.
    """

    name: str
    capacity: ResourceVector
    hbm_bytes: int
    hbm_channels: int = 32
    default_freq_mhz: float = 140.0
    #: Fraction of each resource usable before placement & routing fails.
    default_max_utilization: float = 0.6
    #: Shell / infrastructure overhead (memory controllers, PCIe/XDMA, ...).
    infrastructure: ResourceVector = field(
        default_factory=lambda: ResourceVector(bram36=120, uram=0, lut=110_000, ff=140_000, dsp=4)
    )

    def budget(self, max_utilization: float | None = None) -> ResourceVector:
        """Usable resources: capacity × utilization − infrastructure."""
        u = self.default_max_utilization if max_utilization is None else max_utilization
        if not 0.0 < u <= 1.0:
            raise ValueError(f"max_utilization must be in (0, 1], got {u}")
        return (self.capacity * u) - self.infrastructure

    def fits_dataset(self, nbytes: int) -> bool:
        """True iff a dataset of ``nbytes`` fits in device memory."""
        return nbytes <= self.hbm_bytes

    @property
    def onchip_bytes(self) -> int:
        """Total on-chip SRAM (BRAM36 = 4.5 KiB, URAM = 36 KiB each)."""
        return int(self.capacity.bram36 * 4608 + self.capacity.uram * 36864)


#: Xilinx Alveo U55C — the paper's device (§7.1: 1.3M LUTs, 9K DSPs, 40MB
#: on-chip memory, 16 GB HBM; TSMC 16 nm).
U55C = FPGADevice(
    name="xilinx-alveo-u55c",
    capacity=ResourceVector(bram36=2016, uram=960, lut=1_304_000, ff=2_607_000, dsp=9024),
    hbm_bytes=16 * 2**30,
    hbm_channels=32,
)

#: Xilinx Alveo U250 — a DDR-based card, included to exercise the framework
#: on a different resource balance (more LUTs, no HBM, 4 DDR channels).
U250 = FPGADevice(
    name="xilinx-alveo-u250",
    capacity=ResourceVector(bram36=2688, uram=1280, lut=1_728_000, ff=3_456_000, dsp=12288),
    hbm_bytes=64 * 2**30,
    hbm_channels=4,
)

#: A deliberately small device for tests: forces the design-space explorer to
#: reject large configurations quickly.
SMALL_DEVICE = FPGADevice(
    name="test-small",
    capacity=ResourceVector(bram36=400, uram=120, lut=260_000, ff=520_000, dsp=1800),
    hbm_bytes=2 * 2**30,
    hbm_channels=8,
    infrastructure=ResourceVector(bram36=24, uram=0, lut=22_000, ff=28_000, dsp=1),
)
