"""Processing elements for the four computation stages (§5.2).

Each PE model carries:

- a **resource vector** (calibrated so PE counts from the paper's Table 4
  land on the reported LUT shares on a U55C — e.g. 16 IVFDist PEs ≈ 11 %,
  57 PQDist PEs ≈ 24 %);
- a **pipeline model** (latency ``L``, initiation interval ``II``) from which
  per-query cycles follow the paper's Eq. ``CC = L + (N − 1)·II``;
- a **functional model** mirroring what the hardware computes, so the cycle
  simulator produces real search results, not just timings.

Index-caching choice (Table 2, "Caches"): Stage IVFDist and Stage BuildLUT
can keep their tables in on-chip SRAM (II = 1, BRAM cost) or stream them
from HBM (II = 2 from channel sharing, minimal BRAM).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.hw.resources import ResourceVector

__all__ = [
    "BuildLUTPE",
    "ComputePE",
    "IVFDistPE",
    "OPQPE",
    "PQDistPE",
    "cycles_per_query",
]

#: Bytes per BRAM36 block (36 kbit = 4.5 KiB).
BRAM36_BYTES = 4608
#: Bytes per URAM288 block (288 kbit = 36 KiB).  Large on-chip tables (cached
#: IVF centroids) are placed in URAM — that is how a U55C holds multi-MB
#: indexes on-chip (its 40 MB of SRAM is mostly URAM).
URAM_BYTES = 36864


def cycles_per_query(latency: int, ii: int, n: float) -> float:
    """The paper's PE pipeline model: ``CC = L + (N − 1) · II`` (Eq. 4 input)."""
    if n <= 0:
        return float(latency)
    return latency + (n - 1.0) * ii


@lru_cache(maxsize=4096)
def _cached_pe_resources(pe: "ComputePE") -> ResourceVector:
    """PE specs are frozen dataclasses; their resource vectors are pure
    functions of the spec, so memoize across the design-space sweep."""
    return pe._compute_resources()


@dataclass(frozen=True)
class ComputePE:
    """Base class: a pipelined PE with fixed latency/II and resource cost."""

    @property
    def stage(self) -> str:
        raise NotImplementedError

    @property
    def latency(self) -> int:
        raise NotImplementedError

    @property
    def ii(self) -> int:
        raise NotImplementedError

    def _compute_resources(self) -> ResourceVector:
        raise NotImplementedError

    @property
    def resources(self) -> ResourceVector:
        return _cached_pe_resources(self)

    def cycles(self, n_elements: float) -> float:
        return cycles_per_query(self.latency, self.ii, n_elements)


@dataclass(frozen=True)
class OPQPE(ComputePE):
    """Stage OPQ: d×d vector-matrix multiply, one output element per cycle.

    A lightweight stage (Table 4 reports 0.2 % LUT for its single PE); its
    DSP cost is a d-wide multiply-accumulate.
    """

    d: int

    @property
    def stage(self) -> str:
        return "OPQ"

    @property
    def latency(self) -> int:
        # Dot-product reduction tree depth plus I/O registering.
        return int(math.ceil(math.log2(max(self.d, 2)))) + 8

    @property
    def ii(self) -> int:
        return 1

    def _compute_resources(self) -> ResourceVector:
        # Matrix storage: d*d float32 on-chip (128x128 -> 64 KiB -> 15 BRAM36).
        matrix_bram = math.ceil(self.d * self.d * 4 / BRAM36_BYTES)
        return ResourceVector(bram36=matrix_bram, lut=2600.0, ff=3400.0, dsp=self.d)

    def cycles_for_query(self) -> float:
        """One rotated output element per cycle → N = d."""
        return self.cycles(self.d)

    @staticmethod
    def apply(rotation: np.ndarray, queries: np.ndarray) -> np.ndarray:
        """Functional model: rotate queries."""
        return queries @ rotation


@dataclass(frozen=True)
class IVFDistPE(ComputePE):
    """Stage IVFDist: L2 distance between the query and one centroid per II.

    The PE holds a slice of the nlist centroids.  With on-chip caching the
    pipeline accepts one centroid per cycle; streaming centroids from HBM
    halves the acceptance rate (II = 2) but frees the BRAM.
    """

    d: int
    cache_on_chip: bool = True
    #: Number of centroids this PE is responsible for (nlist / #PEs).
    centroids_share: int = 0
    #: Multiply-accumulate lanes: the PE consumes LANES dimensions per cycle,
    #: so one d-dimensional distance takes d/LANES cycles.  This is why the
    #: paper's designs instantiate 8-16 IVFDist PEs to keep up with the
    #: one-element-per-cycle SelCells consumer.
    LANES = 16

    @property
    def stage(self) -> str:
        return "IVFDist"

    @property
    def latency(self) -> int:
        # LANES-wide multiply + add-tree + accumulate.
        return int(math.ceil(math.log2(max(self.LANES, 2)))) + 10

    @property
    def ii(self) -> int:
        per_centroid = max(1, math.ceil(self.d / self.LANES))
        return per_centroid if self.cache_on_chip else 2 * per_centroid

    def _compute_resources(self) -> ResourceVector:
        base = ResourceVector(lut=9000.0, ff=12000.0, dsp=2 * self.LANES, bram36=2)
        if self.cache_on_chip and self.centroids_share > 0:
            cache = math.ceil(self.centroids_share * self.d * 4 / URAM_BYTES)
            base = base + ResourceVector(uram=cache)
        return base

    def cycles_for_query(self) -> float:
        """N = centroids assigned to this PE."""
        return self.cycles(self.centroids_share)

    @staticmethod
    def distances(query: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        """Functional model: squared L2 to each centroid."""
        diff = centroids - query[None, :]
        return np.einsum("ij,ij->i", diff, diff)


@dataclass(frozen=True)
class BuildLUTPE(ComputePE):
    """Stage BuildLUT: one (m × ksub) ADC table per probed cell.

    Computes one table entry (a dsub-dimensional squared distance) per cycle.
    The sub-quantizer codebooks (m·ksub·dsub floats) always live on-chip;
    the *cell centroids* needed to form residuals follow the caching choice.
    """

    d: int
    m: int = 16
    ksub: int = 256
    cache_on_chip: bool = True
    centroids_share: int = 0

    @property
    def stage(self) -> str:
        return "BuildLUT"

    @property
    def dsub(self) -> int:
        return self.d // self.m

    @property
    def latency(self) -> int:
        return int(math.ceil(math.log2(max(self.dsub, 2)))) + 12

    @property
    def ii(self) -> int:
        return 1 if self.cache_on_chip else 2

    def _compute_resources(self) -> ResourceVector:
        codebook_bytes = self.m * self.ksub * self.dsub * 4
        base = ResourceVector(
            lut=6700.0,
            ff=8200.0,
            dsp=3 * self.dsub,
            bram36=math.ceil(codebook_bytes / BRAM36_BYTES),
        )
        if self.cache_on_chip and self.centroids_share > 0:
            cache = math.ceil(self.centroids_share * self.d * 4 / URAM_BYTES)
            base = base + ResourceVector(uram=cache)
        return base

    def cycles_per_cell(self) -> float:
        """N = m·ksub table entries per probed cell."""
        return self.cycles(self.m * self.ksub)

    @staticmethod
    def build(codebooks: np.ndarray, residual: np.ndarray) -> np.ndarray:
        """Functional model: (m, ksub) table for one residual vector."""
        m, ksub, dsub = codebooks.shape
        q = residual.reshape(m, dsub)
        diff = codebooks - q[:, None, :]
        return np.einsum("jkd,jkd->jk", diff, diff)


@dataclass(frozen=True)
class PQDistPE(ComputePE):
    """Stage PQDist: ADC of one PQ code per cycle (Figure 8).

    m BRAM slices hold the current cell's distance table column-wise so all
    m lookups happen in parallel; an add tree reduces them to one distance
    per cycle.  Tables are double-buffered so scanning cell *i* overlaps
    loading the table of cell *i+1*.
    """

    m: int = 16

    @property
    def stage(self) -> str:
        return "PQDist"

    @property
    def latency(self) -> int:
        # BRAM read + add tree of depth log2(m) + padding-detect stage.
        return int(math.ceil(math.log2(max(self.m, 2)))) + 6

    @property
    def ii(self) -> int:
        return 1

    def _compute_resources(self) -> ResourceVector:
        # m BRAM18 slices (double-buffered) ≈ m BRAM36; add tree of m-1
        # adders, ~2 DSP each.
        return ResourceVector(
            bram36=float(self.m), lut=5500.0, ff=7000.0, dsp=2 * (self.m - 1)
        )

    def cycles_for_codes(self, n_codes: float) -> float:
        return self.cycles(n_codes)

    @staticmethod
    def adc(lut: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Functional model: Eq. 1 lookup-add over (n, m) codes."""
        m = lut.shape[0]
        gathered = lut[np.arange(m)[None, :], codes.astype(np.int64)]
        return gathered.sum(axis=1)
