"""FPGA resource accounting: the five resource types of Eq. 2.

Every hardware component (PE, FIFO, priority queue, sort network, shell
infrastructure) reports its consumption as a :class:`ResourceVector` over
{BRAM36, URAM, LUT, FF, DSP}.  Designs are valid iff the summed vector fits
within the device budget for *all* resource types (Eq. 2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RESOURCE_KINDS", "ResourceVector"]

RESOURCE_KINDS = ("bram36", "uram", "lut", "ff", "dsp")


@dataclass(frozen=True)
class ResourceVector:
    """Consumption (or capacity) of the five FPGA resource types.

    Immutable; combine with ``+`` and scale with ``*``.  BRAM is counted in
    BRAM36 blocks (36 kbit each), URAM in URAM288 blocks (288 kbit each).
    """

    bram36: float = 0.0
    uram: float = 0.0
    lut: float = 0.0
    ff: float = 0.0
    dsp: float = 0.0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.bram36 + other.bram36,
            self.uram + other.uram,
            self.lut + other.lut,
            self.ff + other.ff,
            self.dsp + other.dsp,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.bram36 - other.bram36,
            self.uram - other.uram,
            self.lut - other.lut,
            self.ff - other.ff,
            self.dsp - other.dsp,
        )

    def __mul__(self, scale: float) -> "ResourceVector":
        return ResourceVector(
            self.bram36 * scale,
            self.uram * scale,
            self.lut * scale,
            self.ff * scale,
            self.dsp * scale,
        )

    __rmul__ = __mul__

    def fits_within(self, budget: "ResourceVector") -> bool:
        """True iff every resource type is within ``budget`` (Eq. 2 test)."""
        return (
            self.bram36 <= budget.bram36
            and self.uram <= budget.uram
            and self.lut <= budget.lut
            and self.ff <= budget.ff
            and self.dsp <= budget.dsp
        )

    def utilization(self, capacity: "ResourceVector") -> dict[str, float]:
        """Per-resource utilization fractions against ``capacity``."""
        out: dict[str, float] = {}
        for kind in RESOURCE_KINDS:
            cap = getattr(capacity, kind)
            out[kind] = getattr(self, kind) / cap if cap > 0 else 0.0
        return out

    def max_utilization(self, capacity: "ResourceVector") -> float:
        """The binding constraint: the highest utilization fraction."""
        return max(self.utilization(capacity).values())

    def as_dict(self) -> dict[str, float]:
        return {kind: getattr(self, kind) for kind in RESOURCE_KINDS}

    @staticmethod
    def total(parts) -> "ResourceVector":
        """Sum an iterable of resource vectors."""
        acc = ResourceVector()
        for p in parts:
            acc = acc + p
        return acc
