"""Bitonic sorting and partial-merging networks (Batcher 1968) — §5.1.1.

A width-``l`` bitonic sorter accepts ``l`` elements *per clock cycle* and is
fully pipelined; its latency is ``sum_{i=1..log2 l} i = log2(l)(log2(l)+1)/2``
cycles (the formula in the paper).  A bitonic *partial merger* takes two
sorted width-``l`` arrays per cycle and outputs the smallest ``l`` of the
2l elements, sorted — the building block of the HSMPQG selector (Figure 7).

The functional models below execute the actual compare-swap wiring (not a
library sort), vectorized across a batch axis, so tests can check both
functional equivalence with ``np.sort`` and structural properties (number of
compare-swap stages = pipeline latency).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.resources import ResourceVector

__all__ = [
    "BitonicPartialMerger",
    "BitonicSorter",
    "bitonic_sort_batch",
    "compare_swap_count",
    "sort_latency_cycles",
]

#: Calibrated cost of one compare-swap unit on 64-bit (distance, id) pairs,
#: including the per-stage pipeline registers that a fully pipelined network
#: requires.  Chosen so HSMPQG(z=36, s=10) lands on the ≈12.7 % LUT share the
#: paper's K=10 accelerator reports for Stage SelK (Table 4).
_LUT_PER_CS = 280.0
_FF_PER_CS = 330.0


def _is_pow2(n: int) -> bool:
    return n >= 1 and (n & (n - 1)) == 0


def sort_latency_cycles(width: int) -> int:
    """Pipeline latency of a width-``width`` bitonic sorter (paper formula)."""
    if not _is_pow2(width):
        raise ValueError(f"bitonic width must be a power of two, got {width}")
    stages = int(np.log2(width))
    return stages * (stages + 1) // 2


def compare_swap_count(width: int) -> int:
    """Compare-swap units in a full bitonic sort network: (w/2)·latency."""
    return (width // 2) * sort_latency_cycles(width)


def _merge_pass(values: np.ndarray, ids: np.ndarray, lo: int, n: int, ascending: bool) -> None:
    """Recursive bitonic merge on columns [lo, lo+n) of a batch (in place)."""
    if n <= 1:
        return
    half = n // 2
    a = slice(lo, lo + half)
    b = slice(lo + half, lo + n)
    va, vb = values[:, a], values[:, b]
    ia, ib = ids[:, a], ids[:, b]
    swap = (va > vb) if ascending else (va < vb)
    va_new = np.where(swap, vb, va)
    vb_new = np.where(swap, va, vb)
    ia_new = np.where(swap, ib, ia)
    ib_new = np.where(swap, ia, ib)
    values[:, a], values[:, b] = va_new, vb_new
    ids[:, a], ids[:, b] = ia_new, ib_new
    _merge_pass(values, ids, lo, half, ascending)
    _merge_pass(values, ids, lo + half, half, ascending)


def _sort_pass(values: np.ndarray, ids: np.ndarray, lo: int, n: int, ascending: bool) -> None:
    if n <= 1:
        return
    half = n // 2
    _sort_pass(values, ids, lo, half, True)
    _sort_pass(values, ids, lo + half, half, False)
    _merge_pass(values, ids, lo, n, ascending)


def bitonic_sort_batch(
    values: np.ndarray, ids: np.ndarray | None = None, ascending: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Sort each row of (batch, width) via the bitonic compare-swap network.

    ``width`` must be a power of two.  Returns sorted copies of (values, ids).
    """
    values = np.atleast_2d(np.asarray(values, dtype=np.float64)).copy()
    width = values.shape[1]
    if not _is_pow2(width):
        raise ValueError(f"bitonic width must be a power of two, got {width}")
    if ids is None:
        ids = np.broadcast_to(np.arange(width, dtype=np.int64), values.shape).copy()
    else:
        ids = np.atleast_2d(np.asarray(ids, dtype=np.int64)).copy()
        if ids.shape != values.shape:
            raise ValueError("ids shape must match values shape")
    _sort_pass(values, ids, 0, width, ascending)
    return values, ids


@dataclass(frozen=True)
class BitonicSorter:
    """Width-``width`` fully pipelined bitonic sorting network."""

    width: int

    def __post_init__(self) -> None:
        sort_latency_cycles(self.width)  # validates power-of-two

    def sort(self, values: np.ndarray, ids: np.ndarray | None = None):
        """Functional model: sort rows ascending."""
        return bitonic_sort_batch(values, ids, ascending=True)

    @property
    def latency_cycles(self) -> int:
        return sort_latency_cycles(self.width)

    @property
    def resources(self) -> ResourceVector:
        n_cs = compare_swap_count(self.width)
        return ResourceVector(lut=_LUT_PER_CS * n_cs, ff=_FF_PER_CS * n_cs)


@dataclass(frozen=True)
class BitonicPartialMerger:
    """Merges two sorted width-``width`` arrays; emits the smallest ``width``.

    Implemented as one bitonic merge stage over the concatenation of the
    first (ascending) input and the reversed second input, keeping the lower
    half — the standard partial-merge wiring.
    """

    width: int

    def __post_init__(self) -> None:
        sort_latency_cycles(self.width)

    def merge(
        self,
        values_a: np.ndarray,
        values_b: np.ndarray,
        ids_a: np.ndarray | None = None,
        ids_b: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Functional model over a batch: smallest ``width`` of each row pair."""
        va = np.atleast_2d(np.asarray(values_a, dtype=np.float64))
        vb = np.atleast_2d(np.asarray(values_b, dtype=np.float64))
        if va.shape != vb.shape or va.shape[1] != self.width:
            raise ValueError("inputs must both be (batch, width)")
        if ids_a is None:
            ids_a = np.broadcast_to(np.arange(self.width, dtype=np.int64), va.shape)
        if ids_b is None:
            ids_b = np.broadcast_to(
                np.arange(self.width, 2 * self.width, dtype=np.int64), vb.shape
            )
        ids_a = np.atleast_2d(np.asarray(ids_a, dtype=np.int64))
        ids_b = np.atleast_2d(np.asarray(ids_b, dtype=np.int64))
        # Concatenate ascending A with descending B -> bitonic sequence.
        values = np.concatenate([va, vb[:, ::-1]], axis=1).copy()
        ids = np.concatenate([ids_a, ids_b[:, ::-1]], axis=1).copy()
        _merge_pass(values, ids, 0, 2 * self.width, True)
        return values[:, : self.width], ids[:, : self.width]

    @property
    def latency_cycles(self) -> int:
        """Merging 2w elements takes log2(2w) compare-swap stages."""
        return int(np.log2(2 * self.width))

    @property
    def resources(self) -> ResourceVector:
        # A merge network over 2w lanes: w CS units per stage, log2(2w) stages
        # (only the lower half is kept but the wiring spans all lanes).
        n_cs = self.width * self.latency_cycles
        return ResourceVector(lut=_LUT_PER_CS * n_cs, ff=_FF_PER_CS * n_cs)
