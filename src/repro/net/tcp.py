"""Hardware TCP/IP stack model (EasyNet, He et al. FPL'21).

With the network stack instantiated, clients query the FPGA directly and
bypass the host server (§7.3.2); the measured round trip is about five
microseconds.  The stack costs FPGA resources (accounted in
:data:`repro.core.resource_model.NETWORK_STACK_COST`); this module models
its *timing* contribution to each query.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HardwareTCPStack"]


@dataclass(frozen=True)
class HardwareTCPStack:
    """Timing model of the 100 Gbps HLS TCP/IP stack."""

    #: Round-trip time client <-> FPGA on the same switch (§7.3.2: ~5 µs).
    rtt_us: float = 5.0
    #: Line rate, bytes per microsecond (100 Gbps = 12.5 GB/s).
    bytes_per_us: float = 12_500.0
    #: Protocol processing pipeline latency inside the stack, per direction.
    stack_latency_us: float = 0.6

    def query_overhead_us(self, query_bytes: int, result_bytes: int) -> float:
        """Added latency for one query/result round trip through the stack."""
        if query_bytes < 0 or result_bytes < 0:
            raise ValueError("message sizes must be non-negative")
        wire = (query_bytes + result_bytes) / self.bytes_per_us
        return self.rtt_us + 2 * self.stack_latency_us + wire

    def max_qps(self, query_bytes: int) -> float:
        """Ingress-bound query rate (the stack is never the bottleneck for
        128-d float queries: ~24 M queries/s at line rate)."""
        if query_bytes <= 0:
            raise ValueError("query_bytes must be positive")
        return self.bytes_per_us * 1e6 / query_bytes
