"""Scale-out substrate: LogGP networking, collectives, and cluster latency.

Implements the exact estimation method of §7.3.2 / Figure 12:

- :mod:`repro.net.loggp` — the LogGP point-to-point model with the paper's
  constants (L = 6.0 µs, o = 4.7 µs, G = 0.73 ns/B);
- :mod:`repro.net.collectives` — binary-tree broadcast / reduce with a
  1.0 µs per-level merge cost;
- :mod:`repro.net.tcp` — the hardware TCP/IP stack model (EasyNet) used for
  direct client→FPGA queries (≈5 µs RTT, §7.3.2);
- :mod:`repro.net.scaleout` — distributed-query latency: sample one latency
  per accelerator from a measured history, take the max, add the collective
  costs (Fig. 12), or run the 8-node prototype simulation (Fig. 1);
- :mod:`repro.net.wire` — the serving protocol's frame constants and
  message-size calculators, shared between the real asyncio socket front
  end (:mod:`repro.serve.protocol`) and these timing models so modeled
  byte counts match the actual wire format.
"""

from repro.net.collectives import binary_tree_broadcast_us, binary_tree_reduce_us
from repro.net.loggp import LogGPParams, PAPER_LOGGP, point_to_point_us
from repro.net.scaleout import DistributedSearchEstimator, simulate_cluster_latencies
from repro.net.tcp import HardwareTCPStack
from repro.net.wire import result_frame_bytes, search_frame_bytes

__all__ = [
    "DistributedSearchEstimator",
    "HardwareTCPStack",
    "LogGPParams",
    "PAPER_LOGGP",
    "binary_tree_broadcast_us",
    "binary_tree_reduce_us",
    "point_to_point_us",
    "result_frame_bytes",
    "search_frame_bytes",
    "simulate_cluster_latencies",
]
