"""LogGP network model (Alexandrov et al. 1995; Culler et al. 1993).

The paper estimates large-scale latency with LogGP using values previously
measured for InfiniBand with MPI (§7.3.2):

- ``L`` — maximum communication latency between two endpoints: 6.0 µs,
- ``o`` — constant CPU overhead for sending or receiving one message: 4.7 µs,
- ``G`` — cost per injected byte at the network interface: 0.73 ns/B.

A point-to-point message of ``n`` bytes costs ``o + L + (n−1)·G + o``
(send overhead, wire latency and serialization, receive overhead).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LogGPParams", "PAPER_LOGGP", "point_to_point_us"]


@dataclass(frozen=True)
class LogGPParams:
    """LogGP constants, in microseconds / bytes."""

    latency_us: float = 6.0
    overhead_us: float = 4.7
    gap_per_byte_ns: float = 0.73
    #: Per-message gap g is dominated by o for small messages; the paper's
    #: estimator ignores it, and so do we (documented deviation: none).

    def __post_init__(self) -> None:
        if min(self.latency_us, self.overhead_us, self.gap_per_byte_ns) < 0:
            raise ValueError("LogGP parameters must be non-negative")


#: The constants the paper plugs in (§7.3.2, citing Hoefler et al.).
PAPER_LOGGP = LogGPParams()


def point_to_point_us(nbytes: int, params: LogGPParams = PAPER_LOGGP) -> float:
    """One message of ``nbytes``: o + L + (n−1)·G + o, in microseconds."""
    if nbytes < 1:
        raise ValueError(f"nbytes must be >= 1, got {nbytes}")
    serialization_us = (nbytes - 1) * params.gap_per_byte_ns * 1e-3
    return 2 * params.overhead_us + params.latency_us + serialization_us
