"""Wire-format constants shared by the real and the modeled network path.

The serving tier speaks one length-prefixed binary protocol in two places:

- the **real** asyncio socket front end (:mod:`repro.serve.protocol` /
  :mod:`repro.serve.aio`) encodes actual frames with these structs;
- the **modeled** hardware network path (:class:`repro.net.tcp.HardwareTCPStack`,
  the LogGP estimators) charges per-query wire time from message *sizes*.

Keeping the constants here — below both — guarantees the two agree: the
byte counts the timing models charge are exactly the byte counts the real
protocol puts on the wire (:func:`search_frame_bytes` /
:func:`result_frame_bytes`).

Every frame is an 8-byte header followed by a payload::

    magic (u16) | version (u8) | type (u8) | payload_len (u32, LE)

The header is versioned: a peer speaking a different protocol revision is
rejected at the first frame, not mid-stream.  Payload layouts live with
the codec in :mod:`repro.serve.protocol`; only their *sizes* are computed
here so the models need no import from the serving layer.
"""

from __future__ import annotations

import struct

__all__ = [
    "ERR_INTERNAL",
    "ERR_QUOTA",
    "ERR_SHED",
    "FRAME_BATCH_RESULT",
    "FRAME_ERROR",
    "FRAME_HEADER",
    "FRAME_PRESELECT",
    "FRAME_RESULT",
    "FRAME_SEARCH",
    "FRAME_STATS",
    "FRAME_STATS_REQUEST",
    "MAX_FRAME_BYTES",
    "TRACE_CTX",
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "batch_result_frame_bytes",
    "error_frame_bytes",
    "preselect_frame_bytes",
    "result_frame_bytes",
    "search_frame_bytes",
    "stats_frame_bytes",
    "stats_request_frame_bytes",
]

#: Frame-header magic: rejects peers that are not speaking this protocol.
WIRE_MAGIC = 0xF5A9
#: Protocol revision; bumped on any layout change.
WIRE_VERSION = 1

#: ``<`` little-endian: magic u16, version u8, frame type u8, payload u32.
FRAME_HEADER = struct.Struct("<HBBI")

#: Frame types.
FRAME_SEARCH = 0x01  # client -> server: one query
FRAME_RESULT = 0x02  # server -> client: one answer
FRAME_ERROR = 0x03  # server -> client: shed / quota / failure
FRAME_PRESELECT = 0x04  # router -> shard worker: preselected query batch
FRAME_BATCH_RESULT = 0x05  # shard worker -> router: batched partial top-K
FRAME_STATS_REQUEST = 0x06  # router -> worker: scrape metrics (+ drain spans)
FRAME_STATS = 0x07  # worker -> router: metrics snapshot + drained spans

#: Upper bound on any payload; a corrupt or hostile length prefix must
#: never make a peer buffer gigabytes (a 4096-d f32 query is ~16 KiB).
MAX_FRAME_BYTES = 1 << 24

#: Error codes carried by :data:`FRAME_ERROR` payloads.
ERR_SHED = 0x01  # admission queue full; request shed
ERR_QUOTA = 0x02  # per-tenant quota exhausted (retry_after_s meaningful)
ERR_INTERNAL = 0x03  # backend / server failure

#: Fixed (pre-tenant, pre-vector) part of a search payload:
#: request_id u32, k u16, nprobe i32 (-1 = None), flags u8, tenant_len u8,
#: d u32.
SEARCH_FIXED = struct.Struct("<IHiBBI")
#: Fixed part of a result payload: request_id u32, k u16, flags u8,
#: batch_size u32, queue_us f32, exec_us f32, coverage f32.
RESULT_FIXED = struct.Struct("<IHBIfff")
#: Fixed part of an error payload: request_id u32, code u8,
#: retry_after_s f32, message_len u16.
ERROR_FIXED = struct.Struct("<IBfH")
#: Fixed part of a preselect payload: request_id u32, k u16, flags u8,
#: nq u32, nprobe u16, d u32.  Followed by the (nq, nprobe) i32 probed
#: cell ids (-1 pads pruned slots) and the (nq, d) f32 rotated queries.
PRESELECT_FIXED = struct.Struct("<IHBIHI")
#: Fixed part of a batch-result payload: request_id u32, nq u32, k u16,
#: flags u8, exec_us f32, codes_scanned u64.  Followed by the (nq, k)
#: i64 ids and the (nq, k) f32 distances, then (when the spans flag is
#: set) a u32 blob length and that many bytes of JSON span records.
BATCH_RESULT_FIXED = struct.Struct("<IIHBfQ")
#: Optional trace context appended to search/preselect payloads when the
#: frame's ``traced`` flag bit is set: trace_id u64, parent_span_id u64.
#: The flag bit itself carries the head-sampling decision, so an
#: untraced frame is byte-identical to the pre-tracing layout.
TRACE_CTX = struct.Struct("<QQ")
#: Stats-request payload: request_id u32, flags u8 (bit 0 = drain spans).
STATS_REQUEST_FIXED = struct.Struct("<IB")
#: Stats payload: request_id u32, followed by a JSON snapshot blob
#: (length implied by the frame's payload length).
STATS_FIXED = struct.Struct("<I")


def search_frame_bytes(d: int, tenant_bytes: int = 0, traced: bool = False) -> int:
    """Total on-wire bytes of one search frame for a ``d``-dim f32 query.

    ``traced`` charges the optional trace-context tail — the exact delta
    a sampled request adds on the wire.
    """
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    base = FRAME_HEADER.size + SEARCH_FIXED.size + tenant_bytes + 4 * d
    return base + (TRACE_CTX.size if traced else 0)


def result_frame_bytes(k: int) -> int:
    """Total on-wire bytes of one result frame carrying ``k`` (id, dist)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return FRAME_HEADER.size + RESULT_FIXED.size + 12 * k


def error_frame_bytes(message_bytes: int = 0) -> int:
    """Total on-wire bytes of one error frame with a ``message_bytes`` text."""
    return FRAME_HEADER.size + ERROR_FIXED.size + message_bytes


def preselect_frame_bytes(
    nq: int, nprobe: int, d: int, traced: bool = False
) -> int:
    """Total on-wire bytes of one preselect-scatter frame.

    The frame the router sends each shard worker: ``nq`` rotated f32
    queries plus the ``(nq, nprobe)`` i32 preselected cell list — the
    *real* scatter payload the preselect-once data plane puts on the
    wire, so the LogGP/TCP models charge cell lists, not just vectors.
    ``traced`` charges the optional trace-context tail.
    """
    if nq < 1:
        raise ValueError(f"nq must be >= 1, got {nq}")
    if nprobe < 1:
        raise ValueError(f"nprobe must be >= 1, got {nprobe}")
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    base = FRAME_HEADER.size + PRESELECT_FIXED.size + 4 * nq * nprobe + 4 * nq * d
    return base + (TRACE_CTX.size if traced else 0)


def batch_result_frame_bytes(nq: int, k: int, span_bytes: int = 0) -> int:
    """Total on-wire bytes of one batched partial-top-K result frame.

    ``span_bytes`` charges the optional piggybacked span blob (u32
    length prefix + JSON records) a traced scatter ships back.
    """
    if nq < 1:
        raise ValueError(f"nq must be >= 1, got {nq}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    base = FRAME_HEADER.size + BATCH_RESULT_FIXED.size + 12 * nq * k
    return base + (4 + span_bytes if span_bytes else 0)


def stats_request_frame_bytes() -> int:
    """Total on-wire bytes of one stats-request frame."""
    return FRAME_HEADER.size + STATS_REQUEST_FIXED.size


def stats_frame_bytes(blob_bytes: int) -> int:
    """Total on-wire bytes of one stats frame with a ``blob_bytes`` JSON body."""
    if blob_bytes < 0:
        raise ValueError(f"blob_bytes must be >= 0, got {blob_bytes}")
    return FRAME_HEADER.size + STATS_FIXED.size + blob_bytes
