"""Distributed vector search latency (Figure 1 and Figure 12).

Two tools:

- :func:`simulate_cluster_latencies` — the eight-accelerator prototype of
  Figure 1: every node holds a dataset partition; a distributed query's
  search time is the **max** over the nodes' per-query latencies, plus
  binary-tree broadcast/reduce.

- :class:`DistributedSearchEstimator` — the extrapolation method of
  Figure 12: record a large history of single-node latencies, then for each
  distributed query draw N samples from the history, take the max, and add
  the LogGP collective costs.  FPGAs' low latency variance makes their
  max-of-N grow slowly with N; GPUs' heavy tail makes it explode — the paper
  reports the FPGA-over-GPU P99 speedup growing from 6.1× at 16 accelerators
  to 42.1× at 1024.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.collectives import MERGE_US, binary_tree_broadcast_us, binary_tree_reduce_us
from repro.net.loggp import LogGPParams, PAPER_LOGGP

__all__ = ["DistributedSearchEstimator", "simulate_cluster_latencies"]


def _query_result_bytes(d: int, k: int) -> tuple[int, int]:
    """Wire sizes: a float32 query vector and K (id, distance) pairs."""
    return 4 * d, 12 * k


def simulate_cluster_latencies(
    per_node_latencies_us: list[np.ndarray] | np.ndarray,
    *,
    d: int = 128,
    k: int = 10,
    params: LogGPParams = PAPER_LOGGP,
    merge_us: float = MERGE_US,
) -> np.ndarray:
    """Per-query distributed latency for an N-node cluster (Figure 1).

    ``per_node_latencies_us``: one array of per-query latencies per node
    (aligned by query: entry ``q`` of each array is node ``n``'s time for
    query ``q``).  The distributed latency is the slowest node plus the
    broadcast and reduce collectives.
    """
    mat = np.asarray(per_node_latencies_us, dtype=np.float64)
    if mat.ndim != 2:
        raise ValueError("per_node_latencies_us must be (n_nodes, n_queries)")
    n_nodes = mat.shape[0]
    qb, rb = _query_result_bytes(d, k)
    net = binary_tree_broadcast_us(n_nodes, qb, params) + binary_tree_reduce_us(
        n_nodes, rb, params, merge_us
    )
    return mat.max(axis=0) + net


@dataclass
class DistributedSearchEstimator:
    """Figure 12's sample-max estimator over a single-node latency history."""

    latency_history_us: np.ndarray
    d: int = 128
    k: int = 10
    params: LogGPParams = PAPER_LOGGP
    merge_us: float = MERGE_US
    seed: int = 0

    def __post_init__(self) -> None:
        hist = np.asarray(self.latency_history_us, dtype=np.float64).ravel()
        if hist.size == 0:
            raise ValueError("latency history must be non-empty")
        if (hist < 0).any():
            raise ValueError("latencies must be non-negative")
        self.latency_history_us = hist
        # One seeded stream per estimator: repeated sample() calls with the
        # default rng are deterministic as a sequence but never replay the
        # same draws (the old per-call default_rng(0) made every call
        # identical).
        self._rng = np.random.default_rng(self.seed)

    def network_us(self, n_accelerators: int) -> float:
        qb, rb = _query_result_bytes(self.d, self.k)
        return binary_tree_broadcast_us(
            n_accelerators, qb, self.params
        ) + binary_tree_reduce_us(n_accelerators, rb, self.params, self.merge_us)

    def sample(
        self,
        n_accelerators: int,
        n_queries: int = 10_000,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Estimated distributed latencies for ``n_queries`` queries.

        For each query: draw ``n_accelerators`` search latencies from the
        history, take the max (§7.3.2), add the collective costs.
        """
        if n_accelerators < 1:
            raise ValueError(f"n_accelerators must be >= 1, got {n_accelerators}")
        rng = rng if rng is not None else self._rng
        draws = rng.choice(
            self.latency_history_us, size=(n_queries, n_accelerators), replace=True
        )
        return draws.max(axis=1) + self.network_us(n_accelerators)

    def percentile_curve(
        self,
        accelerator_counts: list[int],
        q: float = 99.0,
        n_queries: int = 10_000,
        rng: np.random.Generator | None = None,
    ) -> dict[int, float]:
        """P``q`` latency versus cluster size — one series of Figure 12."""
        rng = rng if rng is not None else self._rng
        return {
            n: float(np.percentile(self.sample(n, n_queries, rng), q))
            for n in accelerator_counts
        }
