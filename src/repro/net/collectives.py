"""Broadcast / reduce collectives over a binary-tree topology (§7.3.2).

The paper assumes "the implementation of broadcast/reduce communication
collectives follows a binary tree topology" and that "merging partial
results from two nodes takes 1.0 µs".  A collective over N nodes therefore
takes ``ceil(log2 N)`` levels; each level costs one point-to-point message,
and reduce adds the merge cost per level.
"""

from __future__ import annotations

import math

from repro.net.loggp import LogGPParams, PAPER_LOGGP, point_to_point_us

__all__ = [
    "MERGE_US",
    "binary_tree_broadcast_us",
    "binary_tree_depth",
    "binary_tree_reduce_us",
]

#: Merging partial top-K results from two nodes (§7.3.2).
MERGE_US = 1.0


def binary_tree_depth(n_nodes: int) -> int:
    """Levels of the binary tree spanning ``n_nodes``."""
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    return math.ceil(math.log2(n_nodes)) if n_nodes > 1 else 0


def binary_tree_broadcast_us(
    n_nodes: int, nbytes: int, params: LogGPParams = PAPER_LOGGP
) -> float:
    """Broadcast a query of ``nbytes`` to ``n_nodes`` accelerators."""
    depth = binary_tree_depth(n_nodes)
    if depth == 0:
        return 0.0
    return depth * point_to_point_us(nbytes, params)


def binary_tree_reduce_us(
    n_nodes: int,
    nbytes: int,
    params: LogGPParams = PAPER_LOGGP,
    merge_us: float = MERGE_US,
) -> float:
    """Reduce partial top-K results back up the tree, merging per level."""
    depth = binary_tree_depth(n_nodes)
    if depth == 0:
        return 0.0
    return depth * (point_to_point_us(nbytes, params) + merge_us)
