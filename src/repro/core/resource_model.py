"""Resource consumption model (Eq. 2) and design validity.

An accelerator's consumption is the sum of three parts: all PEs, all FIFOs,
and the fixed infrastructure (the device model carries the latter).  A design
is valid iff every resource type fits the device budget at the configured
maximum utilization rate (60 % by default — §6.2: consuming the whole chip
fails placement & routing, and EDA nondeterminism makes per-design limits
unpredictable, so the paper fixes a constant).
"""

from __future__ import annotations

from repro.core.config import AcceleratorConfig
from repro.hw.device import FPGADevice
from repro.hw.fifo import fifo_resources, stage_fifo_count
from repro.hw.resources import ResourceVector

__all__ = [
    "NETWORK_STACK_COST",
    "is_valid",
    "stage_resources",
    "total_resources",
    "utilization_report",
]

#: Hardware TCP/IP stack (EasyNet, He et al. FPL'21): the 100 Gbps stack
#: with session handling costs roughly this much on an Alveo card.
NETWORK_STACK_COST = ResourceVector(bram36=180, uram=16, lut=95_000, ff=120_000, dsp=0)


def stage_resources(config: AcceleratorConfig) -> dict[str, ResourceVector]:
    """Per-stage resource consumption (PEs + that stage's FIFOs).

    This is the quantity visualized in Figure 9 (resource ratio per stage)
    and reported per-stage in Table 4.
    """
    out: dict[str, ResourceVector] = {}

    opq = config.opq_pe()
    out["OPQ"] = (
        opq.resources + fifo_resources(stage_fifo_count(1)) if opq else ResourceVector()
    )

    out["IVFDist"] = config.ivf_pe_spec().resources * config.n_ivf_pes + fifo_resources(
        stage_fifo_count(config.n_ivf_pes)
    )

    selcells = config.selcells_selector()
    out["SelCells"] = selcells.resources + fifo_resources(
        stage_fifo_count(selcells.n_input_streams, "p2p")
    )

    out["BuildLUT"] = config.lut_pe_spec().resources * config.n_lut_pes + fifo_resources(
        stage_fifo_count(config.n_lut_pes)
    )

    out["PQDist"] = config.pq_pe_spec().resources * config.n_pq_pes + fifo_resources(
        stage_fifo_count(config.n_pq_pes)
    )

    selk = config.selk_selector()
    out["SelK"] = selk.resources + fifo_resources(
        stage_fifo_count(selk.n_input_streams, "p2p")
    )
    return out


def total_resources(config: AcceleratorConfig) -> ResourceVector:
    """Sum of all stages (Eq. 2 left-hand side, excluding infrastructure —
    the device budget already subtracts the shell)."""
    total = ResourceVector.total(stage_resources(config).values())
    if config.with_network:
        total = total + NETWORK_STACK_COST
    return total


def is_valid(
    config: AcceleratorConfig,
    device: FPGADevice,
    max_utilization: float | None = None,
) -> bool:
    """Eq. 2: every resource type within the utilization-capped budget."""
    return total_resources(config).fits_within(device.budget(max_utilization))


def utilization_report(
    config: AcceleratorConfig, device: FPGADevice
) -> dict[str, dict[str, float]]:
    """Per-stage LUT share and per-resource utilization (Table 4 columns)."""
    stages = stage_resources(config)
    total = total_resources(config)
    report: dict[str, dict[str, float]] = {
        stage: {"lut_pct": 100.0 * res.lut / device.capacity.lut}
        for stage, res in stages.items()
    }
    report["total"] = {
        kind: 100.0 * frac for kind, frac in total.utilization(device.capacity).items()
    }
    return report
