"""Serving co-design autotuner: CDSE over index × topology × QoS × window.

The paper's design-space exploration (Figure 4) picks the best accelerator
for *one* index under *one* device budget.  A serving deployment has more
knobs: the index parameters trade recall cost against scan work, the R×S
replica/shard topology trades devices against per-device work, the QoS
weight scheme decides who is guaranteed what share of capacity, and the
micro-batch window trades latency against batch efficiency.  This module
searches that **joint** space with the same enumerate → prune → rank shape
as the exemplar CDSE loop:

1. **Enumerate** the cross product of index options (each an
   :class:`IndexOption`: a trained-or-synthetic :class:`IndexProfile` plus
   the minimum nprobe reaching the traffic's recall floor) with the
   :class:`SearchSpace` serving dimensions (replicas × shards × batch
   window × max batch × QoS scheme).
2. **Prune** infeasible points: host worker budget, per-shard HBM
   residence, recall-unreachable indexes, window vs SLO, and — via
   :func:`~repro.core.design_space.best_design` /
   :mod:`~repro.core.resource_model` — points where *no* accelerator
   design fits the device's Eq. 2 budget.
3. **Rank** survivors by modeled saturation throughput, charging real
   wire-frame bytes (:mod:`repro.net.wire`) through the LogGP
   point-to-point / binary-tree collective estimators for the scatter
   path, with deterministic tie-breaks (fewer workers, lower modeled p99,
   then the design tuple) so ranking is reproducible under a fixed seed.

The winner is emitted as a loadable topology spec
(:class:`repro.serve.topology_spec.TopologySpec`) and — in the harness's
validation mode — materialized through ``build_topology``/``serve_bench``
so the modeled-vs-measured gap is continuously checked in CI
(``tools/check_codesign.py``, ``BENCH_codesign.json``).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.ann.partition import shard_cell_sizes
from repro.core.config import AcceleratorConfig, AlgorithmParams
from repro.core.design_space import best_design
from repro.core.perf_model import (
    IndexProfile,
    min_nprobe_for_mass,
    synthetic_profile,
)
from repro.hw.device import FPGADevice, U55C
from repro.net.collectives import binary_tree_broadcast_us, binary_tree_reduce_us
from repro.net.loggp import point_to_point_us
from repro.net.wire import batch_result_frame_bytes, preselect_frame_bytes

__all__ = [
    "CodesignReport",
    "DesignEval",
    "HostConstraints",
    "IndexOption",
    "QOS_SCHEMES",
    "SearchSpace",
    "ServingDesign",
    "TenantSpec",
    "TrafficClass",
    "TrafficProfile",
    "batch_wire_us",
    "enumerate_joint_space",
    "evaluate",
    "modeled_serving",
    "qos_guaranteed_shares",
    "search",
    "synthetic_index_options",
]

#: QoS weight schemes the search enumerates: ``uniform`` gives every
#: tenant the same WFQ weight (simple, but a small tenant's guarantee may
#: fall short of its offered rate); ``weighted`` sets weights proportional
#: to each tenant's traffic share (guarantees scale with demand).
QOS_SCHEMES = ("uniform", "weighted")


# --------------------------------------------------------------------- #
# Inputs: traffic profile, host constraints, search space.


@dataclass(frozen=True)
class TrafficClass:
    """One request class of the traffic mix.

    ``nprobe`` pins the scan width for this class; ``None`` (the default)
    lets the search derive the minimum nprobe reaching the recall floor.
    """

    k: int
    share: float
    nprobe: int | None = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"class k must be >= 1, got {self.k}")
        if self.share <= 0:
            raise ValueError(f"class share must be positive, got {self.share}")
        if self.nprobe is not None and self.nprobe < 1:
            raise ValueError(f"class nprobe must be >= 1, got {self.nprobe}")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's slice of the offered load."""

    name: str
    share: float
    priority: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.share <= 0:
            raise ValueError(f"tenant share must be positive, got {self.share}")


def _check_shares(what: str, shares: Sequence[float]) -> None:
    total = sum(shares)
    if abs(total - 1.0) > 1e-6:
        raise ValueError(f"{what} shares must sum to 1.0, got {total:.6f}")


@dataclass(frozen=True)
class TrafficProfile:
    """What the deployment must serve: rate, SLO, recall floor, mix, corpus.

    ``n_vectors``/``d``/``m``/``ksub`` describe the corpus the index will
    hold (the quantization geometry is fixed by the deployment; nlist and
    nprobe are what the search explores).
    """

    rate_qps: float
    slo_p99_us: float
    recall_floor: float = 0.8
    recall_k: int = 10
    n_vectors: int = 20_000
    d: int = 32
    m: int = 8
    ksub: int = 32
    tenants: tuple[TenantSpec, ...] = (TenantSpec("default", 1.0),)
    classes: tuple[TrafficClass, ...] = (TrafficClass(k=10, share=1.0),)

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ValueError(f"rate_qps must be positive, got {self.rate_qps}")
        if self.slo_p99_us <= 0:
            raise ValueError(f"slo_p99_us must be positive, got {self.slo_p99_us}")
        if not 0.0 < self.recall_floor <= 1.0:
            raise ValueError(
                f"recall_floor must be in (0, 1], got {self.recall_floor}"
            )
        if self.recall_k < 1:
            raise ValueError(f"recall_k must be >= 1, got {self.recall_k}")
        if self.n_vectors < 1:
            raise ValueError(f"n_vectors must be >= 1, got {self.n_vectors}")
        if self.d < 1 or self.d % self.m != 0:
            raise ValueError(
                f"d={self.d} must be positive and divisible by m={self.m}"
            )
        if not self.tenants:
            raise ValueError("traffic profile needs at least one tenant")
        if not self.classes:
            raise ValueError("traffic profile needs at least one class")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        _check_shares("tenant", [t.share for t in self.tenants])
        _check_shares("class", [c.share for c in self.classes])

    @property
    def max_k(self) -> int:
        """The k the model must provision for (largest class)."""
        return max(c.k for c in self.classes)

    @property
    def pinned_nprobe(self) -> int | None:
        """Largest class-pinned nprobe, or None when recall-derived."""
        pinned = [c.nprobe for c in self.classes if c.nprobe is not None]
        return max(pinned) if pinned else None

    def tenant_rate(self, tenant: TenantSpec) -> float:
        """The tenant's offered rate in QPS."""
        return tenant.share * self.rate_qps

    # -- serialization (the ``--traffic trace.json`` CLI contract) ----- #
    def to_dict(self) -> dict:
        """JSON-able form (round-trips through :meth:`from_dict`)."""
        return {
            "rate_qps": self.rate_qps,
            "slo_p99_us": self.slo_p99_us,
            "recall_floor": self.recall_floor,
            "recall_k": self.recall_k,
            "corpus": {
                "n_vectors": self.n_vectors,
                "d": self.d,
                "m": self.m,
                "ksub": self.ksub,
            },
            "tenants": [
                {"name": t.name, "share": t.share, "priority": t.priority}
                for t in self.tenants
            ],
            "classes": [
                {"k": c.k, "share": c.share, "nprobe": c.nprobe}
                for c in self.classes
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TrafficProfile":
        """Parse a traffic-profile dict (see :meth:`to_dict` for the shape)."""
        if not isinstance(data, Mapping):
            raise ValueError(f"traffic profile must be an object, got {type(data)}")
        unknown = set(data) - {
            "rate_qps", "slo_p99_us", "recall_floor", "recall_k",
            "corpus", "tenants", "classes",
        }
        if unknown:
            raise ValueError(f"unknown traffic profile keys: {sorted(unknown)}")
        if "rate_qps" not in data or "slo_p99_us" not in data:
            raise ValueError("traffic profile needs rate_qps and slo_p99_us")
        kwargs: dict = {
            "rate_qps": float(data["rate_qps"]),
            "slo_p99_us": float(data["slo_p99_us"]),
        }
        if "recall_floor" in data:
            kwargs["recall_floor"] = float(data["recall_floor"])
        if "recall_k" in data:
            kwargs["recall_k"] = int(data["recall_k"])
        corpus = data.get("corpus", {})
        for key in ("n_vectors", "d", "m", "ksub"):
            if key in corpus:
                kwargs[key] = int(corpus[key])
        if "tenants" in data:
            kwargs["tenants"] = tuple(
                TenantSpec(
                    name=str(t["name"]),
                    share=float(t["share"]),
                    priority=bool(t.get("priority", False)),
                )
                for t in data["tenants"]
            )
        if "classes" in data:
            kwargs["classes"] = tuple(
                TrafficClass(
                    k=int(c["k"]),
                    share=float(c["share"]),
                    nprobe=None if c.get("nprobe") is None else int(c["nprobe"]),
                )
                for c in data["classes"]
            )
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: str | Path) -> "TrafficProfile":
        """Load a JSON traffic profile (the ``--traffic`` file)."""
        return cls.from_dict(json.loads(Path(path).read_text()))


@dataclass(frozen=True)
class HostConstraints:
    """What the deployment may spend: devices, workers, headroom.

    ``max_workers`` caps R×S (one worker process / device per grid slot);
    ``headroom`` is the required ratio of modeled capacity to offered rate
    (capacity exactly equal to demand leaves nothing for bursts);
    ``pe_grid`` bounds the accelerator CDSE inner loop (geometric by
    default — the exhaustive figure-grade grid would multiply the joint
    search by ~100x for frontier points the serving objective never picks).
    """

    device: FPGADevice = U55C
    max_utilization: float | None = None
    max_workers: int = 8
    headroom: float = 1.2
    pe_grid: tuple[int, ...] = (1, 2, 4, 8, 12, 16, 24, 32)
    #: Per-vector HBM bytes beyond the m-byte PQ code (the i64 id the
    #: packed CSR layout stores beside it).
    bytes_per_vector_overhead: int = 8

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.headroom < 1.0:
            raise ValueError(f"headroom must be >= 1.0, got {self.headroom}")
        if not self.pe_grid or any(p < 1 for p in self.pe_grid):
            raise ValueError(f"pe_grid must be positive ints, got {self.pe_grid}")
        if self.bytes_per_vector_overhead < 0:
            raise ValueError(
                f"bytes_per_vector_overhead must be >= 0, "
                f"got {self.bytes_per_vector_overhead}"
            )


@dataclass(frozen=True)
class SearchSpace:
    """The serving-side grid (index options are supplied separately)."""

    replicas: tuple[int, ...] = (1, 2, 3, 4)
    shards: tuple[int, ...] = (1, 2, 4)
    windows_us: tuple[float, ...] = (500.0, 1000.0, 2000.0, 4000.0)
    max_batches: tuple[int, ...] = (8, 16, 32)
    qos_schemes: tuple[str, ...] = QOS_SCHEMES

    def __post_init__(self) -> None:
        for name, counts in (("replicas", self.replicas), ("shards", self.shards),
                             ("max_batches", self.max_batches)):
            if not counts or any(c < 1 for c in counts):
                raise ValueError(f"{name} must be positive ints, got {counts}")
        if not self.windows_us or any(w < 0 for w in self.windows_us):
            raise ValueError(f"windows_us must be >= 0, got {self.windows_us}")
        unknown = set(self.qos_schemes) - set(QOS_SCHEMES)
        if not self.qos_schemes or unknown:
            raise ValueError(
                f"qos_schemes must be drawn from {QOS_SCHEMES}, "
                f"got {self.qos_schemes}"
            )

    @classmethod
    def quick(cls) -> "SearchSpace":
        """The seconds-scale grid the CI smoke searches."""
        return cls(
            replicas=(1, 2),
            shards=(1, 2),
            windows_us=(1000.0, 4000.0),
            max_batches=(4, 8),
        )

    def size(self, n_index_options: int) -> int:
        """Joint-space cardinality for ``n_index_options`` index options."""
        return (
            n_index_options * len(self.replicas) * len(self.shards)
            * len(self.windows_us) * len(self.max_batches)
            * len(self.qos_schemes)
        )


@dataclass(frozen=True)
class IndexOption:
    """One searchable index configuration and its model inputs.

    ``nprobe`` is the minimum probe count reaching the traffic's recall
    floor on this index (``None`` = unreachable: the option enumerates but
    every point on it prunes with an explicit reason).  ``profile`` is the
    cell-size histogram the performance model scores — from a real trained
    index on the harness path, or :func:`synthetic_index_options` for
    dataset-free studies.
    """

    nlist: int
    use_opq: bool
    nprobe: int | None
    profile: IndexProfile

    def __post_init__(self) -> None:
        if self.profile.nlist != self.nlist:
            raise ValueError(
                f"profile nlist={self.profile.nlist} != option nlist={self.nlist}"
            )
        if self.profile.use_opq != self.use_opq:
            raise ValueError("profile OPQ flag does not match option")
        if self.nprobe is not None and not 1 <= self.nprobe <= self.nlist:
            raise ValueError(
                f"nprobe={self.nprobe} outside [1, nlist={self.nlist}]"
            )

    @property
    def key(self) -> str:
        """Human-readable index id (``IVF128`` / ``OPQ+IVF128``)."""
        return self.profile.key


def synthetic_index_options(
    nlists: Sequence[int],
    ntotal: int,
    recall_floor: float,
    *,
    use_opq: tuple[bool, ...] = (False,),
    skew: float = 1.0,
    seed: int = 0,
) -> list[IndexOption]:
    """Index options over seeded synthetic profiles (no training needed).

    nprobe comes from the probed-mass proxy
    (:func:`~repro.core.perf_model.min_nprobe_for_mass`); the harness path
    replaces this with real recall calibration before any winner ships.
    """
    options = []
    for i, nlist in enumerate(nlists):
        for opq in use_opq:
            profile = synthetic_profile(
                nlist, ntotal, use_opq=opq, skew=skew, seed=seed + 31 * i
            )
            options.append(
                IndexOption(
                    nlist=nlist,
                    use_opq=opq,
                    nprobe=min_nprobe_for_mass(profile, recall_floor),
                    profile=profile,
                )
            )
    return options


# --------------------------------------------------------------------- #
# Design points and their evaluation.


@dataclass(frozen=True)
class ServingDesign:
    """One joint design point: index × topology × window × QoS scheme."""

    nlist: int
    use_opq: bool
    nprobe: int | None
    replicas: int
    shards: int
    max_batch: int
    window_us: float
    qos_scheme: str

    @property
    def workers(self) -> int:
        """Worker processes (= devices) the topology occupies."""
        return self.replicas * self.shards

    def order_key(self) -> tuple:
        """A deterministic total order over design points."""
        return (
            self.nlist, self.use_opq, -1 if self.nprobe is None else self.nprobe,
            self.replicas, self.shards, self.max_batch, self.window_us,
            self.qos_scheme,
        )

    def to_dict(self) -> dict:
        """JSON-able form."""
        return {
            "nlist": self.nlist, "use_opq": self.use_opq, "nprobe": self.nprobe,
            "replicas": self.replicas, "shards": self.shards,
            "max_batch": self.max_batch, "window_us": self.window_us,
            "qos_scheme": self.qos_scheme, "workers": self.workers,
        }


@dataclass(frozen=True)
class DesignEval:
    """One design point's modeled outcome (or its pruning reasons)."""

    design: ServingDesign
    feasible: bool
    reasons: tuple[str, ...] = ()
    accel: AcceleratorConfig | None = field(default=None, compare=False)
    #: Per-device prediction on its shard slice (batch-1 stream).
    device_qps: float = 0.0
    fill_us: float = 0.0
    per_query_us: float = 0.0
    #: Wire time of one full-batch scatter/gather (LogGP over real frames).
    net_us: float = 0.0
    #: Saturation capacity of the whole topology — the ranking score.
    modeled_qps: float = 0.0
    modeled_p99_us: float = math.inf
    #: Offered rate / modeled capacity.
    utilization: float = 0.0

    @property
    def score(self) -> float:
        """Ranking score (modeled saturation throughput)."""
        return self.modeled_qps

    def sort_key(self) -> tuple:
        """Best-first deterministic ranking key."""
        return (
            -self.modeled_qps,
            self.design.workers,
            self.modeled_p99_us,
            self.design.order_key(),
        )

    def to_dict(self) -> dict:
        """JSON-able form (infinities flattened to None for JSON)."""
        p99 = None if math.isinf(self.modeled_p99_us) else self.modeled_p99_us
        return {
            "design": self.design.to_dict(),
            "feasible": self.feasible,
            "reasons": list(self.reasons),
            "device_qps": self.device_qps,
            "fill_us": self.fill_us,
            "per_query_us": self.per_query_us,
            "net_us": self.net_us,
            "modeled_qps": self.modeled_qps,
            "modeled_p99_us": p99,
            "utilization": self.utilization,
            "score": self.score,
        }


def _shard_profile(profile: IndexProfile, shards: int) -> IndexProfile:
    """The model's view of one shard: slice every cell like the data plane.

    Uses :func:`repro.ann.partition.shard_cell_sizes` — the exact CSR
    slicing arithmetic ``partition_index`` applies — so the modeled shard
    occupancy is the real shard occupancy, not an average.  Part 0 is
    representative: contiguous slicing spreads each cell to within one
    vector across parts.
    """
    if shards <= 1:
        return profile
    sizes = shard_cell_sizes(
        np.asarray(profile.cell_sizes, dtype=np.int64), 0, shards
    )
    return IndexProfile(
        nlist=profile.nlist, use_opq=profile.use_opq, cell_sizes=sizes
    )


def batch_wire_us(
    shards: int, max_batch: int, nprobe: int, d: int, k: int
) -> float:
    """LogGP wire time of one batch scatter/gather across ``shards``.

    Charges the *real* data-plane frames at full on-wire size: the
    preselect frame out (rotated queries + the (nq, nprobe) cell plan) and
    the batched partial-top-K frame back.  One shard pays two
    point-to-point messages; a scatter tree pays the binary-tree
    broadcast/reduce of §7.3.2 (merge cost included).
    """
    out = preselect_frame_bytes(max_batch, nprobe, d)
    back = batch_result_frame_bytes(max_batch, k)
    if shards <= 1:
        return point_to_point_us(out) + point_to_point_us(back)
    return binary_tree_broadcast_us(shards, out) + binary_tree_reduce_us(
        shards, back
    )


def modeled_serving(
    *,
    fill_us: float,
    per_query_us: float,
    replicas: int,
    shards: int,
    max_batch: int,
    window_us: float,
    rate_qps: float,
    nprobe: int,
    d: int,
    k: int,
    wire_scale: float = 1.0,
) -> tuple[float, float, float]:
    """``(capacity_qps, p99_us, utilization)`` of one serving design.

    Capacity is the saturation bound — R micro-batches of ``max_batch`` in
    flight, each costing device service (pipeline fill + per-query issue on
    the shard slice) plus the batch's scatter wire time.  The p99 estimate
    is deliberately coarse (the CI gate is on QPS, p99 is tracked): batch
    window + loaded batch time inflated by an M/D/1-style queueing factor
    at the offered utilization.  Shared by the search and the validation
    runner so modeled-vs-measured compares one formula, not two
    (``wire_scale`` lets the scaled-time validation run dilate the wire
    term by the same factor as the device terms).
    """

    def batch_us(batch: float) -> float:
        wire = batch_wire_us(shards, max(1, math.ceil(batch)), nprobe, d, k)
        return fill_us + per_query_us * batch + wire_scale * wire

    capacity = replicas * max_batch / batch_us(max_batch) * 1e6
    # Under offered load the window collects ~rate * window batch-mates.
    loaded_batch = min(float(max_batch), 1.0 + rate_qps * window_us * 1e-6)
    loaded_us = batch_us(loaded_batch)
    loaded_capacity = replicas * loaded_batch / loaded_us * 1e6
    rho = rate_qps / loaded_capacity if loaded_capacity > 0 else math.inf
    if rho >= 1.0:
        p99 = math.inf
    else:
        p99 = window_us + loaded_us * (1.0 + rho / (2.0 * (1.0 - rho)))
    utilization = rate_qps / capacity if capacity > 0 else math.inf
    return capacity, p99, utilization


def qos_guaranteed_shares(
    scheme: str, tenants: Sequence[TenantSpec]
) -> dict[str, float]:
    """Each tenant's guaranteed capacity share under a WFQ weight scheme."""
    if scheme not in QOS_SCHEMES:
        raise ValueError(f"unknown qos scheme {scheme!r} (know {QOS_SCHEMES})")
    if scheme == "uniform":
        return {t.name: 1.0 / len(tenants) for t in tenants}
    return {t.name: t.share for t in tenants}


def qos_weights(scheme: str, tenants: Sequence[TenantSpec]) -> dict[str, float]:
    """The WFQ weight per tenant realizing a scheme's guarantees."""
    if scheme not in QOS_SCHEMES:
        raise ValueError(f"unknown qos scheme {scheme!r} (know {QOS_SCHEMES})")
    if scheme == "uniform":
        return {t.name: 1.0 for t in tenants}
    return {t.name: t.share for t in tenants}


def evaluate(
    design: ServingDesign,
    traffic: TrafficProfile,
    constraints: HostConstraints,
    option: IndexOption,
    *,
    accel_cache: dict | None = None,
) -> DesignEval:
    """The full feasibility predicate + model for one design point.

    Every infeasibility is reported with a ``category: detail`` reason
    (category before the colon is what the report's prune table counts).
    This function *is* the search's pruning rule — ``search`` applies it
    to every enumerated point, so a brute-force cross-check over
    :func:`enumerate_joint_space` sees identical feasibility decisions.
    """
    if (design.nlist, design.use_opq) != (option.nlist, option.use_opq):
        raise ValueError(
            f"design index ({design.nlist}, {design.use_opq}) does not match "
            f"option {option.key}"
        )
    reasons: list[str] = []
    if design.nprobe is None:
        reasons.append(
            f"recall: floor R@{traffic.recall_k}="
            f"{traffic.recall_floor:.2f} unreachable on {option.key}"
        )
    if design.workers > constraints.max_workers:
        reasons.append(
            f"workers: R*S={design.workers} exceeds host budget "
            f"{constraints.max_workers}"
        )
    if design.window_us >= traffic.slo_p99_us:
        reasons.append(
            f"window: batch window {design.window_us:.0f}us >= p99 SLO "
            f"{traffic.slo_p99_us:.0f}us"
        )
    shard_vectors = math.ceil(option.profile.ntotal / design.shards)
    shard_bytes = shard_vectors * (
        traffic.m + constraints.bytes_per_vector_overhead
    )
    if not constraints.device.fits_dataset(shard_bytes):
        reasons.append(
            f"memory: shard slice ({shard_bytes / 2**30:.1f} GiB) exceeds "
            f"device HBM"
        )
    if reasons:
        return DesignEval(design=design, feasible=False, reasons=tuple(reasons))

    params = AlgorithmParams(
        d=traffic.d, nlist=design.nlist, nprobe=design.nprobe,
        k=traffic.max_k, use_opq=design.use_opq,
        m=traffic.m, ksub=traffic.ksub,
    )
    cache_key = (design.nlist, design.use_opq, design.nprobe, design.shards)
    found = (accel_cache or {}).get(cache_key)
    if found is None:
        found = best_design(
            params,
            constraints.device,
            _shard_profile(option.profile, design.shards),
            pe_grid=constraints.pe_grid,
            max_utilization=constraints.max_utilization,
        )
        if accel_cache is not None:
            accel_cache[cache_key] = found
    if found is None:
        return DesignEval(
            design=design,
            feasible=False,
            reasons=(
                "device: no accelerator design fits the resource budget",
            ),
        )
    accel, pred = found
    fill_us = pred.latency_us
    per_query_us = 1e6 / pred.qps
    capacity, p99, utilization = modeled_serving(
        fill_us=fill_us,
        per_query_us=per_query_us,
        replicas=design.replicas,
        shards=design.shards,
        max_batch=design.max_batch,
        window_us=design.window_us,
        rate_qps=traffic.rate_qps,
        nprobe=design.nprobe,
        d=traffic.d,
        k=traffic.max_k,
    )
    if capacity < constraints.headroom * traffic.rate_qps:
        reasons.append(
            f"capacity: modeled {capacity:.0f} QPS under "
            f"{constraints.headroom:.1f}x offered rate "
            f"({traffic.rate_qps:.0f} QPS)"
        )
    if p99 > traffic.slo_p99_us:
        reasons.append(
            f"latency: modeled p99 {p99:.0f}us exceeds SLO "
            f"{traffic.slo_p99_us:.0f}us"
        )
    guarantees = qos_guaranteed_shares(design.qos_scheme, traffic.tenants)
    for tenant in traffic.tenants:
        guaranteed = guarantees[tenant.name] * capacity
        offered = traffic.tenant_rate(tenant)
        if guaranteed < offered:
            reasons.append(
                f"qos: scheme {design.qos_scheme!r} guarantees tenant "
                f"{tenant.name!r} only {guaranteed:.0f} QPS of its "
                f"{offered:.0f} QPS offered"
            )
    return DesignEval(
        design=design,
        feasible=not reasons,
        reasons=tuple(reasons),
        accel=accel,
        device_qps=pred.qps,
        fill_us=fill_us,
        per_query_us=per_query_us,
        net_us=batch_wire_us(
            design.shards, design.max_batch, design.nprobe,
            traffic.d, traffic.max_k,
        ),
        modeled_qps=capacity,
        modeled_p99_us=p99,
        utilization=utilization,
    )


def enumerate_joint_space(
    space: SearchSpace, index_options: Iterable[IndexOption]
) -> Iterator[tuple[ServingDesign, IndexOption]]:
    """Yield every joint design point with its index option, in a fixed order.

    Recall-unreachable options (``nprobe=None``) are yielded too — the
    evaluator prunes them with an explicit reason, so the report can say
    *why* an index left the frontier rather than silently shrinking the
    enumerated count.
    """
    for option in index_options:
        for replicas in space.replicas:
            for shards in space.shards:
                for window_us in space.windows_us:
                    for max_batch in space.max_batches:
                        for scheme in space.qos_schemes:
                            yield (
                                ServingDesign(
                                    nlist=option.nlist,
                                    use_opq=option.use_opq,
                                    nprobe=option.nprobe,
                                    replicas=replicas,
                                    shards=shards,
                                    max_batch=max_batch,
                                    window_us=window_us,
                                    qos_scheme=scheme,
                                ),
                                option,
                            )


# --------------------------------------------------------------------- #
# The search and its report.


@dataclass(frozen=True)
class CodesignReport:
    """Ranked outcome of one joint-space search."""

    traffic: TrafficProfile
    n_enumerated: int
    n_feasible: int
    ranked: tuple[DesignEval, ...]
    prune_counts: dict[str, int] = field(default_factory=dict, compare=False)

    @property
    def empty(self) -> bool:
        """True when no design point survived pruning (explicit frontier)."""
        return not self.ranked

    @property
    def winner(self) -> DesignEval | None:
        """The top-ranked feasible design, or None on an empty frontier."""
        return self.ranked[0] if self.ranked else None

    def to_dict(self, top_n: int = 20) -> dict:
        """JSON-able form, ranked list capped at ``top_n`` entries."""
        return {
            "traffic": self.traffic.to_dict(),
            "n_enumerated": self.n_enumerated,
            "n_feasible": self.n_feasible,
            "n_ranked_reported": min(len(self.ranked), top_n),
            "prune_counts": dict(sorted(self.prune_counts.items())),
            "ranked": [ev.to_dict() for ev in self.ranked[:top_n]],
        }


def search(
    traffic: TrafficProfile,
    constraints: HostConstraints,
    space: SearchSpace,
    index_options: Sequence[IndexOption],
) -> CodesignReport:
    """Enumerate → prune → rank the joint serving design space.

    Deterministic by construction: enumeration order is fixed, every point
    goes through :func:`evaluate` (with a shared accelerator-design cache,
    which only memoizes — it never changes a decision), and the ranking
    key is a total order.  An infeasible space returns an explicit empty
    frontier (``report.empty``), never raises.
    """
    if not index_options:
        raise ValueError("search needs at least one index option")
    keys = [(o.nlist, o.use_opq) for o in index_options]
    if len(set(keys)) != len(keys):
        raise ValueError(f"duplicate index options: {keys}")
    accel_cache: dict = {}
    feasible: list[DesignEval] = []
    prune_counts: dict[str, int] = {}
    n_enumerated = 0
    for design, option in enumerate_joint_space(space, index_options):
        n_enumerated += 1
        ev = evaluate(
            design, traffic, constraints, option, accel_cache=accel_cache
        )
        if ev.feasible:
            feasible.append(ev)
        else:
            for reason in ev.reasons:
                category = reason.split(":", 1)[0]
                prune_counts[category] = prune_counts.get(category, 0) + 1
    feasible.sort(key=DesignEval.sort_key)
    return CodesignReport(
        traffic=traffic,
        n_enumerated=n_enumerated,
        n_feasible=len(feasible),
        ranked=tuple(feasible),
        prune_counts=prune_counts,
    )
