"""The paper's contribution: the FANNS hardware-algorithm co-design framework.

Modules mirror the workflow of Figure 4:

- :mod:`repro.core.config` — one point of the design space (Table 2).
- :mod:`repro.core.resource_model` — Eq. 2 resource validity.
- :mod:`repro.core.timing` — per-stage cycle models (Eq. 4 inputs).
- :mod:`repro.core.perf_model` — QPS prediction over all combinations (Eq. 3/4).
- :mod:`repro.core.index_explorer` — recall ↔ nprobe per index (steps 2–3).
- :mod:`repro.core.design_space` — valid accelerator enumeration (step 4).
- :mod:`repro.core.codegen` — HLS-like code generation (step 6).
- :mod:`repro.core.framework` — the end-to-end ``Fanns`` API (steps 1–7).
"""

from repro.core.config import AcceleratorConfig, AlgorithmParams
from repro.core.design_space import default_pe_grid, enumerate_designs
from repro.core.framework import Fanns, FannsResult
from repro.core.index_explorer import IndexCandidate, IndexExplorer, RecallGoal
from repro.core.perf_model import IndexProfile, PerfPrediction, predict
from repro.core.resource_model import is_valid, stage_resources, total_resources

__all__ = [
    "AcceleratorConfig",
    "AlgorithmParams",
    "Fanns",
    "FannsResult",
    "IndexCandidate",
    "IndexExplorer",
    "IndexProfile",
    "PerfPrediction",
    "RecallGoal",
    "default_pe_grid",
    "enumerate_designs",
    "is_valid",
    "predict",
    "stage_resources",
    "total_resources",
]
