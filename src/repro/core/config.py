"""Accelerator configuration: one point of the hardware design space.

An :class:`AcceleratorConfig` fixes every choice of Table 2 — the
microarchitecture per stage, the PE count per stage, and the index-caching
decision — together with the algorithm parameters the design is specialized
for (nlist, nprobe, K, OPQ).  The same object is consumed by:

- :mod:`repro.core.resource_model` — Eq. 2 validity check,
- :mod:`repro.core.perf_model` — Eq. 3/4 QPS prediction,
- :mod:`repro.sim` — cycle-level simulation,
- :mod:`repro.core.codegen` — HLS-like source emission.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.hw.compute_pes import BuildLUTPE, IVFDistPE, OPQPE, PQDistPE
from repro.hw.selection import SelectorBase, make_selector

__all__ = ["AcceleratorConfig", "AlgorithmParams"]


@dataclass(frozen=True)
class AlgorithmParams:
    """The algorithm-side choices of Table 2 (plus the dataset geometry)."""

    d: int
    nlist: int
    nprobe: int
    k: int
    use_opq: bool = False
    m: int = 16
    ksub: int = 256

    def __post_init__(self) -> None:
        if self.d <= 0 or self.d % self.m != 0:
            raise ValueError(f"d={self.d} must be positive and divisible by m={self.m}")
        if self.nlist <= 0:
            raise ValueError(f"nlist must be positive, got {self.nlist}")
        if not 1 <= self.nprobe <= self.nlist:
            raise ValueError(f"nprobe={self.nprobe} outside [1, nlist={self.nlist}]")
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")


@dataclass(frozen=True)
class AcceleratorConfig:
    """A fully specified accelerator: algorithm binding + hardware choices.

    PE counts are free positive integers (the paper stresses they come out
    irregular — 11, 9, 57 — rather than powers of two).  The selection
    architectures are ``"HPQ"`` or ``"HSMPQG"``.
    """

    params: AlgorithmParams
    n_ivf_pes: int
    n_lut_pes: int
    n_pq_pes: int
    ivf_cache_on_chip: bool = True
    lut_cache_on_chip: bool = True
    selcells_arch: str = "HPQ"
    selk_arch: str = "HPQ"
    freq_mhz: float = 140.0
    #: Instantiate the hardware TCP/IP stack (costs resources; §7.3.2).
    with_network: bool = False

    def __post_init__(self) -> None:
        for name, v in (
            ("n_ivf_pes", self.n_ivf_pes),
            ("n_lut_pes", self.n_lut_pes),
            ("n_pq_pes", self.n_pq_pes),
        ):
            if v <= 0:
                raise ValueError(f"{name} must be positive, got {v}")
        if self.selcells_arch != "HPQ":
            # Stage SelCells receives one merged stream from the IVFDist 1-D
            # array; a sorting-based selector cannot filter a single stream.
            raise ValueError(f"SelCells only supports HPQ, got {self.selcells_arch!r}")
        if self.selk_arch == "HSMPQG" and self.params.k >= self.n_pq_pes:
            raise ValueError(
                f"HSMPQG SelK requires k < #PQDist PEs (s < z); "
                f"got k={self.params.k}, z={self.n_pq_pes}"
            )
        if self.freq_mhz <= 0:
            raise ValueError(f"freq_mhz must be positive, got {self.freq_mhz}")

    # ------------------------------------------------------------------ #
    # Hardware object builders (single source of truth for cost models).
    def opq_pe(self) -> OPQPE | None:
        return OPQPE(d=self.params.d) if self.params.use_opq else None

    def ivf_centroids_per_pe(self) -> int:
        return math.ceil(self.params.nlist / self.n_ivf_pes)

    def ivf_pe_spec(self) -> IVFDistPE:
        """The (homogeneous) Stage IVFDist PE of this design."""
        return IVFDistPE(
            d=self.params.d,
            cache_on_chip=self.ivf_cache_on_chip,
            centroids_share=self.ivf_centroids_per_pe(),
        )

    def lut_pe_spec(self) -> BuildLUTPE:
        """The (homogeneous) Stage BuildLUT PE of this design."""
        return BuildLUTPE(
            d=self.params.d,
            m=self.params.m,
            ksub=self.params.ksub,
            cache_on_chip=self.lut_cache_on_chip,
            centroids_share=math.ceil(self.params.nlist / self.n_lut_pes),
        )

    def pq_pe_spec(self) -> PQDistPE:
        """The (homogeneous) Stage PQDist PE of this design."""
        return PQDistPE(m=self.params.m)

    def ivf_pes(self) -> list[IVFDistPE]:
        return [self.ivf_pe_spec()] * self.n_ivf_pes

    def lut_pes(self) -> list[BuildLUTPE]:
        return [self.lut_pe_spec()] * self.n_lut_pes

    def pq_pes(self) -> list[PQDistPE]:
        return [self.pq_pe_spec()] * self.n_pq_pes

    def selcells_selector(self) -> SelectorBase:
        # IVFDist PEs forward results through the 1-D array, producing one
        # merged full-rate stream into SelCells.
        return make_selector(self.selcells_arch, 1, self.params.nprobe)

    def selk_selector(self) -> SelectorBase:
        # Every PQDist PE feeds the selector with one distance per cycle.
        return make_selector(self.selk_arch, self.n_pq_pes, self.params.k)

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """One-line summary in the style of the paper's Table 4 rows."""
        p = self.params
        index = f"{'OPQ+' if p.use_opq else ''}IVF{p.nlist}"
        return (
            f"{index} nprobe={p.nprobe} K={p.k} | "
            f"IVFDist×{self.n_ivf_pes}({'chip' if self.ivf_cache_on_chip else 'HBM'}) "
            f"SelCells={self.selcells_arch} "
            f"BuildLUT×{self.n_lut_pes}({'chip' if self.lut_cache_on_chip else 'HBM'}) "
            f"PQDist×{self.n_pq_pes} SelK={self.selk_arch}"
            f"{' +TCP/IP' if self.with_network else ''}"
        )

    def with_params(self, params: AlgorithmParams) -> "AcceleratorConfig":
        """The same hardware bound to different algorithm parameters.

        Used to evaluate parameter-independent baseline designs under
        parameter settings they were not specialized for.
        """
        return replace(self, params=params)
