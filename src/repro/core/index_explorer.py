"""Index explorer: the algorithm half of the co-design (steps 2–3, Figure 4).

Given a dataset, train IVF-PQ indexes over a grid of nlist values, each with
and without OPQ, then — for a user recall goal like "R@10 = 80 %" — find the
*minimum nprobe* on each index that reaches the goal.  The resulting
(index, nprobe) pairs are the algorithm-parameter inputs of the performance
model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.ann.ivf import IVFPQIndex
from repro.ann.recall import recall_at_k
from repro.core.perf_model import IndexProfile
from repro.data.datasets import Dataset

__all__ = ["IndexCandidate", "IndexExplorer", "RecallGoal"]


@dataclass(frozen=True)
class RecallGoal:
    """A deployment requirement: average recall ``target`` at top-``k``."""

    k: int
    target: float

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if not 0.0 < self.target <= 1.0:
            raise ValueError(f"target must be in (0, 1], got {self.target}")

    def __str__(self) -> str:
        return f"R@{self.k}={100 * self.target:.0f}%"


@dataclass
class IndexCandidate:
    """A trained index plus the profile the performance model consumes."""

    index: IVFPQIndex
    profile: IndexProfile
    train_seconds: float = 0.0

    @property
    def key(self) -> str:
        return self.profile.key


class IndexExplorer:
    """Trains and evaluates the index grid (Figure 4, steps 2–3).

    Trained candidates are cached on the instance so several recall goals can
    be explored without retraining (Table 3: "Several hours per index" is the
    dominant workflow cost — amortize it).
    """

    def __init__(
        self,
        m: int = 16,
        ksub: int = 256,
        seed: int = 0,
        max_train_vectors: int = 20_000,
        profile_scale: float = 1.0,
    ):
        self.m = m
        self.ksub = ksub
        self.seed = seed
        self.max_train_vectors = max_train_vectors
        #: Multiplies per-cell sizes in the profile handed to the performance
        #: model.  The harness uses it to co-design for the paper's
        #: 100 M-vector workload intensity on scaled synthetic datasets; the
        #: recall evaluation always runs on the real index.
        self.profile_scale = profile_scale
        self._cache: dict[tuple[str, int, bool], IndexCandidate] = {}

    # ------------------------------------------------------------------ #
    def build(
        self,
        dataset: Dataset,
        nlists: list[int],
        opq_options: tuple[bool, ...] = (False, True),
    ) -> list[IndexCandidate]:
        """Train (or fetch cached) candidates for each (nlist, OPQ) combo."""
        out: list[IndexCandidate] = []
        train = dataset.training_vectors(self.max_train_vectors)
        for nlist in nlists:
            if nlist > dataset.n:
                raise ValueError(f"nlist={nlist} exceeds dataset size {dataset.n}")
            for use_opq in opq_options:
                cache_key = (dataset.name, nlist, use_opq)
                if cache_key not in self._cache:
                    t0 = time.perf_counter()
                    index = IVFPQIndex(
                        d=dataset.d,
                        nlist=nlist,
                        m=self.m,
                        ksub=self.ksub,
                        use_opq=use_opq,
                        seed=self.seed,
                    )
                    index.train(train)
                    index.add(dataset.base)
                    elapsed = time.perf_counter() - t0
                    sizes = index.cell_sizes
                    if self.profile_scale != 1.0:
                        sizes = np.round(sizes * self.profile_scale).astype(np.int64)
                    profile = IndexProfile(
                        nlist=nlist, use_opq=use_opq, cell_sizes=sizes
                    )
                    self._cache[cache_key] = IndexCandidate(
                        index=index, profile=profile, train_seconds=elapsed
                    )
                out.append(self._cache[cache_key])
        return out

    # ------------------------------------------------------------------ #
    def min_nprobe(
        self,
        candidate: IndexCandidate,
        dataset: Dataset,
        goal: RecallGoal,
        max_queries: int = 500,
    ) -> int | None:
        """Smallest nprobe reaching ``goal`` on this index, or None.

        Exponential probe followed by binary search: recall is monotone in
        nprobe (more cells scanned can only add true neighbors).
        """
        gt = dataset.ensure_ground_truth(goal.k)
        queries = dataset.queries[:max_queries]
        gt = gt[: queries.shape[0]]
        index = candidate.index
        nlist = index.nlist

        def recall_of(nprobe: int) -> float:
            ids, _ = index.search(queries, goal.k, nprobe)
            return recall_at_k(ids, gt)

        # Exponential search for an upper bound.
        hi = 1
        while hi < nlist and recall_of(hi) < goal.target:
            hi *= 2
        hi = min(hi, nlist)
        if recall_of(hi) < goal.target:
            return None  # quantization-limited: unreachable on this index
        lo = max(hi // 2, 1)
        while lo < hi:
            mid = (lo + hi) // 2
            if recall_of(mid) >= goal.target:
                hi = mid
            else:
                lo = mid + 1
        return hi

    def min_nprobe_map(
        self,
        dataset: Dataset,
        nlists: list[int],
        goal: RecallGoal,
        opq_options: tuple[bool, ...] = (False,),
        max_queries: int = 500,
    ) -> dict[tuple[int, bool], tuple[IndexCandidate, int | None]]:
        """``{(nlist, use_opq): (candidate, min nprobe or None)}`` for ``goal``.

        Unlike :meth:`recall_nprobe_pairs`, goal-unreachable indexes are
        *kept* (with ``None``) so a caller — the serving co-design search —
        can report *why* an index option left the frontier instead of
        silently shrinking the space.  The trained candidates double as the
        validation indexes: their profiles are exactly what the performance
        model was scored on.
        """
        out: dict[tuple[int, bool], tuple[IndexCandidate, int | None]] = {}
        for cand in self.build(dataset, nlists, opq_options):
            key = (cand.profile.nlist, cand.profile.use_opq)
            out[key] = (cand, self.min_nprobe(cand, dataset, goal, max_queries))
        return out

    def recall_nprobe_pairs(
        self,
        dataset: Dataset,
        nlists: list[int],
        goal: RecallGoal,
        opq_options: tuple[bool, ...] = (False, True),
        max_queries: int = 500,
    ) -> list[tuple[IndexCandidate, int]]:
        """Step 3's output: the (index, min-nprobe) list for one recall goal."""
        pairs: list[tuple[IndexCandidate, int]] = []
        for cand in self.build(dataset, nlists, opq_options):
            nprobe = self.min_nprobe(cand, dataset, goal, max_queries)
            if nprobe is not None:
                pairs.append((cand, nprobe))
        return pairs
