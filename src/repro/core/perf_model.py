"""Performance model: QPS prediction for any (parameters, design) pair.

Implements §6.3 of the paper top-down:

- accelerator throughput = the slowest stage's throughput (Eq. 3);
- stage throughput = its slowest PE's throughput;
- PE throughput follows the pipeline model ``QPS = freq / (L + (N−1)·II)``
  (Eq. 4), where ``N`` is constant for Stage IVFDist (nlist / #PEs) and an
  *expected value* for Stage PQDist — the expectation assumes the query
  distribution matches the database distribution, so a cell is probed with
  probability proportional to its popularity mass.

Validation: the cycle simulator feeds actual workloads through the same
stage models; the paper observes real accelerators reach 86.9–99.4 % of the
prediction (benchmarks/test_ablation_model_accuracy.py reproduces this gap).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import AcceleratorConfig
from repro.core.timing import (
    PIPELINE_STAGES,
    bottleneck_stage,
    min_interval_cycles,
    query_latency_cycles,
    stage_cycles,
)

__all__ = [
    "IndexProfile",
    "PerfPrediction",
    "expected_codes_per_query",
    "min_nprobe_for_mass",
    "predict",
    "synthetic_profile",
]


def expected_codes_per_query(cell_sizes: np.ndarray, nprobe: int) -> float:
    """Expected PQ codes scanned per query (§6.3's Stage PQDist estimator).

    Queries follow the database distribution, so a query lands near a cell
    with probability proportional to the cell's mass: each probed cell is a
    *size-biased* draw with expected size ``E[s²]/E[s]``.  Summing nprobe
    draws (capped at the whole database) matches measured per-query scans on
    clustered data to within ~1 % (see tests/core/test_perf_model.py).
    """
    sizes = np.asarray(cell_sizes, dtype=np.float64)
    nlist = len(sizes)
    total = sizes.sum()
    if total <= 0 or nlist == 0:
        return 0.0
    nprobe = min(nprobe, nlist)
    size_biased_mean = float((sizes**2).sum() / total)
    return min(nprobe * size_biased_mean, float(total))


@dataclass(frozen=True)
class IndexProfile:
    """What the performance model needs to know about a trained index."""

    nlist: int
    use_opq: bool
    cell_sizes: np.ndarray = field(repr=False)
    #: Memo for expected_codes: the design sweep calls it per config with the
    #: same handful of nprobe values.
    _codes_cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def ntotal(self) -> int:
        return int(np.asarray(self.cell_sizes).sum())

    def expected_codes(self, nprobe: int) -> float:
        if nprobe not in self._codes_cache:
            self._codes_cache[nprobe] = expected_codes_per_query(self.cell_sizes, nprobe)
        return self._codes_cache[nprobe]

    @property
    def key(self) -> str:
        return f"{'OPQ+' if self.use_opq else ''}IVF{self.nlist}"


def synthetic_profile(
    nlist: int,
    ntotal: int,
    *,
    use_opq: bool = False,
    skew: float = 1.0,
    seed: int = 0,
) -> IndexProfile:
    """A deterministic stand-in for a trained index's cell-size histogram.

    Cell masses are drawn lognormal(0, ``skew``) and normalized to sum to
    exactly ``ntotal`` (``skew=0`` gives uniform cells).  Lets the co-design
    search and its tests run the performance model without training an
    index; the serving autotuner's harness path always re-profiles on the
    real trained index before validating a winner.
    """
    if nlist < 1:
        raise ValueError(f"nlist must be >= 1, got {nlist}")
    if ntotal < nlist:
        raise ValueError(f"ntotal={ntotal} must be >= nlist={nlist}")
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    if skew == 0:
        weights = np.ones(nlist)
    else:
        weights = np.random.default_rng(seed).lognormal(0.0, skew, size=nlist)
    sizes = np.floor(weights / weights.sum() * ntotal).astype(np.int64)
    sizes = np.maximum(sizes, 1)  # no empty cells in a synthetic profile
    # Hand the rounding remainder to the largest cells, deterministically.
    remainder = ntotal - int(sizes.sum())
    if remainder > 0:
        sizes[np.argsort(sizes)[::-1][:remainder]] += 1
    elif remainder < 0:
        order = np.argsort(sizes)[::-1]
        sizes[order[: -remainder]] -= 1
    return IndexProfile(nlist=nlist, use_opq=use_opq, cell_sizes=sizes)


def min_nprobe_for_mass(profile: IndexProfile, mass_floor: float) -> int:
    """Smallest nprobe whose expected probed mass covers ``mass_floor``.

    "Probed mass" is :func:`expected_codes_per_query` over the database
    size — the fraction of stored vectors a query's scan touches in
    expectation.  It is monotone in nprobe and reaches 1.0 at
    ``nprobe = nlist``, so a floor in (0, 1] is always reachable (binary
    search).  This is a *scan-coverage proxy*, not a recall measurement:
    the co-design harness calibrates real min-nprobe with
    :class:`~repro.core.index_explorer.IndexExplorer` when a dataset is
    available and falls back to this for dataset-free model studies.
    """
    if not 0.0 < mass_floor <= 1.0:
        raise ValueError(f"mass_floor must be in (0, 1], got {mass_floor}")
    total = float(profile.ntotal)
    if total <= 0:
        return 1
    lo, hi = 1, profile.nlist
    while lo < hi:
        mid = (lo + hi) // 2
        if profile.expected_codes(mid) >= mass_floor * total:
            hi = mid
        else:
            lo = mid + 1
    return hi


@dataclass(frozen=True)
class PerfPrediction:
    """Predicted steady-state behaviour of one design (Eq. 3/4 output)."""

    qps: float
    latency_us: float
    bottleneck: str
    stage_occupancy_cycles: dict[str, float]

    def stage_qps(self, freq_mhz: float) -> dict[str, float]:
        """Per-stage throughput bound (Eq. 4 per stage)."""
        return {
            s: (freq_mhz * 1e6 / occ if occ > 0 else float("inf"))
            for s, occ in self.stage_occupancy_cycles.items()
        }


def predict(config: AcceleratorConfig, profile: IndexProfile) -> PerfPrediction:
    """Predict QPS and latency of ``config`` serving ``profile``'s index."""
    p = config.params
    if profile.nlist != p.nlist:
        raise ValueError(
            f"profile nlist={profile.nlist} does not match params nlist={p.nlist}"
        )
    if profile.use_opq != p.use_opq:
        raise ValueError("profile OPQ setting does not match params")
    codes = profile.expected_codes(p.nprobe)
    cycles = stage_cycles(config, codes)
    interval = min_interval_cycles(cycles)
    freq_hz = config.freq_mhz * 1e6
    qps = freq_hz / interval if interval > 0 else float("inf")
    latency_us = query_latency_cycles(cycles) / config.freq_mhz
    return PerfPrediction(
        qps=qps,
        latency_us=latency_us,
        bottleneck=bottleneck_stage(cycles),
        stage_occupancy_cycles={s: cycles[s].occupancy for s in PIPELINE_STAGES},
    )
