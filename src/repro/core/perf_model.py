"""Performance model: QPS prediction for any (parameters, design) pair.

Implements §6.3 of the paper top-down:

- accelerator throughput = the slowest stage's throughput (Eq. 3);
- stage throughput = its slowest PE's throughput;
- PE throughput follows the pipeline model ``QPS = freq / (L + (N−1)·II)``
  (Eq. 4), where ``N`` is constant for Stage IVFDist (nlist / #PEs) and an
  *expected value* for Stage PQDist — the expectation assumes the query
  distribution matches the database distribution, so a cell is probed with
  probability proportional to its popularity mass.

Validation: the cycle simulator feeds actual workloads through the same
stage models; the paper observes real accelerators reach 86.9–99.4 % of the
prediction (benchmarks/test_ablation_model_accuracy.py reproduces this gap).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import AcceleratorConfig
from repro.core.timing import (
    PIPELINE_STAGES,
    bottleneck_stage,
    min_interval_cycles,
    query_latency_cycles,
    stage_cycles,
)

__all__ = ["IndexProfile", "PerfPrediction", "expected_codes_per_query", "predict"]


def expected_codes_per_query(cell_sizes: np.ndarray, nprobe: int) -> float:
    """Expected PQ codes scanned per query (§6.3's Stage PQDist estimator).

    Queries follow the database distribution, so a query lands near a cell
    with probability proportional to the cell's mass: each probed cell is a
    *size-biased* draw with expected size ``E[s²]/E[s]``.  Summing nprobe
    draws (capped at the whole database) matches measured per-query scans on
    clustered data to within ~1 % (see tests/core/test_perf_model.py).
    """
    sizes = np.asarray(cell_sizes, dtype=np.float64)
    nlist = len(sizes)
    total = sizes.sum()
    if total <= 0 or nlist == 0:
        return 0.0
    nprobe = min(nprobe, nlist)
    size_biased_mean = float((sizes**2).sum() / total)
    return min(nprobe * size_biased_mean, float(total))


@dataclass(frozen=True)
class IndexProfile:
    """What the performance model needs to know about a trained index."""

    nlist: int
    use_opq: bool
    cell_sizes: np.ndarray = field(repr=False)
    #: Memo for expected_codes: the design sweep calls it per config with the
    #: same handful of nprobe values.
    _codes_cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def ntotal(self) -> int:
        return int(np.asarray(self.cell_sizes).sum())

    def expected_codes(self, nprobe: int) -> float:
        if nprobe not in self._codes_cache:
            self._codes_cache[nprobe] = expected_codes_per_query(self.cell_sizes, nprobe)
        return self._codes_cache[nprobe]

    @property
    def key(self) -> str:
        return f"{'OPQ+' if self.use_opq else ''}IVF{self.nlist}"


@dataclass(frozen=True)
class PerfPrediction:
    """Predicted steady-state behaviour of one design (Eq. 3/4 output)."""

    qps: float
    latency_us: float
    bottleneck: str
    stage_occupancy_cycles: dict[str, float]

    def stage_qps(self, freq_mhz: float) -> dict[str, float]:
        """Per-stage throughput bound (Eq. 4 per stage)."""
        return {
            s: (freq_mhz * 1e6 / occ if occ > 0 else float("inf"))
            for s, occ in self.stage_occupancy_cycles.items()
        }


def predict(config: AcceleratorConfig, profile: IndexProfile) -> PerfPrediction:
    """Predict QPS and latency of ``config`` serving ``profile``'s index."""
    p = config.params
    if profile.nlist != p.nlist:
        raise ValueError(
            f"profile nlist={profile.nlist} does not match params nlist={p.nlist}"
        )
    if profile.use_opq != p.use_opq:
        raise ValueError("profile OPQ setting does not match params")
    codes = profile.expected_codes(p.nprobe)
    cycles = stage_cycles(config, codes)
    interval = min_interval_cycles(cycles)
    freq_hz = config.freq_mhz * 1e6
    qps = freq_hz / interval if interval > 0 else float("inf")
    latency_us = query_latency_cycles(cycles) / config.freq_mhz
    return PerfPrediction(
        qps=qps,
        latency_us=latency_us,
        bottleneck=bottleneck_stage(cycles),
        stage_occupancy_cycles={s: cycles[s].occupancy for s in PIPELINE_STAGES},
    )
