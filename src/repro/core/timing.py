"""Per-stage cycle timing shared by the performance model and the simulator.

For every stage we derive two numbers from the hardware models:

- **occupancy** — cycles the stage is busy per query; the reciprocal bounds
  stage throughput (Eq. 4 applies ``CC = L + (N−1)·II`` per PE; a stage's
  occupancy follows its slowest PE, §6.3 "Model the performance of a search
  stage").
- **latency** — extra cycles a query spends in the stage beyond what is
  overlapped with its producer.  Selection stages consume their input
  concurrently with production, so only the drain (``post_cycles``) adds
  latency.

The analytic model (:mod:`repro.core.perf_model`) feeds *expected* workloads
into these functions; the simulator (:mod:`repro.sim`) feeds *actual*
per-query workloads, which is where FPGA latency variance comes from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import AcceleratorConfig
from repro.hw.selection import HPQ

__all__ = ["StageCycles", "stage_cycles"]

#: Stage order of the accelerator pipeline.
PIPELINE_STAGES = ("OPQ", "IVFDist", "SelCells", "BuildLUT", "PQDist", "SelK")


@dataclass(frozen=True)
class StageCycles:
    """(occupancy, latency) in clock cycles for one stage and one query."""

    occupancy: float
    latency: float


def _selector_rate_cycles(selector, v_per_stream: float) -> float:
    """Cycles a selector is busy ingesting ``v_per_stream`` elements/stream."""
    return float(selector.consume_cycles(max(int(math.ceil(v_per_stream)), 1)))


def stage_cycles(
    config: AcceleratorConfig,
    codes_per_query: float,
    pq_codes_per_pe: float | None = None,
) -> dict[str, StageCycles]:
    """Occupancy / latency per stage for one query.

    Parameters
    ----------
    config : the accelerator design (fixes PE counts and algorithm params).
    codes_per_query : PQ codes scanned for this query (expected value for the
        analytic model; the actual count for the simulator).
    pq_codes_per_pe : exact slowest-PE code count, when known (the simulator
        computes the true round-robin cell assignment); overrides the
        analytic imbalance estimate.
    """
    p = config.params
    out: dict[str, StageCycles] = {}

    # Stage OPQ — identity bypass unless the index uses OPQ.
    opq = config.opq_pe()
    if opq is None:
        out["OPQ"] = StageCycles(0.0, 0.0)
    else:
        cc = opq.cycles_for_query()
        out["OPQ"] = StageCycles(occupancy=cc - opq.latency + 1, latency=cc)

    # Stage IVFDist — each PE scans nlist/#PEs centroids.
    ivf_pe = config.ivf_pe_spec()
    n_cent = config.ivf_centroids_per_pe()
    occ = n_cent * ivf_pe.ii
    out["IVFDist"] = StageCycles(occupancy=float(occ), latency=float(ivf_pe.latency + occ))

    # Stage SelCells — one merged stream of nlist distances at one element
    # per cycle into the level-1 queues; drain adds latency.
    selcells = config.selcells_selector()
    assert isinstance(selcells, HPQ)
    consume = _selector_rate_cycles(selcells, p.nlist)
    # Selection hardware is double-buffered: draining query q overlaps with
    # ingesting q+1, so the server occupancy is the larger of the two phases.
    out["SelCells"] = StageCycles(
        occupancy=max(consume, float(selcells.post_cycles())),
        latency=float(selcells.post_cycles()),
    )

    # Stage BuildLUT — ceil(nprobe/#PEs) tables of m*ksub entries per PE.
    lut_pe = config.lut_pe_spec()
    cells_per_pe = math.ceil(p.nprobe / config.n_lut_pes)
    occ = cells_per_pe * p.m * p.ksub * lut_pe.ii
    out["BuildLUT"] = StageCycles(occupancy=float(occ), latency=float(lut_pe.latency + occ))

    # Stage PQDist — each cell's codes are striped over the PEs' HBM
    # channels and padded to a full stripe (Figure 8's padding detection),
    # so every PE scans codes/#PEs plus ~half a stripe row per probed cell.
    pq_pe = config.pq_pe_spec()
    if pq_codes_per_pe is None:
        slowest_pe_codes = codes_per_query / config.n_pq_pes + 0.5 * p.nprobe
    else:
        slowest_pe_codes = pq_codes_per_pe
    occ = slowest_pe_codes * pq_pe.ii
    out["PQDist"] = StageCycles(occupancy=occ, latency=float(pq_pe.latency) + occ)

    # Stage SelK — consumes one distance per cycle per PQDist PE, overlapped;
    # drain adds latency.
    selk = config.selk_selector()
    consume = _selector_rate_cycles(selk, slowest_pe_codes)
    out["SelK"] = StageCycles(
        occupancy=max(consume, float(selk.post_cycles())),
        latency=float(selk.post_cycles()),
    )
    return out


def bottleneck_stage(cycles: dict[str, StageCycles]) -> str:
    """The stage whose occupancy bounds accelerator throughput (Eq. 3)."""
    return max(cycles, key=lambda s: cycles[s].occupancy)


def query_latency_cycles(cycles: dict[str, StageCycles]) -> float:
    """End-to-end cycles one query spends in the pipeline."""
    return sum(c.latency for c in cycles.values())


def min_interval_cycles(cycles: dict[str, StageCycles]) -> float:
    """Cycles between query admissions — the slowest stage's occupancy."""
    return max(c.occupancy for c in cycles.values())
