"""The end-to-end FANNS framework (Figure 4, steps 1–7).

``Fanns.fit(dataset, recall_goal)`` runs the whole workflow:

1. take the user dataset and recall goal;
2. train IVF-PQ indexes over the nlist grid, with and without OPQ;
3. find the minimum nprobe reaching the goal on each index;
4. enumerate all valid accelerator designs on the device (Eq. 2);
5. predict QPS for every (parameter, design) combination (Eq. 3/4) and keep
   the best;
6. generate the FPGA project for the winner;
7. "compile": bind the design to the index in the cycle simulator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.ann.ivf import IVFPQIndex
from repro.core.codegen import write_project
from repro.core.config import AcceleratorConfig, AlgorithmParams
from repro.core.design_space import default_pe_grid, enumerate_designs
from repro.core.index_explorer import IndexCandidate, IndexExplorer, RecallGoal
from repro.core.perf_model import IndexProfile, PerfPrediction, predict
from repro.core.resource_model import total_resources
from repro.data.datasets import Dataset
from repro.hw.device import FPGADevice, U55C

# NOTE: repro.sim.accelerator is imported lazily inside FannsResult.simulator
# — the simulator consumes core configs, so a module-level import here would
# be circular (sim.accelerator -> core.config -> core.__init__ -> framework).

__all__ = ["Fanns", "FannsResult"]


@dataclass
class FannsResult:
    """The co-design outcome: best (index, nprobe, hardware) for one goal."""

    goal: RecallGoal
    config: AcceleratorConfig
    candidate: IndexCandidate
    prediction: PerfPrediction
    n_combinations: int
    search_seconds: float
    #: Best prediction per index key (for reporting the shortlist).
    per_index_best: dict[str, float] = field(default_factory=dict)
    #: Timing-only workload multiplier the design was optimized for.
    workload_scale: float = 1.0

    @property
    def index(self) -> IVFPQIndex:
        return self.candidate.index

    @property
    def nprobe(self) -> int:
        return self.config.params.nprobe

    def simulator(self):
        """Step 7: the deployable accelerator (simulator stands in for the
        bitstream).  Inherits the workload scale the design was tuned for."""
        from repro.sim.accelerator import AcceleratorSimulator

        return AcceleratorSimulator(
            self.candidate.index, self.config, workload_scale=self.workload_scale
        )

    def generate_project(self, outdir: str | Path) -> list[Path]:
        """Step 6: emit the ready-to-compile FPGA sources."""
        return write_project(self.config, outdir)

    def summary(self) -> str:
        p = self.config.params
        return (
            f"[{self.goal}] {self.candidate.key} nprobe={p.nprobe} -> "
            f"{self.config.describe()} | predicted QPS={self.prediction.qps:,.0f} "
            f"(bottleneck: {self.prediction.bottleneck}; "
            f"{self.n_combinations:,} combinations in {self.search_seconds:.1f}s)"
        )


class Fanns:
    """FPGA-accelerated ANN search framework — the paper's contribution.

    Parameters
    ----------
    device : target FPGA (default: the paper's Alveo U55C).
    m, ksub : PQ geometry (paper: m=16, ksub=256; tests shrink ksub).
    nlist_grid : nlist values for the index explorer.
    opq_options : whether to explore OPQ (the paper trains both per nlist).
    pe_grid : PE-count grid for design enumeration.
    max_utilization : Eq. 2 utilization cap (default: the device's 0.6).
    """

    def __init__(
        self,
        device: FPGADevice = U55C,
        *,
        m: int = 16,
        ksub: int = 256,
        nlist_grid: list[int] | None = None,
        opq_options: tuple[bool, ...] = (False, True),
        pe_grid: tuple[int, ...] | None = None,
        freq_mhz: float = 140.0,
        max_utilization: float | None = None,
        max_train_vectors: int = 20_000,
        workload_scale: float = 1.0,
        seed: int = 0,
    ):
        self.device = device
        self.m = m
        self.ksub = ksub
        self.nlist_grid = nlist_grid if nlist_grid is not None else [2**i for i in range(4, 11)]
        self.opq_options = opq_options
        self.pe_grid = pe_grid if pe_grid is not None else default_pe_grid(48)
        self.freq_mhz = freq_mhz
        self.max_utilization = max_utilization
        #: Timing-only workload multiplier (see IndexExplorer.profile_scale).
        self.workload_scale = workload_scale
        self.explorer = IndexExplorer(
            m=m,
            ksub=ksub,
            seed=seed,
            max_train_vectors=max_train_vectors,
            profile_scale=workload_scale,
        )
        #: fit() results keyed by (dataset, goal, network, grid, max_queries);
        #: several experiments fit the same goal (Figs. 1, 11, 12 all use the
        #: with-network R@10 design), and the DSE is the expensive step.
        self._fit_cache: dict[tuple, FannsResult] = {}

    # ------------------------------------------------------------------ #
    def best_design_for_params(
        self,
        params: AlgorithmParams,
        profile: IndexProfile,
        *,
        with_network: bool = False,
    ) -> tuple[AcceleratorConfig, PerfPrediction] | None:
        """Steps 4–5 for fixed algorithm parameters.

        Returns the QPS-optimal valid design, or None when nothing fits.
        """
        best, _ = self._search_designs(params, profile, with_network=with_network)
        return best

    def _search_designs(
        self,
        params: AlgorithmParams,
        profile: IndexProfile,
        *,
        with_network: bool = False,
    ) -> tuple[tuple[AcceleratorConfig, PerfPrediction] | None, int]:
        best: tuple[AcceleratorConfig, PerfPrediction] | None = None
        best_lut = float("inf")
        count = 0
        for cfg in enumerate_designs(
            params,
            self.device,
            max_utilization=self.max_utilization,
            with_network=with_network,
            pe_grid=self.pe_grid,
            freq_mhz=self.freq_mhz,
        ):
            count += 1
            pred = predict(cfg, profile)
            # QPS ties (within 0.1 %, e.g. one-cycle rounding differences
            # between selector variants) break toward the cheaper design.
            if best is None or pred.qps > 1.001 * best[1].qps:
                best = (cfg, pred)
                best_lut = total_resources(cfg).lut
            elif pred.qps > 0.999 * best[1].qps:
                lut = total_resources(cfg).lut
                if lut < best_lut:
                    best = (cfg, pred)
                    best_lut = lut
        return best, count

    def fit(
        self,
        dataset: Dataset,
        goal: RecallGoal,
        *,
        with_network: bool = False,
        nlist_grid: list[int] | None = None,
        max_queries: int = 500,
    ) -> FannsResult:
        """Run the full workflow for one recall goal (Figure 4).

        Results are cached per (dataset, goal, network, grid, max_queries);
        pass a fresh ``Fanns`` to force a re-run.
        """
        t0 = time.perf_counter()
        nlists = nlist_grid if nlist_grid is not None else self.nlist_grid
        nlists = [n for n in nlists if n <= dataset.n]
        if not nlists:
            raise ValueError("no feasible nlist values for this dataset")
        cache_key = (dataset.name, goal, with_network, tuple(nlists), max_queries)
        if cache_key in self._fit_cache:
            return self._fit_cache[cache_key]

        pairs = self.explorer.recall_nprobe_pairs(
            dataset, nlists, goal, self.opq_options, max_queries
        )
        if not pairs:
            raise RuntimeError(
                f"no index in the grid reaches {goal}; the goal is quantization-"
                f"limited — lower the target or increase PQ resolution"
            )

        best_overall: tuple[AcceleratorConfig, PerfPrediction, IndexCandidate] | None = None
        per_index_best: dict[str, float] = {}
        n_comb = 0
        for cand, nprobe in pairs:
            params = AlgorithmParams(
                d=dataset.d,
                nlist=cand.profile.nlist,
                nprobe=nprobe,
                k=goal.k,
                use_opq=cand.profile.use_opq,
                m=self.m,
                ksub=self.ksub,
            )
            best, count = self._search_designs(
                params, cand.profile, with_network=with_network
            )
            n_comb += count
            if best is None:
                continue
            cfg, pred = best
            per_index_best[cand.key] = pred.qps
            if best_overall is None or pred.qps > best_overall[1].qps:
                best_overall = (cfg, pred, cand)

        if best_overall is None:
            raise RuntimeError("no valid accelerator design fits the device budget")
        cfg, pred, cand = best_overall
        self._fit_cache[cache_key] = FannsResult(
            goal=goal,
            config=cfg,
            candidate=cand,
            prediction=pred,
            n_combinations=n_comb,
            search_seconds=time.perf_counter() - t0,
            per_index_best=per_index_best,
            workload_scale=self.workload_scale,
        )
        return self._fit_cache[cache_key]
