"""Design-space enumeration (step 4 of Figure 4).

Combines every hardware choice of Table 2 — PE counts per computation stage,
the SelK microarchitecture, and the two index-caching decisions — and keeps
the designs whose Eq. 2 consumption fits the device.  The paper enumerates
millions of combinations per recall goal within an hour; we keep enumeration
exhaustive over a dense PE-count grid (every integer up to a cap would add
nothing: resource curves are monotone in PE count, so a geometric-ish grid
covers the trade-off frontier).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.config import AcceleratorConfig, AlgorithmParams
from repro.core.perf_model import IndexProfile, PerfPrediction, predict
from repro.core.resource_model import total_resources
from repro.hw.device import FPGADevice

__all__ = [
    "best_design",
    "count_design_points",
    "default_pe_grid",
    "enumerate_designs",
]


def default_pe_grid(max_pes: int = 64) -> tuple[int, ...]:
    """A dense-but-bounded grid of PE counts.

    All integers up to 16 (small counts matter: the model picks irregular
    values like 5, 9, 11), then steps of increasing stride up to ``max_pes``.
    """
    if max_pes < 1:
        raise ValueError(f"max_pes must be >= 1, got {max_pes}")
    grid: list[int] = list(range(1, min(16, max_pes) + 1))
    step_plan = [(24, 2), (48, 3), (96, 4), (10**9, 8)]
    v = 16
    for limit, step in step_plan:
        while v + step <= min(limit, max_pes):
            v += step
            grid.append(v)
        if limit >= max_pes:
            break
    return tuple(sorted(set(g for g in grid if g <= max_pes)))


def enumerate_designs(
    params: AlgorithmParams,
    device: FPGADevice,
    *,
    max_utilization: float | None = None,
    with_network: bool = False,
    pe_grid: Sequence[int] | None = None,
    freq_mhz: float = 140.0,
) -> Iterator[AcceleratorConfig]:
    """Yield every valid accelerator design for ``params`` on ``device``.

    Invalid combinations are skipped silently: HSMPQG needs k < #PQDist PEs,
    and any design whose resources exceed the budget fails Eq. 2.
    """
    grid = tuple(pe_grid) if pe_grid is not None else default_pe_grid()
    budget = device.budget(max_utilization)
    for n_ivf in grid:
        if n_ivf > params.nlist:
            continue  # more PEs than centroids is pure waste
        for n_lut in grid:
            if n_lut > params.nlist:
                continue
            for n_pq in grid:
                for selk_arch in ("HPQ", "HSMPQG"):
                    if selk_arch == "HSMPQG" and params.k >= n_pq:
                        continue
                    for ivf_cache in (True, False):
                        for lut_cache in (True, False):
                            cfg = AcceleratorConfig(
                                params=params,
                                n_ivf_pes=n_ivf,
                                n_lut_pes=n_lut,
                                n_pq_pes=n_pq,
                                ivf_cache_on_chip=ivf_cache,
                                lut_cache_on_chip=lut_cache,
                                selk_arch=selk_arch,
                                freq_mhz=freq_mhz,
                                with_network=with_network,
                            )
                            if total_resources(cfg).fits_within(budget):
                                yield cfg


def best_design(
    params: AlgorithmParams,
    device: FPGADevice,
    profile: IndexProfile,
    *,
    pe_grid: Sequence[int] | None = None,
    max_utilization: float | None = None,
    with_network: bool = False,
    freq_mhz: float = 140.0,
) -> tuple[AcceleratorConfig, PerfPrediction] | None:
    """The QPS-optimal valid design for ``params`` on ``device``, or None.

    The CDSE inner loop: enumerate, keep the max-QPS survivor, break QPS
    ties (within 0.1 %) toward the cheaper LUT consumption — mirroring
    ``Fanns._search_designs``.  Returns ``None`` when *no* design fits the
    resource budget (the co-design search treats that as a pruned point,
    where the figure harness treats it as an error).
    """
    best: tuple[float, float, AcceleratorConfig, PerfPrediction] | None = None
    for cfg in enumerate_designs(
        params,
        device,
        max_utilization=max_utilization,
        with_network=with_network,
        pe_grid=pe_grid,
        freq_mhz=freq_mhz,
    ):
        pred = predict(cfg, profile)
        if best is None or pred.qps > 1.001 * best[0]:
            best = (pred.qps, total_resources(cfg).lut, cfg, pred)
        elif pred.qps > 0.999 * best[0]:
            lut = total_resources(cfg).lut
            if lut < best[1]:
                best = (pred.qps, lut, cfg, pred)
    return None if best is None else (best[2], best[3])


def count_design_points(
    params: AlgorithmParams,
    device: FPGADevice,
    *,
    max_utilization: float | None = None,
    with_network: bool = False,
    pe_grid: Sequence[int] | None = None,
) -> int:
    """Number of valid designs (the size of the hardware half of Table 2)."""
    return sum(
        1
        for _ in enumerate_designs(
            params,
            device,
            max_utilization=max_utilization,
            with_network=with_network,
            pe_grid=pe_grid,
        )
    )
