"""Comparators: CPU (Faiss-like), GPU, and parameter-independent FPGA designs.

The paper compares FANNS against

- Faiss 1.7.0 on a 16-vCPU Cascade Lake Xeon (m5.4xlarge),
- Faiss-GPU on NVIDIA V100s,
- an FPGA baseline built from the same hardware blocks as FANNS but sized
  without algorithm-parameter awareness (Table 4's "Baseline" rows).

We reproduce the CPU and GPU as *stage-level analytic cost models* calibrated
to the published hardware characteristics (flop/s, memory bandwidth, kernel
overheads) with empirically shaped latency jitter — the quantities that drive
every figure are the stage time ratios (Fig. 3), relative QPS (Fig. 10) and
the latency distribution shapes (Figs. 1, 11, 12), not absolute microseconds.
"""

from repro.baselines.cpu import CPUBaseline, CPUSpec
from repro.baselines.gpu import GPUBaseline, GPUSpec
from repro.baselines.fpga_baseline import baseline_config, BASELINE_PE_ALLOCATIONS

__all__ = [
    "BASELINE_PE_ALLOCATIONS",
    "CPUBaseline",
    "CPUSpec",
    "GPUBaseline",
    "GPUSpec",
    "baseline_config",
]
