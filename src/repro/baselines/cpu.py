"""CPU baseline: a Faiss-like stage-level cost model for IVF-PQ search.

Calibrated to the paper's CPU (AWS m5.4xlarge: 16 vCPUs of Xeon Platinum
8259CL @ 2.5 GHz, 64 GB DDR4).  Each of the six search stages is costed from
first principles:

- compute-bound stages (OPQ, IVFDist, BuildLUT) at the achievable GEMM-ish
  flop rate;
- the table-lookup stage (PQDist) at the *memory system's* random-access
  lookup rate — the published Faiss bottleneck on CPUs;
- selection stages (SelCells, SelK) at the scalar heap-update rate.

The model exposes the same interface the figures need: per-stage seconds
(Fig. 3 breakdowns), batch QPS (Fig. 10), and a latency sampler with the
moderate jitter of a multi-core server (Figs. 1, 11, 12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.ann.ivf import IVFPQIndex
from repro.ann.stages import STAGE_NAMES
from repro.core.config import AlgorithmParams

__all__ = ["CPUBaseline", "CPUSpec", "expected_codes_for_index", "params_for_index"]


def params_for_index(index: IVFPQIndex, nprobe: int, k: int) -> AlgorithmParams:
    """Algorithm parameters of a trained index, for the analytic baselines."""
    return AlgorithmParams(
        d=index.d, nlist=index.nlist, nprobe=nprobe, k=k,
        use_opq=index.use_opq, m=index.m, ksub=index.ksub,
    )


def expected_codes_for_index(index: IVFPQIndex, nprobe: int) -> float:
    """Expected PQ codes scanned per query, from the packed invlist stats."""
    from repro.core.perf_model import expected_codes_per_query

    return expected_codes_per_query(index.invlists.sizes, nprobe)


@dataclass(frozen=True)
class CPUSpec:
    """Hardware characteristics of the baseline server."""

    name: str = "xeon-8259cl-16vcpu"
    cores: int = 16
    #: Achievable single-core f32 flop/s on streaming kernels (AVX-512 at
    #: moderated clocks; ~20 % of theoretical peak, the realistic Faiss rate).
    flops_per_core: float = 2.0e10
    #: Random-access distance-table lookups+adds per second per core.
    #: Faiss's IVFPQ scan kernel gathers one table entry per code byte with
    #: data-dependent addressing; ~1e8 codes/s per core at m=16, i.e.
    #: ~1.6e9 lookups/s — far below peak load issue rate.
    lookup_rate_per_core: float = 1.6e9
    #: Scalar compare/heap-update operations per second per core.
    scalar_rate_per_core: float = 1.5e9
    #: Sustained memory bandwidth (bytes/s) across the socket.
    mem_bandwidth: float = 9.0e10
    #: Per-query software overhead (dispatch, batching bookkeeping), seconds.
    per_query_overhead: float = 8.0e-6
    #: Log-normal latency jitter (sigma) for online single-query serving —
    #: scheduling, cache and NUMA effects on a shared server.
    latency_sigma: float = 0.25
    #: Occasional slow queries (page faults, interference): probability and
    #: multiplier — CPUs show mild tails compared to GPUs' batching spikes.
    spike_prob: float = 0.01
    spike_scale: float = 3.0


DEFAULT_CPU = CPUSpec()


class CPUBaseline:
    """Analytic Faiss-on-CPU model with the six-stage breakdown."""

    def __init__(
        self, spec: CPUSpec = DEFAULT_CPU, threads: int | None = None, seed: int = 0
    ):
        self.spec = spec
        self.threads = threads if threads is not None else spec.cores
        if self.threads < 1 or self.threads > spec.cores:
            raise ValueError(f"threads must be in [1, {spec.cores}], got {self.threads}")
        # Per-instance stream: default-rng sampling calls are deterministic
        # as a sequence but never replay identical jitter (the old per-call
        # default_rng(0) fallback did).
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    def stage_seconds(
        self, params: AlgorithmParams, codes_per_query: float, *, batch: bool = True
    ) -> dict[str, float]:
        """Seconds per query per stage.

        ``batch=True`` assumes all cores cooperate (offline throughput);
        ``batch=False`` models one online query using limited intra-query
        parallelism (Faiss parallelizes the scan but not the small stages).
        """
        s = self.spec
        cores = self.threads if batch else min(self.threads, 4)
        flops = s.flops_per_core * cores
        lookups = s.lookup_rate_per_core * cores
        scalar = s.scalar_rate_per_core * min(cores, 2 if not batch else cores)
        p = params

        out: dict[str, float] = {}
        out["OPQ"] = (2.0 * p.d * p.d / flops) if p.use_opq else 0.0
        out["IVFDist"] = 2.0 * p.nlist * p.d / flops
        # Heap-based selection of nprobe cells out of nlist distances.
        out["SelCells"] = p.nlist * math.log2(max(p.nprobe, 2)) / scalar
        out["BuildLUT"] = 2.0 * p.nprobe * p.m * p.ksub * (p.d / p.m) / flops
        # ADC scan: m lookups + adds per code; also bounded by code bandwidth.
        scan_compute = codes_per_query * p.m / lookups
        scan_memory = codes_per_query * p.m / s.mem_bandwidth
        out["PQDist"] = max(scan_compute, scan_memory)
        # Heap-based top-K: one compare per candidate; actual heap pushes are
        # rare (k·ln(n/k) of them), so K itself barely matters on CPUs — the
        # paper calls the CPU K-effect "unobvious" (§3.1).
        heap_pushes = p.k * math.log(max(codes_per_query / max(p.k, 1), 2.0))
        out["SelK"] = (codes_per_query + heap_pushes * math.log2(max(p.k, 2))) / scalar
        return out

    def stage_fractions(
        self, params: AlgorithmParams, codes_per_query: float
    ) -> dict[str, float]:
        """Fraction of query time per stage — the CPU bars of Figure 3."""
        secs = self.stage_seconds(params, codes_per_query)
        total = sum(secs.values())
        if total <= 0:
            return {k: 0.0 for k in STAGE_NAMES}
        return {k: v / total for k, v in secs.items()}

    # ------------------------------------------------------------------ #
    def query_seconds(
        self, params: AlgorithmParams, codes_per_query: float, *, batch: bool = True
    ) -> float:
        secs = self.stage_seconds(params, codes_per_query, batch=batch)
        return sum(secs.values()) + self.spec.per_query_overhead

    def qps(self, params: AlgorithmParams, codes_per_query: float) -> float:
        """Offline batched throughput (Fig. 10's CPU series)."""
        return 1.0 / self.query_seconds(params, codes_per_query, batch=True)

    # ------------------------------------------------------------------ #
    def stage_seconds_for_index(
        self, index: IVFPQIndex, nprobe: int, k: int, *, batch: bool = True
    ) -> dict[str, float]:
        """Stage model driven by a trained index's packed invlist stats."""
        params = params_for_index(index, nprobe, k)
        return self.stage_seconds(params, expected_codes_for_index(index, nprobe), batch=batch)

    def qps_for_index(self, index: IVFPQIndex, nprobe: int, k: int) -> float:
        """Batched throughput for a trained index (packed invlist stats)."""
        params = params_for_index(index, nprobe, k)
        return self.qps(params, expected_codes_for_index(index, nprobe))

    def sample_latencies_us(
        self,
        params: AlgorithmParams,
        codes_per_query: float,
        n: int,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Online per-query latency distribution (Figs. 1/11/12 inputs)."""
        rng = rng if rng is not None else self._rng
        mean_us = 1e6 * self.query_seconds(params, codes_per_query, batch=False)
        s = self.spec
        jitter = rng.lognormal(mean=0.0, sigma=s.latency_sigma, size=n)
        spikes = np.where(rng.random(n) < s.spike_prob, s.spike_scale, 1.0)
        return mean_us * jitter * spikes
