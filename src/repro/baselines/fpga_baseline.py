"""Parameter-independent FPGA baseline designs (Table 4, "Baseline" rows).

The paper's FPGA baseline uses the same hardware building blocks as FANNS
but is sized *without* knowing the algorithm parameters: one design per K
(1 / 10 / 100) that "roughly balances resource consumption across stages so
the accelerator should perform well on a wide range of algorithm settings"
(§7.2.3), with two deliberate exceptions the paper lists: PQDist and SelK
capacities are kept proportional, and Stage OPQ stays tiny.

Because the design cannot assume any index fits on-chip, both cacheable
stages stream from HBM.  PE counts follow Table 4's baseline rows.
"""

from __future__ import annotations

from repro.core.config import AcceleratorConfig, AlgorithmParams

__all__ = ["BASELINE_PE_ALLOCATIONS", "baseline_config"]

#: Table 4 baseline rows: K -> (IVFDist PEs, BuildLUT PEs, PQDist PEs, SelK arch).
BASELINE_PE_ALLOCATIONS: dict[int, tuple[int, int, int, str]] = {
    1: (10, 5, 36, "HPQ"),
    10: (10, 4, 16, "HPQ"),
    100: (10, 4, 4, "HPQ"),
}


def _nearest_k(k: int) -> int:
    """Pick the baseline accelerator built for the closest K tier."""
    return min(BASELINE_PE_ALLOCATIONS, key=lambda tier: abs(tier - k))


def baseline_config(params: AlgorithmParams, freq_mhz: float = 140.0) -> AcceleratorConfig:
    """The parameter-independent accelerator serving ``params``.

    The hardware is fixed per K tier; only the algorithm binding changes —
    exactly how the paper evaluates the baseline on arbitrary indexes.
    """
    tier = _nearest_k(params.k)
    n_ivf, n_lut, n_pq, selk = BASELINE_PE_ALLOCATIONS[tier]
    # A fixed design must still be *constructible* for the given parameters
    # (e.g. nlist smaller than the PE count on tiny test indexes).
    n_ivf = min(n_ivf, params.nlist)
    n_lut = min(n_lut, params.nlist)
    return AcceleratorConfig(
        params=params,
        n_ivf_pes=n_ivf,
        n_lut_pes=n_lut,
        n_pq_pes=n_pq,
        ivf_cache_on_chip=False,  # cannot assume the index fits on-chip
        lut_cache_on_chip=False,
        selcells_arch="HPQ",
        selk_arch=selk,
        freq_mhz=freq_mhz,
    )
