"""GPU baseline: a Faiss-GPU stage-level cost model (NVIDIA V100).

The paper's GPU observations that the model must reproduce:

- two orders of magnitude more flop/s than the FPGA → 5.3–22× higher batch
  QPS (Fig. 10);
- bottlenecks concentrate in Stage PQDist and Stage SelK as nprobe grows,
  and Stage SelK blows up with K (Fig. 3, GPU row — k-selection on GPUs is
  the known hard kernel);
- low *median* online latency but a **long tail** (Figs. 1, 11): dynamic
  kernel scheduling, batching boundaries, and PCIe transfers make P95/P99
  far worse than the median, which is what kills multi-GPU scale-out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ann.ivf import IVFPQIndex
from repro.ann.stages import STAGE_NAMES
from repro.baselines.cpu import expected_codes_for_index, params_for_index
from repro.core.config import AlgorithmParams

__all__ = ["GPUBaseline", "GPUSpec"]


@dataclass(frozen=True)
class GPUSpec:
    """Hardware characteristics of the baseline accelerator (V100-class)."""

    name: str = "v100-32gb"
    #: Achievable f32 flop/s on GEMM-shaped kernels (≈70 % of 14 Tflop/s).
    flops: float = 1.0e13
    #: HBM2 bandwidth (bytes/s), the PQ-scan bound.
    mem_bandwidth: float = 8.0e11
    #: Effective table-lookup+add throughput (shared-memory LUTs), ops/s.
    #: Bank conflicts and gather addressing keep this far under peak
    #: shared-memory bandwidth; calibrated to Faiss-GPU's ~4e10 codes/s
    #: at m=16 on a V100.
    lookup_rate: float = 6.4e11
    #: Queries per service batch when amortizing per-stage kernel launches
    #: inside the stage breakdown (Fig. 3 is profiled on batched runs).
    stage_launch_batch: int = 64
    #: Scalar-ish k-selection throughput (warp-select), elements/s; degrades
    #: with K because register-file selection spills beyond small K.
    select_rate: float = 4.0e11
    #: Per-kernel launch overhead (seconds) — six stages ≈ several launches.
    kernel_overhead: float = 6.0e-6
    #: Residual per-query cost that batching cannot amortize (result
    #: compaction, device-host staging), seconds.
    batch_floor: float = 1.5e-6
    #: PCIe round-trip for queries/results, seconds.
    pcie_rtt: float = 12.0e-6
    #: Online latency jitter: log-normal sigma (scheduling noise).
    latency_sigma: float = 0.45
    #: The GPU tail has two components.  *Moderate* spikes (batching
    #: boundaries, scheduler preemption) are frequent: an 8-node query
    #: almost surely hits one, which elevates even the *median* distributed
    #: latency (Figure 1's 5.5x).  *Extreme* spikes (GC-like stalls) are
    #: rare but unbounded: a 16-node query rarely sees one, a 1024-node
    #: query almost surely does — why the max-of-N P99 keeps diverging
    #: (Figure 12).
    spike_prob: float = 0.09
    spike_scale: float = 5.0
    extreme_spike_prob: float = 0.008
    extreme_spike_scale: float = 8.0


DEFAULT_GPU = GPUSpec()


class GPUBaseline:
    """Analytic Faiss-GPU model with the six-stage breakdown."""

    def __init__(self, spec: GPUSpec = DEFAULT_GPU, seed: int = 0):
        self.spec = spec
        # Per-instance stream: default-rng sampling calls are deterministic
        # as a sequence but never replay identical jitter (the old per-call
        # default_rng(0) fallback did).
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    def _select_rate_for_k(self, k: int) -> float:
        """Warp-select throughput collapses beyond the register-resident K.

        Faiss's warp-select keeps per-thread queues in registers up to K≈32;
        larger K spills and forces multi-pass selection — the superlinear
        degradation behind the paper's Fig. 3 GPU K-column.
        """
        penalty = 1.0 + (k / 32.0) ** 1.5
        return self.spec.select_rate / penalty

    def stage_seconds(
        self, params: AlgorithmParams, codes_per_query: float
    ) -> dict[str, float]:
        """Seconds per query per stage, batch-amortized."""
        s = self.spec
        p = params
        # Every active stage is at least one kernel launch per service batch;
        # at small workloads these floors dominate, which is why the GPU's
        # Fig. 3 bars are spread across stages at low nprobe.
        launch = s.kernel_overhead / s.stage_launch_batch
        out: dict[str, float] = {}
        out["OPQ"] = (launch + 2.0 * p.d * p.d / s.flops) if p.use_opq else 0.0
        out["IVFDist"] = launch + 2.0 * p.nlist * p.d / s.flops
        out["SelCells"] = launch + p.nlist / s.select_rate
        out["BuildLUT"] = launch + 2.0 * p.nprobe * p.m * p.ksub * (p.d / p.m) / s.flops
        scan_compute = codes_per_query * p.m / s.lookup_rate
        scan_memory = codes_per_query * p.m / s.mem_bandwidth
        out["PQDist"] = launch + max(scan_compute, scan_memory)
        out["SelK"] = launch + codes_per_query / self._select_rate_for_k(p.k)
        return out

    def stage_fractions(
        self, params: AlgorithmParams, codes_per_query: float
    ) -> dict[str, float]:
        """The GPU bars of Figure 3."""
        secs = self.stage_seconds(params, codes_per_query)
        total = sum(secs.values())
        if total <= 0:
            return {k: 0.0 for k in STAGE_NAMES}
        return {k: v / total for k, v in secs.items()}

    # ------------------------------------------------------------------ #
    def query_seconds(
        self, params: AlgorithmParams, codes_per_query: float, *, batch: bool = True
    ) -> float:
        secs = sum(self.stage_seconds(params, codes_per_query).values())
        if batch:
            # Stage launches are already amortized inside stage_seconds; add
            # the residual per-query floor and the (fully amortized) PCIe.
            return secs + self.spec.batch_floor
        # Online: full launch overheads (un-amortized) plus a PCIe round trip.
        extra_launch = 6 * self.spec.kernel_overhead * (
            1.0 - 1.0 / self.spec.stage_launch_batch
        )
        return secs + extra_launch + self.spec.pcie_rtt

    def qps(self, params: AlgorithmParams, codes_per_query: float) -> float:
        """Offline batched throughput (Fig. 10's GPU series)."""
        return 1.0 / self.query_seconds(params, codes_per_query, batch=True)

    # ------------------------------------------------------------------ #
    def stage_seconds_for_index(
        self, index: IVFPQIndex, nprobe: int, k: int
    ) -> dict[str, float]:
        """Stage model driven by a trained index's packed invlist stats."""
        params = params_for_index(index, nprobe, k)
        return self.stage_seconds(params, expected_codes_for_index(index, nprobe))

    def qps_for_index(self, index: IVFPQIndex, nprobe: int, k: int) -> float:
        """Batched throughput for a trained index (packed invlist stats)."""
        params = params_for_index(index, nprobe, k)
        return self.qps(params, expected_codes_for_index(index, nprobe))

    def sample_latencies_us(
        self,
        params: AlgorithmParams,
        codes_per_query: float,
        n: int,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Online latency distribution: fast median, heavy tail (Fig. 11)."""
        rng = rng if rng is not None else self._rng
        mean_us = 1e6 * self.query_seconds(params, codes_per_query, batch=False)
        s = self.spec
        jitter = rng.lognormal(mean=0.0, sigma=s.latency_sigma, size=n)
        moderate = np.where(
            rng.random(n) < s.spike_prob,
            s.spike_scale * (1.0 + rng.random(n)),
            1.0,
        )
        # Extreme stalls are themselves heavy-tailed (lognormal), not
        # bounded: the max over many draws keeps growing with the draw
        # count — the effect behind Figure 12's diverging GPU P99.
        extreme = np.where(
            rng.random(n) < s.extreme_spike_prob,
            s.extreme_spike_scale * rng.lognormal(mean=0.0, sigma=0.9, size=n),
            1.0,
        )
        return mean_us * jitter * np.maximum(moderate, extreme)
