"""Multi-accelerator cluster service (the Figure 1 deployment as an API).

Combines the sharded index layout (every node runs the same FANNS design
over its dataset partition), per-node accelerator simulators, and the
binary-tree collective cost model into one searchable object: queries fan
out to all shards, partial top-K results merge on the way back, and the
reported latency is the slowest shard plus the network collectives.

**Invariant (bit-identical results).**  Shards share the trained
quantizers and rank candidates by the canonical (distance, id) order, and
the gather step is the exact merge kernel
(:func:`repro.ann.merge.merge_topk`) — so with the same deployed (k,
nprobe) the merged cluster result equals searching the unpartitioned
index bit for bit, ties included.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ann.ivf import IVFPQIndex
from repro.ann.merge import merge_partial_topk
from repro.ann.partition import partition_index
from repro.core.config import AcceleratorConfig
from repro.net.loggp import LogGPParams, PAPER_LOGGP
from repro.net.scaleout import simulate_cluster_latencies
from repro.sim.accelerator import AcceleratorSimulator

__all__ = ["ClusterSearchResult", "FPGAClusterService"]


@dataclass
class ClusterSearchResult:
    """Merged results plus the distributed latency distribution."""

    ids: np.ndarray
    dists: np.ndarray
    latencies_us: np.ndarray
    per_node_qps: list[float]

    def latency_percentile(self, q: float) -> float:
        """P``q`` of the per-query distributed latency distribution (µs)."""
        return float(np.percentile(self.latencies_us, q))


class FPGAClusterService:
    """N accelerators, one shard each, same generated design everywhere."""

    def __init__(
        self,
        index: IVFPQIndex,
        config: AcceleratorConfig,
        n_accelerators: int,
        *,
        workload_scale: float = 1.0,
        loggp: LogGPParams = PAPER_LOGGP,
    ):
        if n_accelerators < 1:
            raise ValueError(f"n_accelerators must be >= 1, got {n_accelerators}")
        self.config = config
        self.n_accelerators = n_accelerators
        self.loggp = loggp
        #: Query dimensionality of the deployed design (serving contract).
        self.d = config.params.d
        self.shards = partition_index(index, n_accelerators)
        self.sims = [
            AcceleratorSimulator(shard, config, workload_scale=workload_scale)
            for shard in self.shards
        ]

    def search(
        self,
        queries: np.ndarray,
        *,
        arrival_us: np.ndarray | None = None,
    ) -> ClusterSearchResult:
        """Fan out, simulate every shard, merge top-K, account the network."""
        k = self.config.params.k
        d = self.config.params.d
        outs = [
            sim.run_batch(queries, arrival_us=arrival_us, overhead_us=0.0)
            for sim in self.sims
        ]
        # Gather: the exact (distance, id) top-K merge shared with the
        # serving tier's ShardedBackend — bit-identical to the
        # unpartitioned index, ties included.
        ids, dists = merge_partial_topk([(o.ids, o.dists) for o in outs], k)
        lat = simulate_cluster_latencies(
            np.vstack([o.latencies_us for o in outs]), d=d, k=k, params=self.loggp
        )
        return ClusterSearchResult(
            ids=ids,
            dists=dists,
            latencies_us=lat,
            per_node_qps=[o.qps for o in outs],
        )

    def search_batch(
        self, queries: np.ndarray, k: int, nprobe: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Uniform serving entry point (see :mod:`repro.serve.backends`).

        The generated design bakes K and nprobe into the hardware, so a
        request may only ask for what the deployed accelerators compute:
        ``k`` must equal ``config.params.k`` and ``nprobe``, if given, must
        equal ``config.params.nprobe``.
        """
        p = self.config.params
        if k != p.k:
            raise ValueError(f"deployed design serves k={p.k}, request asked k={k}")
        if nprobe is not None and nprobe != p.nprobe:
            raise ValueError(
                f"deployed design probes nprobe={p.nprobe}, request asked {nprobe}"
            )
        out = self.search(queries)
        return out.ids, out.dists
