"""Production deployment substrate (§4 "Framework deployment").

The paper situates FANNS in a production vector search system that manages a
*dynamic* dataset: a primary IVF-PQ index over a snapshot, a graph-based
incremental index for vectors added since the snapshot, a bitmap tracking
deletions, and a periodic merge that folds the delta into a new snapshot —
at which point FANNS redesigns the accelerator for the new snapshot while
the old accelerator keeps serving.

:mod:`repro.service.dynamic` implements that loop end to end.
"""

from repro.service.cluster import ClusterSearchResult, FPGAClusterService
from repro.service.dynamic import DynamicVectorService, SnapshotStats

__all__ = [
    "ClusterSearchResult",
    "DynamicVectorService",
    "FPGAClusterService",
    "SnapshotStats",
]
