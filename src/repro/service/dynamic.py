"""Dynamic vector search service: snapshot + delta + deletions + merge.

Implements the deployment loop of §4:

- **primary index** — an IVF-PQ index over the current dataset snapshot
  (the thing FANNS generates an accelerator for);
- **incremental index** — a graph (NSW) buffer of vectors inserted since
  the snapshot;
- **deletion bitmap** — ids removed since the snapshot are masked out of
  both indexes at query time;
- **merge** — periodically (the paper: e.g. weekly) the delta and the
  deletions fold into a new snapshot; the IVF-PQ index is retrained/refilled
  and FANNS can redesign the accelerator for it while the previous
  deployment keeps serving ("the time taken to build the new accelerator is
  effectively concealed by the ongoing operation of the older system").

Queries fan out to both indexes and merge the top-K, skipping deleted ids.

The service is safe to mutate while it serves: ``search``/``search_batch``,
``insert``, ``delete``, and ``merge`` serialize on one reentrant lock, so a
serving engine's worker thread can keep answering queries while another
thread folds the next snapshot — each request sees either the old or the new
generation, never a half-merged state.

**Lock discipline.**  The reentrant service lock guards every multi-field
read and mutation; the expensive ``merge`` rebuild runs *outside* it (only
its freeze and swap phases lock).  Invalidation listeners are notified
with no lock held, so a listener may re-enter the service or take its own
locks (e.g. a query cache's) without deadlock risk.

**Cache invalidation.**  Serving engines register their query caches via
:meth:`DynamicVectorService.add_invalidation_listener` (the
:class:`~repro.serve.scheduler.ServingEngine` does this automatically at
construction); every ``insert``/``delete``/``merge``/``bootstrap`` that
changes visible results then fires the listeners, so cached results can
never outlive the data generation they were computed against.  Listeners
are held weakly: a garbage-collected engine unregisters itself.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass

import numpy as np

from repro.ann.graph import NSWGraphIndex
from repro.ann.ivf import IVFPQIndex

__all__ = ["DynamicVectorService", "SnapshotStats"]


@dataclass(frozen=True)
class SnapshotStats:
    """Bookkeeping returned by :meth:`DynamicVectorService.merge`."""

    snapshot_size: int
    inserted_since: int
    deleted_since: int
    generation: int


class DynamicVectorService:
    """Serves a mutable vector collection over IVF-PQ + NSW + bitmap."""

    def __init__(
        self,
        d: int,
        *,
        nlist: int = 64,
        m: int = 16,
        ksub: int = 256,
        use_opq: bool = False,
        graph_degree: int = 16,
        nprobe: int = 8,
        seed: int = 0,
    ):
        self.d = d
        self.nlist = nlist
        self.m = m
        self.ksub = ksub
        self.use_opq = use_opq
        self.graph_degree = graph_degree
        self.nprobe = nprobe
        self.seed = seed

        self.primary: IVFPQIndex | None = None
        self.delta = NSWGraphIndex(d=d, max_degree=graph_degree, seed=seed)
        self.deleted: set[int] = set()
        self.generation = 0
        self._snapshot_vectors: np.ndarray | None = None
        self._snapshot_ids: np.ndarray | None = None
        self._next_id = 0
        #: Serializes mutations against serving reads (reentrant so internal
        #: calls under the lock never deadlock).
        self._lock = threading.RLock()
        #: During a merge() rebuild the pre-merge delta is frozen here and
        #: stays searchable; new inserts go to a fresh ``delta``.
        self._frozen_delta: NSWGraphIndex | None = None
        #: Weak references to callables fired after every visible mutation
        #: (attached engines' cache invalidation; see module docstring).
        self._invalidation_listeners: list = []

    # ------------------------------------------------------------------ #
    def add_invalidation_listener(self, listener) -> None:
        """Register a callable fired after every visible mutation.

        Bound methods (the common case — an engine's ``invalidate_cache``)
        are held via :class:`weakref.WeakMethod`, so registering never
        keeps an engine alive; other callables are held strongly.
        """
        try:
            ref = weakref.WeakMethod(listener)
        except TypeError:
            def _strong_ref(listener=listener):
                return listener
            ref = _strong_ref
        with self._lock:
            self._invalidation_listeners.append(ref)

    def _notify_invalidation(self) -> None:
        """Fire every live listener (no lock held), pruning dead ones."""
        with self._lock:
            refs = list(self._invalidation_listeners)
        dead = []
        for r in refs:
            cb = r()
            if cb is None:
                dead.append(r)
            else:
                cb()
        if dead:
            with self._lock:
                self._invalidation_listeners = [
                    r for r in self._invalidation_listeners if r not in dead
                ]

    # ------------------------------------------------------------------ #
    @property
    def ntotal(self) -> int:
        """Live vectors (snapshot + deltas − deletions)."""
        with self._lock:  # consistent multi-field read vs merge() phases
            snap = len(self._snapshot_ids) if self._snapshot_ids is not None else 0
            frozen = self._frozen_delta.ntotal if self._frozen_delta is not None else 0
            return snap + frozen + self.delta.ntotal - len(self.deleted)

    def _allocate_ids(self, n: int) -> np.ndarray:
        ids = np.arange(self._next_id, self._next_id + n, dtype=np.int64)
        self._next_id += n
        return ids

    # ------------------------------------------------------------------ #
    def bootstrap(self, x: np.ndarray, train_vectors: np.ndarray | None = None) -> np.ndarray:
        """Create the initial snapshot; returns the assigned ids."""
        with self._lock:
            ids = self._bootstrap_locked(x, train_vectors)
        self._notify_invalidation()
        return ids

    def _bootstrap_locked(
        self, x: np.ndarray, train_vectors: np.ndarray | None
    ) -> np.ndarray:
        x = np.ascontiguousarray(np.atleast_2d(x), dtype=np.float32)
        ids = self._allocate_ids(x.shape[0])
        self.primary = IVFPQIndex(
            d=self.d, nlist=self.nlist, m=self.m, ksub=self.ksub,
            use_opq=self.use_opq, seed=self.seed,
        )
        self.primary.train(train_vectors if train_vectors is not None else x)
        self.primary.add(x, ids=ids)
        self._snapshot_vectors = x.copy()
        self._snapshot_ids = ids.copy()
        return ids

    def insert(self, x: np.ndarray) -> np.ndarray:
        """Insert new vectors into the incremental index; returns their ids.

        Fires the invalidation listeners: the new vectors are immediately
        visible to searches, so cached pre-insert results are stale.
        """
        with self._lock:
            if self.primary is None:
                raise RuntimeError("bootstrap() must run before insert()")
            x = np.ascontiguousarray(np.atleast_2d(x), dtype=np.float32)
            ids = self._allocate_ids(x.shape[0])
            self.delta.add(x, ids=ids)
        if ids.shape[0]:
            self._notify_invalidation()
        return ids

    def delete(self, ids) -> int:
        """Mark ids deleted (bitmap); returns how many were newly marked.

        Fires the invalidation listeners when anything was newly marked
        (re-deleting an already-deleted id changes nothing, so it stays
        silent).
        """
        with self._lock:
            before = len(self.deleted)
            self.deleted.update(
                int(i) for i in np.atleast_1d(np.asarray(ids, dtype=np.int64))
            )
            newly = len(self.deleted) - before
        if newly:
            self._notify_invalidation()
        return newly

    # ------------------------------------------------------------------ #
    def search(
        self, queries: np.ndarray, k: int, nprobe: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Merged top-k over (primary ∪ delta) \\ deleted.

        Over-fetches from both indexes to survive deletion filtering, then
        merges by distance — the query path of the paper's deployment.
        ``nprobe`` overrides the service default for this call.
        """
        with self._lock:
            if self.primary is None:
                raise RuntimeError("bootstrap() must run before search()")
            nprobe = self.nprobe if nprobe is None else nprobe
            queries = np.atleast_2d(queries)
            fetch = k + min(len(self.deleted), 4 * k) + 4
            p_ids, p_dists = self.primary.search(
                queries,
                min(fetch, max(self.primary.ntotal, 1)),
                min(nprobe, self.primary.nlist),
            )
            id_parts, dist_parts = [p_ids], [p_dists]
            # Both deltas: the live one, plus the frozen pre-merge one while
            # a background rebuild is in flight (its vectors are in neither
            # the old primary nor the fresh delta).
            for g in (self._frozen_delta, self.delta):
                if g is not None and g.ntotal > 0:
                    g_ids, g_dists = g.search(queries, min(fetch, g.ntotal))
                    id_parts.append(g_ids)
                    dist_parts.append(g_dists)

            # Batched merge: mask deleted/padding candidates to +inf, then one
            # stable row-wise argsort — no per-query Python loop.
            ids = np.concatenate(id_parts, axis=1)
            dists = np.concatenate(dist_parts, axis=1).astype(np.float32, copy=True)
            if ids.shape[1] < k:  # tiny index: fewer candidates than k
                pad = k - ids.shape[1]
                ids = np.pad(ids, ((0, 0), (0, pad)), constant_values=-1)
                dists = np.pad(dists, ((0, 0), (0, pad)), constant_values=np.inf)
            drop = ids < 0
            if self.deleted:
                deleted = np.fromiter(self.deleted, dtype=np.int64, count=len(self.deleted))
                drop |= np.isin(ids, deleted)
            dists[drop] = np.inf
            order = np.argsort(dists, axis=1, kind="stable")[:, :k]
            out_ids = np.take_along_axis(ids, order, axis=1)
            out_dists = np.take_along_axis(dists, order, axis=1)
            out_ids[~np.isfinite(out_dists)] = -1
            return out_ids, out_dists

    def search_batch(
        self, queries: np.ndarray, k: int, nprobe: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Uniform serving entry point (see :mod:`repro.serve.backends`)."""
        return self.search(queries, k, nprobe)

    # ------------------------------------------------------------------ #
    def merge(self) -> SnapshotStats:
        """Fold delta + deletions into a new snapshot and rebuild the primary.

        After merging, FANNS would redesign the accelerator for the new
        snapshot (the rebuild here retrains IVF-PQ, mirroring that the
        algorithm explorer "always targets a static dataset snapshot").

        The expensive rebuild runs *outside* the service lock, so serving
        continues throughout: (1) under the lock, freeze the current delta
        and tombstone set and swap in a fresh delta for new inserts; (2)
        retrain the new primary on the folded snapshot with no lock held —
        concurrent searches see old primary + frozen delta + live delta;
        (3) under the lock, swap in the new generation.  Mutations landing
        during the rebuild carry over to the next generation.
        """
        # Phase 1 — freeze the fold set under the lock.
        with self._lock:
            if self.primary is None:
                raise RuntimeError("bootstrap() must run before merge()")
            if self._frozen_delta is not None:
                raise RuntimeError("a merge is already in progress")
            frozen = self.delta
            self._frozen_delta = frozen
            self.delta = NSWGraphIndex(
                d=self.d, max_degree=self.graph_degree, seed=self.seed
            )
            snap_vecs = self._snapshot_vectors
            snap_ids = self._snapshot_ids
            folded_deleted = frozenset(self.deleted)

        # Phase 2 — rebuild with no lock held (reads only frozen state).
        try:
            delta_vecs, delta_ids = frozen.vectors_and_ids()
            inserted = len(delta_ids)
            all_vecs = np.vstack([snap_vecs, delta_vecs]) if inserted else snap_vecs
            all_ids = (
                np.concatenate([snap_ids, delta_ids]) if inserted else snap_ids
            )
            if folded_deleted:
                deleted_arr = np.fromiter(
                    folded_deleted, dtype=np.int64, count=len(folded_deleted)
                )
                live = ~np.isin(all_ids, deleted_arr)
            else:
                live = np.ones(len(all_ids), dtype=bool)
            n_deleted = int((~live).sum())
            new_vecs = np.ascontiguousarray(all_vecs[live])
            new_ids = all_ids[live]
            new_primary = IVFPQIndex(
                d=self.d, nlist=min(self.nlist, max(len(new_ids), 1)), m=self.m,
                ksub=self.ksub, use_opq=self.use_opq, seed=self.seed,
            )
            new_primary.train(new_vecs)
            new_primary.add(new_vecs, ids=new_ids)
        except BaseException:
            # Roll back: fold the (typically tiny) mid-rebuild delta into
            # the frozen graph and reinstate it as the live delta — O(new
            # inserts) under the lock, not O(frozen size) — so the old
            # generation keeps serving the full collection and a later
            # merge() can retry.
            with self._lock:
                live_vecs, live_ids = self.delta.vectors_and_ids()
                if len(live_ids):
                    frozen.add(live_vecs, ids=live_ids)
                self.delta = frozen
                self._frozen_delta = None
            raise

        # Phase 3 — swap in the new generation under the lock.
        with self._lock:
            self.primary = new_primary
            self._snapshot_vectors = new_vecs
            self._snapshot_ids = new_ids
            self._frozen_delta = None
            # Folded tombstones are now physically absent; deletes that
            # arrived during the rebuild stay masked into the next cycle.
            self.deleted -= folded_deleted
            self.generation += 1
            stats = SnapshotStats(
                snapshot_size=len(new_ids),
                inserted_since=inserted,
                deleted_since=n_deleted,
                generation=self.generation,
            )
        # The fold changed the physical layout (and retrained quantizers
        # may rank differently): attached caches must drop everything.
        self._notify_invalidation()
        return stats
