"""Dynamic vector search service: snapshot + delta + deletions + merge.

Implements the deployment loop of §4:

- **primary index** — an IVF-PQ index over the current dataset snapshot
  (the thing FANNS generates an accelerator for);
- **incremental index** — a graph (NSW) buffer of vectors inserted since
  the snapshot;
- **deletion bitmap** — ids removed since the snapshot are masked out of
  both indexes at query time;
- **merge** — periodically (the paper: e.g. weekly) the delta and the
  deletions fold into a new snapshot; the IVF-PQ index is retrained/refilled
  and FANNS can redesign the accelerator for it while the previous
  deployment keeps serving ("the time taken to build the new accelerator is
  effectively concealed by the ongoing operation of the older system").

Queries fan out to both indexes and merge the top-K, skipping deleted ids.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ann.graph import NSWGraphIndex
from repro.ann.ivf import IVFPQIndex

__all__ = ["DynamicVectorService", "SnapshotStats"]


@dataclass(frozen=True)
class SnapshotStats:
    """Bookkeeping returned by :meth:`DynamicVectorService.merge`."""

    snapshot_size: int
    inserted_since: int
    deleted_since: int
    generation: int


class DynamicVectorService:
    """Serves a mutable vector collection over IVF-PQ + NSW + bitmap."""

    def __init__(
        self,
        d: int,
        *,
        nlist: int = 64,
        m: int = 16,
        ksub: int = 256,
        use_opq: bool = False,
        graph_degree: int = 16,
        nprobe: int = 8,
        seed: int = 0,
    ):
        self.d = d
        self.nlist = nlist
        self.m = m
        self.ksub = ksub
        self.use_opq = use_opq
        self.graph_degree = graph_degree
        self.nprobe = nprobe
        self.seed = seed

        self.primary: IVFPQIndex | None = None
        self.delta = NSWGraphIndex(d=d, max_degree=graph_degree, seed=seed)
        self.deleted: set[int] = set()
        self.generation = 0
        self._snapshot_vectors: np.ndarray | None = None
        self._snapshot_ids: np.ndarray | None = None
        self._next_id = 0

    # ------------------------------------------------------------------ #
    @property
    def ntotal(self) -> int:
        """Live vectors (snapshot + delta − deletions)."""
        snap = len(self._snapshot_ids) if self._snapshot_ids is not None else 0
        return snap + self.delta.ntotal - len(self.deleted)

    def _allocate_ids(self, n: int) -> np.ndarray:
        ids = np.arange(self._next_id, self._next_id + n, dtype=np.int64)
        self._next_id += n
        return ids

    # ------------------------------------------------------------------ #
    def bootstrap(self, x: np.ndarray, train_vectors: np.ndarray | None = None) -> np.ndarray:
        """Create the initial snapshot; returns the assigned ids."""
        x = np.ascontiguousarray(np.atleast_2d(x), dtype=np.float32)
        ids = self._allocate_ids(x.shape[0])
        self.primary = IVFPQIndex(
            d=self.d, nlist=self.nlist, m=self.m, ksub=self.ksub,
            use_opq=self.use_opq, seed=self.seed,
        )
        self.primary.train(train_vectors if train_vectors is not None else x)
        self.primary.add(x, ids=ids)
        self._snapshot_vectors = x.copy()
        self._snapshot_ids = ids.copy()
        return ids

    def insert(self, x: np.ndarray) -> np.ndarray:
        """Insert new vectors into the incremental index; returns their ids."""
        if self.primary is None:
            raise RuntimeError("bootstrap() must run before insert()")
        x = np.ascontiguousarray(np.atleast_2d(x), dtype=np.float32)
        ids = self._allocate_ids(x.shape[0])
        self.delta.add(x, ids=ids)
        return ids

    def delete(self, ids) -> int:
        """Mark ids deleted (bitmap); returns how many were newly marked."""
        before = len(self.deleted)
        self.deleted.update(int(i) for i in np.atleast_1d(np.asarray(ids, dtype=np.int64)))
        return len(self.deleted) - before

    # ------------------------------------------------------------------ #
    def search(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Merged top-k over (primary ∪ delta) \\ deleted.

        Over-fetches from both indexes to survive deletion filtering, then
        merges by distance — the query path of the paper's deployment.
        """
        if self.primary is None:
            raise RuntimeError("bootstrap() must run before search()")
        queries = np.atleast_2d(queries)
        nq = queries.shape[0]
        fetch = k + min(len(self.deleted), 4 * k) + 4
        p_ids, p_dists = self.primary.search(
            queries, min(fetch, max(self.primary.ntotal, 1)), self.nprobe
        )
        if self.delta.ntotal > 0:
            g_ids, g_dists = self.delta.search(queries, min(fetch, self.delta.ntotal))
        else:
            g_ids = np.full((nq, 0), -1, dtype=np.int64)
            g_dists = np.full((nq, 0), np.inf, dtype=np.float32)

        # Batched merge: mask deleted/padding candidates to +inf, then one
        # stable row-wise argsort — no per-query Python loop.
        ids = np.concatenate([p_ids, g_ids], axis=1)
        dists = np.concatenate([p_dists, g_dists], axis=1).astype(np.float32, copy=True)
        if ids.shape[1] < k:  # tiny index: fewer candidates than k
            pad = k - ids.shape[1]
            ids = np.pad(ids, ((0, 0), (0, pad)), constant_values=-1)
            dists = np.pad(dists, ((0, 0), (0, pad)), constant_values=np.inf)
        drop = ids < 0
        if self.deleted:
            deleted = np.fromiter(self.deleted, dtype=np.int64, count=len(self.deleted))
            drop |= np.isin(ids, deleted)
        dists[drop] = np.inf
        order = np.argsort(dists, axis=1, kind="stable")[:, :k]
        out_ids = np.take_along_axis(ids, order, axis=1)
        out_dists = np.take_along_axis(dists, order, axis=1)
        out_ids[~np.isfinite(out_dists)] = -1
        return out_ids, out_dists

    # ------------------------------------------------------------------ #
    def merge(self) -> SnapshotStats:
        """Fold delta + deletions into a new snapshot and rebuild the primary.

        After merging, FANNS would redesign the accelerator for the new
        snapshot (the rebuild here retrains IVF-PQ, mirroring that the
        algorithm explorer "always targets a static dataset snapshot").
        """
        if self.primary is None:
            raise RuntimeError("bootstrap() must run before merge()")
        delta_vecs, delta_ids = self.delta.vectors_and_ids()
        inserted = len(delta_ids)
        all_vecs = np.vstack([self._snapshot_vectors, delta_vecs]) if inserted else (
            self._snapshot_vectors
        )
        all_ids = (
            np.concatenate([self._snapshot_ids, delta_ids])
            if inserted
            else self._snapshot_ids
        )
        if self.deleted:
            deleted = np.fromiter(self.deleted, dtype=np.int64, count=len(self.deleted))
            live = ~np.isin(all_ids, deleted)
        else:
            live = np.ones(len(all_ids), dtype=bool)
        deleted = int((~live).sum())
        new_vecs = np.ascontiguousarray(all_vecs[live])
        new_ids = all_ids[live]

        self.primary = IVFPQIndex(
            d=self.d, nlist=min(self.nlist, max(len(new_ids), 1)), m=self.m,
            ksub=self.ksub, use_opq=self.use_opq, seed=self.seed,
        )
        self.primary.train(new_vecs)
        self.primary.add(new_vecs, ids=new_ids)
        self._snapshot_vectors = new_vecs
        self._snapshot_ids = new_ids
        self.delta = NSWGraphIndex(d=self.d, max_degree=self.graph_degree, seed=self.seed)
        self.deleted.clear()
        self.generation += 1
        return SnapshotStats(
            snapshot_size=len(new_ids),
            inserted_since=inserted,
            deleted_since=deleted,
            generation=self.generation,
        )
