"""Command-line experiment runner.

Regenerate any table or figure of the paper from a shell::

    python -m repro.harness.cli fig03
    python -m repro.harness.cli fig09 tab04
    python -m repro.harness.cli all

Analytic experiments (fig03, fig09) run in seconds; dataset-backed ones
(tab03, tab04, fig01, fig10, fig11, fig12) build the shared context first
(about a minute of index training on first use).

``serve-bench`` exercises the online serving subsystem instead of a paper
figure.  Without topology flags it compares batch-size-1 serving against
the dynamic micro-batching scheduler (and the query cache) under
closed-loop load; with ``--replicas`` / ``--shards`` it measures the
replicated, sharded serving matrix over simulated accelerator devices;
with ``--qos`` it runs the multi-tenant QoS matrix (noisy-neighbor
isolation under weighted fair queueing + admission quotas, and the
adaptive batch window against fixed windows); with ``--async`` it sweeps
connection counts over the thread-based vs asyncio socket front ends;
with ``--workers`` it sweeps worker-process counts over the
multi-process data plane (mmap shard workers + preselect-once scatter —
the only mode whose scaling needs real CPU cores)::

    python -m repro.harness.cli serve-bench
    python -m repro.harness.cli serve-bench --replicas 1,2,3 --shards 1,2,4
    python -m repro.harness.cli serve-bench --qos --tenants 2 --slo-us 40000
    python -m repro.harness.cli serve-bench --async --connections 64,512,4096
    python -m repro.harness.cli serve-bench --workers 1,2,4
    python -m repro.harness.cli serve-bench --workers 1,2 --quick

Every flag is documented in the README's CLI reference table.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import fig01, fig03, fig09, fig10, fig11, fig12, tab03, tab04
from repro.harness import serve_bench
from repro.harness.context import small_context
from repro.serve.routing import POLICIES

#: name -> (needs_context, runner(ctx, args))
EXPERIMENTS = {
    "fig03": (False, lambda ctx, args: fig03.run()),
    "fig09": (False, lambda ctx, args: fig09.run()),
    "tab03": (True, lambda ctx, args: tab03.run(ctx)),
    "tab04": (True, lambda ctx, args: tab04.run(ctx)),
    "fig01": (True, lambda ctx, args: fig01.run(ctx)),
    "fig10": (True, lambda ctx, args: fig10.run(ctx)),
    "fig11": (True, lambda ctx, args: fig11.run(ctx)),
    "fig12": (True, lambda ctx, args: fig12.run(ctx)),
    "serve-bench": (False, lambda ctx, args: _run_serve_bench(args)),
}


def _parse_counts(spec: str, flag: str) -> tuple[int, ...]:
    """Parse a ``1,2,3``-style comma list of positive ints."""
    try:
        counts = tuple(int(part) for part in spec.split(","))
    except ValueError:
        raise SystemExit(f"{flag} expects a comma-separated int list, got {spec!r}")
    if not counts or any(c < 1 for c in counts):
        raise SystemExit(f"{flag} counts must be >= 1, got {spec!r}")
    return counts


def _run_serve_bench(args: argparse.Namespace):
    """Dispatch serve-bench to the basic, replicated, QoS, async, or
    multi-process runner."""
    if args.workers is not None:
        if (
            args.async_bench
            or args.qos
            or args.replicas is not None
            or args.shards is not None
            or args.policy is not None
            or args.connections is not None
        ):
            raise SystemExit(
                "--workers and --async/--qos/--replicas/--shards/--policy/"
                "--connections are exclusive modes"
            )
        workers = _parse_counts(args.workers, "--workers")
        overrides = dict(serve_bench.MP_QUICK) if args.quick else {}
        if args.clients is not None:
            overrides["n_clients"] = args.clients
        if args.requests is not None:
            overrides["n_requests"] = args.requests
        return serve_bench.run_multiproc(
            workers=workers, seed=args.seed, **overrides
        )
    if args.quick:
        raise SystemExit("--quick applies to the --workers mode only")
    if args.async_bench:
        if (
            args.qos
            or args.replicas is not None
            or args.shards is not None
            or args.policy is not None
        ):
            raise SystemExit(
                "--async and --qos/--replicas/--shards/--policy are "
                "exclusive modes"
            )
        if args.clients is not None or args.requests is not None:
            raise SystemExit(
                "--async takes no --clients/--requests (concurrency comes "
                "from --connections; each connection runs its own closed loop)"
            )
        connections = _parse_counts(args.connections or "64,512,4096", "--connections")
        return serve_bench.run_async(connections=connections, seed=args.seed)
    if args.connections is not None:
        raise SystemExit("--connections applies to the --async mode only")
    if args.qos:
        if (
            args.replicas is not None
            or args.shards is not None
            or args.policy is not None
        ):
            raise SystemExit(
                "--qos and --replicas/--shards/--policy are exclusive modes"
            )
        if args.clients is not None or args.requests is not None:
            raise SystemExit(
                "--qos takes no --clients/--requests (its load matrix is "
                "derived from modeled capacity; tune --tenants/--slo-us)"
            )
        return serve_bench.run_qos(
            victims=args.tenants,
            slo_us=args.slo_us,
            seed=args.seed,
        )
    overrides = {}
    if args.clients is not None:
        overrides["n_clients"] = args.clients
    if args.requests is not None:
        overrides["n_requests"] = args.requests
    if args.replicas is None and args.shards is None:
        if args.policy is not None:
            raise SystemExit("--policy applies to the replicated mode only")
        return serve_bench.run(seed=args.seed, **overrides)
    replicas = _parse_counts(args.replicas or "1,2,3", "--replicas")
    shards = _parse_counts(args.shards or "1", "--shards")
    return serve_bench.run_replicated(
        replicas=replicas,
        shards=shards,
        policy=args.policy if args.policy is not None else "least-loaded",
        seed=args.seed,
        **overrides,
    )


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiments; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment ids (or 'all')",
    )
    serve = parser.add_argument_group("serve-bench options")
    serve.add_argument(
        "--replicas",
        default=None,
        metavar="R1,R2,...",
        help="replica counts for the serving matrix (enables replicated mode)",
    )
    serve.add_argument(
        "--shards",
        default=None,
        metavar="S1,S2,...",
        help="shard counts for the serving matrix (enables replicated mode)",
    )
    serve.add_argument(
        "--policy",
        default=None,
        choices=POLICIES,
        help="replica routing policy, replicated mode only (default: least-loaded)",
    )
    serve.add_argument(
        "--clients",
        type=int,
        default=None,
        help="closed-loop client threads (default: 16 basic / 32 replicated)",
    )
    serve.add_argument(
        "--requests",
        type=int,
        default=None,
        help="requests per configuration (default: 400 basic / 600 replicated)",
    )
    serve.add_argument(
        "--qos",
        action="store_true",
        help="run the multi-tenant QoS matrix (noisy neighbor + adaptive window)",
    )
    serve.add_argument(
        "--tenants",
        type=int,
        default=2,
        metavar="N",
        help="victim tenants beside the aggressor in QoS mode (default: 2)",
    )
    serve.add_argument(
        "--slo-us",
        type=float,
        default=40_000.0,
        metavar="US",
        help="p99 SLO for the adaptive batch window in QoS mode (default: 40000)",
    )
    serve.add_argument(
        "--async",
        action="store_true",
        dest="async_bench",
        help="sweep connection counts over thread vs asyncio front ends",
    )
    serve.add_argument(
        "--connections",
        default=None,
        metavar="C1,C2,...",
        help="connection counts for the async sweep (default: 64,512,4096)",
    )
    serve.add_argument(
        "--workers",
        default=None,
        metavar="N1,N2,...",
        help=(
            "worker-process counts for the multi-process data plane sweep "
            "(mmap shard workers + preselect-once scatter)"
        ),
    )
    serve.add_argument(
        "--quick",
        action="store_true",
        help="seconds-scale corpus preset for the --workers sweep (CI smoke)",
    )
    serve.add_argument(
        "--seed", type=int, default=0, help="workload seed (default: 0)"
    )
    args = parser.parse_args(argv)
    names = sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments

    ctx = None
    for name in names:
        needs_ctx, runner = EXPERIMENTS[name]
        if needs_ctx and ctx is None:
            print("building experiment context (datasets + index grids)...")
            ctx = small_context()
        t0 = time.perf_counter()
        result = runner(ctx, args)
        elapsed = time.perf_counter() - t0
        print(f"\n### {name} ({elapsed:.1f}s)\n")
        print(result.format())
    return 0


if __name__ == "__main__":
    sys.exit(main())
