"""Command-line experiment runner.

Regenerate any table or figure of the paper from a shell::

    python -m repro.harness.cli fig03
    python -m repro.harness.cli fig09 tab04
    python -m repro.harness.cli all

Analytic experiments (fig03, fig09) run in seconds; dataset-backed ones
(tab03, tab04, fig01, fig10, fig11, fig12) build the shared context first
(about a minute of index training on first use).

``serve-bench`` exercises the online serving subsystem instead of a paper
figure: it builds a small index and compares batch-size-1 serving against
the dynamic micro-batching scheduler (and the query cache) under
closed-loop load::

    python -m repro.harness.cli serve-bench
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import fig01, fig03, fig09, fig10, fig11, fig12, tab03, tab04
from repro.harness import serve_bench
from repro.harness.context import small_context

#: name -> (needs_context, runner)
EXPERIMENTS = {
    "fig03": (False, lambda ctx: fig03.run()),
    "fig09": (False, lambda ctx: fig09.run()),
    "tab03": (True, lambda ctx: tab03.run(ctx)),
    "tab04": (True, lambda ctx: tab04.run(ctx)),
    "fig01": (True, lambda ctx: fig01.run(ctx)),
    "fig10": (True, lambda ctx: fig10.run(ctx)),
    "fig11": (True, lambda ctx: fig11.run(ctx)),
    "fig12": (True, lambda ctx: fig12.run(ctx)),
    "serve-bench": (False, lambda ctx: serve_bench.run()),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment ids (or 'all')",
    )
    args = parser.parse_args(argv)
    names = sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments

    ctx = None
    for name in names:
        needs_ctx, runner = EXPERIMENTS[name]
        if needs_ctx and ctx is None:
            print("building experiment context (datasets + index grids)...")
            ctx = small_context()
        t0 = time.perf_counter()
        result = runner(ctx)
        elapsed = time.perf_counter() - t0
        print(f"\n### {name} ({elapsed:.1f}s)\n")
        print(result.format())
    return 0


if __name__ == "__main__":
    sys.exit(main())
