"""Command-line experiment runner.

Regenerate any table or figure of the paper from a shell::

    python -m repro.harness.cli fig03
    python -m repro.harness.cli fig09 tab04
    python -m repro.harness.cli all

Analytic experiments (fig03, fig09) run in seconds; dataset-backed ones
(tab03, tab04, fig01, fig10, fig11, fig12) build the shared context first
(about a minute of index training on first use).

``serve-bench`` exercises the online serving subsystem instead of a paper
figure.  Without topology flags it compares batch-size-1 serving against
the dynamic micro-batching scheduler (and the query cache) under
closed-loop load; with ``--replicas`` / ``--shards`` it measures the
replicated, sharded serving matrix over simulated accelerator devices;
with ``--qos`` it runs the multi-tenant QoS matrix (noisy-neighbor
isolation under weighted fair queueing + admission quotas, and the
adaptive batch window against fixed windows); with ``--async`` it sweeps
connection counts over the thread-based vs asyncio socket front ends;
with ``--workers`` it sweeps worker-process counts over the
multi-process data plane (mmap shard workers + preselect-once scatter —
the only mode whose scaling needs real CPU cores); with ``--workers R,S
--chaos`` it runs the fault-injection mode instead — an R×S replicated
worker grid under supervised restart, with workers SIGKILLed on a seeded
schedule mid-load (zero failed requests, bounded recovery, bit-identical
answers after)::

    python -m repro.harness.cli serve-bench
    python -m repro.harness.cli serve-bench --replicas 1,2,3 --shards 1,2,4
    python -m repro.harness.cli serve-bench --qos --tenants 2 --slo-us 40000
    python -m repro.harness.cli serve-bench --async --connections 64,512,4096
    python -m repro.harness.cli serve-bench --workers 1,2,4
    python -m repro.harness.cli serve-bench --workers 1,2 --quick
    python -m repro.harness.cli serve-bench --workers 2,2 --chaos --kills 3
    python -m repro.harness.cli serve-bench --workers 2,1 --chaos --quick

The basic and ``--workers`` modes also take ``--trace out.trace.json``
(plus ``--trace-sample``) to record an end-to-end request trace — one
merged Chrome/Perfetto JSON spanning router and worker processes — and
``--metrics-out metrics.json`` to dump the full metrics registries.
``trace-report`` analyzes a recorded trace offline (per-stage latency
percentiles and the critical path)::

    python -m repro.harness.cli serve-bench --workers 2 --trace out.trace.json
    python -m repro.harness.cli trace-report --trace out.trace.json

The ``--chaos`` and ``--qos`` modes take ``--timeline out.jsonl`` to run
the live telemetry plane during the bench — a background
:class:`~repro.obs.timeline.TelemetryCollector` tick stream merged with
the typed operational event journal (worker restarts, coverage
transitions, sheds, SLO alerts) into one JSONL timeline.  ``serve-top``
renders a recorded timeline as a terminal dashboard (``--once`` for a
single CI-friendly frame; otherwise it refreshes in place)::

    python -m repro.harness.cli serve-bench --workers 2,1 --chaos --quick \\
        --timeline timeline.jsonl
    python -m repro.harness.cli serve-top --timeline timeline.jsonl --once

``codesign-serve`` runs the serving co-design autotuner: given a traffic
profile (request rate, tenant mix, request classes, recall floor — a JSON
file via ``--traffic``, or a built-in default), it searches the joint
index × R×S topology × QoS weights × batch window space with the
performance/resource/LogGP models and emits a ranked design report plus
the winning config as a loadable topology spec.  ``--validate``
additionally materializes the winner through ``build_topology`` over
simulated devices (in scaled time) and records the modeled-vs-measured
QPS/p99 gap; ``--quick`` shrinks the corpus and grid to the CI smoke
scale::

    python -m repro.harness.cli codesign-serve --traffic trace.json --slo-us 20000
    python -m repro.harness.cli codesign-serve --quick --validate \\
        --report codesign_report.json --spec codesign_spec.json

Every flag is documented in the README's CLI reference table.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import fig01, fig03, fig09, fig10, fig11, fig12, tab03, tab04
from repro.harness import serve_bench
from repro.harness.context import small_context
from repro.obs.export import load_chrome_trace
from repro.obs.report import TraceReport
from repro.obs.timeline import load_timeline, render_dashboard
from repro.serve.routing import POLICIES

#: name -> (needs_context, runner(ctx, args))
EXPERIMENTS = {
    "fig03": (False, lambda ctx, args: fig03.run()),
    "fig09": (False, lambda ctx, args: fig09.run()),
    "tab03": (True, lambda ctx, args: tab03.run(ctx)),
    "tab04": (True, lambda ctx, args: tab04.run(ctx)),
    "fig01": (True, lambda ctx, args: fig01.run(ctx)),
    "fig10": (True, lambda ctx, args: fig10.run(ctx)),
    "fig11": (True, lambda ctx, args: fig11.run(ctx)),
    "fig12": (True, lambda ctx, args: fig12.run(ctx)),
    "serve-bench": (False, lambda ctx, args: _run_serve_bench(args)),
    "codesign-serve": (False, lambda ctx, args: _run_codesign(args)),
    "trace-report": (False, lambda ctx, args: _run_trace_report(args)),
    "serve-top": (False, lambda ctx, args: _run_serve_top(args)),
}

#: Experiments excluded from ``all`` (they analyze prior output instead
#: of producing their own).
NOT_IN_ALL = {"trace-report", "serve-top"}


def _parse_counts(spec: str, flag: str) -> tuple[int, ...]:
    """Parse a ``1,2,3``-style comma list of positive ints."""
    try:
        counts = tuple(int(part) for part in spec.split(","))
    except ValueError:
        raise SystemExit(f"{flag} expects a comma-separated int list, got {spec!r}")
    if not counts or any(c < 1 for c in counts):
        raise SystemExit(f"{flag} counts must be >= 1, got {spec!r}")
    return counts


def _run_trace_report(args: argparse.Namespace) -> TraceReport:
    """Analyze a Chrome trace written by ``serve-bench --trace``."""
    if args.trace is None:
        raise SystemExit(
            "trace-report requires --trace PATH (a Chrome trace written by "
            "serve-bench --trace)"
        )
    return TraceReport.from_chrome(load_chrome_trace(args.trace))


class _ServeTopFrame:
    """One rendered serve-top frame, shaped like an experiment result."""

    def __init__(self, frame: str):
        self.frame = frame

    def format(self) -> str:
        """The rendered dashboard text."""
        return self.frame


def _run_serve_top(args: argparse.Namespace) -> _ServeTopFrame:
    """Render the serve-top dashboard from a ``--timeline`` JSONL file.

    With ``--once`` it renders a single frame (the newest tick plus the
    event ticker) and exits — the CI smoke path.  Otherwise it clears
    and redraws the terminal every ``--refresh`` seconds, re-reading the
    timeline file so a bench writing it concurrently shows up live;
    Ctrl-C leaves the last frame as the result.
    """
    if args.timeline is None:
        raise SystemExit(
            "serve-top requires --timeline PATH (a timeline written by "
            "serve-bench --timeline)"
        )

    def frame() -> str:
        try:
            _meta, ticks, events = load_timeline(args.timeline)
        except FileNotFoundError:
            raise SystemExit(f"timeline file not found: {args.timeline}")
        return render_dashboard(ticks, events)

    if not args.once:
        try:
            while True:
                print("\x1b[2J\x1b[H" + frame(), end="", flush=True)
                time.sleep(args.refresh)
        except KeyboardInterrupt:
            pass
    return _ServeTopFrame(frame())


def _obs_overrides(args: argparse.Namespace) -> dict:
    """Tracing/metrics kwargs shared by the basic and --workers modes."""
    obs: dict = {}
    if args.trace is not None:
        obs["trace_path"] = args.trace
        obs["trace_sample"] = args.trace_sample
    if args.metrics_out is not None:
        obs["metrics_out"] = args.metrics_out
    return obs


def _run_codesign(args: argparse.Namespace):
    """Run the co-design autotuner (``codesign-serve``)."""
    if (
        args.workers is not None
        or args.qos
        or args.async_bench
        or args.chaos
        or args.replicas is not None
        or args.shards is not None
        or args.policy is not None
        or args.connections is not None
        or args.clients is not None
        or args.requests is not None
    ):
        raise SystemExit(
            "codesign-serve picks its own topology; --workers/--qos/--async/"
            "--chaos/--replicas/--shards/--policy/--connections/--clients/"
            "--requests apply to serve-bench modes only"
        )
    if args.trace is not None or args.metrics_out is not None or args.timeline is not None:
        raise SystemExit(
            "--trace/--metrics-out/--timeline apply to serve-bench modes only"
        )
    return serve_bench.run_codesign(
        traffic_path=args.traffic,
        slo_us=args.slo_us,
        validate=args.validate,
        quick=args.quick,
        seed=args.seed,
        report_out=args.codesign_report,
        spec_out=args.codesign_spec,
    )


def _run_serve_bench(args: argparse.Namespace):
    """Dispatch serve-bench to the basic, replicated, QoS, async, or
    multi-process runner."""
    if (
        args.traffic is not None
        or args.validate
        or args.codesign_report is not None
        or args.codesign_spec is not None
    ):
        raise SystemExit(
            "--traffic/--validate/--report/--spec apply to codesign-serve only"
        )
    obs = _obs_overrides(args)
    if args.timeline is not None and not (args.chaos or args.qos):
        raise SystemExit(
            "--timeline applies to the --chaos and --qos modes only"
        )
    if args.workers is not None:
        if (
            args.async_bench
            or args.qos
            or args.replicas is not None
            or args.shards is not None
            or args.policy is not None
            or args.connections is not None
        ):
            raise SystemExit(
                "--workers and --async/--qos/--replicas/--shards/--policy/"
                "--connections are exclusive modes"
            )
        workers = _parse_counts(args.workers, "--workers")
        overrides = dict(serve_bench.MP_QUICK) if args.quick else {}
        if args.clients is not None:
            overrides["n_clients"] = args.clients
        if args.requests is not None:
            overrides["n_requests"] = args.requests
        if args.chaos:
            if len(workers) != 2:
                raise SystemExit(
                    "--chaos reads --workers as R,S (replicas,shards) and "
                    f"needs exactly two counts, got {args.workers!r}"
                )
            if "trace_path" in obs:
                raise SystemExit("--trace does not apply to the --chaos mode")
            if args.kills < 1:
                raise SystemExit(f"--kills must be >= 1, got {args.kills}")
            replicas, shards = workers
            return serve_bench.run_chaos(
                replicas=replicas, shards=shards, kills=args.kills,
                seed=args.seed, timeline=args.timeline,
                **overrides, **obs
            )
        return serve_bench.run_multiproc(
            workers=workers, seed=args.seed, **overrides, **obs
        )
    if args.chaos:
        raise SystemExit("--chaos requires --workers R,S (replicas,shards)")
    if args.quick:
        raise SystemExit("--quick applies to the --workers mode only")
    if obs and (
        args.async_bench
        or args.qos
        or args.replicas is not None
        or args.shards is not None
    ):
        raise SystemExit(
            "--trace/--trace-sample/--metrics-out apply to the basic and "
            "--workers modes only"
        )
    if args.async_bench:
        if (
            args.qos
            or args.replicas is not None
            or args.shards is not None
            or args.policy is not None
        ):
            raise SystemExit(
                "--async and --qos/--replicas/--shards/--policy are "
                "exclusive modes"
            )
        if args.clients is not None or args.requests is not None:
            raise SystemExit(
                "--async takes no --clients/--requests (concurrency comes "
                "from --connections; each connection runs its own closed loop)"
            )
        connections = _parse_counts(args.connections or "64,512,4096", "--connections")
        return serve_bench.run_async(connections=connections, seed=args.seed)
    if args.connections is not None:
        raise SystemExit("--connections applies to the --async mode only")
    if args.qos:
        if (
            args.replicas is not None
            or args.shards is not None
            or args.policy is not None
        ):
            raise SystemExit(
                "--qos and --replicas/--shards/--policy are exclusive modes"
            )
        if args.clients is not None or args.requests is not None:
            raise SystemExit(
                "--qos takes no --clients/--requests (its load matrix is "
                "derived from modeled capacity; tune --tenants/--slo-us)"
            )
        return serve_bench.run_qos(
            victims=args.tenants,
            slo_us=args.slo_us if args.slo_us is not None else 40_000.0,
            seed=args.seed,
            timeline=args.timeline,
        )
    overrides = {}
    if args.clients is not None:
        overrides["n_clients"] = args.clients
    if args.requests is not None:
        overrides["n_requests"] = args.requests
    if args.replicas is None and args.shards is None:
        if args.policy is not None:
            raise SystemExit("--policy applies to the replicated mode only")
        return serve_bench.run(seed=args.seed, **overrides, **obs)
    replicas = _parse_counts(args.replicas or "1,2,3", "--replicas")
    shards = _parse_counts(args.shards or "1", "--shards")
    return serve_bench.run_replicated(
        replicas=replicas,
        shards=shards,
        policy=args.policy if args.policy is not None else "least-loaded",
        seed=args.seed,
        **overrides,
    )


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiments; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment ids (or 'all')",
    )
    serve = parser.add_argument_group("serve-bench options")
    serve.add_argument(
        "--replicas",
        default=None,
        metavar="R1,R2,...",
        help="replica counts for the serving matrix (enables replicated mode)",
    )
    serve.add_argument(
        "--shards",
        default=None,
        metavar="S1,S2,...",
        help="shard counts for the serving matrix (enables replicated mode)",
    )
    serve.add_argument(
        "--policy",
        default=None,
        choices=POLICIES,
        help="replica routing policy, replicated mode only (default: least-loaded)",
    )
    serve.add_argument(
        "--clients",
        type=int,
        default=None,
        help="closed-loop client threads (default: 16 basic / 32 replicated)",
    )
    serve.add_argument(
        "--requests",
        type=int,
        default=None,
        help="requests per configuration (default: 400 basic / 600 replicated)",
    )
    serve.add_argument(
        "--qos",
        action="store_true",
        help="run the multi-tenant QoS matrix (noisy neighbor + adaptive window)",
    )
    serve.add_argument(
        "--tenants",
        type=int,
        default=2,
        metavar="N",
        help="victim tenants beside the aggressor in QoS mode (default: 2)",
    )
    serve.add_argument(
        "--slo-us",
        type=float,
        default=None,
        metavar="US",
        help=(
            "p99 SLO in microseconds: the adaptive-window target in QoS "
            "mode (default: 40000) or an override of the traffic profile's "
            "SLO in codesign-serve"
        ),
    )
    serve.add_argument(
        "--async",
        action="store_true",
        dest="async_bench",
        help="sweep connection counts over thread vs asyncio front ends",
    )
    serve.add_argument(
        "--connections",
        default=None,
        metavar="C1,C2,...",
        help="connection counts for the async sweep (default: 64,512,4096)",
    )
    serve.add_argument(
        "--workers",
        default=None,
        metavar="N1,N2,...",
        help=(
            "worker-process counts for the multi-process data plane sweep "
            "(mmap shard workers + preselect-once scatter)"
        ),
    )
    serve.add_argument(
        "--chaos",
        action="store_true",
        help=(
            "fault-injection mode: read --workers as R,S (replicas,shards), "
            "SIGKILL workers on a seeded schedule under load, measure "
            "supervised recovery"
        ),
    )
    serve.add_argument(
        "--kills",
        type=int,
        default=2,
        metavar="N",
        help="workers to SIGKILL during a --chaos run (default: 2)",
    )
    serve.add_argument(
        "--quick",
        action="store_true",
        help=(
            "seconds-scale preset: smaller corpus for the --workers sweep "
            "and --chaos mode, smaller corpus + search grid for "
            "codesign-serve (CI smoke)"
        ),
    )
    serve.add_argument(
        "--seed", type=int, default=0, help="workload seed (default: 0)"
    )
    obs = parser.add_argument_group("observability options")
    obs.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "write a merged Chrome/Perfetto trace of the serve-bench run "
            "here (basic and --workers modes); for trace-report, the trace "
            "file to analyze"
        ),
    )
    obs.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        metavar="RATE",
        help="head-sampling probability for --trace (default: 1.0)",
    )
    obs.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="dump the full metrics-registry snapshot(s) as JSON here",
    )
    obs.add_argument(
        "--timeline",
        default=None,
        metavar="PATH",
        help=(
            "write the interleaved tick/event timeline JSONL here "
            "(--chaos and --qos modes); for serve-top, the timeline "
            "file to render"
        ),
    )
    codesign = parser.add_argument_group("codesign-serve options")
    codesign.add_argument(
        "--traffic",
        default=None,
        metavar="PATH",
        help=(
            "JSON traffic profile (rate_qps, slo_p99_us, recall floor, "
            "tenant/class mix); default: a built-in two-tenant profile"
        ),
    )
    codesign.add_argument(
        "--validate",
        action="store_true",
        help=(
            "materialize the winning design through build_topology over "
            "simulated devices and record the modeled-vs-measured gap"
        ),
    )
    codesign.add_argument(
        "--report",
        dest="codesign_report",
        default=None,
        metavar="PATH",
        help="write the ranked design report JSON here (tools/check_codesign.py input)",
    )
    codesign.add_argument(
        "--spec",
        dest="codesign_spec",
        default=None,
        metavar="PATH",
        help="write the winning design as a loadable topology spec JSON here",
    )
    top = parser.add_argument_group("serve-top options")
    top.add_argument(
        "--once",
        action="store_true",
        help="serve-top: render one dashboard frame and exit (CI smoke)",
    )
    top.add_argument(
        "--refresh",
        type=float,
        default=1.0,
        metavar="S",
        help="serve-top: redraw period in seconds (default: 1.0)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.trace_sample <= 1.0:
        raise SystemExit(
            f"--trace-sample must be in [0, 1], got {args.trace_sample}"
        )
    if args.refresh <= 0:
        raise SystemExit(f"--refresh must be > 0, got {args.refresh}")
    names = (
        sorted(set(EXPERIMENTS) - NOT_IN_ALL)
        if "all" in args.experiments
        else args.experiments
    )

    ctx = None
    for name in names:
        needs_ctx, runner = EXPERIMENTS[name]
        if needs_ctx and ctx is None:
            print("building experiment context (datasets + index grids)...")
            ctx = small_context()
        t0 = time.perf_counter()
        result = runner(ctx, args)
        elapsed = time.perf_counter() - t0
        print(f"\n### {name} ({elapsed:.1f}s)\n")
        print(result.format())
    return 0


if __name__ == "__main__":
    sys.exit(main())
