"""Table 4: human-crafted baseline versus FANNS-generated designs.

For each recall goal on the SIFT-like dataset the table reports: the chosen
index and nprobe, the per-stage architecture and LUT share, and the
predicted QPS.  The reproduced claims (§7.2.2):

- FANNS picks *different indexes and nprobe* per recall goal;
- FANNS generates *different hardware* per goal (SelK switches between HPQ
  and HSMPQG, PE counts move, SelK LUT share spans a wide range);
- the baseline rows are fixed per K and carry no prediction (they are not
  parameter-specialized).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.fpga_baseline import baseline_config
from repro.core.config import AcceleratorConfig
from repro.core.framework import FannsResult
from repro.core.resource_model import utilization_report
from repro.harness.context import ExperimentContext
from repro.harness.formatting import format_table
from repro.hw.device import U55C

__all__ = ["Tab04Result", "run"]


@dataclass
class Tab04Row:
    label: str
    index: str
    nprobe: int | None
    config: AcceleratorConfig
    predicted_qps: float | None

    def cells(self) -> list:
        rep = utilization_report(self.config, U55C)
        return [
            self.label,
            self.index,
            self.nprobe if self.nprobe is not None else "N/A",
            self.config.n_ivf_pes,
            f"{rep['IVFDist']['lut_pct']:.1f}%",
            self.config.n_lut_pes,
            f"{rep['BuildLUT']['lut_pct']:.1f}%",
            self.config.n_pq_pes,
            f"{rep['PQDist']['lut_pct']:.1f}%",
            self.config.selk_arch,
            f"{rep['SelK']['lut_pct']:.1f}%",
            f"{self.predicted_qps:,.0f}" if self.predicted_qps else "N/A",
        ]


@dataclass
class Tab04Result:
    rows: list[Tab04Row]
    fits: dict[str, FannsResult]

    def format(self) -> str:
        headers = [
            "Design", "Index", "nprobe",
            "IVF#PE", "IVF.LUT", "LUT#PE", "BLUT.LUT",
            "PQ#PE", "PQ.LUT", "SelK", "SelK.LUT", "Pred.QPS",
        ]
        return format_table(
            headers, [r.cells() for r in self.rows],
            title="Table 4: baseline vs FANNS-generated designs",
        )


def run(ctx: ExperimentContext, dataset_name: str = "sift-like") -> Tab04Result:
    ds = ctx.dataset(dataset_name)
    fanns = ctx.framework(dataset_name)
    rows: list[Tab04Row] = []
    fits: dict[str, FannsResult] = {}

    for goal in ctx.goals[dataset_name]:
        # Baseline row: fixed hardware per K, no parameter awareness.
        base = baseline_config(
            # Bind to a representative index so the row is constructible;
            # the baseline itself is parameter-independent.
            fanns_params_for_baseline(ds.d, fanns, goal.k),
        )
        rows.append(
            Tab04Row(
                label=f"K={goal.k} (Baseline)", index="N/A", nprobe=None,
                config=base, predicted_qps=None,
            )
        )
        # FANNS row: full co-design.
        res = fanns.fit(ds, goal, max_queries=ctx.max_queries)
        fits[str(goal)] = res
        rows.append(
            Tab04Row(
                label=f"K={goal.k} (FANNS)",
                index=res.candidate.key,
                nprobe=res.nprobe,
                config=res.config,
                predicted_qps=res.prediction.qps,
            )
        )
    return Tab04Result(rows=rows, fits=fits)


def fanns_params_for_baseline(d: int, fanns, k: int):
    """A neutral parameter binding for displaying baseline rows."""
    from repro.core.config import AlgorithmParams

    nlist = fanns.nlist_grid[len(fanns.nlist_grid) // 2]
    return AlgorithmParams(
        d=d, nlist=nlist, nprobe=min(16, nlist), k=k, m=fanns.m, ksub=fanns.ksub
    )
