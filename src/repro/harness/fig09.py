"""Figure 9: optimal FPGA designs shift with algorithm parameters.

For each parameter setting the FANNS performance model picks the optimal
hardware design; the figure visualizes the resulting per-stage resource
consumption ratios.  Expected shapes (§7.2.1):

- growing **nprobe** moves resources into Stage PQDist and Stage SelK;
- growing **nlist** moves resources into Stage IVFDist;
- growing **K** inflates Stage SelK (queue cost linear in K).

Pure performance-model work → runs at the paper's scale (100 M vectors,
nlist up to 2^16) with no dataset or simulation needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import AcceleratorConfig, AlgorithmParams
from repro.core.perf_model import IndexProfile
from repro.core.design_space import best_design
from repro.core.resource_model import stage_resources
from repro.harness.formatting import format_table
from repro.hw.device import U55C, FPGADevice

__all__ = ["Fig09Result", "run", "optimal_design"]

NTOTAL = 100_000_000
PE_GRID = (1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48, 57)
STAGES = ("OPQ", "IVFDist", "SelCells", "BuildLUT", "PQDist", "SelK")


def _uniform_profile(nlist: int) -> IndexProfile:
    sizes = np.full(nlist, NTOTAL // nlist, dtype=np.int64)
    return IndexProfile(nlist=nlist, use_opq=False, cell_sizes=sizes)


def optimal_design(
    params: AlgorithmParams, device: FPGADevice = U55C, pe_grid=PE_GRID
) -> AcceleratorConfig:
    """The QPS-optimal design for fixed parameters (the unit of Figure 9).

    Delegates to :func:`repro.core.design_space.best_design` (QPS ties
    within 0.1 % break toward the cheaper design, mirroring
    ``Fanns._search_designs``); unlike the co-design search, an empty
    design space here is an error, not a pruned point.
    """
    found = best_design(
        params, device, _uniform_profile(params.nlist), pe_grid=pe_grid
    )
    if found is None:
        raise RuntimeError(f"no valid design for {params}")
    return found[0]


def _lut_ratios(cfg: AcceleratorConfig) -> dict[str, float]:
    res = stage_resources(cfg)
    total = sum(r.lut for r in res.values())
    return {s: res[s].lut / total if total else 0.0 for s in STAGES}


@dataclass
class Fig09Result:
    """ratios[(sweep, value)] = {stage: LUT share of the optimal design}."""

    ratios: dict[tuple[str, int], dict[str, float]]
    designs: dict[tuple[str, int], AcceleratorConfig]

    def format(self) -> str:
        headers = ["sweep", "value"] + list(STAGES) + ["design"]
        rows = []
        for key in sorted(self.ratios):
            r = self.ratios[key]
            cfg = self.designs[key]
            rows.append(
                list(key)
                + [f"{r[s] * 100:.1f}%" for s in STAGES]
                + [
                    f"ivf={cfg.n_ivf_pes} lut={cfg.n_lut_pes} "
                    f"pq={cfg.n_pq_pes} selk={cfg.selk_arch}"
                ]
            )
        return format_table(headers, rows, title="Figure 9: optimal design resource ratios")


def run(
    nprobes: tuple[int, ...] = (1, 4, 16, 64),
    nlists: tuple[int, ...] = (2**11, 2**13, 2**15),
    ks: tuple[int, ...] = (1, 10, 100),
    device: FPGADevice = U55C,
) -> Fig09Result:
    ratios: dict[tuple[str, int], dict[str, float]] = {}
    designs: dict[tuple[str, int], AcceleratorConfig] = {}

    for nprobe in nprobes:  # left panel: sweep nprobe at nlist=8192, K=10
        p = AlgorithmParams(d=128, nlist=2**13, nprobe=nprobe, k=10)
        cfg = optimal_design(p, device)
        ratios[("nprobe", nprobe)] = _lut_ratios(cfg)
        designs[("nprobe", nprobe)] = cfg

    for nlist in nlists:  # middle panel: sweep nlist at nprobe=16, K=10
        p = AlgorithmParams(d=128, nlist=nlist, nprobe=16, k=10)
        cfg = optimal_design(p, device)
        ratios[("nlist", nlist)] = _lut_ratios(cfg)
        designs[("nlist", nlist)] = cfg

    for k in ks:  # right panel: sweep K at nlist=8192, nprobe=16
        p = AlgorithmParams(d=128, nlist=2**13, nprobe=16, k=k)
        cfg = optimal_design(p, device)
        ratios[("K", k)] = _lut_ratios(cfg)
        designs[("K", k)] = cfg

    return Fig09Result(ratios=ratios, designs=designs)
