"""Experiment harness: regenerates every table and figure of the evaluation.

Each ``figXX``/``tabXX`` module exposes a ``run(...)`` function returning a
structured result with a ``format()`` method that prints the same rows or
series the paper reports.  The benchmark suite under ``benchmarks/`` wraps
these runners; EXPERIMENTS.md records paper-vs-measured shape comparisons.

Scale note: analytic experiments (Fig. 9, Table 4 predictions, Fig. 12) run
at the paper's full scale (100 M-vector profiles) because the performance
model is closed-form.  Simulation/measurement experiments (Figs. 1, 10, 11,
Table 3) run on scaled synthetic datasets (10^4–10^5 vectors) with parameters
scaled proportionally; DESIGN.md §1 documents the substitution.
"""

from repro.harness.context import ExperimentContext, small_context
from repro.harness.formatting import format_series, format_table

__all__ = ["ExperimentContext", "format_series", "format_table", "small_context"]
