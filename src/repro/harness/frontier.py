"""Recall–throughput frontiers: the standard ANN benchmark view.

The paper reports fixed recall goals (Fig. 10); ANN practice also sweeps
nprobe to trace the whole recall-vs-QPS frontier per platform.  This runner
produces those curves for the simulated FANNS accelerator and the CPU/GPU
cost models on one index, which makes the crossovers of Fig. 10 visible as
curve intersections.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ann.recall import recall_at_k
from repro.baselines.cpu import CPUBaseline
from repro.baselines.gpu import GPUBaseline
from repro.core.config import AlgorithmParams
from repro.harness.context import ExperimentContext
from repro.harness.fig09 import optimal_design
from repro.harness.formatting import format_table
from repro.sim.accelerator import AcceleratorSimulator

__all__ = ["FrontierPoint", "FrontierResult", "run"]


@dataclass(frozen=True)
class FrontierPoint:
    nprobe: int
    recall: float
    qps: dict[str, float]  # platform -> throughput


@dataclass
class FrontierResult:
    k: int
    nlist: int
    points: list[FrontierPoint]

    def format(self) -> str:
        headers = ["nprobe", f"R@{self.k}", "FPGA", "CPU", "GPU"]
        rows = [
            [p.nprobe, f"{p.recall:.3f}", p.qps["FPGA"], p.qps["CPU"], p.qps["GPU"]]
            for p in self.points
        ]
        return format_table(headers, rows, title=f"Recall-QPS frontier (nlist={self.nlist})")

    def platform_curve(self, platform: str) -> list[tuple[float, float]]:
        return [(p.recall, p.qps[platform]) for p in self.points]


def run(
    ctx: ExperimentContext,
    dataset_name: str = "sift-like",
    nlist: int | None = None,
    k: int = 10,
    nprobes: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    n_queries: int = 150,
) -> FrontierResult:
    ds = ctx.dataset(dataset_name)
    fanns = ctx.framework(dataset_name)
    nlist = nlist if nlist is not None else fanns.nlist_grid[len(fanns.nlist_grid) // 2]
    cand = fanns.explorer.build(ds, [nlist], opq_options=(False,))[0]
    gt = ds.ensure_ground_truth(k)[:n_queries]
    queries = ds.queries[:n_queries]
    cpu = CPUBaseline()
    gpu = GPUBaseline()

    points: list[FrontierPoint] = []
    for nprobe in nprobes:
        if nprobe > nlist:
            continue
        params = AlgorithmParams(
            d=ds.d, nlist=nlist, nprobe=nprobe, k=k, m=fanns.m, ksub=fanns.ksub
        )
        ids, _ = cand.index.search(queries, k, nprobe)
        recall = recall_at_k(ids, gt)
        # FPGA: the optimal design for *this* nprobe, simulated.
        cfg = optimal_design(params, fanns.device, pe_grid=fanns.pe_grid)
        sim = AcceleratorSimulator(
            cand.index, cfg, workload_scale=fanns.workload_scale
        )
        fpga_qps = sim.run_batch(queries).qps
        codes = cand.profile.expected_codes(nprobe)
        points.append(
            FrontierPoint(
                nprobe=nprobe,
                recall=recall,
                qps={
                    "FPGA": fpga_qps,
                    "CPU": cpu.qps(params, codes),
                    "GPU": gpu.qps(params, codes),
                },
            )
        )
    return FrontierResult(k=k, nlist=nlist, points=points)
