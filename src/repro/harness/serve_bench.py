"""Serving benchmark: micro-batching vs batch-size-1 online serving.

The deployment story of Figure 1 implies queries arriving one at a time
from many clients; PR 1's batched query engine is fastest on batches.  This
experiment quantifies what the dynamic micro-batching scheduler buys when
bridging the two: closed-loop throughput and tail latency for

- a **batch-size-1 baseline** (every request served alone — the seed's
  implicit serving model),
- the **micro-batching scheduler** at several batch windows,
- micro-batching **plus the LRU query cache** on a skewed (repeating)
  query stream.

Results are verified bit-identical to direct ``IVFPQIndex.search`` before
any timing is reported — a fast wrong answer is not a speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ann.ivf import IVFPQIndex
from repro.data.synthetic import make_clustered
from repro.harness.formatting import format_table
from repro.serve.backends import InstrumentedBackend
from repro.serve.cache import QueryResultCache
from repro.serve.loadgen import LoadReport, run_closed_loop
from repro.serve.scheduler import ServingEngine

__all__ = ["ServeBenchResult", "ServeConfigRow", "build_serving_index", "run"]

#: Serving workload shape (small enough to train in seconds, large enough
#: that a batched scan beats per-query dispatch).
N_BASE = 8_000
D = 32
NLIST = 128
M = 8
KSUB = 32
K = 10
NPROBE = 8
N_QUERY_POOL = 200


@dataclass(frozen=True)
class ServeConfigRow:
    """One serving configuration's measured outcome."""

    name: str
    max_batch: int
    max_wait_us: float
    cache: bool
    report: LoadReport

    def cells(self) -> list:
        r = self.report
        hit_rate = (
            r.cache_hits / max(r.cache_hits + r.cache_misses, 1) if self.cache else 0.0
        )
        return [
            self.name, self.max_batch, self.max_wait_us,
            "on" if self.cache else "off",
            r.achieved_qps, r.total.p50_us, r.total.p99_us,
            r.mean_batch_size, f"{100 * hit_rate:.0f}%",
        ]


@dataclass
class ServeBenchResult:
    rows: list[ServeConfigRow]
    bit_identical: bool
    n_clients: int
    n_requests: int
    params: dict = field(default_factory=dict)

    @property
    def baseline(self) -> ServeConfigRow:
        return next(r for r in self.rows if r.max_batch == 1)

    def best_batched(self) -> ServeConfigRow:
        """Highest-QPS micro-batched config (cache off — pure scheduling)."""
        batched = [r for r in self.rows if r.max_batch > 1 and not r.cache]
        return max(batched, key=lambda r: r.report.achieved_qps)

    def format(self) -> str:
        headers = [
            "config", "max_batch", "window_us", "cache",
            "QPS", "p50_us", "p99_us", "mean_batch", "hit%",
        ]
        table = format_table(
            headers, [r.cells() for r in self.rows],
            title=(
                f"serve-bench: closed loop, {self.n_clients} clients, "
                f"{self.n_requests} requests (results bit-identical to "
                f"direct search: {self.bit_identical})"
            ),
        )
        base, best = self.baseline, self.best_batched()
        speedup = best.report.achieved_qps / max(base.report.achieved_qps, 1e-9)
        tail = base.report.total.p99_us / max(best.report.total.p99_us, 1e-9)
        return (
            f"{table}\n\nbest micro-batched ({best.name}): "
            f"{speedup:.2f}x QPS of batch-1 at {tail:.2f}x lower p99"
        )


def build_serving_index(
    n_base: int = N_BASE, d: int = D, nlist: int = NLIST,
    m: int = M, ksub: int = KSUB, seed: int = 0,
) -> tuple[IVFPQIndex, np.ndarray]:
    """A small trained index plus a pool of in-distribution queries."""
    vecs = make_clustered(n_base + N_QUERY_POOL, d, n_clusters=nlist, seed=seed + 42)
    base, queries = vecs[:n_base], vecs[n_base:]
    index = IVFPQIndex(d=d, nlist=nlist, m=m, ksub=ksub, seed=seed)
    index.train(base)
    index.add(base)
    index.invlists  # flush packing so serving never pays it
    return index, queries


def verify_bit_identical(
    index: IVFPQIndex, queries: np.ndarray, *, max_batch: int = 16,
    max_wait_us: float = 2000.0, k: int = K, nprobe: int = NPROBE,
) -> bool:
    """Serve every query through the scheduler; compare bits to search()."""
    ref_ids, ref_dists = index.search(queries, k, nprobe)
    with ServingEngine(index, max_batch=max_batch, max_wait_us=max_wait_us) as eng:
        futs = [eng.submit(q, k, nprobe) for q in queries]
        got = [f.result() for f in futs]
    ids = np.stack([g.ids for g in got])
    dists = np.stack([g.dists for g in got])
    return bool(np.array_equal(ids, ref_ids) and np.array_equal(dists, ref_dists))


def run(
    ctx=None,
    *,
    n_clients: int = 16,
    n_requests: int = 400,
    windows_us: tuple[float, ...] = (0.0, 1000.0, 4000.0),
    max_batch: int = 16,
    k: int = K,
    nprobe: int = NPROBE,
    seed: int = 0,
) -> ServeBenchResult:
    """Run the serving comparison (ctx unused; the index is self-built)."""
    index, queries = build_serving_index(seed=seed)
    bit_identical = verify_bit_identical(index, queries[:64], k=k, nprobe=nprobe)

    configs: list[tuple[str, int, float, bool]] = [
        ("batch-1", 1, 0.0, False),
    ]
    configs += [
        (f"batched w={int(w)}us", max_batch, w, False) for w in windows_us
    ]
    configs.append(("batched + cache", max_batch, windows_us[-1], True))

    rows: list[ServeConfigRow] = []
    for name, mb, wait, use_cache in configs:
        backend = InstrumentedBackend(index)
        cache = QueryResultCache(capacity=4 * N_QUERY_POOL) if use_cache else None
        with ServingEngine(
            backend, max_batch=mb, max_wait_us=wait, cache=cache
        ) as engine:
            report = run_closed_loop(
                engine, queries, k, nprobe,
                n_clients=n_clients, n_requests=n_requests,
            )
        rows.append(ServeConfigRow(name, mb, wait, use_cache, report))

    return ServeBenchResult(
        rows=rows,
        bit_identical=bit_identical,
        n_clients=n_clients,
        n_requests=n_requests,
        params={
            "n_base": N_BASE, "d": D, "nlist": NLIST, "m": M, "ksub": KSUB,
            "k": k, "nprobe": nprobe, "max_batch": max_batch,
            "windows_us": list(windows_us), "query_pool": N_QUERY_POOL,
        },
    )
